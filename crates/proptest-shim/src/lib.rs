//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build container has no network access to a crates registry, so the
//! workspace vendors the *subset* of proptest's API its test suites use:
//! the [`proptest!`] macro, range/`any`/tuple/`prop::collection::vec`
//! strategies, `prop_assert*` macros, [`ProptestConfig`] and
//! [`TestCaseError`]. Sampling is deterministic (seeded per test name and
//! case index by a SplitMix64 generator). Failing cases are *shrunk*:
//! every strategy exposes [`Strategy::shrink`] candidates (binary-search
//! reduction for ranges and `vec`), [`minimize`] drives them to a local
//! minimum, and the [`proptest!`] macro panics with both the original and
//! the minimized arguments so the smallest reproducer can be replayed.

#![forbid(unsafe_code)]

use std::fmt;
use std::marker::PhantomData;
use std::ops::Range;

/// Deterministic SplitMix64 generator behind every strategy.
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// A generator seeded with `seed`.
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng(seed)
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// FNV-1a over the test identity; each case gets its own stream.
pub fn seed_for(module: &str, name: &str, case: u32) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in module.bytes().chain(name.bytes()).chain(case.to_le_bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// How a strategy produces one sampled value, and how a failing value is
/// simplified.
pub trait Strategy {
    /// The type of the sampled values.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
    /// Candidate simplifications of `value`, most aggressive first. Every
    /// candidate must be strictly "smaller" than `value` under some
    /// well-founded order, so [`minimize`] terminates. The default is no
    /// candidates (the value is already minimal).
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }
}

/// Binary-search reduction of `value` toward `origin`: the origin itself,
/// then successive midpoints, then the immediate predecessor.
fn shrink_toward(origin: i128, value: i128) -> Vec<i128> {
    if value == origin {
        return Vec::new();
    }
    let mut out = vec![origin];
    let mid = origin + (value - origin) / 2;
    if mid != origin && mid != value {
        out.push(mid);
    }
    let step = if value > origin { value - 1 } else { value + 1 };
    if step != origin && step != mid {
        out.push(step);
    }
    out
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_toward(self.start as i128, *value as i128)
                    .into_iter()
                    .map(|v| v as $t)
                    .collect()
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types `any::<T>()` can produce.
pub trait Arbitrary {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
    /// Candidate simplifications (see [`Strategy::shrink`]).
    fn shrink_arbitrary(&self) -> Vec<Self>
    where
        Self: Sized,
    {
        Vec::new()
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
            fn shrink_arbitrary(&self) -> Vec<$t> {
                shrink_toward(0, *self as i128).into_iter().map(|v| v as $t).collect()
            }
        }
    )*};
}
int_arbitrary!(u8, u16, u32, i8, i16, i32, i64, isize);

// 64-bit unsigned types do not fit i128's positive half after an `as`
// round-trip of large samples, so shrink through the unsigned domain.
macro_rules! wide_uint_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
            fn shrink_arbitrary(&self) -> Vec<$t> {
                let v = *self;
                if v == 0 {
                    return Vec::new();
                }
                let mut out = vec![0, v / 2];
                out.push(v - 1);
                out.dedup();
                out.retain(|&c| c != v);
                out
            }
        }
    )*};
}
wide_uint_arbitrary!(u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
    fn shrink_arbitrary(&self) -> Vec<bool> {
        if *self {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// A strategy producing unconstrained values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
    fn shrink(&self, value: &T) -> Vec<T> {
        value.shrink_arbitrary()
    }
}

/// A strategy producing a fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The zero-argument strategy, used by [`proptest!`] for property
/// functions without sampled inputs.
impl Strategy for () {
    type Value = ();
    fn sample(&self, _rng: &mut TestRng) {}
}

macro_rules! tuple_strategy {
    ($($s:ident/$i:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+)
        where
            $($s::Value: Clone),+
        {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.sample(rng),)+)
            }
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$i.shrink(&value.$i) {
                        let mut next = value.clone();
                        next.$i = cand;
                        out.push(next);
                    }
                )+
                out
            }
        }
    };
}
tuple_strategy!(A / 0);
tuple_strategy!(A / 0, B / 1);
tuple_strategy!(A / 0, B / 1, C / 2);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7);

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A strategy for vectors with element strategy `element` and a
    /// length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec()`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.clone().sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let mut out = Vec::new();
            let min_len = self.size.start;
            let len = value.len();
            // Binary-search the length first: the minimum, the midpoint,
            // then one-shorter — dropping elements is the biggest win.
            if len > min_len {
                let mut lens = vec![min_len, min_len + (len - min_len) / 2, len - 1];
                lens.dedup();
                for l in lens {
                    if l < len {
                        out.push(value[..l].to_vec());
                    }
                }
                // Single-element removals reach lists truncation cannot.
                for i in 0..len {
                    let mut v = value.clone();
                    v.remove(i);
                    out.push(v);
                }
            }
            // Then simplify elements in place, one candidate at a time.
            for i in 0..len {
                for cand in self.element.shrink(&value[i]) {
                    let mut v = value.clone();
                    v[i] = cand;
                    out.push(v);
                }
            }
            out
        }
    }
}

/// Pins a property body's argument type to `S::Value` so closure
/// parameter inference succeeds inside [`proptest!`]. Implementation
/// detail of the macro.
#[doc(hidden)]
pub fn __bind_body<S, F>(_strategy: &S, f: F) -> F
where
    S: Strategy,
    F: FnMut(S::Value) -> Result<(), TestCaseError>,
{
    f
}

/// Greedily minimizes a failing input: repeatedly replaces `value` with
/// the first [`Strategy::shrink`] candidate for which `fails` still holds,
/// until no candidate fails (a local minimum) or a step cap is reached.
/// Returns the minimized value and the number of accepted shrink steps.
pub fn minimize<S: Strategy>(
    strategy: &S,
    mut value: S::Value,
    mut fails: impl FnMut(&S::Value) -> bool,
) -> (S::Value, usize) {
    const MAX_STEPS: usize = 10_000;
    let mut steps = 0;
    while steps < MAX_STEPS {
        let mut advanced = false;
        for cand in strategy.shrink(&value) {
            if fails(&cand) {
                value = cand;
                steps += 1;
                advanced = true;
                break;
            }
        }
        if !advanced {
            break;
        }
    }
    (value, steps)
}

/// Per-invocation configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 32 }
    }
}

/// Why a test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The property is false for the sampled inputs.
    Fail(String),
    /// The inputs were rejected (counts as a skip, not a failure).
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given reason.
    pub fn fail(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(reason.into())
    }

    /// A rejection with the given reason.
    pub fn reject(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "test case failed: {r}"),
            TestCaseError::Reject(r) => write!(f, "test case rejected: {r}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// Everything a proptest-based test file usually imports.
pub mod prelude {
    pub use crate::{
        any, minimize, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any,
        Arbitrary, Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };

    /// The `prop::` namespace (`prop::collection::vec(...)`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests: each `fn` runs `ProptestConfig::cases` times
/// with freshly sampled arguments; `prop_assert*` failures are minimized
/// via [`minimize`] and panic with both the original and the shrunk
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let strategy = ($(($strat),)*);
                #[allow(unused_mut)]
                let mut run = $crate::__bind_body(&strategy, |__tuple| {
                    let ($($arg,)*) = __tuple;
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    outcome
                });
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::from_seed($crate::seed_for(
                        module_path!(),
                        stringify!($name),
                        case,
                    ));
                    let sampled = $crate::Strategy::sample(&strategy, &mut rng);
                    match run(::std::clone::Clone::clone(&sampled)) {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            let original = format!("{sampled:?}");
                            let (minimized, steps) = $crate::minimize(&strategy, sampled, |v| {
                                ::std::matches!(
                                    run(::std::clone::Clone::clone(v)),
                                    ::std::result::Result::Err($crate::TestCaseError::Fail(_))
                                )
                            });
                            let ($($arg,)*) = minimized;
                            panic!(
                                "property `{}` failed at case {case}: {msg}\n  inputs: {}\n  minimized ({steps} shrink steps): {}",
                                stringify!($name),
                                original,
                                [$(format!("{} = {:?}", stringify!($arg), $arg)),*].join(", "),
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), l, r
            )));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Rejects the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::collection;
    use crate::prelude::*;
    use crate::seed_for;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_seed(7);
        for _ in 0..1000 {
            let v = (3usize..9).sample(&mut rng);
            assert!((3..9).contains(&v));
            let w = (-5i64..5).sample(&mut rng);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let draw = || {
            let mut rng = TestRng::from_seed(seed_for("m", "t", 3));
            (0..8).map(|_| rng.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(draw(), draw());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn vec_strategy_respects_size(
            xs in prop::collection::vec(0u32..10, 2..5),
            pair in (1i64..4, 1i64..4),
        ) {
            prop_assert!(xs.len() >= 2 && xs.len() < 5);
            prop_assert!(xs.iter().all(|&x| x < 10));
            prop_assert!(pair.0 >= 1 && pair.1 < 4, "pair {:?}", pair);
        }
    }

    #[test]
    fn range_shrink_binary_searches_toward_start() {
        let s = 3u32..100;
        let cands = s.shrink(&64);
        assert_eq!(cands[0], 3, "most aggressive candidate is the minimum");
        assert!(cands.contains(&33), "midpoint between 3 and 64");
        assert!(cands.contains(&63), "immediate predecessor");
        assert!(s.shrink(&3).is_empty(), "the minimum is already minimal");
        // Signed ranges shrink toward their start, not toward zero.
        assert_eq!((-5i64..5).shrink(&4)[0], -5);
    }

    #[test]
    fn shrink_candidates_are_always_strictly_smaller() {
        // Termination of `minimize` rests on this: no candidate equals the
        // value it was derived from.
        let s = 0u64..1000;
        for v in [1u64, 2, 17, 999] {
            for c in s.shrink(&v) {
                assert!(c < v, "candidate {c} not smaller than {v}");
            }
        }
        let vs = collection::vec(0u32..10, 0..8);
        let val = vec![9, 0, 3];
        for c in vs.shrink(&val) {
            let smaller_len = c.len() < val.len();
            let smaller_elem = c.len() == val.len() && c.iter().sum::<u32>() < val.iter().sum();
            assert!(smaller_len || smaller_elem, "{c:?} does not shrink {val:?}");
        }
    }

    #[test]
    fn minimize_finds_the_smallest_failing_int() {
        // Predicate fails for every value >= 40: the local minimum is 40.
        let (min, steps) = crate::minimize(&(0u32..1000), 857, |&v| v >= 40);
        assert_eq!(min, 40);
        assert!(
            steps > 0 && steps < 40,
            "binary search, not linear: {steps}"
        );
    }

    #[test]
    fn minimize_shrinks_vecs_to_the_failing_core() {
        // Failure depends only on containing some element >= 5.
        let strat = collection::vec(0u32..100, 0..12);
        let value = vec![1, 7, 3, 99, 0, 4, 62];
        let (min, _) = crate::minimize(&strat, value, |v| v.iter().any(|&x| x >= 5));
        assert_eq!(min, vec![5], "one minimal witness element remains");
    }

    #[test]
    fn minimize_respects_the_vec_length_floor() {
        let strat = collection::vec(0u32..100, 2..12);
        let (min, _) = crate::minimize(&strat, vec![9, 9, 9, 9], |_| true);
        assert_eq!(min, vec![0, 0], "floor 2 elements, each at the range start");
    }

    #[test]
    fn tuple_shrink_simplifies_one_component_at_a_time() {
        let strat = (0u32..10, 0u32..10);
        for (a, b) in strat.shrink(&(4, 7)) {
            assert!(
                (a < 4 && b == 7) || (a == 4 && b < 7),
                "({a}, {b}) changes both components"
            );
        }
        let (min, _) = crate::minimize(&strat, (4, 7), |&(a, b)| a + b >= 6);
        assert_eq!(min.0 + min.1, 6, "local minimum sits on the boundary");
    }

    #[test]
    fn failing_property_panics_with_minimized_inputs() {
        // Run one failing property through the macro machinery and check
        // the panic message carries the shrunk witness.
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(1))]
            fn fails_above_ten(x in 0u32..1000) {
                prop_assert!(x < 10, "x too big");
            }
        }
        let err = std::panic::catch_unwind(fails_above_ten).unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("minimized"), "no shrink report in: {msg}");
        assert!(msg.contains("x = 10"), "witness not minimal in: {msg}");
    }
}
