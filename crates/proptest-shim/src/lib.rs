//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build container has no network access to a crates registry, so the
//! workspace vendors the *subset* of proptest's API its test suites use:
//! the [`proptest!`] macro, range/`any`/tuple/`prop::collection::vec`
//! strategies, `prop_assert*` macros, [`ProptestConfig`] and
//! [`TestCaseError`]. Sampling is deterministic (seeded per test name and
//! case index by a SplitMix64 generator); there is no shrinking — a
//! failing case panics with the sampled arguments so it can be replayed
//! by hand.

#![forbid(unsafe_code)]

use std::fmt;
use std::marker::PhantomData;
use std::ops::Range;

/// Deterministic SplitMix64 generator behind every strategy.
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// A generator seeded with `seed`.
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng(seed)
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// FNV-1a over the test identity; each case gets its own stream.
pub fn seed_for(module: &str, name: &str, case: u32) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in module.bytes().chain(name.bytes()).chain(case.to_le_bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// How a strategy produces one sampled value.
pub trait Strategy {
    /// The type of the sampled values.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types `any::<T>()` can produce.
pub trait Arbitrary {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// A strategy producing unconstrained values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy producing a fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! tuple_strategy {
    ($($s:ident/$i:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.sample(rng),)+)
            }
        }
    };
}
tuple_strategy!(A / 0);
tuple_strategy!(A / 0, B / 1);
tuple_strategy!(A / 0, B / 1, C / 2);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A strategy for vectors with element strategy `element` and a
    /// length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.clone().sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Per-invocation configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 32 }
    }
}

/// Why a test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The property is false for the sampled inputs.
    Fail(String),
    /// The inputs were rejected (counts as a skip, not a failure).
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given reason.
    pub fn fail(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(reason.into())
    }

    /// A rejection with the given reason.
    pub fn reject(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "test case failed: {r}"),
            TestCaseError::Reject(r) => write!(f, "test case rejected: {r}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// Everything a proptest-based test file usually imports.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any, Arbitrary,
        Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };

    /// The `prop::` namespace (`prop::collection::vec(...)`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests: each `fn` runs `ProptestConfig::cases` times
/// with freshly sampled arguments; `prop_assert*` failures panic with the
/// offending inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::from_seed($crate::seed_for(
                        module_path!(),
                        stringify!($name),
                        case,
                    ));
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "property `{}` failed at case {case}: {msg}\n  inputs: {}",
                                stringify!($name),
                                [$(format!("{} = {:?}", stringify!($arg), $arg)),*].join(", "),
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), l, r
            )));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Rejects the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::seed_for;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_seed(7);
        for _ in 0..1000 {
            let v = (3usize..9).sample(&mut rng);
            assert!((3..9).contains(&v));
            let w = (-5i64..5).sample(&mut rng);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let draw = || {
            let mut rng = TestRng::from_seed(seed_for("m", "t", 3));
            (0..8).map(|_| rng.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(draw(), draw());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn vec_strategy_respects_size(
            xs in prop::collection::vec(0u32..10, 2..5),
            pair in (1i64..4, 1i64..4),
        ) {
            prop_assert!(xs.len() >= 2 && xs.len() < 5);
            prop_assert!(xs.iter().all(|&x| x < 10));
            prop_assert!(pair.0 >= 1 && pair.1 < 4, "pair {:?}", pair);
        }
    }
}
