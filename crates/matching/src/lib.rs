//! # mcs-matching
//!
//! Bipartite matching algorithms used by the `multichip-hls` workspace:
//!
//! * [`max_bipartite_matching`] — maximum-cardinality matching via
//!   augmenting paths (Kuhn's algorithm). The dynamic bus-reassignment
//!   step of Section 4.2 *is* an augmenting-path search over the
//!   I/O-operation / communication-slot graph.
//! * [`max_weight_matching`] — maximum-weight bipartite matching via the
//!   O(n³) Hungarian algorithm with potentials, as called for by the
//!   post-scheduling interchip-connection synthesis of Section 5.2.
//!
//! ```
//! use mcs_matching::max_weight_matching;
//!
//! // Two workers, two jobs; the off-diagonal pairing is worth more.
//! let w = vec![
//!     vec![Some(1), Some(5)],
//!     vec![Some(5), Some(1)],
//! ];
//! let m = max_weight_matching(&w);
//! assert_eq!(m.total, 10);
//! assert_eq!(m.pairs, vec![Some(1), Some(0)]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Result of a weighted matching.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Matching {
    /// For each left node, the matched right node (or `None`).
    pub pairs: Vec<Option<usize>>,
    /// Total weight of the matching.
    pub total: i64,
}

/// Result of a [`max_bipartite_matching_seeded`] call, carrying the
/// warm-start accounting the caller reports as rematch telemetry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SeededMatching {
    /// For each left node, the matched right node (or `None`).
    pub pairs: Vec<Option<usize>>,
    /// Seed pairs adopted verbatim (no search needed).
    pub seeded: usize,
    /// Augmenting-path searches run for left nodes the seed left
    /// uncovered.
    pub augmentations: usize,
}

/// One augmenting-path search (Kuhn's algorithm) from left node `l`,
/// iterative — the search depth equals the augmenting-path length, which
/// on large designs overflows the call stack if done recursively.
///
/// A right node counts as visited when `visited[r] == stamp`; passing a
/// fresh stamp per search makes the per-search reset O(1) instead of
/// clearing a boolean array. `match_left` / `match_right` are updated in
/// place when an augmenting path is found. Returns whether `l` got
/// matched.
pub fn augment(
    l: usize,
    adj: &[Vec<usize>],
    visited: &mut [u64],
    stamp: u64,
    match_left: &mut [Option<usize>],
    match_right: &mut [Option<usize>],
) -> bool {
    // DFS frames: (left node, next edge index, right node entered via).
    let mut stack: Vec<(usize, usize, Option<usize>)> = vec![(l, 0, None)];
    while let Some(&mut (cur, ref mut ei, _)) = stack.last_mut() {
        let Some(&r) = adj[cur].get(*ei) else {
            stack.pop();
            continue;
        };
        *ei += 1;
        if visited[r] == stamp {
            continue;
        }
        visited[r] = stamp;
        match match_right[r] {
            Some(l2) => stack.push((l2, 0, Some(r))),
            None => {
                // Augmenting path found: flip it along the stack — every
                // frame's entry edge moves to its parent frame's left node.
                match_right[r] = Some(cur);
                match_left[cur] = Some(r);
                let (_, _, mut via) = stack.pop().expect("current frame");
                while let Some((parent, _, parent_via)) = stack.pop() {
                    let v = via.expect("non-root frame has an entry edge");
                    match_left[parent] = Some(v);
                    match_right[v] = Some(parent);
                    via = parent_via;
                }
                return true;
            }
        }
    }
    false
}

/// Maximum-cardinality bipartite matching (Kuhn's augmenting paths).
///
/// `adj[l]` lists the right nodes reachable from left node `l`. Returns the
/// matched right node per left node.
pub fn max_bipartite_matching(n_right: usize, adj: &[Vec<usize>]) -> Vec<Option<usize>> {
    max_bipartite_matching_seeded(n_right, adj, &[]).pairs
}

/// [`max_bipartite_matching`] warm-started from a partial matching.
///
/// `seed` pairs `(left, right)` are adopted greedily in order when still
/// valid (edge exists, both endpoints unmatched); invalid pairs are
/// skipped. Augmenting-path searches then run only for the left nodes the
/// seed left uncovered — Section 4.2's "augment from the previous
/// matching". Greedily adopting any valid partial matching and augmenting
/// the rest still yields a maximum matching, so the cardinality is
/// identical to the cold-start result; only the search work shrinks.
pub fn max_bipartite_matching_seeded(
    n_right: usize,
    adj: &[Vec<usize>],
    seed: &[(usize, usize)],
) -> SeededMatching {
    let n_left = adj.len();
    let mut match_right: Vec<Option<usize>> = vec![None; n_right];
    let mut match_left: Vec<Option<usize>> = vec![None; n_left];
    let mut seeded = 0usize;
    for &(l, r) in seed {
        if l < n_left
            && r < n_right
            && match_left[l].is_none()
            && match_right[r].is_none()
            && adj[l].contains(&r)
        {
            match_left[l] = Some(r);
            match_right[r] = Some(l);
            seeded += 1;
        }
    }
    let mut augmentations = 0usize;
    let mut visited = vec![0u64; n_right];
    let mut stamp = 0u64;
    for l in 0..n_left {
        if match_left[l].is_some() {
            continue;
        }
        stamp += 1;
        augmentations += 1;
        augment(
            l,
            adj,
            &mut visited,
            stamp,
            &mut match_left,
            &mut match_right,
        );
    }
    SeededMatching {
        pairs: match_left,
        seeded,
        augmentations,
    }
}

/// Maximum-weight bipartite matching over an `n x m` weight table;
/// `None` marks a forbidden pair. Unmatched nodes are allowed (weight 0),
/// so negative-weight pairs are never chosen.
///
/// Runs the Hungarian algorithm with potentials in O(s³) where
/// `s = n + m` after padding with zero-weight dummy partners.
pub fn max_weight_matching(weights: &[Vec<Option<i64>>]) -> Matching {
    let n = weights.len();
    let m = weights.first().map_or(0, Vec::len);
    if n == 0 || m == 0 {
        return Matching {
            pairs: vec![None; n],
            total: 0,
        };
    }
    // Square cost matrix for a *minimization* assignment: real pairs cost
    // -w; dummy pairings (unmatched) cost 0; forbidden pairs cost BIG.
    let s = n + m;
    const BIG: i64 = i64::MAX / 4;
    let mut cost = vec![vec![0i64; s]; s];
    for (i, row) in weights.iter().enumerate() {
        assert_eq!(row.len(), m, "weight table must be rectangular");
        for (j, cell) in cost[i].iter_mut().enumerate() {
            *cell = match row.get(j) {
                Some(Some(w)) => -w,
                Some(None) => BIG,
                None => 0, // dummy column: i stays unmatched
            };
        }
    }
    // Dummy rows cost 0 everywhere (columns may stay unmatched).

    let assignment = hungarian_min(&cost);
    let mut pairs = vec![None; n];
    let mut total = 0i64;
    for (i, p) in pairs.iter_mut().enumerate() {
        let j = assignment[i];
        if j < m {
            if let Some(w) = weights[i][j] {
                // Never take a negative pair: leaving both unmatched is
                // always allowed and costs nothing.
                if w >= 0 {
                    *p = Some(j);
                    total += w;
                }
            }
        }
    }
    Matching { pairs, total }
}

/// Classic O(n³) Hungarian algorithm (minimization, square matrix).
/// Returns the assigned column per row.
fn hungarian_min(cost: &[Vec<i64>]) -> Vec<usize> {
    let n = cost.len();
    // 1-indexed potentials per the standard formulation.
    let mut u = vec![0i64; n + 1];
    let mut v = vec![0i64; n + 1];
    let mut p = vec![0usize; n + 1]; // p[j]: row matched to column j
    let mut way = vec![0usize; n + 1];
    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![i64::MAX; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = i64::MAX;
            let mut j1 = 0usize;
            for j in 1..=n {
                if !used[j] {
                    let cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
                    if cur < minv[j] {
                        minv[j] = cur;
                        way[j] = j0;
                    }
                    if minv[j] < delta {
                        delta = minv[j];
                        j1 = j;
                    }
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }
    let mut assignment = vec![0usize; n];
    for j in 1..=n {
        if p[j] != 0 {
            assignment[p[j] - 1] = j - 1;
        }
    }
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cardinality_matching_finds_perfect_matching() {
        // 0-{0,1}, 1-{0}, 2-{1,2}: perfect matching exists.
        let adj = vec![vec![0, 1], vec![0], vec![1, 2]];
        let m = max_bipartite_matching(3, &adj);
        assert_eq!(m, vec![Some(1), Some(0), Some(2)]);
    }

    #[test]
    fn cardinality_matching_augments_through_conflicts() {
        // Both left nodes prefer right 0; augmentation reroutes.
        let adj = vec![vec![0], vec![0, 1]];
        let m = max_bipartite_matching(2, &adj);
        assert_eq!(m.iter().filter(|x| x.is_some()).count(), 2);
    }

    #[test]
    fn cardinality_matching_reports_unmatchable() {
        let adj = vec![vec![0], vec![0]];
        let m = max_bipartite_matching(1, &adj);
        assert_eq!(m.iter().filter(|x| x.is_some()).count(), 1);
    }

    #[test]
    fn deep_chain_does_not_overflow_the_stack() {
        // Left i (i < n) sees rights {i, i+1}; the final left n sees only
        // right 0. Lefts 0..n grab their own index first, so matching
        // left n forces an augmenting path of length n — a guaranteed
        // stack overflow for the recursive formulation at this size.
        let n = 200_000;
        let mut adj: Vec<Vec<usize>> = (0..n).map(|i| vec![i, i + 1]).collect();
        adj.push(vec![0]);
        let m = max_bipartite_matching(n + 1, &adj);
        assert_eq!(m.iter().filter(|x| x.is_some()).count(), n + 1);
        assert_eq!(m[n], Some(0));
    }

    #[test]
    fn seeded_matching_adopts_valid_seed_and_augments_rest() {
        let adj = vec![vec![0, 1], vec![0], vec![1, 2]];
        let cold = max_bipartite_matching(3, &adj);
        // Re-run seeded with the cold result: everything adopts, nothing
        // augments.
        let seed: Vec<(usize, usize)> = cold
            .iter()
            .enumerate()
            .filter_map(|(l, r)| r.map(|r| (l, r)))
            .collect();
        let warm = max_bipartite_matching_seeded(3, &adj, &seed);
        assert_eq!(warm.pairs, cold);
        assert_eq!(warm.seeded, 3);
        assert_eq!(warm.augmentations, 0);
    }

    #[test]
    fn seeded_matching_skips_stale_pairs_and_stays_maximum() {
        let adj = vec![vec![0, 1], vec![0], vec![1, 2]];
        // Out-of-range, non-edge and conflicting pairs are all ignored.
        let warm = max_bipartite_matching_seeded(3, &adj, &[(0, 2), (1, 0), (2, 0), (9, 9)]);
        assert_eq!(warm.seeded, 1, "only (1,0) is a valid fresh pair");
        assert_eq!(warm.augmentations, 2);
        assert_eq!(warm.pairs.iter().filter(|x| x.is_some()).count(), 3);
    }

    #[test]
    fn seeded_with_empty_seed_equals_cold_start() {
        let adj = vec![vec![0], vec![0, 1], vec![1, 2], vec![2]];
        let cold = max_bipartite_matching(3, &adj);
        let warm = max_bipartite_matching_seeded(3, &adj, &[]);
        assert_eq!(warm.pairs, cold);
        assert_eq!(warm.seeded, 0);
        assert_eq!(warm.augmentations, 4);
    }

    #[test]
    fn weighted_matching_prefers_heavier_total() {
        let w = vec![
            vec![Some(7), Some(4), Some(3)],
            vec![Some(6), Some(8), Some(5)],
            vec![Some(9), Some(4), Some(4)],
        ];
        let m = max_weight_matching(&w);
        // 9 + 8 + 3 = 20 beats greedy 7+8+4=19.
        assert_eq!(m.total, 20);
        assert_eq!(m.pairs, vec![Some(2), Some(1), Some(0)]);
    }

    #[test]
    fn weighted_matching_respects_forbidden_pairs() {
        let w = vec![vec![None, Some(3)], vec![Some(2), None]];
        let m = max_weight_matching(&w);
        assert_eq!(m.pairs, vec![Some(1), Some(0)]);
        assert_eq!(m.total, 5);
    }

    #[test]
    fn weighted_matching_leaves_nodes_unmatched_when_all_forbidden() {
        let w = vec![vec![None, None], vec![Some(4), None]];
        let m = max_weight_matching(&w);
        assert_eq!(m.pairs, vec![None, Some(0)]);
        assert_eq!(m.total, 4);
    }

    #[test]
    fn weighted_matching_rectangular_more_rows() {
        let w = vec![vec![Some(5)], vec![Some(9)], vec![Some(1)]];
        let m = max_weight_matching(&w);
        assert_eq!(m.total, 9);
        assert_eq!(m.pairs, vec![None, Some(0), None]);
    }

    #[test]
    fn weighted_matching_rectangular_more_cols() {
        let w = vec![vec![Some(1), Some(2), Some(10)]];
        let m = max_weight_matching(&w);
        assert_eq!(m.pairs, vec![Some(2)]);
        assert_eq!(m.total, 10);
    }

    #[test]
    fn zero_weight_edges_may_still_match() {
        // Zero-weight pairs are allowed (Section 5.2: a zero-weight edge is
        // quite different from no edge at all).
        let w = vec![vec![Some(0)]];
        let m = max_weight_matching(&w);
        assert_eq!(m.total, 0);
        if let Some(j) = m.pairs[0] {
            assert_eq!(j, 0);
        }
    }

    #[test]
    fn negative_pairs_are_never_taken() {
        let w = vec![vec![Some(-5), Some(-1)]];
        let m = max_weight_matching(&w);
        assert_eq!(m.pairs, vec![None]);
        assert_eq!(m.total, 0);
    }

    #[test]
    fn empty_inputs() {
        let m = max_weight_matching(&[]);
        assert!(m.pairs.is_empty());
        assert_eq!(m.total, 0);
        let m = max_bipartite_matching(0, &[]);
        assert!(m.is_empty());
    }

    #[test]
    fn large_instance_beats_greedy() {
        // Deterministic pseudo-random table; checks the matching is a
        // permutation and at least as good as greedy row-by-row.
        let n = 12;
        let mut w = vec![vec![None; n]; n];
        let mut seed = 0x2545F4914F6CDD1Du64;
        for row in w.iter_mut() {
            for cell in row.iter_mut() {
                seed ^= seed << 13;
                seed ^= seed >> 7;
                seed ^= seed << 17;
                if !seed.is_multiple_of(10) {
                    *cell = Some((seed % 100) as i64);
                }
            }
        }
        let m = max_weight_matching(&w);
        let mut seen = std::collections::BTreeSet::new();
        for p in m.pairs.iter().flatten() {
            assert!(seen.insert(*p), "column matched twice");
        }
        let mut greedy_total = 0i64;
        let mut used = vec![false; n];
        for row in &w {
            let best = row
                .iter()
                .enumerate()
                .filter(|(j, c)| !used[*j] && c.is_some())
                .max_by_key(|(_, c)| c.unwrap());
            if let Some((j, c)) = best {
                used[j] = true;
                greedy_total += c.unwrap();
            }
        }
        assert!(m.total >= greedy_total);
    }
}
