//! # mcs-matching
//!
//! Bipartite matching algorithms used by the `multichip-hls` workspace:
//!
//! * [`max_bipartite_matching`] — maximum-cardinality matching via
//!   augmenting paths (Kuhn's algorithm). The dynamic bus-reassignment
//!   step of Section 4.2 *is* an augmenting-path search over the
//!   I/O-operation / communication-slot graph.
//! * [`max_weight_matching`] — maximum-weight bipartite matching via the
//!   O(n³) Hungarian algorithm with potentials, as called for by the
//!   post-scheduling interchip-connection synthesis of Section 5.2.
//!
//! ```
//! use mcs_matching::max_weight_matching;
//!
//! // Two workers, two jobs; the off-diagonal pairing is worth more.
//! let w = vec![
//!     vec![Some(1), Some(5)],
//!     vec![Some(5), Some(1)],
//! ];
//! let m = max_weight_matching(&w);
//! assert_eq!(m.total, 10);
//! assert_eq!(m.pairs, vec![Some(1), Some(0)]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Result of a weighted matching.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Matching {
    /// For each left node, the matched right node (or `None`).
    pub pairs: Vec<Option<usize>>,
    /// Total weight of the matching.
    pub total: i64,
}

/// Maximum-cardinality bipartite matching (Kuhn's augmenting paths).
///
/// `adj[l]` lists the right nodes reachable from left node `l`. Returns the
/// matched right node per left node.
pub fn max_bipartite_matching(n_right: usize, adj: &[Vec<usize>]) -> Vec<Option<usize>> {
    let n_left = adj.len();
    let mut match_right: Vec<Option<usize>> = vec![None; n_right];
    let mut match_left: Vec<Option<usize>> = vec![None; n_left];

    fn try_augment(
        l: usize,
        adj: &[Vec<usize>],
        visited: &mut [bool],
        match_left: &mut [Option<usize>],
        match_right: &mut [Option<usize>],
    ) -> bool {
        for &r in &adj[l] {
            if !visited[r] {
                visited[r] = true;
                let free = match match_right[r] {
                    None => true,
                    Some(l2) => try_augment(l2, adj, visited, match_left, match_right),
                };
                if free {
                    match_right[r] = Some(l);
                    match_left[l] = Some(r);
                    return true;
                }
            }
        }
        false
    }

    for l in 0..n_left {
        let mut visited = vec![false; n_right];
        try_augment(l, adj, &mut visited, &mut match_left, &mut match_right);
    }
    match_left
}

/// Maximum-weight bipartite matching over an `n x m` weight table;
/// `None` marks a forbidden pair. Unmatched nodes are allowed (weight 0),
/// so negative-weight pairs are never chosen.
///
/// Runs the Hungarian algorithm with potentials in O(s³) where
/// `s = n + m` after padding with zero-weight dummy partners.
pub fn max_weight_matching(weights: &[Vec<Option<i64>>]) -> Matching {
    let n = weights.len();
    let m = weights.first().map_or(0, Vec::len);
    if n == 0 || m == 0 {
        return Matching {
            pairs: vec![None; n],
            total: 0,
        };
    }
    // Square cost matrix for a *minimization* assignment: real pairs cost
    // -w; dummy pairings (unmatched) cost 0; forbidden pairs cost BIG.
    let s = n + m;
    const BIG: i64 = i64::MAX / 4;
    let mut cost = vec![vec![0i64; s]; s];
    for (i, row) in weights.iter().enumerate() {
        assert_eq!(row.len(), m, "weight table must be rectangular");
        for (j, cell) in cost[i].iter_mut().enumerate() {
            *cell = match row.get(j) {
                Some(Some(w)) => -w,
                Some(None) => BIG,
                None => 0, // dummy column: i stays unmatched
            };
        }
    }
    // Dummy rows cost 0 everywhere (columns may stay unmatched).

    let assignment = hungarian_min(&cost);
    let mut pairs = vec![None; n];
    let mut total = 0i64;
    for (i, p) in pairs.iter_mut().enumerate() {
        let j = assignment[i];
        if j < m {
            if let Some(w) = weights[i][j] {
                // Never take a negative pair: leaving both unmatched is
                // always allowed and costs nothing.
                if w >= 0 {
                    *p = Some(j);
                    total += w;
                }
            }
        }
    }
    Matching { pairs, total }
}

/// Classic O(n³) Hungarian algorithm (minimization, square matrix).
/// Returns the assigned column per row.
fn hungarian_min(cost: &[Vec<i64>]) -> Vec<usize> {
    let n = cost.len();
    // 1-indexed potentials per the standard formulation.
    let mut u = vec![0i64; n + 1];
    let mut v = vec![0i64; n + 1];
    let mut p = vec![0usize; n + 1]; // p[j]: row matched to column j
    let mut way = vec![0usize; n + 1];
    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![i64::MAX; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = i64::MAX;
            let mut j1 = 0usize;
            for j in 1..=n {
                if !used[j] {
                    let cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
                    if cur < minv[j] {
                        minv[j] = cur;
                        way[j] = j0;
                    }
                    if minv[j] < delta {
                        delta = minv[j];
                        j1 = j;
                    }
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }
    let mut assignment = vec![0usize; n];
    for j in 1..=n {
        if p[j] != 0 {
            assignment[p[j] - 1] = j - 1;
        }
    }
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cardinality_matching_finds_perfect_matching() {
        // 0-{0,1}, 1-{0}, 2-{1,2}: perfect matching exists.
        let adj = vec![vec![0, 1], vec![0], vec![1, 2]];
        let m = max_bipartite_matching(3, &adj);
        assert_eq!(m, vec![Some(1), Some(0), Some(2)]);
    }

    #[test]
    fn cardinality_matching_augments_through_conflicts() {
        // Both left nodes prefer right 0; augmentation reroutes.
        let adj = vec![vec![0], vec![0, 1]];
        let m = max_bipartite_matching(2, &adj);
        assert_eq!(m.iter().filter(|x| x.is_some()).count(), 2);
    }

    #[test]
    fn cardinality_matching_reports_unmatchable() {
        let adj = vec![vec![0], vec![0]];
        let m = max_bipartite_matching(1, &adj);
        assert_eq!(m.iter().filter(|x| x.is_some()).count(), 1);
    }

    #[test]
    fn weighted_matching_prefers_heavier_total() {
        let w = vec![
            vec![Some(7), Some(4), Some(3)],
            vec![Some(6), Some(8), Some(5)],
            vec![Some(9), Some(4), Some(4)],
        ];
        let m = max_weight_matching(&w);
        // 9 + 8 + 3 = 20 beats greedy 7+8+4=19.
        assert_eq!(m.total, 20);
        assert_eq!(m.pairs, vec![Some(2), Some(1), Some(0)]);
    }

    #[test]
    fn weighted_matching_respects_forbidden_pairs() {
        let w = vec![vec![None, Some(3)], vec![Some(2), None]];
        let m = max_weight_matching(&w);
        assert_eq!(m.pairs, vec![Some(1), Some(0)]);
        assert_eq!(m.total, 5);
    }

    #[test]
    fn weighted_matching_leaves_nodes_unmatched_when_all_forbidden() {
        let w = vec![vec![None, None], vec![Some(4), None]];
        let m = max_weight_matching(&w);
        assert_eq!(m.pairs, vec![None, Some(0)]);
        assert_eq!(m.total, 4);
    }

    #[test]
    fn weighted_matching_rectangular_more_rows() {
        let w = vec![vec![Some(5)], vec![Some(9)], vec![Some(1)]];
        let m = max_weight_matching(&w);
        assert_eq!(m.total, 9);
        assert_eq!(m.pairs, vec![None, Some(0), None]);
    }

    #[test]
    fn weighted_matching_rectangular_more_cols() {
        let w = vec![vec![Some(1), Some(2), Some(10)]];
        let m = max_weight_matching(&w);
        assert_eq!(m.pairs, vec![Some(2)]);
        assert_eq!(m.total, 10);
    }

    #[test]
    fn zero_weight_edges_may_still_match() {
        // Zero-weight pairs are allowed (Section 5.2: a zero-weight edge is
        // quite different from no edge at all).
        let w = vec![vec![Some(0)]];
        let m = max_weight_matching(&w);
        assert_eq!(m.total, 0);
        if let Some(j) = m.pairs[0] {
            assert_eq!(j, 0);
        }
    }

    #[test]
    fn negative_pairs_are_never_taken() {
        let w = vec![vec![Some(-5), Some(-1)]];
        let m = max_weight_matching(&w);
        assert_eq!(m.pairs, vec![None]);
        assert_eq!(m.total, 0);
    }

    #[test]
    fn empty_inputs() {
        let m = max_weight_matching(&[]);
        assert!(m.pairs.is_empty());
        assert_eq!(m.total, 0);
        let m = max_bipartite_matching(0, &[]);
        assert!(m.is_empty());
    }

    #[test]
    fn large_instance_beats_greedy() {
        // Deterministic pseudo-random table; checks the matching is a
        // permutation and at least as good as greedy row-by-row.
        let n = 12;
        let mut w = vec![vec![None; n]; n];
        let mut seed = 0x2545F4914F6CDD1Du64;
        for row in w.iter_mut() {
            for cell in row.iter_mut() {
                seed ^= seed << 13;
                seed ^= seed >> 7;
                seed ^= seed << 17;
                if !seed.is_multiple_of(10) {
                    *cell = Some((seed % 100) as i64);
                }
            }
        }
        let m = max_weight_matching(&w);
        let mut seen = std::collections::BTreeSet::new();
        for p in m.pairs.iter().flatten() {
            assert!(seen.insert(*p), "column matched twice");
        }
        let mut greedy_total = 0i64;
        let mut used = vec![false; n];
        for row in &w {
            let best = row
                .iter()
                .enumerate()
                .filter(|(j, c)| !used[*j] && c.is_some())
                .max_by_key(|(_, c)| c.unwrap());
            if let Some((j, c)) = best {
                used[j] = true;
                greedy_total += c.unwrap();
            }
        }
        assert!(m.total >= greedy_total);
    }
}
