//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build container has no network access to a crates registry, so the
//! workspace vendors the subset of criterion's API its benches use:
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`],
//! the [`criterion_group!`]/[`criterion_main!`] macros and [`black_box`].
//! Measurement is a plain wall-clock sampler: after a calibration run it
//! takes `sample_size` samples and reports the median time per iteration
//! on stdout, one line per benchmark:
//!
//! ```text
//! group/name/param        median 1.234 ms  (10 samples x 4 iters)
//! ```
//!
//! There is no statistical analysis, plotting or baseline comparison;
//! numbers are for relative comparison within one run of one machine.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target time spent measuring one benchmark (after calibration).
const TARGET_MEASURE: Duration = Duration::from_millis(400);

/// The top-level harness handle passed to every bench function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Applies command-line configuration. The shim accepts and ignores
    /// the harness arguments cargo-bench passes (`--bench`, filters).
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, mut f: F) {
        run_one(&id.into().render(None), self.sample_size, &mut f);
    }
}

/// A group of benchmarks sharing a name prefix and sampling settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Accepted for API compatibility; the shim keeps its fixed target.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; throughput is not reported.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id` within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().render(None));
        run_one(&label, self.sample_size, &mut f);
        self
    }

    /// Benchmarks `f` under `id`, passing it `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().render(None));
        run_one(&label, self.sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A benchmark identifier: a function name, an optional parameter, or
/// both.
pub struct BenchmarkId {
    name: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: Some(name.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self, _group: Option<&str>) -> String {
        match (&self.name, &self.parameter) {
            (Some(n), Some(p)) => format!("{n}/{p}"),
            (Some(n), None) => n.clone(),
            (None, Some(p)) => p.clone(),
            (None, None) => String::from("bench"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> BenchmarkId {
        BenchmarkId {
            name: Some(name.to_string()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> BenchmarkId {
        BenchmarkId {
            name: Some(name),
            parameter: None,
        }
    }
}

/// Throughput hints; accepted and ignored by the shim.
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The timing handle handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` invocations of `f`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, f: &mut F) {
    // Calibrate: one iteration tells us roughly how expensive a call is.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let once = b.elapsed.max(Duration::from_nanos(1));
    let per_sample = TARGET_MEASURE
        .div_f64(sample_size as f64)
        .max(Duration::from_micros(50));
    let iters = (per_sample.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut samples: Vec<Duration> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed / iters as u32);
    }
    samples.sort();
    let median = samples[samples.len() / 2];
    println!(
        "{label:<48} median {}  ({sample_size} samples x {iters} iters)",
        fmt_duration(median)
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Collects benchmark functions into a single runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Expands to a `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("search", 3).render(None), "search/3");
        assert_eq!(BenchmarkId::from_parameter(7).render(None), "7");
        assert_eq!(BenchmarkId::from("plain").render(None), "plain");
    }

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion { sample_size: 2 };
        let mut g = c.benchmark_group("shim");
        g.sample_size(2)
            .bench_function("noop", |b| b.iter(|| 1 + 1));
        g.finish();
    }
}
