//! Trace exporters: Chrome `trace_event` JSON and newline-delimited
//! JSON, plus a small strict JSON validity checker used by the tests
//! (this workspace builds offline, so there is no serde to lean on).

use crate::{Event, TimedEvent};

/// One JSON scalar an event field can carry.
#[derive(Clone, Copy, Debug)]
enum JsonValue {
    Int(i64),
    UInt(u64),
    Bool(bool),
    Str(&'static str),
}

impl std::fmt::Display for JsonValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JsonValue::Int(v) => write!(f, "{v}"),
            JsonValue::UInt(v) => write!(f, "{v}"),
            JsonValue::Bool(v) => write!(f, "{v}"),
            JsonValue::Str(s) => write!(f, "\"{}\"", escape(s)),
        }
    }
}

/// Escapes a string for inclusion in a JSON string literal. Event names
/// are static identifiers today, but the exporters must never emit
/// malformed JSON even if that changes.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The payload fields of an event, in a stable order, as JSON scalars.
fn fields(event: &Event) -> Vec<(&'static str, JsonValue)> {
    use JsonValue::{Bool, Int, Str, UInt};
    match *event {
        Event::PhaseBegin { phase } | Event::PhaseEnd { phase } => {
            vec![("phase", Str(phase))]
        }
        Event::Counter { name, value } => vec![("name", Str(name)), ("value", Int(value))],
        Event::ScheduleDecision { op, step, verdict } => vec![
            ("op", UInt(op as u64)),
            ("step", Int(step)),
            ("verdict", Str(verdict.name())),
        ],
        Event::PinCheck {
            group,
            pins_used,
            cap,
            verdict,
        } => vec![
            ("group", UInt(group as u64)),
            ("pins_used", UInt(pins_used as u64)),
            ("cap", UInt(cap as u64)),
            ("verdict", Bool(verdict)),
        ],
        Event::GomoryCut {
            round,
            pivot,
            objective,
        } => vec![
            ("round", UInt(round as u64)),
            ("pivot", UInt(pivot as u64)),
            ("objective", Int(objective)),
        ],
        Event::BusReassign {
            op,
            step,
            from_bus,
            to_bus,
            augmenting_path_len,
        } => vec![
            ("op", UInt(op as u64)),
            ("step", Int(step)),
            ("from_bus", UInt(from_bus as u64)),
            ("to_bus", UInt(to_bus as u64)),
            ("augmenting_path_len", UInt(augmenting_path_len as u64)),
        ],
        Event::ProbeResolved {
            var,
            by,
            verdict,
            source,
            trail_depth,
        } => vec![
            ("var", UInt(var as u64)),
            ("by", Int(by)),
            ("verdict", Bool(verdict)),
            ("source", Str(source.name())),
            ("trail_depth", UInt(trail_depth)),
        ],
        Event::SearchNode {
            worker,
            epoch,
            nodes,
            prunes,
            backtracks,
            cache_hits,
        } => vec![
            ("worker", UInt(worker as u64)),
            ("epoch", UInt(epoch as u64)),
            ("nodes", UInt(nodes)),
            ("prunes", UInt(prunes)),
            ("backtracks", UInt(backtracks)),
            ("cache_hits", UInt(cache_hits)),
        ],
        Event::WorkerPanic {
            pool,
            worker,
            epoch,
        } => vec![
            ("pool", Str(pool)),
            ("worker", UInt(worker as u64)),
            ("epoch", UInt(epoch as u64)),
        ],
    }
}

fn args_object(event: &Event) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in fields(event).iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{k}\":{v}"));
    }
    out.push('}');
    out
}

/// Renders a Chrome `trace_event` JSON document (the
/// `{"traceEvents": [...]}` object form) loadable in `chrome://tracing`
/// and Perfetto. Phase events become duration begin/end pairs (`B`/`E`),
/// counters become counter samples (`C`), and decision events become
/// thread-scoped instants (`i`) carrying their payload in `args`.
pub fn chrome_trace(timed: &[TimedEvent]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    for (i, t) in timed.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let ts = t.ts_us;
        match &t.event {
            Event::PhaseBegin { phase } => {
                out.push_str(&format!(
                    "{{\"name\":\"{}\",\"cat\":\"phase\",\"ph\":\"B\",\"ts\":{ts},\"pid\":1,\"tid\":1}}",
                    escape(phase)
                ));
            }
            Event::PhaseEnd { phase } => {
                out.push_str(&format!(
                    "{{\"name\":\"{}\",\"cat\":\"phase\",\"ph\":\"E\",\"ts\":{ts},\"pid\":1,\"tid\":1}}",
                    escape(phase)
                ));
            }
            Event::Counter { name, value } => {
                out.push_str(&format!(
                    "{{\"name\":\"{}\",\"cat\":\"counter\",\"ph\":\"C\",\"ts\":{ts},\"pid\":1,\"tid\":1,\"args\":{{\"value\":{value}}}}}",
                    escape(name)
                ));
            }
            ev => {
                out.push_str(&format!(
                    "{{\"name\":\"{}\",\"cat\":\"decision\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\"pid\":1,\"tid\":1,\"args\":{}}}",
                    ev.kind(),
                    args_object(ev)
                ));
            }
        }
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// Renders newline-delimited JSON: one object per event with `ts_us`,
/// `type`, and the event's payload fields.
pub fn jsonl(timed: &[TimedEvent]) -> String {
    let mut out = String::new();
    for t in timed {
        out.push_str(&format!(
            "{{\"ts_us\":{},\"type\":\"{}\"",
            t.ts_us,
            t.event.kind()
        ));
        for (k, v) in fields(&t.event) {
            out.push_str(&format!(",\"{k}\":{v}"));
        }
        out.push_str("}\n");
    }
    out
}

/// Validates that `text` is one syntactically well-formed JSON value
/// (with nothing but whitespace after it). Strict recursive-descent
/// check — no values are materialized. Returns the byte offset and a
/// message on failure.
pub fn validate_json(text: &str) -> Result<(), String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        None => Err(format!("unexpected end of input at byte {pos}", pos = *pos)),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos),
        Some(b't') => parse_literal(b, pos, b"true"),
        Some(b'f') => parse_literal(b, pos, b"false"),
        Some(b'n') => parse_literal(b, pos, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(format!("unexpected byte {c:?} at {pos}", pos = *pos)),
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        skip_ws(b, pos);
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // opening quote
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            if !b.get(*pos).is_some_and(u8::is_ascii_hexdigit) {
                                return Err(format!("bad \\u escape at byte {pos}", pos = *pos));
                            }
                            *pos += 1;
                        }
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
            }
            c if c < 0x20 => {
                return Err(format!(
                    "unescaped control byte in string at {pos}",
                    pos = *pos
                ))
            }
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn parse_literal(b: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), String> {
    if b.len() >= *pos + lit.len() && &b[*pos..*pos + lit.len()] == lit {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut digits = 0;
    while b.get(*pos).is_some_and(u8::is_ascii_digit) {
        *pos += 1;
        digits += 1;
    }
    if digits == 0 {
        return Err(format!("bad number at byte {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        let mut frac = 0;
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
            frac += 1;
        }
        if frac == 0 {
            return Err(format!("bad fraction at byte {start}"));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        let mut exp = 0;
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
            exp += 1;
        }
        if exp == 0 {
            return Err(format!("bad exponent at byte {start}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PlaceVerdict;

    fn sample() -> Vec<TimedEvent> {
        let events = vec![
            Event::PhaseBegin { phase: "schedule" },
            Event::ScheduleDecision {
                op: 3,
                step: 2,
                verdict: PlaceVerdict::SameCycleConflict,
            },
            Event::PinCheck {
                group: 1,
                pins_used: 14,
                cap: 16,
                verdict: true,
            },
            Event::GomoryCut {
                round: 2,
                pivot: 5,
                objective: -3,
            },
            Event::BusReassign {
                op: 9,
                step: 4,
                from_bus: 0,
                to_bus: 2,
                augmenting_path_len: 1,
            },
            Event::ProbeResolved {
                var: 6,
                by: 1,
                verdict: false,
                source: crate::ProbeSource::Surrogate,
                trail_depth: 0,
            },
            Event::SearchNode {
                worker: 1,
                epoch: 3,
                nodes: 120,
                prunes: 7,
                backtracks: 2,
                cache_hits: 5,
            },
            Event::WorkerPanic {
                pool: "portfolio",
                worker: 2,
                epoch: 3,
            },
            Event::Counter {
                name: "pivots",
                value: 42,
            },
            Event::PhaseEnd { phase: "schedule" },
        ];
        events
            .into_iter()
            .enumerate()
            .map(|(i, event)| TimedEvent {
                ts_us: 10 * i as u64,
                event,
            })
            .collect()
    }

    #[test]
    fn chrome_trace_is_valid_json_with_all_kinds() {
        let trace = chrome_trace(&sample());
        validate_json(&trace).expect("chrome trace parses");
        assert!(trace.starts_with("{\"traceEvents\":["));
        for needle in [
            "\"ph\":\"B\"",
            "\"ph\":\"E\"",
            "\"ph\":\"C\"",
            "\"ph\":\"i\"",
            "ScheduleDecision",
            "PinCheck",
            "GomoryCut",
            "BusReassign",
            "ProbeResolved",
            "\"source\":\"surrogate\"",
            "SearchNode",
            "WorkerPanic",
            "\"pool\":\"portfolio\"",
            "same-cycle-conflict",
        ] {
            assert!(trace.contains(needle), "missing {needle} in {trace}");
        }
    }

    #[test]
    fn jsonl_lines_each_parse() {
        let text = jsonl(&sample());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 10);
        for line in lines {
            validate_json(line).unwrap_or_else(|e| panic!("{e}: {line}"));
        }
        assert!(text.contains("\"type\":\"PinCheck\""));
        assert!(text.contains("\"pins_used\":14"));
    }

    #[test]
    fn empty_trace_is_still_valid() {
        validate_json(&chrome_trace(&[])).expect("empty trace parses");
        assert_eq!(jsonl(&[]), "");
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\":1,}",
            "\"unterminated",
            "01x",
            "1.",
            "1e",
            "{\"a\":1} extra",
            "tru",
            "[1 2]",
        ] {
            assert!(validate_json(bad).is_err(), "accepted {bad:?}");
        }
        for good in [
            "0",
            "-1.5e10",
            "true",
            "null",
            "[]",
            "{}",
            "{\"a\":[1,2,{\"b\":\"\\u0041\"}]}",
            "  {\"x\":false}  ",
        ] {
            validate_json(good).unwrap_or_else(|e| panic!("rejected {good:?}: {e}"));
        }
    }
}
