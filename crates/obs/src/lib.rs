//! # mcs-obs
//!
//! Zero-dependency structured-event layer for the `multichip-hls`
//! pipeline: phase spans, monotonic counters and typed decision events
//! recorded through a thread-safe [`Recorder`].
//!
//! Every heuristic decision the synthesis pipeline makes — postponing an
//! I/O operation, rejecting a pin-allocation probe, pivoting on a Gomory
//! cut, reassigning a transfer to another bus, expanding a portfolio
//! search epoch — can be captured as an [`Event`] and later exported as a
//! Chrome `trace_event` JSON (loadable in `chrome://tracing` / Perfetto)
//! or newline-delimited JSON, or aggregated into a per-phase summary
//! ([`summary::summarize`]).
//!
//! The design center is *zero cost when off*: instrumentation sites go
//! through a [`RecorderHandle`], which caches an `active` flag so that a
//! disabled handle costs one branch per site — no allocation, no dynamic
//! dispatch, no locking. [`Event`] payloads carry only deterministic
//! data (ids, steps, counts); wall-clock timestamps are attached by the
//! recording side ([`TimedEvent`]), so the event *stream* of a
//! deterministic algorithm is itself deterministic and can be compared
//! across thread counts.
//!
//! ```
//! use mcs_obs::{BufferingRecorder, Event, PlaceVerdict, RecorderHandle};
//! use std::sync::Arc;
//!
//! let buf = Arc::new(BufferingRecorder::new());
//! let rec = RecorderHandle::new(buf.clone());
//! {
//!     let _phase = rec.phase("schedule");
//!     rec.record(Event::ScheduleDecision {
//!         op: 7,
//!         step: 3,
//!         verdict: PlaceVerdict::Placed,
//!     });
//! }
//! assert_eq!(buf.events().len(), 3); // begin, decision, end
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod export;
pub mod summary;

use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Why an I/O placement attempt succeeded or failed — the accurate
/// split of the bus allocator's rejection modes (previously conflated
/// into a single boolean).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum PlaceVerdict {
    /// The operation was placed (committed a fresh communication slot).
    Placed,
    /// The operation rode an already-occupied slot of the same value in
    /// the same step (Section 4.4.2's free ride).
    SharedSlot,
    /// No bus is geometrically capable of carrying the transfer (ports,
    /// widths), so no candidate existed at all.
    NoCapableBus,
    /// Every capable bus's slot in the step's group is occupied by a
    /// conflicting transfer — a same-cycle transfer violation.
    SameCycleConflict,
    /// A free slot exists but taking it would strand a pending transfer
    /// (the bipartite matching of Figure 4.5 has no perfect solution).
    PendingInfeasible,
    /// The pin-allocation ILP proves no completion exists if the
    /// operation takes pins in this step's group (Chapter 3 checker).
    PinInfeasible,
    /// Rejected by a policy that reports no finer reason.
    Rejected,
}

impl PlaceVerdict {
    /// Whether the attempt committed a placement.
    pub fn placed(self) -> bool {
        matches!(self, PlaceVerdict::Placed | PlaceVerdict::SharedSlot)
    }

    /// Stable lowercase name, used by the exporters.
    pub fn name(self) -> &'static str {
        match self {
            PlaceVerdict::Placed => "placed",
            PlaceVerdict::SharedSlot => "shared-slot",
            PlaceVerdict::NoCapableBus => "no-capable-bus",
            PlaceVerdict::SameCycleConflict => "same-cycle-conflict",
            PlaceVerdict::PendingInfeasible => "pending-infeasible",
            PlaceVerdict::PinInfeasible => "pin-infeasible",
            PlaceVerdict::Rejected => "rejected",
        }
    }
}

impl std::fmt::Display for PlaceVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Which layer of the probe engine decided a pin-feasibility probe —
/// cheapest first: the memo cache, the surrogate capacity bound, or an
/// actual tableau solve.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum ProbeSource {
    /// Answered from the probe memo cache (same commit epoch).
    Memo,
    /// Rejected by the surrogate group-capacity bound without pivoting.
    Surrogate,
    /// Decided by a checkpoint → solve → rollback of the ILP tableau.
    Solver,
}

impl ProbeSource {
    /// Stable lowercase name, used by the exporters.
    pub fn name(self) -> &'static str {
        match self {
            ProbeSource::Memo => "memo",
            ProbeSource::Surrogate => "surrogate",
            ProbeSource::Solver => "solver",
        }
    }
}

impl std::fmt::Display for ProbeSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// One structured pipeline event. Payloads are plain deterministic data;
/// identifiers are the raw `u32` indices of the workspace's id newtypes
/// so this crate depends on nothing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// A named pipeline phase starts (`schedule`, `connect`, ...).
    PhaseBegin {
        /// Phase name.
        phase: &'static str,
    },
    /// The innermost open phase of this name ends.
    PhaseEnd {
        /// Phase name.
        phase: &'static str,
    },
    /// A monotonic counter sample.
    Counter {
        /// Counter name.
        name: &'static str,
        /// Sampled value.
        value: i64,
    },
    /// The list scheduler consulted its I/O policy for an operation.
    ScheduleDecision {
        /// Raw id of the I/O operation.
        op: u32,
        /// Control step attempted.
        step: i64,
        /// Outcome, with the accurate failure reason.
        verdict: PlaceVerdict,
    },
    /// A pin-allocation pressure probe: how many pin-bits group `group`
    /// carries against its capacity, and whether the check passed.
    PinCheck {
        /// Control-step group `step mod L`.
        group: u32,
        /// Pin-bits used (committed load of the group).
        pins_used: u32,
        /// Capacity the load is checked against.
        cap: u32,
        /// Whether the check passed.
        verdict: bool,
    },
    /// One dual all-integer Gomory pivot inside a feasibility solve.
    GomoryCut {
        /// Pivot index within the enclosing solve call.
        round: u32,
        /// Nonbasic column pivoted on.
        pivot: u32,
        /// Constant-column value of the violated row (the infeasibility
        /// being cut; more negative = further from feasible).
        objective: i64,
    },
    /// A transfer moved to a different bus than initially assigned
    /// (Section 4.2 dynamic reassignment / preemption chain).
    BusReassign {
        /// Raw id of the transferred I/O operation.
        op: u32,
        /// Control step of the transfer.
        step: i64,
        /// Initially assigned bus.
        from_bus: u32,
        /// Bus finally carrying the transfer.
        to_bus: u32,
        /// Length of the augmenting/preemption chain that freed the slot
        /// (0 for a direct move onto a free slot).
        augmenting_path_len: u32,
    },
    /// A pin-feasibility probe was resolved by the copy-free probe
    /// engine, with which layer decided it and how deep the tableau
    /// rollback ran.
    ProbeResolved {
        /// Raw solver-variable index probed.
        var: u32,
        /// Increment probed (`x_var >= committed + by`).
        by: i64,
        /// Whether the probe found the system still feasible.
        verdict: bool,
        /// Layer that produced the verdict.
        source: ProbeSource,
        /// Undo-trail entries rolled back to restore the tableau
        /// (0 for memo/surrogate answers).
        trail_depth: u64,
    },
    /// One portfolio worker's expansion totals for one epoch (recorded
    /// at the barrier, in portfolio-index order — deterministic across
    /// thread counts).
    SearchNode {
        /// Portfolio index of the worker.
        worker: u32,
        /// Epoch number (1-based).
        epoch: u32,
        /// Nodes expanded this epoch.
        nodes: u64,
        /// Dead-end prunes this epoch.
        prunes: u64,
        /// Backtracks this epoch.
        backtracks: u64,
        /// Shared-cache prunes this epoch.
        cache_hits: u64,
    },
    /// A parallel worker panicked and was quarantined; the run continued
    /// degraded, without that worker's contribution. Recorded at the
    /// synchronization barrier in worker order, so the stream stays
    /// deterministic when the panic itself is deterministic.
    WorkerPanic {
        /// Which worker pool ("portfolio", "explore", ...).
        pool: &'static str,
        /// Index of the panicked worker within the pool.
        worker: u32,
        /// Epoch / wave at whose barrier the panic surfaced (1-based).
        epoch: u32,
    },
}

impl Event {
    /// Stable name of the event type, used by the exporters and the
    /// per-phase summary.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::PhaseBegin { .. } => "PhaseBegin",
            Event::PhaseEnd { .. } => "PhaseEnd",
            Event::Counter { .. } => "Counter",
            Event::ScheduleDecision { .. } => "ScheduleDecision",
            Event::PinCheck { .. } => "PinCheck",
            Event::GomoryCut { .. } => "GomoryCut",
            Event::BusReassign { .. } => "BusReassign",
            Event::ProbeResolved { .. } => "ProbeResolved",
            Event::SearchNode { .. } => "SearchNode",
            Event::WorkerPanic { .. } => "WorkerPanic",
        }
    }
}

/// An [`Event`] with the recording wall-clock timestamp, in microseconds
/// since the recorder was created. Timing lives here — outside the
/// payload — so event streams stay comparable across runs.
#[derive(Clone, Debug)]
pub struct TimedEvent {
    /// Microseconds since the recorder's epoch.
    pub ts_us: u64,
    /// The deterministic payload.
    pub event: Event,
}

/// A thread-safe sink for pipeline events.
pub trait Recorder: Send + Sync {
    /// Consumes one event. Implementations must be cheap and must not
    /// panic: instrumentation sites sit on hot paths.
    fn record(&self, event: Event);
}

/// A recorder that drops everything (the disabled default).
#[derive(Clone, Copy, Debug, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn record(&self, _event: Event) {}
}

/// Soft cap on buffered events before further ones are counted but
/// dropped — a runaway-instrumentation backstop, surfaced loudly via
/// [`BufferingRecorder::dropped`] rather than silently truncated.
pub const DEFAULT_EVENT_CAP: usize = 1 << 20;

struct Buffer {
    events: Vec<TimedEvent>,
    dropped: u64,
}

/// A recorder buffering timestamped events in memory for later export
/// or summarization.
pub struct BufferingRecorder {
    epoch: Instant,
    cap: usize,
    buf: Mutex<Buffer>,
}

impl Default for BufferingRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl BufferingRecorder {
    /// A recorder with the default event cap.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_EVENT_CAP)
    }

    /// A recorder keeping at most `cap` events; further events increment
    /// the dropped counter instead.
    pub fn with_capacity(cap: usize) -> Self {
        BufferingRecorder {
            epoch: Instant::now(),
            cap,
            buf: Mutex::new(Buffer {
                events: Vec::new(),
                dropped: 0,
            }),
        }
    }

    /// Snapshot of the timestamped events recorded so far.
    pub fn timed_events(&self) -> Vec<TimedEvent> {
        self.buf.lock().expect("obs buffer lock").events.clone()
    }

    /// Snapshot of the deterministic payloads only (no timestamps) —
    /// the stream to compare across runs and thread counts.
    pub fn events(&self) -> Vec<Event> {
        self.buf
            .lock()
            .expect("obs buffer lock")
            .events
            .iter()
            .map(|t| t.event.clone())
            .collect()
    }

    /// How many events were dropped at the cap.
    pub fn dropped(&self) -> u64 {
        self.buf.lock().expect("obs buffer lock").dropped
    }
}

impl Recorder for BufferingRecorder {
    fn record(&self, event: Event) {
        let ts_us = self.epoch.elapsed().as_micros() as u64;
        let mut buf = self.buf.lock().expect("obs buffer lock");
        if buf.events.len() >= self.cap {
            buf.dropped += 1;
            return;
        }
        buf.events.push(TimedEvent { ts_us, event });
    }
}

/// A cheap, clonable handle to a recorder, embeddable in configuration
/// structs. The default handle is inactive: `record` is a single
/// predicted branch, so instrumented hot paths cost nothing when tracing
/// is off.
#[derive(Clone)]
pub struct RecorderHandle {
    rec: Arc<dyn Recorder>,
    active: bool,
}

impl Default for RecorderHandle {
    fn default() -> Self {
        RecorderHandle {
            rec: Arc::new(NullRecorder),
            active: false,
        }
    }
}

impl std::fmt::Debug for RecorderHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "RecorderHandle({})",
            if self.active { "active" } else { "off" }
        )
    }
}

impl RecorderHandle {
    /// An active handle over a concrete recorder.
    pub fn new(rec: Arc<dyn Recorder>) -> Self {
        RecorderHandle { rec, active: true }
    }

    /// Whether events recorded through this handle go anywhere. Sites
    /// with non-trivial payload construction should gate on this.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.active
    }

    /// Records one event (no-op on an inactive handle).
    #[inline]
    pub fn record(&self, event: Event) {
        if self.active {
            self.rec.record(event);
        }
    }

    /// Records a counter sample.
    #[inline]
    pub fn counter(&self, name: &'static str, value: i64) {
        if self.active {
            self.rec.record(Event::Counter { name, value });
        }
    }

    /// Opens a phase span; the returned guard closes it on drop.
    pub fn phase(&self, phase: &'static str) -> PhaseGuard<'_> {
        self.record(Event::PhaseBegin { phase });
        PhaseGuard {
            handle: self,
            phase,
        }
    }
}

/// RAII guard recording `PhaseEnd` when dropped.
pub struct PhaseGuard<'a> {
    handle: &'a RecorderHandle,
    phase: &'static str,
}

impl Drop for PhaseGuard<'_> {
    fn drop(&mut self) {
        self.handle.record(Event::PhaseEnd { phase: self.phase });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_handle_is_inactive_and_records_nothing() {
        let rec = RecorderHandle::default();
        assert!(!rec.enabled());
        rec.record(Event::Counter {
            name: "x",
            value: 1,
        });
        let _g = rec.phase("p");
        // Nothing observable; the point is that none of this panics or
        // allocates a buffer.
    }

    #[test]
    fn buffering_recorder_keeps_order_and_timestamps() {
        let buf = Arc::new(BufferingRecorder::new());
        let rec = RecorderHandle::new(buf.clone());
        {
            let _g = rec.phase("schedule");
            rec.record(Event::ScheduleDecision {
                op: 3,
                step: 5,
                verdict: PlaceVerdict::SameCycleConflict,
            });
        }
        let events = buf.events();
        assert_eq!(
            events,
            vec![
                Event::PhaseBegin { phase: "schedule" },
                Event::ScheduleDecision {
                    op: 3,
                    step: 5,
                    verdict: PlaceVerdict::SameCycleConflict,
                },
                Event::PhaseEnd { phase: "schedule" },
            ]
        );
        let timed = buf.timed_events();
        assert!(timed.windows(2).all(|w| w[0].ts_us <= w[1].ts_us));
        assert_eq!(buf.dropped(), 0);
    }

    #[test]
    fn cap_drops_loudly() {
        let buf = Arc::new(BufferingRecorder::with_capacity(2));
        let rec = RecorderHandle::new(buf.clone());
        for v in 0..5 {
            rec.counter("c", v);
        }
        assert_eq!(buf.events().len(), 2);
        assert_eq!(buf.dropped(), 3);
    }

    #[test]
    fn verdict_names_are_stable() {
        assert!(PlaceVerdict::Placed.placed());
        assert!(PlaceVerdict::SharedSlot.placed());
        assert!(!PlaceVerdict::SameCycleConflict.placed());
        assert_eq!(PlaceVerdict::NoCapableBus.name(), "no-capable-bus");
        assert_eq!(PlaceVerdict::PinInfeasible.to_string(), "pin-infeasible");
    }

    #[test]
    fn recorder_is_shareable_across_threads() {
        let buf = Arc::new(BufferingRecorder::new());
        let rec = RecorderHandle::new(buf.clone());
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let rec = rec.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        rec.counter("t", t as i64);
                    }
                });
            }
        });
        assert_eq!(buf.events().len(), 400);
    }
}
