//! Aggregation of a recorded event stream into a per-phase synthesis
//! summary: wall time and event counts per phase, peak pin pressure per
//! control-step group, and bus reassignments per step — the numbers a
//! designer asks for before ever opening the full trace.

use crate::{Event, TimedEvent};
use std::collections::BTreeMap;

/// Aggregates for one named phase (merged across repeated spans of the
/// same name, e.g. per-attempt scheduling passes).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PhaseSummary {
    /// Phase name.
    pub phase: &'static str,
    /// Total wall time across all spans of this phase, microseconds.
    pub wall_us: u64,
    /// Number of spans merged into this row.
    pub spans: u64,
    /// Events attributed to this phase (innermost enclosing span wins),
    /// keyed by event kind.
    pub events: BTreeMap<&'static str, u64>,
}

impl PhaseSummary {
    /// Total events attributed to this phase.
    pub fn event_total(&self) -> u64 {
        self.events.values().sum()
    }
}

/// Whole-trace aggregation produced by [`summarize`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Phases in order of first appearance.
    pub phases: Vec<PhaseSummary>,
    /// All recorded events, including ones outside any phase.
    pub total_events: u64,
    /// Peak `pins_used` observed per control-step group (from
    /// [`Event::PinCheck`]), with the capacity it was checked against.
    pub peak_pin_pressure: BTreeMap<u32, (u32, u32)>,
    /// Bus reassignments per control step (from [`Event::BusReassign`]).
    pub reassigns_by_step: BTreeMap<i64, u64>,
    /// Total bus reassignments.
    pub reassignments: u64,
    /// Longest augmenting/preemption chain seen in a reassignment.
    pub max_augmenting_path: u32,
    /// Total Gomory pivots across all feasibility solves.
    pub gomory_pivots: u64,
    /// Pin-feasibility probes by resolution layer, keyed by
    /// [`crate::ProbeSource::name`] (from [`Event::ProbeResolved`]).
    pub probes_by_source: BTreeMap<&'static str, u64>,
    /// Deepest tableau rollback any probe performed.
    pub max_rollback_depth: u64,
    /// Worker panics quarantined across all pools (from
    /// [`Event::WorkerPanic`]); nonzero means the run's result is
    /// degraded — some portion of the search space went unexplored.
    pub worker_panics: u64,
    /// Final value of each named counter (last sample wins).
    pub counters: BTreeMap<&'static str, i64>,
}

impl TraceSummary {
    /// The summary row for `phase`, if that phase appeared.
    pub fn phase(&self, phase: &str) -> Option<&PhaseSummary> {
        self.phases.iter().find(|p| p.phase == phase)
    }
}

/// Folds a timestamped event stream into a [`TraceSummary`]. Events are
/// attributed to the innermost open phase at the point they occur; an
/// unclosed phase (e.g. a flow aborted by an error) is closed at the
/// timestamp of the last event in the stream.
pub fn summarize(timed: &[TimedEvent]) -> TraceSummary {
    let mut out = TraceSummary::default();
    // Stack of (phase name, begin timestamp, index into out.phases).
    let mut open: Vec<(&'static str, u64, usize)> = Vec::new();
    let last_ts = timed.last().map_or(0, |t| t.ts_us);

    let row = |out: &mut TraceSummary, phase: &'static str| -> usize {
        if let Some(i) = out.phases.iter().position(|p| p.phase == phase) {
            i
        } else {
            out.phases.push(PhaseSummary {
                phase,
                ..PhaseSummary::default()
            });
            out.phases.len() - 1
        }
    };

    for t in timed {
        out.total_events += 1;
        match &t.event {
            Event::PhaseBegin { phase } => {
                let i = row(&mut out, phase);
                out.phases[i].spans += 1;
                open.push((phase, t.ts_us, i));
            }
            Event::PhaseEnd { phase } => {
                // Close the innermost span of this name; tolerate
                // mismatched ends rather than panicking in a reporter.
                if let Some(pos) = open.iter().rposition(|(p, _, _)| p == phase) {
                    let (_, begin, i) = open.remove(pos);
                    out.phases[i].wall_us += t.ts_us.saturating_sub(begin);
                }
            }
            ev => {
                if let Some(&(_, _, i)) = open.last() {
                    *out.phases[i].events.entry(ev.kind()).or_insert(0) += 1;
                }
                match *ev {
                    Event::PinCheck {
                        group,
                        pins_used,
                        cap,
                        ..
                    } => {
                        let entry = out.peak_pin_pressure.entry(group).or_insert((0, cap));
                        if pins_used >= entry.0 {
                            *entry = (pins_used, cap);
                        }
                    }
                    Event::BusReassign {
                        step,
                        augmenting_path_len,
                        ..
                    } => {
                        *out.reassigns_by_step.entry(step).or_insert(0) += 1;
                        out.reassignments += 1;
                        out.max_augmenting_path = out.max_augmenting_path.max(augmenting_path_len);
                    }
                    Event::GomoryCut { .. } => out.gomory_pivots += 1,
                    Event::ProbeResolved {
                        source,
                        trail_depth,
                        ..
                    } => {
                        *out.probes_by_source.entry(source.name()).or_insert(0) += 1;
                        out.max_rollback_depth = out.max_rollback_depth.max(trail_depth);
                    }
                    Event::WorkerPanic { .. } => out.worker_panics += 1,
                    Event::Counter { name, value } => {
                        out.counters.insert(name, value);
                    }
                    _ => {}
                }
            }
        }
    }

    // Close anything left open (aborted flows) at the last timestamp.
    while let Some((_, begin, i)) = open.pop() {
        out.phases[i].wall_us += last_ts.saturating_sub(begin);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PlaceVerdict;

    fn at(ts_us: u64, event: Event) -> TimedEvent {
        TimedEvent { ts_us, event }
    }

    #[test]
    fn attributes_events_to_innermost_phase_and_sums_wall() {
        let stream = vec![
            at(0, Event::PhaseBegin { phase: "connect" }),
            at(
                5,
                Event::SearchNode {
                    worker: 0,
                    epoch: 1,
                    nodes: 10,
                    prunes: 0,
                    backtracks: 0,
                    cache_hits: 0,
                },
            ),
            at(10, Event::PhaseBegin { phase: "schedule" }),
            at(
                12,
                Event::ScheduleDecision {
                    op: 1,
                    step: 0,
                    verdict: PlaceVerdict::Placed,
                },
            ),
            at(
                14,
                Event::GomoryCut {
                    round: 0,
                    pivot: 1,
                    objective: -2,
                },
            ),
            at(20, Event::PhaseEnd { phase: "schedule" }),
            at(30, Event::PhaseEnd { phase: "connect" }),
            // Second span of an existing phase merges into the same row.
            at(40, Event::PhaseBegin { phase: "schedule" }),
            at(45, Event::PhaseEnd { phase: "schedule" }),
        ];
        let s = summarize(&stream);
        assert_eq!(s.total_events, 9);
        let connect = s.phase("connect").expect("connect row");
        assert_eq!(connect.wall_us, 30);
        assert_eq!(connect.spans, 1);
        assert_eq!(connect.events.get("SearchNode"), Some(&1));
        assert_eq!(connect.events.get("ScheduleDecision"), None);
        let sched = s.phase("schedule").expect("schedule row");
        assert_eq!(sched.wall_us, 10 + 5);
        assert_eq!(sched.spans, 2);
        assert_eq!(sched.event_total(), 2);
        assert_eq!(s.gomory_pivots, 1);
    }

    #[test]
    fn tracks_pin_pressure_reassigns_and_counters() {
        let stream = vec![
            at(
                0,
                Event::PinCheck {
                    group: 0,
                    pins_used: 10,
                    cap: 16,
                    verdict: true,
                },
            ),
            at(
                1,
                Event::PinCheck {
                    group: 0,
                    pins_used: 14,
                    cap: 16,
                    verdict: true,
                },
            ),
            at(
                2,
                Event::PinCheck {
                    group: 1,
                    pins_used: 4,
                    cap: 8,
                    verdict: false,
                },
            ),
            at(
                3,
                Event::BusReassign {
                    op: 7,
                    step: 2,
                    from_bus: 0,
                    to_bus: 1,
                    augmenting_path_len: 3,
                },
            ),
            at(
                4,
                Event::BusReassign {
                    op: 8,
                    step: 2,
                    from_bus: 1,
                    to_bus: 0,
                    augmenting_path_len: 0,
                },
            ),
            at(
                5,
                Event::Counter {
                    name: "pivots",
                    value: 3,
                },
            ),
            at(
                6,
                Event::Counter {
                    name: "pivots",
                    value: 9,
                },
            ),
        ];
        let s = summarize(&stream);
        assert_eq!(s.peak_pin_pressure.get(&0), Some(&(14, 16)));
        assert_eq!(s.peak_pin_pressure.get(&1), Some(&(4, 8)));
        assert_eq!(s.reassigns_by_step.get(&2), Some(&2));
        assert_eq!(s.reassignments, 2);
        assert_eq!(s.max_augmenting_path, 3);
        assert_eq!(s.counters.get("pivots"), Some(&9));
        assert!(s.phases.is_empty());
    }

    #[test]
    fn aggregates_probe_resolutions_by_source() {
        use crate::ProbeSource;
        let stream = vec![
            at(
                0,
                Event::ProbeResolved {
                    var: 1,
                    by: 1,
                    verdict: true,
                    source: ProbeSource::Solver,
                    trail_depth: 7,
                },
            ),
            at(
                1,
                Event::ProbeResolved {
                    var: 1,
                    by: 1,
                    verdict: true,
                    source: ProbeSource::Memo,
                    trail_depth: 0,
                },
            ),
            at(
                2,
                Event::ProbeResolved {
                    var: 2,
                    by: 1,
                    verdict: false,
                    source: ProbeSource::Surrogate,
                    trail_depth: 0,
                },
            ),
            at(
                3,
                Event::ProbeResolved {
                    var: 3,
                    by: 1,
                    verdict: false,
                    source: ProbeSource::Solver,
                    trail_depth: 31,
                },
            ),
        ];
        let s = summarize(&stream);
        assert_eq!(s.probes_by_source.get("solver"), Some(&2));
        assert_eq!(s.probes_by_source.get("memo"), Some(&1));
        assert_eq!(s.probes_by_source.get("surrogate"), Some(&1));
        assert_eq!(s.max_rollback_depth, 31);
    }

    #[test]
    fn counts_worker_panics() {
        let stream = vec![
            at(
                0,
                Event::WorkerPanic {
                    pool: "portfolio",
                    worker: 1,
                    epoch: 2,
                },
            ),
            at(
                1,
                Event::WorkerPanic {
                    pool: "explore",
                    worker: 0,
                    epoch: 1,
                },
            ),
        ];
        let s = summarize(&stream);
        assert_eq!(s.worker_panics, 2);
    }

    #[test]
    fn unclosed_phase_is_closed_at_last_event() {
        let stream = vec![
            at(0, Event::PhaseBegin { phase: "connect" }),
            at(
                25,
                Event::Counter {
                    name: "nodes",
                    value: 1,
                },
            ),
        ];
        let s = summarize(&stream);
        assert_eq!(s.phase("connect").expect("row").wall_us, 25);
    }
}
