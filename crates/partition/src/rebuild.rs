//! Rebuilding a partitioned CDFG from a flat graph and an assignment.
//!
//! The inverse of [`crate::flat`]: place every operation on its assigned
//! chip and regenerate exactly the transfers the assignment demands — one
//! per `(origin, consuming chip)` pair, fanning a value out once per
//! destination, with primary inputs entering through the environment.
//! The result is a valid [`Cdfg`] ready for any of the synthesis flows.

use std::collections::BTreeMap;

use mcs_cdfg::{Cdfg, CdfgBuilder, Edge, GraphError, Library, OpId, PartitionId, ValueId};

use crate::flat::{FlatGraph, Origin};

/// Specification of one chip to build.
#[derive(Clone, Debug)]
pub struct ChipSpec {
    /// Display name.
    pub name: String,
    /// Pin budget.
    pub pins: u32,
    /// Functional units per class (empty = unconstrained).
    pub resources: Vec<(mcs_cdfg::OperatorClass, u32)>,
}

/// Rebuilds a partitioned design.
///
/// `chips[i]` describes the chip that `PartitionId::new(i + 1)` will be;
/// every entry of `assign` must reference one of them. Transfers are
/// regenerated: values consumed where they are produced cost nothing,
/// values consumed remotely get one transfer per destination chip, and
/// recursion degrees ride the consuming edges.
///
/// # Errors
///
/// Propagates [`GraphError`] from graph validation.
///
/// # Panics
///
/// Panics if `assign` references a chip outside `chips` or has the wrong
/// length.
pub fn rebuild(
    flat: &FlatGraph,
    assign: &[PartitionId],
    chips: &[ChipSpec],
    library: Library,
) -> Result<Cdfg, GraphError> {
    assert_eq!(assign.len(), flat.ops.len(), "one chip per operation");
    let mut b = CdfgBuilder::new(library);
    let mut pid: Vec<PartitionId> = Vec::new();
    for spec in chips {
        let p = b.partition(&spec.name, spec.pins);
        for (class, n) in &spec.resources {
            b.resource(p, class.clone(), *n);
        }
        pid.push(p);
    }
    for &a in assign {
        assert!(pid.contains(&a), "assignment references unknown chip {a}");
    }

    // Primary inputs: one environment value each, transferred into every
    // chip that consumes it.
    let ext: Vec<ValueId> = flat
        .inputs
        .iter()
        .map(|i| b.external_value(&i.name, i.bits))
        .collect();

    // Ops first (operand edges come after, so placement order is free).
    let ops: Vec<(OpId, ValueId)> = flat
        .ops
        .iter()
        .enumerate()
        .map(|(k, op)| b.func(&op.name, op.class.clone(), assign[k], &[], op.bits))
        .collect();

    // One transfer per (origin, destination chip); remember the local copy.
    let mut local: BTreeMap<(Origin, PartitionId), ValueId> = BTreeMap::new();
    for (k, op) in flat.ops.iter().enumerate() {
        let home = assign[k];
        for &(origin, _) in &op.operands {
            if local.contains_key(&(origin, home)) {
                continue;
            }
            let v = match origin {
                Origin::Op(src) if assign[src] == home => ops[src].1,
                Origin::Op(src) => {
                    let (_, copy) = b.io(
                        &format!("t_{}_{}", flat.ops[src].name, home),
                        ops[src].1,
                        home,
                    );
                    copy
                }
                Origin::Input(i) => {
                    let (_, copy) = b.io(
                        &format!("in_{}_{}", flat.inputs[i].name, home),
                        ext[i],
                        home,
                    );
                    copy
                }
            };
            local.insert((origin, home), v);
        }
    }

    // Operand edges, in flat order, degrees preserved.
    for (k, op) in flat.ops.iter().enumerate() {
        let home = assign[k];
        for &(origin, degree) in &op.operands {
            let value = local[&(origin, home)];
            // The producer of the local copy: the origin op itself when
            // home-local, else the transfer that made the copy.
            let from = match origin {
                Origin::Op(src) if assign[src] == home => ops[src].0,
                _ => producer_of(&b, value),
            };
            b.add_edge(Edge {
                from,
                to: ops[k].0,
                value,
                degree,
            });
        }
    }

    // Primary outputs leave from the origin's chip.
    for out in &flat.outputs {
        match out.origin {
            Origin::Op(src) if out.degree > 0 => {
                // Degrees ride the transfer's source edge, so build the
                // transfer unbound first.
                let (io, _) = b.io_pending(
                    &out.name,
                    flat.ops[src].bits,
                    assign[src],
                    PartitionId::ENVIRONMENT,
                );
                b.bind_io_source(io, ops[src].1, out.degree);
            }
            Origin::Op(src) => {
                b.output(&out.name, ops[src].1);
            }
            Origin::Input(i) => {
                b.output(&out.name, ext[i]);
            }
        }
    }

    b.finish()
}

/// The op that produces `value` among those already in the builder — used
/// for the transfer copies `rebuild` just created.
fn producer_of(b: &CdfgBuilder, value: ValueId) -> OpId {
    b.producer_of(value)
        .expect("transfer copies always have a producer")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::FlatGraph;
    use crate::kl::{refine, spread, Capacities};
    use mcs_cdfg::designs::ar_filter;
    use mcs_cdfg::OperatorClass;

    fn specs(n: usize, pins: u32) -> Vec<ChipSpec> {
        (1..=n)
            .map(|i| ChipSpec {
                name: format!("P{i}"),
                pins,
                resources: vec![(OperatorClass::Add, 8), (OperatorClass::Mul, 8)],
            })
            .collect()
    }

    #[test]
    fn identity_rebuild_preserves_op_counts() {
        let d = ar_filter::simple();
        let flat = FlatGraph::from_cdfg(d.cdfg()).unwrap();
        let g = rebuild(
            &flat,
            &flat.original_assignment(),
            &specs(4, 512),
            d.cdfg().library().clone(),
        )
        .unwrap();
        assert_eq!(g.func_ops().count(), d.cdfg().func_ops().count());
        // Same chips talk to the same chips: cut is unchanged, so the
        // transfer count matches the distinct (origin, dest) pairs.
        let reflat = FlatGraph::from_cdfg(&g).unwrap();
        assert_eq!(
            reflat.cut_bits(&reflat.original_assignment()),
            flat.cut_bits(&flat.original_assignment())
        );
    }

    #[test]
    fn rebuild_after_refinement_validates_and_flattens_back() {
        let d = ar_filter::simple();
        let flat = FlatGraph::from_cdfg(d.cdfg()).unwrap();
        let chips: Vec<PartitionId> = (1..=4).map(PartitionId::new).collect();
        let cap = flat.ops.len().div_ceil(4) + 1;
        let r = refine(
            &flat,
            &chips,
            &spread(&flat, &chips),
            &Capacities::balanced(cap),
        );
        let g = rebuild(&flat, &r.assign, &specs(4, 512), d.cdfg().library().clone()).unwrap();
        let reflat = FlatGraph::from_cdfg(&g).unwrap();
        assert_eq!(
            reflat.cut_bits(&reflat.original_assignment()),
            r.final_cut,
            "rebuild must realize exactly the refined cut"
        );
    }

    #[test]
    fn rebuilt_designs_compute_the_same_outputs() {
        // The strongest guarantee: flatten -> (re)assign -> rebuild leaves
        // the computed function unchanged — same stimulus, same words on
        // every primary output of every instance (matched by position;
        // operation ids shift).
        use mcs_sim::{reference_run, Semantics, Stimulus};

        let d = ar_filter::simple();
        let flat = FlatGraph::from_cdfg(d.cdfg()).unwrap();
        let chips: Vec<PartitionId> = (1..=4).map(PartitionId::new).collect();
        let cap = flat.ops.len().div_ceil(4) + 1;
        let r = refine(
            &flat,
            &chips,
            &spread(&flat, &chips),
            &Capacities::balanced(cap),
        );
        let g = rebuild(&flat, &r.assign, &specs(4, 512), d.cdfg().library().clone()).unwrap();

        let sem = Semantics::new();
        let a = reference_run(d.cdfg(), &sem, &Stimulus::random(d.cdfg(), 4, 99)).unwrap();
        let b = reference_run(&g, &sem, &Stimulus::random(&g, 4, 99)).unwrap();
        let words = |outs: &mcs_sim::Outputs| -> Vec<u64> { outs.values().copied().collect() };
        assert_eq!(a.len(), b.len());
        assert_eq!(words(&a), words(&b), "repartitioning changed the function");
    }

    #[test]
    fn recursion_degrees_survive_the_round_trip() {
        let d = ar_filter::simple();
        let flat = FlatGraph::from_cdfg(d.cdfg()).unwrap();
        let g = rebuild(
            &flat,
            &flat.original_assignment(),
            &specs(4, 512),
            d.cdfg().library().clone(),
        )
        .unwrap();
        let max_deg = g.edges().iter().map(|e| e.degree).max().unwrap();
        let orig_max = d.cdfg().edges().iter().map(|e| e.degree).max().unwrap();
        assert_eq!(max_deg, orig_max);
        assert_eq!(
            mcs_cdfg::timing::min_initiation_rate(&g),
            mcs_cdfg::timing::min_initiation_rate(d.cdfg()),
            "the recursion-bound minimum rate is a pure function of the flat graph"
        );
    }
}
