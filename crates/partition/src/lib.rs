//! # mcs-partition
//!
//! Automatic multi-chip partitioning — the integration with partitioning
//! the paper leaves as future work (its flows take the chip assignment as
//! input; Chapter 8 points at closing the loop).
//!
//! Three steps:
//!
//! 1. [`FlatGraph::from_cdfg`] collapses a design to its computation —
//!    functional operations, primary I/O, dependence edges with recursion
//!    degrees — erasing chips and transfers.
//! 2. [`refine`] improves an operation-to-chip assignment with
//!    Kernighan–Lin / FM passes (tentative best-gain moves with locking,
//!    keep the best prefix), minimizing the bits that must cross chips
//!    under balance and per-class unit capacities.
//! 3. [`rebuild()`] regenerates a partitioned [`mcs_cdfg::Cdfg`] — one
//!    transfer per `(value, destination chip)`, degrees preserved — ready
//!    for any synthesis flow.
//!
//! ```
//! use mcs_cdfg::designs::ar_filter;
//! use mcs_cdfg::PartitionId;
//! use mcs_partition::{refine, spread, Capacities, FlatGraph};
//!
//! let design = ar_filter::simple();
//! let flat = FlatGraph::from_cdfg(design.cdfg()).unwrap();
//! let chips: Vec<PartitionId> = (1..=4).map(PartitionId::new).collect();
//! let cap = flat.ops.len().div_ceil(chips.len()) + 1;
//! let refined = refine(
//!     &flat,
//!     &chips,
//!     &spread(&flat, &chips),
//!     &Capacities::balanced(cap),
//! );
//! assert!(refined.final_cut <= refined.initial_cut);
//! ```

#![warn(missing_docs)]

pub mod flat;
pub mod kl;
pub mod rebuild;

pub use flat::{FlatGraph, FlattenError, Origin};
pub use kl::{refine, spread, Capacities, Refined};
pub use rebuild::{rebuild, ChipSpec};
