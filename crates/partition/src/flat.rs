//! The flat (partition-free) view of a design.
//!
//! Automatic partitioning works on the *computation*, not on any existing
//! chip assignment: [`FlatGraph::from_cdfg`] collapses every interchip
//! transfer, resolving each consumed value to the functional operation or
//! primary input that originates it and folding the recursion degrees
//! accumulated along transfer chains into the consuming edge.

use std::collections::BTreeMap;

use mcs_cdfg::{Cdfg, OpId, OpKind, OperatorClass, PartitionId, ValueId};

/// Where a consumed value ultimately comes from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Origin {
    /// The result of flat operation `k`.
    Op(usize),
    /// Primary input `k` (index into [`FlatGraph::inputs`]).
    Input(usize),
}

/// One functional operation of the flat graph.
#[derive(Clone, Debug)]
pub struct FlatOp {
    /// Display name (from the source design).
    pub name: String,
    /// Operator class.
    pub class: OperatorClass,
    /// Result width in bits.
    pub bits: u32,
    /// Operands in edge order: `(origin, recursion degree)`.
    pub operands: Vec<(Origin, u32)>,
    /// The chip the source design ran this operation on (a warm start for
    /// refinement).
    pub original: PartitionId,
}

/// One primary input of the flat graph.
#[derive(Clone, Debug)]
pub struct FlatInput {
    /// Display name.
    pub name: String,
    /// Width in bits.
    pub bits: u32,
}

/// One primary output.
#[derive(Clone, Debug)]
pub struct FlatOutput {
    /// Display name.
    pub name: String,
    /// The value leaving the system.
    pub origin: Origin,
    /// Recursion degree accumulated along the transfer chain.
    pub degree: u32,
}

/// A design reduced to computation: functional operations, primary
/// inputs/outputs, and dependence edges — no chips, no transfers.
#[derive(Clone, Debug, Default)]
pub struct FlatGraph {
    /// Functional operations.
    pub ops: Vec<FlatOp>,
    /// Primary inputs.
    pub inputs: Vec<FlatInput>,
    /// Primary outputs.
    pub outputs: Vec<FlatOutput>,
}

/// Why a design cannot be flattened.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FlattenError {
    /// TDM split/merge nodes are chip-placement artifacts themselves and
    /// are not carried through refinement.
    HasTdmNodes,
    /// Conditional guards are not supported by the rebuild step yet.
    HasConditionals,
}

impl std::fmt::Display for FlattenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlattenError::HasTdmNodes => write!(f, "design contains TDM split/merge nodes"),
            FlattenError::HasConditionals => write!(f, "design contains conditional guards"),
        }
    }
}

impl std::error::Error for FlattenError {}

impl FlatGraph {
    /// Collapses `cdfg` to its flat computation.
    ///
    /// # Errors
    ///
    /// [`FlattenError`] when the design uses TDM or conditional nodes.
    pub fn from_cdfg(cdfg: &Cdfg) -> Result<FlatGraph, FlattenError> {
        for op in cdfg.op_ids() {
            match cdfg.op(op).kind {
                OpKind::Split { .. } | OpKind::Merge => return Err(FlattenError::HasTdmNodes),
                _ => {}
            }
            if !cdfg.op(op).condition.is_always() {
                return Err(FlattenError::HasConditionals);
            }
        }

        let mut flat = FlatGraph::default();
        // Func ops keep their relative order; map OpId -> flat index.
        let mut op_index: BTreeMap<OpId, usize> = BTreeMap::new();
        for op in cdfg.func_ops() {
            op_index.insert(op, flat.ops.len());
            let node = cdfg.op(op);
            let class = match &node.kind {
                OpKind::Func(c) => c.clone(),
                _ => unreachable!("func_ops yields functional ops"),
            };
            flat.ops.push(FlatOp {
                name: node.name.clone(),
                class,
                bits: node.result.map(|v| cdfg.value(v).bits).unwrap_or(0),
                operands: Vec::new(),
                original: node.partition,
            });
        }

        // Resolve any value to (origin, accumulated degree) by walking io
        // chains back to a functional producer or a primary input.
        let producer: BTreeMap<ValueId, OpId> = cdfg
            .op_ids()
            .filter_map(|op| cdfg.op(op).result.map(|r| (r, op)))
            .collect();
        let mut input_index: BTreeMap<ValueId, usize> = BTreeMap::new();
        let mut resolve = |flat: &mut FlatGraph, mut v: ValueId| -> (Origin, u32) {
            let mut degree = 0u32;
            loop {
                match producer.get(&v) {
                    Some(&op) => match &cdfg.op(op).kind {
                        OpKind::Func(_) => return (Origin::Op(op_index[&op]), degree),
                        OpKind::Io { value, .. } => {
                            // The transfer's own recursion degree sits on
                            // its source edge.
                            degree += cdfg
                                .preds(op)
                                .iter()
                                .map(|&e| cdfg.edge(e))
                                .find(|e| e.value == *value)
                                .map(|e| e.degree)
                                .unwrap_or(0);
                            v = *value;
                        }
                        _ => unreachable!("split/merge rejected above"),
                    },
                    None => {
                        let k = *input_index.entry(v).or_insert_with(|| {
                            flat.inputs.push(FlatInput {
                                name: cdfg.value(v).name.clone(),
                                bits: cdfg.value(v).bits,
                            });
                            flat.inputs.len() - 1
                        });
                        return (Origin::Input(k), degree);
                    }
                }
            }
        };

        // Operands: each functional pred edge in order.
        for op in cdfg.func_ops() {
            let k = op_index[&op];
            for &eid in cdfg.preds(op) {
                let e = cdfg.edge(eid);
                let (origin, chain) = resolve(&mut flat, e.value);
                flat.ops[k].operands.push((origin, chain + e.degree));
            }
        }

        // Primary outputs: transfers into the environment.
        for op in cdfg.io_ops() {
            if let OpKind::Io { value, to, .. } = cdfg.op(op).kind {
                if to == PartitionId::ENVIRONMENT {
                    let deg = cdfg
                        .preds(op)
                        .iter()
                        .map(|&e| cdfg.edge(e))
                        .find(|e| e.value == value)
                        .map(|e| e.degree)
                        .unwrap_or(0);
                    let (origin, chain) = resolve(&mut flat, value);
                    flat.outputs.push(FlatOutput {
                        name: cdfg.op(op).name.clone(),
                        origin,
                        degree: chain + deg,
                    });
                }
            }
        }

        Ok(flat)
    }

    /// The assignment the source design used, per flat operation.
    pub fn original_assignment(&self) -> Vec<PartitionId> {
        self.ops.iter().map(|o| o.original).collect()
    }

    /// Bits crossing chips under `assign`: each distinct
    /// `(origin, destination chip)` pair costs the value's width once
    /// (matching how transfers fan out in the synthesized design).
    pub fn cut_bits(&self, assign: &[PartitionId]) -> u32 {
        let mut crossings: std::collections::BTreeSet<(Origin, PartitionId)> =
            std::collections::BTreeSet::new();
        for (k, op) in self.ops.iter().enumerate() {
            for &(origin, _) in &op.operands {
                if let Origin::Op(src) = origin {
                    if assign[src] != assign[k] {
                        crossings.insert((origin, assign[k]));
                    }
                }
            }
        }
        crossings
            .into_iter()
            .map(|(origin, _)| match origin {
                Origin::Op(src) => self.ops[src].bits,
                Origin::Input(_) => 0,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_cdfg::designs::{ar_filter, elliptic, synthetic};

    #[test]
    fn flattening_collapses_all_transfers() {
        let d = ar_filter::simple();
        let flat = FlatGraph::from_cdfg(d.cdfg()).unwrap();
        assert_eq!(flat.ops.len(), d.cdfg().func_ops().count());
        assert!(!flat.inputs.is_empty());
        assert!(!flat.outputs.is_empty());
        // Every operand resolved to a func op or a primary input.
        for op in &flat.ops {
            for &(origin, _) in &op.operands {
                match origin {
                    Origin::Op(k) => assert!(k < flat.ops.len()),
                    Origin::Input(k) => assert!(k < flat.inputs.len()),
                }
            }
        }
    }

    #[test]
    fn transfer_chain_degrees_accumulate() {
        // The elliptic filter's feedback values travel through transfers
        // with nonzero degrees; the flat edges must carry them.
        let d = elliptic::partitioned();
        let flat = FlatGraph::from_cdfg(d.cdfg()).unwrap();
        let max_deg = flat
            .ops
            .iter()
            .flat_map(|o| o.operands.iter().map(|&(_, d)| d))
            .max()
            .unwrap();
        assert!(max_deg >= 4, "degree-4 recursion must survive flattening");
    }

    #[test]
    fn original_assignment_cut_matches_transfer_structure() {
        let d = ar_filter::simple();
        let flat = FlatGraph::from_cdfg(d.cdfg()).unwrap();
        let cut = flat.cut_bits(&flat.original_assignment());
        assert!(cut > 0, "the 4-chip AR filter crosses chips");
        // All ops on one chip: no cut at all.
        let p1 = mcs_cdfg::PartitionId::new(1);
        assert_eq!(flat.cut_bits(&vec![p1; flat.ops.len()]), 0);
    }

    #[test]
    fn tdm_designs_are_rejected() {
        let d = synthetic::tdm_example(true);
        assert!(matches!(
            FlatGraph::from_cdfg(d.cdfg()),
            Err(FlattenError::HasTdmNodes)
        ));
    }

    #[test]
    fn conditional_designs_are_rejected() {
        let (d, _) = synthetic::conditional_example();
        assert!(matches!(
            FlatGraph::from_cdfg(d.cdfg()),
            Err(FlattenError::HasConditionals)
        ));
    }
}
