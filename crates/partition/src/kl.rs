//! Kernighan–Lin / Fiduccia–Mattheyses-style refinement of the
//! operation-to-chip assignment.
//!
//! Each pass tentatively moves every operation once (best cut-bits gain
//! first, balance respected, moved operations locked), then keeps the
//! best prefix of the move sequence — the classic hill-climbing-with-
//! lookahead that escapes single-move local minima. Passes repeat until
//! one yields no improvement.

use std::collections::BTreeMap;

use mcs_cdfg::{OperatorClass, PartitionId};

use crate::flat::FlatGraph;

/// Capacity limits for refinement.
#[derive(Clone, Debug, Default)]
pub struct Capacities {
    /// Maximum operations per chip (`None` = unbounded).
    pub max_ops: Option<usize>,
    /// Per `(chip, class)` unit limits; missing entries are unbounded.
    /// An operation counts against its class regardless of scheduling —
    /// a conservative stand-in for the allocation-wheel bound (Eq. 7.5).
    pub units: BTreeMap<(PartitionId, OperatorClass), usize>,
}

impl Capacities {
    /// No limits at all (pure min-cut).
    pub fn unbounded() -> Self {
        Capacities::default()
    }

    /// At most `n` operations per chip.
    pub fn balanced(n: usize) -> Self {
        Capacities {
            max_ops: Some(n),
            units: BTreeMap::new(),
        }
    }
}

/// The outcome of refinement.
#[derive(Clone, Debug)]
pub struct Refined {
    /// Final assignment, per flat operation.
    pub assign: Vec<PartitionId>,
    /// Cut bits before refinement.
    pub initial_cut: u32,
    /// Cut bits after refinement.
    pub final_cut: u32,
    /// Full passes executed.
    pub passes: u32,
}

fn feasible(
    flat: &FlatGraph,
    caps: &Capacities,
    assign: &[PartitionId],
    op: usize,
    dest: PartitionId,
) -> bool {
    if let Some(max) = caps.max_ops {
        let load = assign.iter().filter(|&&p| p == dest).count();
        if load + 1 > max {
            return false;
        }
    }
    let key = (dest, flat.ops[op].class.clone());
    if let Some(&limit) = caps.units.get(&key) {
        let used = assign
            .iter()
            .enumerate()
            .filter(|&(k, &p)| p == dest && flat.ops[k].class == flat.ops[op].class)
            .count();
        if used + 1 > limit {
            return false;
        }
    }
    true
}

/// Refines `initial` over `chips`, minimizing [`FlatGraph::cut_bits`]
/// under `caps`. Deterministic: ties break toward the lowest operation
/// index and chip id.
pub fn refine(
    flat: &FlatGraph,
    chips: &[PartitionId],
    initial: &[PartitionId],
    caps: &Capacities,
) -> Refined {
    assert_eq!(initial.len(), flat.ops.len(), "one chip per operation");
    let mut assign = initial.to_vec();
    let initial_cut = flat.cut_bits(&assign);
    let mut passes = 0;

    loop {
        passes += 1;
        let pass_start = assign.clone();
        let start_cut = flat.cut_bits(&assign);
        let mut locked = vec![false; flat.ops.len()];
        // (cut after this move, assignment snapshot)
        let mut best_cut = start_cut;
        let mut best_snapshot = assign.clone();

        for _ in 0..flat.ops.len() {
            // Best single move over unlocked ops.
            let mut best: Option<(u32, usize, PartitionId)> = None;
            for op in 0..flat.ops.len() {
                if locked[op] {
                    continue;
                }
                let home = assign[op];
                for &dest in chips {
                    if dest == home || !feasible(flat, caps, &assign, op, dest) {
                        continue;
                    }
                    assign[op] = dest;
                    let cut = flat.cut_bits(&assign);
                    assign[op] = home;
                    if best
                        .as_ref()
                        .is_none_or(|&(c, o, d)| cut < c || (cut == c && (op, dest) < (o, d)))
                    {
                        best = Some((cut, op, dest));
                    }
                }
            }
            let Some((cut, op, dest)) = best else {
                break;
            };
            assign[op] = dest;
            locked[op] = true;
            if cut < best_cut {
                best_cut = cut;
                best_snapshot = assign.clone();
            }
        }

        if best_cut < start_cut {
            assign = best_snapshot;
        } else {
            assign = pass_start;
            break;
        }
    }

    let final_cut = flat.cut_bits(&assign);
    Refined {
        assign,
        initial_cut,
        final_cut,
        passes,
    }
}

/// A deterministic spread of the operations over `chips` in graph order —
/// a cold-start initial assignment honoring `max_ops` balance.
pub fn spread(flat: &FlatGraph, chips: &[PartitionId]) -> Vec<PartitionId> {
    let per = flat.ops.len().div_ceil(chips.len());
    (0..flat.ops.len())
        .map(|k| chips[(k / per).min(chips.len() - 1)])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::FlatGraph;
    use mcs_cdfg::designs::{ar_filter, elliptic};

    fn chips(n: u32) -> Vec<PartitionId> {
        (1..=n).map(PartitionId::new).collect()
    }

    #[test]
    fn refinement_never_increases_the_cut() {
        let d = ar_filter::simple();
        let flat = FlatGraph::from_cdfg(d.cdfg()).unwrap();
        let init = flat.original_assignment();
        let r = refine(&flat, &chips(4), &init, &Capacities::unbounded());
        assert!(r.final_cut <= r.initial_cut);
        assert_eq!(r.final_cut, flat.cut_bits(&r.assign));
    }

    #[test]
    fn unbounded_refinement_collapses_a_chain_to_one_chip() {
        // A pure chain split over two chips: with no capacity limits the
        // optimum is cut 0, and KL's uphill-within-a-pass moves find it.
        use mcs_cdfg::{CdfgBuilder, Library, OperatorClass};
        let mut b = CdfgBuilder::new(Library::ar_filter());
        let p1 = b.partition("P1", 512);
        let p2 = b.partition("P2", 512);
        let (_, mut v) = b.input("a", 8, p1);
        for k in 0..3 {
            let (_, nv) = b.func(&format!("f{k}"), OperatorClass::Add, p1, &[(v, 0)], 8);
            v = nv;
        }
        let (_, mut w) = b.io("X", v, p2);
        for k in 0..3 {
            let (_, nw) = b.func(&format!("g{k}"), OperatorClass::Add, p2, &[(w, 0)], 8);
            w = nw;
        }
        b.output("o", w);
        let g = b.finish().unwrap();

        let flat = FlatGraph::from_cdfg(&g).unwrap();
        let init = flat.original_assignment();
        assert!(flat.cut_bits(&init) > 0);
        let r = refine(&flat, &chips(2), &init, &Capacities::unbounded());
        assert_eq!(r.final_cut, 0, "a chain needs no chip boundary");
    }

    #[test]
    fn refinement_improves_a_cold_spread_of_the_ar_filter() {
        let d = ar_filter::simple();
        let flat = FlatGraph::from_cdfg(d.cdfg()).unwrap();
        let init = spread(&flat, &chips(4));
        let r = refine(&flat, &chips(4), &init, &Capacities::unbounded());
        assert!(
            r.final_cut < r.initial_cut,
            "KL must improve the naive spread ({} -> {})",
            r.initial_cut,
            r.final_cut
        );
    }

    #[test]
    fn balance_constraint_is_respected() {
        let d = elliptic::partitioned();
        let flat = FlatGraph::from_cdfg(d.cdfg()).unwrap();
        let cs = chips(5);
        let cap = flat.ops.len().div_ceil(cs.len()) + 1;
        let init = spread(&flat, &cs);
        let r = refine(&flat, &cs, &init, &Capacities::balanced(cap));
        for &c in &cs {
            let load = r.assign.iter().filter(|&&p| p == c).count();
            assert!(load <= cap, "{c}: {load} > {cap}");
        }
        assert!(r.final_cut <= flat.cut_bits(&init));
    }

    #[test]
    fn unit_limits_are_respected() {
        // Cap every chip/class at exactly the initial usage: refinement
        // may shuffle operations but never exceed a cap.
        let d = ar_filter::simple();
        let flat = FlatGraph::from_cdfg(d.cdfg()).unwrap();
        let cs = chips(4);
        let init = flat.original_assignment();
        let mut caps = Capacities::balanced(flat.ops.len());
        for &c in &cs {
            for class in [OperatorClass::Mul, OperatorClass::Add] {
                let used = init
                    .iter()
                    .enumerate()
                    .filter(|&(k, &p)| p == c && flat.ops[k].class == class)
                    .count();
                caps.units.insert((c, class), used);
            }
        }
        let r = refine(&flat, &cs, &init, &caps);
        for (&(c, ref class), &limit) in &caps.units {
            let used = r
                .assign
                .iter()
                .enumerate()
                .filter(|&(k, &p)| p == c && flat.ops[k].class == *class)
                .count();
            assert!(used <= limit, "{c} {class}: {used} > {limit}");
        }
    }

    #[test]
    fn refinement_is_deterministic() {
        let d = elliptic::partitioned();
        let flat = FlatGraph::from_cdfg(d.cdfg()).unwrap();
        let cs = chips(5);
        let init = spread(&flat, &cs);
        let caps = Capacities::balanced(flat.ops.len().div_ceil(cs.len()) + 2);
        let a = refine(&flat, &cs, &init, &caps);
        let b = refine(&flat, &cs, &init, &caps);
        assert_eq!(a.assign, b.assign);
    }
}
