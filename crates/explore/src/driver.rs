//! The wave-parallel sweep driver.
//!
//! The lattice is walked in *waves*: one budget vector per wave, most
//! generous first (descending total, then descending lexicographic,
//! then spec order). Within a wave the points — one per rate, highest
//! rate first — are claimed from an atomic counter by `jobs` worker
//! threads, so load balances without any scheduling decision affecting
//! results: every point's inputs (its coordinate and its warm-start
//! donor list) are frozen at the wave barrier, and results land in
//! per-point slots that are read back in wave order.
//!
//! Two things happen at each barrier, in deterministic wave order:
//!
//! * pin-infeasible points are recorded as *pruning certificates*: a
//!   point at rate `L'` and budget `P'` in a later wave is skipped
//!   without synthesis when some certificate `(L, P)` has `L' <= L` and
//!   `P' <= P` componentwise (fewer control-step groups and fewer pins
//!   only shrink the allocation polytope, so the exact infeasibility
//!   verdict lifts);
//! * every other point's warm-start export is published to the
//!   [`WarmStartCache`]. Pin-infeasible points never export — even when
//!   the runner returns data — so a pruned sweep and an exhaustive
//!   sweep present *identical* inputs to every surviving point, which
//!   is what the differential test leans on.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

use mcs_ctl::Termination;

use crate::{
    pareto_frontier, ExploreOutcome, PointCoord, PointOutcome, PointRunner, PointStatus,
    SweepReport, SweepSpec, SweepStats, WarmStartCache,
};

/// Driver knobs.
#[derive(Clone, Debug)]
pub struct SweepOptions {
    /// Worker threads claiming points within a wave. The output is
    /// byte-identical for every value.
    pub jobs: usize,
    /// Enable dominance pruning. Disabling it runs the exhaustive
    /// sweep (the reference side of the differential test).
    pub prune: bool,
    /// Execution budget polled at every wave barrier. When it trips,
    /// the remaining waves are reported as [`PointStatus::Skipped`] and
    /// the report becomes an anytime result (frontier over the waves
    /// that ran). Share the handle with the point runner to have work
    /// charged inside points stop the sweep at the next barrier.
    pub budget: Option<mcs_ctl::Budget>,
    /// Sink for [`mcs_obs::Event::WorkerPanic`] events emitted when a
    /// point runner panics and is quarantined.
    pub recorder: mcs_obs::RecorderHandle,
    /// Metrics sink: an `explore.point_us` histogram (per-point wall
    /// time on the registry clock) plus `explore.*` counters and gauges
    /// added once at the end of the sweep. Disconnected by default;
    /// never feeds into the [`SweepReport`], which stays timing-free.
    pub metrics: mcs_metrics::MetricsHandle,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            jobs: 1,
            prune: true,
            budget: None,
            recorder: mcs_obs::RecorderHandle::default(),
            metrics: mcs_metrics::MetricsHandle::default(),
        }
    }
}

/// A malformed [`SweepSpec`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SweepError {
    /// No initiation rates.
    EmptyRates,
    /// A rate of zero (no control-step groups).
    ZeroRate,
    /// No budget vectors.
    EmptyBudgets,
    /// Budget vectors of differing lengths.
    RaggedBudgets,
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SweepError::EmptyRates => "sweep spec has no initiation rates",
            SweepError::ZeroRate => "initiation rate 0 is not explorable",
            SweepError::EmptyBudgets => "sweep spec has no pin-budget vectors",
            SweepError::RaggedBudgets => "pin-budget vectors differ in length",
        };
        write!(f, "{s}")
    }
}

impl std::error::Error for SweepError {}

fn validate(spec: &SweepSpec) -> Result<(), SweepError> {
    if spec.rates.is_empty() {
        return Err(SweepError::EmptyRates);
    }
    if spec.rates.contains(&0) {
        return Err(SweepError::ZeroRate);
    }
    if spec.budgets.is_empty() {
        return Err(SweepError::EmptyBudgets);
    }
    if spec.budgets.windows(2).any(|w| w[0].len() != w[1].len()) {
        return Err(SweepError::RaggedBudgets);
    }
    Ok(())
}

/// `a >= b` componentwise.
fn dominates(a: &[u32], b: &[u32]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(&x, &y)| x >= y)
}

/// Runs the sweep. See the module docs for the wave discipline; the
/// returned report is a pure function of `(spec, runner, opts.prune)` —
/// `opts.jobs` never changes a byte of it.
pub fn sweep<R: PointRunner>(
    spec: &SweepSpec,
    runner: &R,
    opts: &SweepOptions,
) -> Result<SweepReport, SweepError> {
    validate(spec)?;
    let n_rates = spec.rates.len();
    let canon = |budget_ix: usize, rate_ix: usize| budget_ix * n_rates + rate_ix;
    let mut results: Vec<Option<ExploreOutcome>> = Vec::new();
    results.resize_with(n_rates * spec.budgets.len(), || None);

    // Waves: budget vectors most generous first.
    let wave_order = {
        let total = |i: usize| spec.budgets[i].iter().map(|&p| p as u64).sum::<u64>();
        let mut ix: Vec<usize> = (0..spec.budgets.len()).collect();
        ix.sort_by(|&a, &b| {
            total(b)
                .cmp(&total(a))
                .then_with(|| spec.budgets[b].cmp(&spec.budgets[a]))
                .then(a.cmp(&b))
        });
        ix
    };
    // Within a wave: highest rate first (most slack, most likely to
    // seed the cache for the rest of its column).
    let rate_order = {
        let mut ix: Vec<usize> = (0..n_rates).collect();
        ix.sort_by_key(|&i| (std::cmp::Reverse(spec.rates[i]), i));
        ix
    };

    let m_point_us = opts.metrics.histogram("explore.point_us");
    let cache: WarmStartCache<PointCoord, R::Export> = WarmStartCache::new();
    let mut certs: Vec<PointCoord> = Vec::new();
    let mut stats = SweepStats {
        points: (n_rates * spec.budgets.len()) as u64,
        ..SweepStats::default()
    };

    let mut waves = 0u32;
    let mut interruption: Option<Termination> = None;
    // `waves` counts only waves that actually ran — the barrier can
    // break before the increment — so enumerate() is not equivalent.
    #[allow(clippy::explicit_counter_loop)]
    for &b in &wave_order {
        // Wave barrier: poll the budget. Work is charged inside point
        // runs (when the caller shares the handle), so a mid-wave trip
        // is observed here — the previous wave's results stand, the
        // rest of the lattice is reported as skipped.
        if let Some(budget) = &opts.budget {
            if budget.check().is_some() {
                interruption = Some(budget.termination());
                break;
            }
        }
        waves += 1;
        // Prune against certificates frozen at the wave start; the
        // decision never depends on this wave's own (parallel) results.
        let mut todo: Vec<(usize, PointCoord)> = Vec::new();
        for &ri in &rate_order {
            let coord = PointCoord {
                rate: spec.rates[ri],
                budget_ix: b,
            };
            let dominator = opts.prune.then(|| {
                certs.iter().find(|c| {
                    coord.rate <= c.rate && dominates(&spec.budgets[c.budget_ix], &spec.budgets[b])
                })
            });
            if let Some(Some(by)) = dominator {
                results[canon(b, ri)] = Some(ExploreOutcome {
                    coord,
                    status: PointStatus::Pruned,
                    outcome: PointOutcome {
                        status: Some(PointStatus::Pruned),
                        detail: format!(
                            "dominated by pin-infeasible rate {} budget {}",
                            by.rate, by.budget_ix
                        ),
                        ..PointOutcome::default()
                    },
                });
                stats.pruned += 1;
                continue;
            }
            todo.push((ri, coord));
        }

        // Claim-and-run: point i's inputs are independent of who runs it.
        // Each run is wrapped in `catch_unwind`: a panicking runner is
        // quarantined to its own slot (reported as an error point) so
        // one bad point cannot unwind the scope and abort the sweep.
        type Slot<E> = Mutex<Option<(PointOutcome, Option<E>)>>;
        let slots: Vec<Slot<R::Export>> = todo.iter().map(|_| Mutex::new(None)).collect();
        let panicked: Vec<AtomicBool> = todo.iter().map(|_| AtomicBool::new(false)).collect();
        let next = AtomicUsize::new(0);
        let jobs = opts.jobs.clamp(1, todo.len().max(1));
        std::thread::scope(|s| {
            for _ in 0..jobs {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= todo.len() {
                        break;
                    }
                    let coord = todo[i].1;
                    let budget = &spec.budgets[coord.budget_ix];
                    let seeds = cache.donors_for(coord.rate, budget, &spec.budgets);
                    let point_t0 = opts.metrics.now_us();
                    let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        // Fault-injection site (debug builds only).
                        mcs_ctl::faultpoint!(&format!(
                            "explore::point::{}::{}",
                            coord.rate, coord.budget_ix
                        ));
                        runner.run(coord, budget, &seeds)
                    }));
                    m_point_us.observe(opts.metrics.now_us().saturating_sub(point_t0));
                    *slots[i].lock().expect("slot lock") = Some(match run {
                        Ok(result) => result,
                        Err(_) => {
                            panicked[i].store(true, Ordering::Relaxed);
                            (
                                PointOutcome {
                                    status: None,
                                    detail: "point runner panicked; quarantined".into(),
                                    ..PointOutcome::default()
                                },
                                None,
                            )
                        }
                    });
                });
            }
        });

        // Barrier: record results, certificates and exports in wave
        // order so later waves see a deterministic world.
        for (j, ((ri, coord), slot)) in todo.iter().zip(slots).enumerate() {
            let (outcome, export) = slot
                .into_inner()
                .expect("slot lock")
                .expect("every claimed point completes");
            if panicked[j].load(Ordering::Relaxed) {
                stats.panics += 1;
                opts.recorder.record(mcs_obs::Event::WorkerPanic {
                    pool: "explore",
                    worker: j as u32,
                    epoch: waves,
                });
            }
            let status = match outcome.status {
                Some(PointStatus::Pruned | PointStatus::Skipped) | None => PointStatus::Error,
                Some(s) => s,
            };
            stats.run += 1;
            match status {
                PointStatus::Feasible => stats.feasible += 1,
                PointStatus::PinInfeasible => stats.pin_infeasible += 1,
                PointStatus::SearchFailed => stats.search_failed += 1,
                PointStatus::Error => stats.errors += 1,
                PointStatus::Pruned | PointStatus::Skipped => {
                    unreachable!("mapped to Error above")
                }
            }
            stats.probe_seed_hits += outcome.probe_seed_hits;
            stats.cert_seed_hits += outcome.cert_seed_hits;
            if status == PointStatus::PinInfeasible {
                certs.push(*coord);
                // No export: a pruned sweep must present the same donor
                // lists as the exhaustive one, and pruned points are
                // exactly (a subset of) the pin-infeasible ones.
            } else if let Some(export) = export {
                cache.insert(*coord, export);
            }
            results[canon(b, *ri)] = Some(ExploreOutcome {
                coord: *coord,
                status,
                outcome,
            });
        }
    }

    stats.cache_entries = cache.len() as u64;
    stats.termination = match interruption {
        Some(t) => t,
        None if stats.panics > 0 => Termination::WorkerPanicked,
        None => Termination::Complete,
    };
    // Fill lattice slots never reached (interrupted sweeps) so the
    // report is always a complete, canonically ordered lattice.
    let mut outcomes: Vec<ExploreOutcome> = Vec::with_capacity(results.len());
    for (i, slot) in results.into_iter().enumerate() {
        outcomes.push(slot.unwrap_or_else(|| {
            stats.skipped += 1;
            let coord = PointCoord {
                rate: spec.rates[i % n_rates],
                budget_ix: i / n_rates,
            };
            ExploreOutcome {
                coord,
                status: PointStatus::Skipped,
                outcome: PointOutcome {
                    status: Some(PointStatus::Skipped),
                    detail: format!("sweep interrupted ({})", stats.termination),
                    ..PointOutcome::default()
                },
            }
        }));
    }
    let frontier = pareto_frontier(&outcomes);
    if opts.metrics.enabled() {
        opts.metrics.add("explore.points", stats.points);
        opts.metrics.add("explore.run", stats.run);
        opts.metrics.add("explore.pruned", stats.pruned);
        opts.metrics.add("explore.skipped", stats.skipped);
        opts.metrics
            .gauge_set("explore.cache_entries", stats.cache_entries as i64);
        opts.metrics
            .gauge_set("explore.frontier", frontier.len() as i64);
    }
    Ok(SweepReport {
        spec: spec.clone(),
        outcomes,
        frontier,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FlowVariant;
    use std::sync::Mutex;

    /// A synthetic runner with monotone pin feasibility: a point is
    /// pin-infeasible when its total budget is below `200 - 10 * rate`
    /// (so infeasibility at `(L, P)` really does imply it at every
    /// dominated point). Feasible cost trades latency against pins.
    struct FakeRunner {
        log: Mutex<Vec<PointCoord>>,
    }

    impl FakeRunner {
        fn new() -> Self {
            FakeRunner {
                log: Mutex::new(Vec::new()),
            }
        }
    }

    impl PointRunner for FakeRunner {
        type Export = u64;

        fn run(
            &self,
            coord: PointCoord,
            budget: &[u32],
            seeds: &[(PointCoord, std::sync::Arc<u64>)],
        ) -> (PointOutcome, Option<u64>) {
            self.log.lock().expect("log lock").push(coord);
            let total: u64 = budget.iter().map(|&p| p as u64).sum();
            let demand = 200u64.saturating_sub(10 * coord.rate as u64);
            if total < demand {
                return (
                    PointOutcome {
                        status: Some(PointStatus::PinInfeasible),
                        detail: "no allocation".into(),
                        ..PointOutcome::default()
                    },
                    // Deliberately export something: the driver must
                    // drop it for pin-infeasible points.
                    Some(total),
                );
            }
            let outcome = PointOutcome {
                status: Some(PointStatus::Feasible),
                latency: Some(2 * coord.rate as i64),
                total_pins: Some((total / 2) as u32),
                buses: Some(budget.len() as u32),
                registers: Some(8),
                probe_seed_hits: seeds.len() as u64,
                ..PointOutcome::default()
            };
            (outcome, Some(total))
        }
    }

    fn spec() -> SweepSpec {
        SweepSpec {
            design: "fake".into(),
            flow: FlowVariant::Simple,
            rates: vec![4, 6, 8],
            budgets: vec![vec![96, 96], vec![72, 72], vec![48, 48]],
        }
    }

    #[test]
    fn pruned_points_are_never_run() {
        let runner = FakeRunner::new();
        let report = sweep(&spec(), &runner, &SweepOptions::default()).unwrap();
        // [48,48] = 96 total: infeasible for every rate (demand >= 120),
        // and rates 4 and 6 are dominated by the rate-8 certificate
        // ... but certificates only cross waves, so within the [48,48]
        // wave all three rates run. [72,72] = 144 total: infeasible at
        // rate 4 (demand 160); that certificate prunes rate 4 at
        // [48,48] before its wave runs.
        let pruned: Vec<PointCoord> = report
            .outcomes
            .iter()
            .filter(|o| o.status == PointStatus::Pruned)
            .map(|o| o.coord)
            .collect();
        assert_eq!(
            pruned,
            vec![PointCoord {
                rate: 4,
                budget_ix: 2
            }]
        );
        assert_eq!(report.stats.pruned, 1);
        let log = runner.log.lock().expect("log lock");
        assert!(!log.contains(&pruned[0]), "pruned points must not run");
        assert_eq!(log.len() as u64, report.stats.run);
    }

    #[test]
    fn pruned_and_exhaustive_sweeps_agree_on_the_frontier() {
        let exhaustive = sweep(
            &spec(),
            &FakeRunner::new(),
            &SweepOptions {
                prune: false,
                ..SweepOptions::default()
            },
        )
        .unwrap();
        assert_eq!(exhaustive.stats.pruned, 0);
        let pruned = sweep(&spec(), &FakeRunner::new(), &SweepOptions::default()).unwrap();
        assert_eq!(pruned.frontier, exhaustive.frontier);
        // Every non-pruned point is bit-identical between the sweeps.
        for (a, b) in pruned.outcomes.iter().zip(&exhaustive.outcomes) {
            if a.status != PointStatus::Pruned {
                assert_eq!(a.status, b.status);
                assert_eq!(a.outcome.latency, b.outcome.latency);
                assert_eq!(a.outcome.probe_seed_hits, b.outcome.probe_seed_hits);
            }
        }
    }

    #[test]
    fn report_bytes_are_identical_across_job_counts() {
        let reference = sweep(&spec(), &FakeRunner::new(), &SweepOptions::default())
            .unwrap()
            .to_json();
        for jobs in [2usize, 8] {
            let report = sweep(
                &spec(),
                &FakeRunner::new(),
                &SweepOptions {
                    jobs,
                    ..SweepOptions::default()
                },
            )
            .unwrap();
            assert_eq!(report.to_json(), reference, "jobs={jobs}");
        }
    }

    #[test]
    fn metrics_mirror_sweep_stats_independently_of_jobs() {
        use std::sync::Arc;
        let run = |jobs: usize| {
            // A manual-clock registry: every duration reads 0, so the
            // whole snapshot is a pure function of the sweep.
            let clock = Arc::new(mcs_ctl::ManualClock::new());
            let reg = Arc::new(mcs_metrics::Registry::with_clock(clock));
            let report = sweep(
                &spec(),
                &FakeRunner::new(),
                &SweepOptions {
                    jobs,
                    metrics: mcs_metrics::MetricsHandle::new(reg.clone()),
                    ..SweepOptions::default()
                },
            )
            .unwrap();
            (mcs_metrics::export::to_prometheus(&reg.snapshot()), report)
        };
        let (reference, report) = run(1);
        assert!(reference.contains("explore_point_us_count"));
        assert!(reference.contains(&format!("explore_pruned {}", report.stats.pruned)));
        for jobs in [2usize, 8] {
            assert_eq!(run(jobs).0, reference, "jobs={jobs}");
        }
    }

    #[test]
    fn warm_start_donors_reach_dominated_points() {
        let report = sweep(&spec(), &FakeRunner::new(), &SweepOptions::default()).unwrap();
        // The [72,72] wave runs after [96,96]; its feasible points see
        // the [96,96] export at the same rate.
        let o = report
            .outcomes
            .iter()
            .find(|o| {
                o.coord
                    == PointCoord {
                        rate: 8,
                        budget_ix: 1,
                    }
            })
            .unwrap();
        assert_eq!(o.outcome.probe_seed_hits, 1);
        assert!(report.stats.probe_seed_hits > 0);
        assert!(report.stats.cache_entries > 0);
    }

    #[test]
    fn tripped_budget_skips_remaining_waves_as_an_anytime_result() {
        // Charge one "node" per point run so the budget trips after the
        // first wave's work is charged; the poll at the next wave
        // barrier converts the trip into Skipped points.
        struct ChargingRunner {
            inner: FakeRunner,
            budget: mcs_ctl::Budget,
        }
        impl PointRunner for ChargingRunner {
            type Export = u64;
            fn run(
                &self,
                coord: PointCoord,
                budget: &[u32],
                seeds: &[(PointCoord, std::sync::Arc<u64>)],
            ) -> (PointOutcome, Option<u64>) {
                self.budget.charge_nodes(1);
                self.inner.run(coord, budget, seeds)
            }
        }
        let budget = mcs_ctl::Budget::new(mcs_ctl::BudgetSpec::default().max_nodes(1));
        let runner = ChargingRunner {
            inner: FakeRunner::new(),
            budget: budget.clone(),
        };
        let report = sweep(
            &spec(),
            &runner,
            &SweepOptions {
                budget: Some(budget),
                ..SweepOptions::default()
            },
        )
        .unwrap();
        assert_eq!(
            report.stats.termination,
            mcs_ctl::Termination::BudgetExhausted
        );
        // First wave ([96,96]) ran; the other two waves are skipped.
        assert_eq!(report.stats.run, 3);
        assert_eq!(report.stats.skipped, 6);
        let skipped = report
            .outcomes
            .iter()
            .filter(|o| o.status == PointStatus::Skipped)
            .count();
        assert_eq!(skipped, 6);
        // The lattice stays complete and canonically ordered, and the
        // frontier covers the wave that ran.
        assert_eq!(report.outcomes.len(), 9);
        assert!(!report.frontier.is_empty());
        for o in &report.outcomes {
            if o.status == PointStatus::Skipped {
                assert!(o.outcome.detail.contains("budget-exhausted"));
            }
        }
    }

    #[test]
    fn interrupted_sweeps_are_identical_across_job_counts() {
        let run = |jobs: usize| {
            let budget = mcs_ctl::Budget::new(mcs_ctl::BudgetSpec::default().max_nodes(1));
            struct ChargingRunner {
                inner: FakeRunner,
                budget: mcs_ctl::Budget,
            }
            impl PointRunner for ChargingRunner {
                type Export = u64;
                fn run(
                    &self,
                    coord: PointCoord,
                    budget: &[u32],
                    seeds: &[(PointCoord, std::sync::Arc<u64>)],
                ) -> (PointOutcome, Option<u64>) {
                    self.budget.charge_nodes(1);
                    self.inner.run(coord, budget, seeds)
                }
            }
            let runner = ChargingRunner {
                inner: FakeRunner::new(),
                budget: budget.clone(),
            };
            sweep(
                &spec(),
                &runner,
                &SweepOptions {
                    jobs,
                    budget: Some(budget),
                    ..SweepOptions::default()
                },
            )
            .unwrap()
            .to_json()
        };
        let reference = run(1);
        for jobs in [2usize, 8] {
            assert_eq!(run(jobs), reference, "jobs={jobs}");
        }
    }

    #[test]
    fn deadline_zero_yields_an_empty_but_valid_report() {
        let clock = std::sync::Arc::new(mcs_ctl::ManualClock::new());
        let budget = mcs_ctl::Budget::with_clock(
            mcs_ctl::BudgetSpec::default().deadline_ms(0),
            clock.clone(),
        );
        clock.advance_ms(1);
        let report = sweep(
            &spec(),
            &FakeRunner::new(),
            &SweepOptions {
                budget: Some(budget),
                ..SweepOptions::default()
            },
        )
        .unwrap();
        assert_eq!(
            report.stats.termination,
            mcs_ctl::Termination::DeadlineExceeded
        );
        assert_eq!(report.stats.run, 0);
        assert_eq!(report.stats.skipped, 9);
        assert_eq!(report.outcomes.len(), 9);
        assert!(report.frontier.is_empty());
    }

    #[test]
    fn malformed_specs_are_rejected() {
        let err =
            |s: &SweepSpec| sweep(s, &FakeRunner::new(), &SweepOptions::default()).unwrap_err();
        let mut s = spec();
        s.rates.clear();
        assert_eq!(err(&s), SweepError::EmptyRates);
        let mut s = spec();
        s.rates.push(0);
        assert_eq!(err(&s), SweepError::ZeroRate);
        let mut s = spec();
        s.budgets.clear();
        assert_eq!(err(&s), SweepError::EmptyBudgets);
        let mut s = spec();
        s.budgets[1] = vec![72];
        assert_eq!(err(&s), SweepError::RaggedBudgets);
    }
}
