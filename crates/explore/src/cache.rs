//! Sharded cross-point warm-start cache.
//!
//! Exports are keyed by their producing [`PointCoord`] and stored in
//! `Arc`s across a fixed set of `RwLock` shards, so lattice workers can
//! look donors up concurrently while a wave runs. Determinism comes
//! from the publication discipline, not from locking: the driver
//! inserts only at wave barriers, in wave order, and an append-only log
//! of keys fixes the donor iteration order — so the donor list any
//! point observes is a pure function of the sweep spec.

use std::collections::HashMap;
use std::sync::{Arc, RwLock};

use crate::PointCoord;

/// Number of shards; a small power of two keeps the FNV mix cheap.
const SHARDS: usize = 16;

/// Sharded map from producing point to its warm-start export.
pub struct WarmStartCache<V> {
    shards: Vec<RwLock<HashMap<PointCoord, Arc<V>>>>,
    /// Keys in publication (wave) order — the deterministic donor scan.
    log: RwLock<Vec<PointCoord>>,
}

impl<V> Default for WarmStartCache<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> WarmStartCache<V> {
    /// An empty cache.
    pub fn new() -> Self {
        WarmStartCache {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            log: RwLock::new(Vec::new()),
        }
    }

    fn shard_of(&self, key: PointCoord) -> usize {
        // FNV-1a over the coordinate bytes; only shard choice uses it.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in key
            .rate
            .to_le_bytes()
            .into_iter()
            .chain((key.budget_ix as u64).to_le_bytes())
        {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (h % SHARDS as u64) as usize
    }

    /// Publishes one export. Driver-only, at wave barriers; re-publishing
    /// the same coordinate replaces the entry without re-logging it.
    pub fn insert(&self, key: PointCoord, value: V) {
        let fresh = self.shards[self.shard_of(key)]
            .write()
            .expect("cache lock")
            .insert(key, Arc::new(value))
            .is_none();
        if fresh {
            self.log.write().expect("cache log lock").push(key);
        }
    }

    /// The export published by `key`, if any.
    pub fn get(&self, key: PointCoord) -> Option<Arc<V>> {
        self.shards[self.shard_of(key)]
            .read()
            .expect("cache lock")
            .get(&key)
            .cloned()
    }

    /// Donors applicable to a point at `rate` with budget vector
    /// `budget`: exports from the same rate whose budget vectors
    /// dominate (are componentwise `>=`) the point's, in publication
    /// order. `budgets` resolves a donor's `budget_ix` to its vector.
    pub fn donors_for(
        &self,
        rate: u32,
        budget: &[u32],
        budgets: &[Vec<u32>],
    ) -> Vec<(PointCoord, Arc<V>)> {
        let log = self.log.read().expect("cache log lock");
        log.iter()
            .filter(|d| d.rate == rate)
            .filter(|d| {
                let donor = &budgets[d.budget_ix];
                donor.len() == budget.len()
                    && donor.iter().zip(budget).all(|(&have, &need)| have >= need)
                    && donor != &budget.to_vec()
            })
            .filter_map(|&d| self.get(d).map(|v| (d, v)))
            .collect()
    }

    /// Exports resident in the cache.
    pub fn len(&self) -> usize {
        self.log.read().expect("cache log lock").len()
    }

    /// `true` when nothing has been published.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coord(rate: u32, budget_ix: usize) -> PointCoord {
        PointCoord { rate, budget_ix }
    }

    #[test]
    fn donors_filter_by_rate_and_budget_dominance() {
        let budgets = vec![vec![64, 64], vec![48, 64], vec![32, 32]];
        let cache: WarmStartCache<&'static str> = WarmStartCache::new();
        cache.insert(coord(4, 0), "generous");
        cache.insert(coord(4, 1), "mixed");
        cache.insert(coord(5, 0), "other-rate");

        // [48, 64] is dominated by [64, 64] but not by itself or by a
        // donor at another rate.
        let donors = cache.donors_for(4, &budgets[1], &budgets);
        let names: Vec<&str> = donors.iter().map(|(_, v)| **v).collect();
        assert_eq!(names, vec!["generous"]);

        // [32, 32] is dominated by both rate-4 donors, in publish order.
        let donors = cache.donors_for(4, &budgets[2], &budgets);
        let names: Vec<&str> = donors.iter().map(|(_, v)| **v).collect();
        assert_eq!(names, vec!["generous", "mixed"]);

        // [64, 64] has no strict dominator.
        assert!(cache.donors_for(4, &budgets[0], &budgets).is_empty());
    }

    #[test]
    fn reinsert_replaces_without_relogging() {
        let cache: WarmStartCache<u32> = WarmStartCache::new();
        cache.insert(coord(4, 0), 1);
        cache.insert(coord(4, 0), 2);
        assert_eq!(cache.len(), 1);
        assert_eq!(*cache.get(coord(4, 0)).unwrap(), 2);
    }
}
