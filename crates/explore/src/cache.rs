//! Sharded cross-point warm-start cache.
//!
//! Exports are keyed by their producing key (the sweep driver uses
//! [`PointCoord`]; the `mcs-serve` daemon layers a digest key on top)
//! and stored in `Arc`s across a fixed set of `RwLock` shards, so
//! readers can look donors up concurrently while writers publish.
//! Determinism comes from the publication discipline, not from locking:
//! the sweep driver inserts only at wave barriers, in wave order, and an
//! append-only log of keys fixes both the donor iteration order and the
//! eviction order — so the donor list any point observes is a pure
//! function of the insertion sequence.
//!
//! A cache built [`WarmStartCache::with_capacity`] is size-bounded:
//! once full, publishing a fresh key evicts the *least recently
//! published* entry (insertion order, refreshed on re-publication — an
//! LRU over writes, deliberately not over reads, so concurrent lookups
//! cannot perturb the eviction order). Evictions are counted for the
//! daemon's metrics surface.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use crate::PointCoord;

/// Number of shards; a small power of two keeps the hash mix cheap.
const SHARDS: usize = 16;

/// FNV-1a as a [`Hasher`], so shard choice is identical on every
/// platform (the std `DefaultHasher` is seeded per process).
struct Fnv(u64);

impl Hasher for Fnv {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// Sharded, optionally size-bounded map from producing key to its
/// warm-start export.
pub struct WarmStartCache<K, V> {
    shards: Vec<RwLock<HashMap<K, Arc<V>>>>,
    /// Keys in publication order, oldest first — the deterministic donor
    /// scan and the eviction order. Re-publication moves a key to the
    /// back (write-recency).
    log: Mutex<Vec<K>>,
    /// Maximum resident entries; `None` is unbounded (the sweep driver's
    /// configuration — a lattice is finite).
    capacity: Option<usize>,
    evictions: AtomicU64,
}

impl<K: Eq + Hash + Clone, V> Default for WarmStartCache<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Eq + Hash + Clone, V> WarmStartCache<K, V> {
    /// An empty, unbounded cache.
    pub fn new() -> Self {
        WarmStartCache {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            log: Mutex::new(Vec::new()),
            capacity: None,
            evictions: AtomicU64::new(0),
        }
    }

    /// An empty cache holding at most `capacity` entries (floor 1).
    /// Publishing beyond the bound evicts the oldest-published entry.
    pub fn with_capacity(capacity: usize) -> Self {
        WarmStartCache {
            capacity: Some(capacity.max(1)),
            ..Self::new()
        }
    }

    fn shard_of(&self, key: &K) -> usize {
        let mut h = Fnv(0xcbf2_9ce4_8422_2325);
        key.hash(&mut h);
        (h.finish() % SHARDS as u64) as usize
    }

    /// Publishes one export. Re-publishing an existing key replaces the
    /// entry and refreshes its position in the eviction order; a fresh
    /// key over capacity evicts the oldest entry first.
    pub fn insert(&self, key: K, value: V) {
        let mut log = self.log.lock().expect("cache log lock");
        let fresh = self.shards[self.shard_of(&key)]
            .write()
            .expect("cache lock")
            .insert(key.clone(), Arc::new(value))
            .is_none();
        if fresh {
            if let Some(cap) = self.capacity {
                while log.len() >= cap {
                    let oldest = log.remove(0);
                    self.shards[self.shard_of(&oldest)]
                        .write()
                        .expect("cache lock")
                        .remove(&oldest);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
        } else if let Some(pos) = log.iter().position(|k| *k == key) {
            log.remove(pos);
        }
        log.push(key);
    }

    /// The export published under `key`, if resident.
    pub fn get(&self, key: &K) -> Option<Arc<V>> {
        self.shards[self.shard_of(key)]
            .read()
            .expect("cache lock")
            .get(key)
            .cloned()
    }

    /// Resident keys in publication order (oldest first) — the
    /// deterministic scan order for donor selection.
    pub fn keys(&self) -> Vec<K> {
        self.log.lock().expect("cache log lock").clone()
    }

    /// Exports resident in the cache.
    pub fn len(&self) -> usize {
        self.log.lock().expect("cache log lock").len()
    }

    /// `true` when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entries evicted by the size bound since construction.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// The configured bound, `None` when unbounded.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }
}

impl<V> WarmStartCache<PointCoord, V> {
    /// Donors applicable to a point at `rate` with budget vector
    /// `budget`: exports from the same rate whose budget vectors
    /// dominate (are componentwise `>=`) the point's, in publication
    /// order. `budgets` resolves a donor's `budget_ix` to its vector.
    pub fn donors_for(
        &self,
        rate: u32,
        budget: &[u32],
        budgets: &[Vec<u32>],
    ) -> Vec<(PointCoord, Arc<V>)> {
        self.keys()
            .into_iter()
            .filter(|d| d.rate == rate)
            .filter(|d| {
                let donor = &budgets[d.budget_ix];
                donor.len() == budget.len()
                    && donor.iter().zip(budget).all(|(&have, &need)| have >= need)
                    && donor != &budget.to_vec()
            })
            .filter_map(|d| self.get(&d).map(|v| (d, v)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coord(rate: u32, budget_ix: usize) -> PointCoord {
        PointCoord { rate, budget_ix }
    }

    #[test]
    fn donors_filter_by_rate_and_budget_dominance() {
        let budgets = vec![vec![64, 64], vec![48, 64], vec![32, 32]];
        let cache: WarmStartCache<PointCoord, &'static str> = WarmStartCache::new();
        cache.insert(coord(4, 0), "generous");
        cache.insert(coord(4, 1), "mixed");
        cache.insert(coord(5, 0), "other-rate");

        // [48, 64] is dominated by [64, 64] but not by itself or by a
        // donor at another rate.
        let donors = cache.donors_for(4, &budgets[1], &budgets);
        let names: Vec<&str> = donors.iter().map(|(_, v)| **v).collect();
        assert_eq!(names, vec!["generous"]);

        // [32, 32] is dominated by both rate-4 donors, in publish order.
        let donors = cache.donors_for(4, &budgets[2], &budgets);
        let names: Vec<&str> = donors.iter().map(|(_, v)| **v).collect();
        assert_eq!(names, vec!["generous", "mixed"]);

        // [64, 64] has no strict dominator.
        assert!(cache.donors_for(4, &budgets[0], &budgets).is_empty());
    }

    #[test]
    fn reinsert_replaces_and_refreshes_recency() {
        let cache: WarmStartCache<PointCoord, u32> = WarmStartCache::new();
        cache.insert(coord(4, 0), 1);
        cache.insert(coord(4, 1), 7);
        cache.insert(coord(4, 0), 2);
        assert_eq!(cache.len(), 2);
        assert_eq!(*cache.get(&coord(4, 0)).unwrap(), 2);
        // Re-publication moved (4,0) behind (4,1) in the scan order.
        assert_eq!(cache.keys(), vec![coord(4, 1), coord(4, 0)]);
    }

    #[test]
    fn capacity_bound_evicts_oldest_first_deterministically() {
        let cache: WarmStartCache<PointCoord, u32> = WarmStartCache::with_capacity(3);
        for i in 0..5 {
            cache.insert(coord(4, i), i as u32);
        }
        // 0 and 1 were published first and evicted first.
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.evictions(), 2);
        assert!(cache.get(&coord(4, 0)).is_none());
        assert!(cache.get(&coord(4, 1)).is_none());
        assert_eq!(cache.keys(), vec![coord(4, 2), coord(4, 3), coord(4, 4)]);
    }

    #[test]
    fn refresh_protects_an_entry_from_eviction() {
        let cache: WarmStartCache<PointCoord, u32> = WarmStartCache::with_capacity(2);
        cache.insert(coord(4, 0), 0);
        cache.insert(coord(4, 1), 1);
        // Refreshing (4,0) makes (4,1) the oldest; the next fresh insert
        // evicts (4,1), not (4,0).
        cache.insert(coord(4, 0), 10);
        cache.insert(coord(4, 2), 2);
        assert_eq!(cache.evictions(), 1);
        assert_eq!(*cache.get(&coord(4, 0)).unwrap(), 10);
        assert!(cache.get(&coord(4, 1)).is_none());
        assert_eq!(cache.keys(), vec![coord(4, 0), coord(4, 2)]);
    }

    #[test]
    fn eviction_keeps_len_at_capacity_under_churn() {
        let cache: WarmStartCache<PointCoord, usize> = WarmStartCache::with_capacity(8);
        for i in 0..100 {
            cache.insert(coord((i % 7) as u32, i), i);
        }
        assert_eq!(cache.len(), 8);
        assert_eq!(cache.evictions(), 92);
        assert_eq!(cache.capacity(), Some(8));
    }
}
