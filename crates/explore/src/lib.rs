//! # mcs-explore
//!
//! Deterministic parallel design-space exploration. The dissertation
//! evaluates every benchmark as a *sweep* — initiation rate and per-chip
//! pin budgets varied together, results reported as cost/performance
//! trade-off tables — and this crate turns that workload into a
//! first-class engine:
//!
//! * [`SweepSpec`] — the lattice to explore: initiation rates ×
//!   per-chip pin-budget vectors × flow variant.
//! * [`driver::sweep`] — a work-stealing parallel driver that walks the
//!   lattice in *waves* (one budget vector per wave, most generous
//!   first), claims points within a wave from an atomic counter, and
//!   collects results into canonical slots so the output is a pure
//!   function of the spec no matter how many worker threads run.
//! * dominance pruning — a point proven pin-infeasible at rate `L` and
//!   budget `P` prunes every point at rate `L' <= L` and budget
//!   `P' <= P` (componentwise) without synthesis: fewer control-step
//!   groups and fewer pins only remove allocations, never add them.
//! * [`cache::WarmStartCache`] — a sharded cross-point cache of opaque
//!   warm-start exports (probe memos, refutation certificates),
//!   published only at wave barriers in wave order so every point sees
//!   a deterministic donor list.
//! * [`pareto_frontier`] — the non-dominated set over
//!   `(latency, total pins, buses)`.
//!
//! The crate is intentionally free of synthesis knowledge: a
//! [`PointRunner`] implementation (in `multichip-hls`) maps one lattice
//! point to a synthesis run and decides what warm-start data transfers
//! between points. Everything here — wave order, pruning, caching,
//! collection, serialization — is generic and deterministic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod driver;

pub use cache::WarmStartCache;
pub use driver::{sweep, SweepError, SweepOptions};

/// Which synthesis flow a sweep exercises at every lattice point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlowVariant {
    /// Chapter 3 simple partitioning: schedule under the pin checker.
    Simple,
    /// Chapter 4 connect-first: interconnect before scheduling.
    ConnectFirst,
    /// Force-directed schedule first, resources reported afterwards.
    ScheduleFirst,
}

impl FlowVariant {
    /// Stable lower-case name used in JSON/CSV and on the CLI.
    pub fn as_str(self) -> &'static str {
        match self {
            FlowVariant::Simple => "simple",
            FlowVariant::ConnectFirst => "connect-first",
            FlowVariant::ScheduleFirst => "schedule-first",
        }
    }

    /// Inverse of [`FlowVariant::as_str`].
    pub fn parse(s: &str) -> Option<FlowVariant> {
        match s {
            "simple" => Some(FlowVariant::Simple),
            "connect-first" => Some(FlowVariant::ConnectFirst),
            "schedule-first" => Some(FlowVariant::ScheduleFirst),
            _ => None,
        }
    }
}

/// The sweep lattice: every rate crossed with every pin-budget vector,
/// all run through one flow variant.
#[derive(Clone, Debug)]
pub struct SweepSpec {
    /// Display name of the design under exploration (labels the output).
    pub design: String,
    /// Flow variant run at every point.
    pub flow: FlowVariant,
    /// Initiation rates, in user order (the output preserves it).
    pub rates: Vec<u32>,
    /// Per-chip pin-budget vectors, in user order. All vectors must
    /// have the same length (one entry per chip).
    pub budgets: Vec<Vec<u32>>,
}

/// A lattice point: one `(rate, budget vector)` pair, identified by
/// indices into the spec so coordinates stay small and hashable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PointCoord {
    /// Initiation rate at this point.
    pub rate: u32,
    /// Index into [`SweepSpec::budgets`].
    pub budget_ix: usize,
}

/// How a lattice point ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PointStatus {
    /// Synthesis succeeded; the cost fields are populated.
    Feasible,
    /// The exact pin-feasibility gate rejected the point. These
    /// verdicts lift to dominated points (the pruning rule).
    PinInfeasible,
    /// The pin gate passed but the (incomplete) search found no
    /// solution. Does NOT lift: a bigger node budget might succeed.
    SearchFailed,
    /// Skipped without synthesis, dominated by a pin-infeasible point.
    Pruned,
    /// The runner failed for a reason outside the taxonomy above (this
    /// includes a runner panic, which the driver quarantines to the
    /// point's own slot instead of aborting the sweep).
    Error,
    /// Never reached: the sweep's execution budget tripped at a wave
    /// barrier before this point's wave started. The report is still a
    /// complete lattice — an *anytime* result whose frontier covers the
    /// waves that did run.
    Skipped,
}

impl PointStatus {
    /// Stable kebab-case name used in JSON/CSV.
    pub fn as_str(self) -> &'static str {
        match self {
            PointStatus::Feasible => "feasible",
            PointStatus::PinInfeasible => "pin-infeasible",
            PointStatus::SearchFailed => "search-failed",
            PointStatus::Pruned => "pruned",
            PointStatus::Error => "error",
            PointStatus::Skipped => "skipped",
        }
    }
}

/// What a [`PointRunner`] reports for one synthesized point. All fields
/// must be deterministic functions of the point and its seed list —
/// wall-clock measurements belong in the caller's telemetry, not here.
#[derive(Clone, Debug, Default)]
pub struct PointOutcome {
    /// Verdict. [`PointStatus::Pruned`] is reserved for the driver.
    pub status: Option<PointStatus>,
    /// Pipeline latency (schedule length) when feasible.
    pub latency: Option<i64>,
    /// Total pins used across chips when feasible.
    pub total_pins: Option<u32>,
    /// Interchip buses when feasible.
    pub buses: Option<u32>,
    /// Registers in the synthesized netlist when feasible.
    pub registers: Option<u32>,
    /// Pin-probe solver invocations at this point.
    pub solver_probes: u64,
    /// Pin-probe memo hits at this point.
    pub probe_memo_hits: u64,
    /// Pin-probe memo hits answered by warm-start seeds.
    pub probe_seed_hits: u64,
    /// Connection-search nodes expanded at this point.
    pub search_nodes: u64,
    /// Connection-search cache prunes at this point.
    pub search_cache_hits: u64,
    /// Connection-search prunes answered by seeded refutation
    /// certificates.
    pub cert_seed_hits: u64,
    /// Free-form detail (error text); must be deterministic.
    pub detail: String,
}

/// Maps one lattice point to a synthesis run.
///
/// Implementations must be deterministic: the same `(coord, budget,
/// seeds)` triple must produce the same outcome and export, because the
/// driver guarantees the seed list is a pure function of the spec and
/// relies on this to make sweeps byte-identical across worker counts.
///
/// `seeds` are exports from already-completed points at the *same rate*
/// whose budget vectors dominate (are componentwise `>=`) this point's,
/// in deterministic publish order. A pin-infeasible point never
/// contributes an export (the driver drops it), which is what makes
/// dominance pruning invisible to every other point's inputs.
pub trait PointRunner: Sync {
    /// Warm-start payload carried between points (probe memos,
    /// refutation certificates, ...). Opaque to the driver.
    type Export: Send + Sync;

    /// Synthesizes `coord` with pin budgets `budget`, optionally warm
    /// started from `seeds`. Returns the outcome plus this point's own
    /// export for downstream points.
    fn run(
        &self,
        coord: PointCoord,
        budget: &[u32],
        seeds: &[(PointCoord, std::sync::Arc<Self::Export>)],
    ) -> (PointOutcome, Option<Self::Export>);
}

/// One lattice point's result in the final report.
#[derive(Clone, Debug)]
pub struct ExploreOutcome {
    /// The point.
    pub coord: PointCoord,
    /// Verdict and measurements.
    pub outcome: PointOutcome,
    /// Resolved status (the driver fills [`PointStatus::Pruned`] in).
    pub status: PointStatus,
}

/// A Pareto-optimal point over `(latency, total pins, buses)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrontierPoint {
    /// The point.
    pub coord: PointCoord,
    /// Pipeline latency.
    pub latency: i64,
    /// Total pins used.
    pub total_pins: u32,
    /// Interchip buses.
    pub buses: u32,
}

/// Aggregate sweep counters (all deterministic).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Lattice points in the spec.
    pub points: u64,
    /// Points actually synthesized.
    pub run: u64,
    /// Points skipped by dominance pruning.
    pub pruned: u64,
    /// Feasible points.
    pub feasible: u64,
    /// Pin-infeasible points (excluding pruned ones).
    pub pin_infeasible: u64,
    /// Search-failed points.
    pub search_failed: u64,
    /// Runner errors (including quarantined runner panics).
    pub errors: u64,
    /// Points never reached because the execution budget tripped.
    pub skipped: u64,
    /// Runner panics quarantined to their own lattice slot.
    pub panics: u64,
    /// How the sweep ended: `Complete`, `WorkerPanicked` (degraded by a
    /// quarantined panic), or the budget verdict that stopped it early.
    pub termination: mcs_ctl::Termination,
    /// Warm-start probe memo hits summed over points.
    pub probe_seed_hits: u64,
    /// Warm-start certificate hits summed over points.
    pub cert_seed_hits: u64,
    /// Exports resident in the warm-start cache at the end.
    pub cache_entries: u64,
}

impl SweepStats {
    /// Total warm-start hits (probe memo + refutation certificates).
    pub fn seed_hits(&self) -> u64 {
        self.probe_seed_hits + self.cert_seed_hits
    }
}

/// The full result of a sweep: per-point outcomes in canonical order
/// (budget vectors in spec order, rates in spec order within each), the
/// Pareto frontier, and aggregate counters. Serialization is
/// hand-rolled and byte-stable: two reports with equal contents render
/// to identical JSON and CSV.
#[derive(Clone, Debug)]
pub struct SweepReport {
    /// The spec that produced this report.
    pub spec: SweepSpec,
    /// Outcomes, one per lattice point, in canonical order.
    pub outcomes: Vec<ExploreOutcome>,
    /// Pareto frontier over `(latency, total pins, buses)`.
    pub frontier: Vec<FrontierPoint>,
    /// Aggregate counters.
    pub stats: SweepStats,
}

/// Extracts the non-dominated set over `(latency, total pins, buses)`
/// from the feasible outcomes. A point is dominated when another
/// feasible point is no worse on all three axes and strictly better on
/// at least one; cost ties all survive. The frontier is sorted by
/// `(latency, pins, buses, budget_ix, rate)` so it is deterministic.
pub fn pareto_frontier(outcomes: &[ExploreOutcome]) -> Vec<FrontierPoint> {
    let candidates: Vec<FrontierPoint> = outcomes
        .iter()
        .filter(|o| o.status == PointStatus::Feasible)
        .filter_map(|o| {
            Some(FrontierPoint {
                coord: o.coord,
                latency: o.outcome.latency?,
                total_pins: o.outcome.total_pins?,
                buses: o.outcome.buses?,
            })
        })
        .collect();
    let dominates = |a: &FrontierPoint, b: &FrontierPoint| {
        a.latency <= b.latency
            && a.total_pins <= b.total_pins
            && a.buses <= b.buses
            && (a.latency < b.latency || a.total_pins < b.total_pins || a.buses < b.buses)
    };
    let mut frontier: Vec<FrontierPoint> = candidates
        .iter()
        .filter(|p| !candidates.iter().any(|q| dominates(q, p)))
        .copied()
        .collect();
    frontier.sort_by_key(|p| {
        (
            p.latency,
            p.total_pins,
            p.buses,
            p.coord.budget_ix,
            p.coord.rate,
        )
    });
    frontier
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn opt<T: std::fmt::Display>(v: Option<T>) -> String {
    v.map_or_else(|| "null".into(), |x| x.to_string())
}

impl SweepReport {
    /// Strict JSON rendering of the whole report. Byte-stable: contains
    /// no timing, thread or environment information.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024 + self.outcomes.len() * 192);
        s.push_str(&format!(
            "{{\"design\":\"{}\",\"flow\":\"{}\"",
            json_escape(&self.spec.design),
            self.spec.flow.as_str()
        ));
        s.push_str(",\"rates\":[");
        for (i, r) in self.spec.rates.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&r.to_string());
        }
        s.push_str("],\"budgets\":[");
        for (i, b) in self.spec.budgets.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('[');
            for (j, p) in b.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                s.push_str(&p.to_string());
            }
            s.push(']');
        }
        s.push_str("],\"points\":[");
        for (i, o) in self.outcomes.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"rate\":{},\"budget_ix\":{},\"status\":\"{}\",\
                 \"latency\":{},\"pins\":{},\"buses\":{},\"registers\":{},\
                 \"solver_probes\":{},\"probe_memo_hits\":{},\
                 \"probe_seed_hits\":{},\"search_nodes\":{},\
                 \"search_cache_hits\":{},\"cert_seed_hits\":{},\
                 \"detail\":\"{}\"}}",
                o.coord.rate,
                o.coord.budget_ix,
                o.status.as_str(),
                opt(o.outcome.latency),
                opt(o.outcome.total_pins),
                opt(o.outcome.buses),
                opt(o.outcome.registers),
                o.outcome.solver_probes,
                o.outcome.probe_memo_hits,
                o.outcome.probe_seed_hits,
                o.outcome.search_nodes,
                o.outcome.search_cache_hits,
                o.outcome.cert_seed_hits,
                json_escape(&o.outcome.detail),
            ));
        }
        s.push_str("],\"frontier\":[");
        for (i, p) in self.frontier.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"rate\":{},\"budget_ix\":{},\"latency\":{},\"pins\":{},\"buses\":{}}}",
                p.coord.rate, p.coord.budget_ix, p.latency, p.total_pins, p.buses
            ));
        }
        let st = &self.stats;
        s.push_str(&format!(
            "],\"stats\":{{\"points\":{},\"run\":{},\"pruned\":{},\
             \"feasible\":{},\"pin_infeasible\":{},\"search_failed\":{},\
             \"errors\":{},\"skipped\":{},\"panics\":{},\
             \"termination\":\"{}\",\
             \"probe_seed_hits\":{},\"cert_seed_hits\":{},\
             \"cache_entries\":{}}}}}",
            st.points,
            st.run,
            st.pruned,
            st.feasible,
            st.pin_infeasible,
            st.search_failed,
            st.errors,
            st.skipped,
            st.panics,
            st.termination.name(),
            st.probe_seed_hits,
            st.cert_seed_hits,
            st.cache_entries,
        ));
        s
    }

    /// CSV rendering: one row per lattice point in canonical order.
    /// Byte-stable, like [`SweepReport::to_json`].
    pub fn to_csv(&self) -> String {
        let mut s = String::from(
            "rate,budget_ix,budget,status,latency,pins,buses,registers,\
             probe_seed_hits,cert_seed_hits\n",
        );
        for o in &self.outcomes {
            let budget = self.spec.budgets[o.coord.budget_ix]
                .iter()
                .map(|p| p.to_string())
                .collect::<Vec<_>>()
                .join("|");
            let cell = |v: Option<i64>| v.map_or_else(String::new, |x| x.to_string());
            s.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{}\n",
                o.coord.rate,
                o.coord.budget_ix,
                budget,
                o.status.as_str(),
                cell(o.outcome.latency),
                cell(o.outcome.total_pins.map(i64::from)),
                cell(o.outcome.buses.map(i64::from)),
                cell(o.outcome.registers.map(i64::from)),
                o.outcome.probe_seed_hits,
                o.outcome.cert_seed_hits,
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feasible(rate: u32, budget_ix: usize, lat: i64, pins: u32, buses: u32) -> ExploreOutcome {
        ExploreOutcome {
            coord: PointCoord { rate, budget_ix },
            status: PointStatus::Feasible,
            outcome: PointOutcome {
                status: Some(PointStatus::Feasible),
                latency: Some(lat),
                total_pins: Some(pins),
                buses: Some(buses),
                registers: Some(4),
                ..PointOutcome::default()
            },
        }
    }

    #[test]
    fn frontier_keeps_only_non_dominated_points() {
        let outcomes = vec![
            feasible(4, 0, 10, 100, 3),
            // Dominated: same latency, more pins, more buses.
            feasible(5, 0, 10, 120, 4),
            // Trades latency for pins: survives.
            feasible(6, 1, 8, 140, 3),
            // Infeasible points never enter the frontier.
            ExploreOutcome {
                coord: PointCoord {
                    rate: 7,
                    budget_ix: 1,
                },
                status: PointStatus::PinInfeasible,
                outcome: PointOutcome::default(),
            },
        ];
        let frontier = pareto_frontier(&outcomes);
        let coords: Vec<(u32, usize)> = frontier
            .iter()
            .map(|p| (p.coord.rate, p.coord.budget_ix))
            .collect();
        assert_eq!(coords, vec![(6, 1), (4, 0)]);
    }

    #[test]
    fn frontier_cost_ties_all_survive() {
        let outcomes = vec![feasible(4, 0, 10, 100, 3), feasible(5, 1, 10, 100, 3)];
        assert_eq!(pareto_frontier(&outcomes).len(), 2);
    }

    #[test]
    fn report_json_is_strict_and_csv_row_count_matches() {
        let spec = SweepSpec {
            design: "unit".into(),
            flow: FlowVariant::Simple,
            rates: vec![4, 5],
            budgets: vec![vec![64, 64]],
        };
        let outcomes = vec![
            feasible(4, 0, 10, 100, 3),
            ExploreOutcome {
                coord: PointCoord {
                    rate: 5,
                    budget_ix: 0,
                },
                status: PointStatus::Pruned,
                outcome: PointOutcome {
                    detail: "dominated by rate 6, budget 0".into(),
                    ..PointOutcome::default()
                },
            },
        ];
        let frontier = pareto_frontier(&outcomes);
        let report = SweepReport {
            spec,
            outcomes,
            frontier,
            stats: SweepStats {
                points: 2,
                run: 1,
                pruned: 1,
                feasible: 1,
                ..SweepStats::default()
            },
        };
        let json = report.to_json();
        mcs_obs::export::validate_json(&json).expect("strict JSON");
        assert!(json.contains("\"status\":\"pruned\""));
        assert_eq!(report.to_csv().lines().count(), 1 + 2);
    }

    #[test]
    fn flow_variant_names_round_trip() {
        for f in [
            FlowVariant::Simple,
            FlowVariant::ConnectFirst,
            FlowVariant::ScheduleFirst,
        ] {
            assert_eq!(FlowVariant::parse(f.as_str()), Some(f));
        }
        assert_eq!(FlowVariant::parse("nope"), None);
    }
}
