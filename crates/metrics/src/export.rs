//! Snapshot exporters: strict-valid JSON and a Prometheus-style text
//! exposition format. Both iterate ordered maps, so equal snapshots
//! render byte-identically — the property the `--jobs 1/2/8`
//! determinism tests and the golden tests lock.

use crate::Snapshot;

/// Escapes a string for a JSON string literal or a Prometheus label
/// value (the escape sets coincide for the characters we allow).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Sanitizes a metric name for Prometheus: `[a-zA-Z0-9_]` pass through,
/// everything else (the workspace uses `.` and `-`) becomes `_`.
pub fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Renders a snapshot as one JSON object:
///
/// ```json
/// {"counters":{...},"gauges":{...},
///  "histograms":{"name":{"count":N,"sum":N,"min":N,"max":N,
///                        "p50":N,"p90":N,"p99":N}},
///  "profile":[{"path":"flow/connect","calls":N,"wall_us":N}]}
/// ```
///
/// Keys are sorted; the output always passes
/// `mcs_obs::export::validate_json`.
pub fn to_json(snap: &Snapshot) -> String {
    let mut out = String::from("{\"counters\":{");
    for (i, (name, v)) in snap.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{v}", escape(name)));
    }
    out.push_str("},\"gauges\":{");
    for (i, (name, v)) in snap.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{v}", escape(name)));
    }
    out.push_str("},\"histograms\":{");
    for (i, (name, h)) in snap.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\"{}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
            escape(name),
            h.count,
            h.sum,
            h.min,
            h.max,
            h.quantile(0.5),
            h.quantile(0.9),
            h.quantile(0.99),
        ));
    }
    out.push_str("},\"profile\":[");
    for (i, node) in snap.profile.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"path\":\"{}\",\"calls\":{},\"wall_us\":{}}}",
            escape(&node.path),
            node.calls,
            node.wall_us
        ));
    }
    out.push_str("]}");
    out
}

/// Renders a snapshot in the Prometheus text exposition format:
/// counters and gauges as single samples, histograms as summaries
/// (`{quantile="0.5|0.9|0.99"}` plus `_count`/`_sum`/`_max`), and the
/// span profile as two labelled families (`profile_calls`,
/// `profile_wall_us`). Families are sorted by name, so equal snapshots
/// render byte-identically.
pub fn to_prometheus(snap: &Snapshot) -> String {
    let mut out = String::new();
    for (name, v) in &snap.counters {
        let n = sanitize(name);
        out.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
    }
    for (name, v) in &snap.gauges {
        let n = sanitize(name);
        out.push_str(&format!("# TYPE {n} gauge\n{n} {v}\n"));
    }
    for (name, h) in &snap.histograms {
        let n = sanitize(name);
        out.push_str(&format!("# TYPE {n} summary\n"));
        for (q, label) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")] {
            out.push_str(&format!("{n}{{quantile=\"{label}\"}} {}\n", h.quantile(q)));
        }
        out.push_str(&format!("{n}_count {}\n", h.count));
        out.push_str(&format!("{n}_sum {}\n", h.sum));
        out.push_str(&format!("{n}_max {}\n", h.max));
    }
    if !snap.profile.is_empty() {
        out.push_str("# TYPE profile_calls counter\n");
        for node in &snap.profile {
            out.push_str(&format!(
                "profile_calls{{path=\"{}\"}} {}\n",
                escape(&node.path),
                node.calls
            ));
        }
        out.push_str("# TYPE profile_wall_us counter\n");
        for node in &snap.profile {
            out.push_str(&format!(
                "profile_wall_us{{path=\"{}\"}} {}\n",
                escape(&node.path),
                node.wall_us
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MetricsHandle, Registry};
    use mcs_ctl::ManualClock;
    use std::sync::Arc;

    /// A small registry with one of everything, on a hand-cranked clock
    /// so every duration is exact.
    fn sample() -> Snapshot {
        let clock = Arc::new(ManualClock::new());
        let reg = Arc::new(Registry::with_clock(clock.clone()));
        let m = MetricsHandle::new(reg.clone());
        m.counter("ilp.pivots").add(42);
        m.gauge("explore.frontier").set(3);
        let h = m.histogram("probe.latency_us.solver");
        for v in [2u64, 3, 3, 90] {
            h.observe(v);
        }
        {
            let _flow = m.span("flow");
            clock.advance_us(7);
            let _c = m.span("connect");
            clock.advance_us(5);
        }
        reg.snapshot()
    }

    #[test]
    fn json_is_strict_valid_and_golden() {
        let line = to_json(&sample());
        mcs_obs::export::validate_json(&line).expect("metrics JSON parses");
        assert_eq!(
            line,
            "{\"counters\":{\"ilp.pivots\":42},\
             \"gauges\":{\"explore.frontier\":3},\
             \"histograms\":{\"probe.latency_us.solver\":{\"count\":4,\"sum\":98,\"min\":2,\"max\":90,\"p50\":3,\"p90\":90,\"p99\":90}},\
             \"profile\":[{\"path\":\"flow\",\"calls\":1,\"wall_us\":12},{\"path\":\"flow/connect\",\"calls\":1,\"wall_us\":5}]}"
        );
    }

    #[test]
    fn prometheus_text_is_golden() {
        assert_eq!(
            to_prometheus(&sample()),
            "# TYPE ilp_pivots counter\n\
             ilp_pivots 42\n\
             # TYPE explore_frontier gauge\n\
             explore_frontier 3\n\
             # TYPE probe_latency_us_solver summary\n\
             probe_latency_us_solver{quantile=\"0.5\"} 3\n\
             probe_latency_us_solver{quantile=\"0.9\"} 90\n\
             probe_latency_us_solver{quantile=\"0.99\"} 90\n\
             probe_latency_us_solver_count 4\n\
             probe_latency_us_solver_sum 98\n\
             probe_latency_us_solver_max 90\n\
             # TYPE profile_calls counter\n\
             profile_calls{path=\"flow\"} 1\n\
             profile_calls{path=\"flow/connect\"} 1\n\
             # TYPE profile_wall_us counter\n\
             profile_wall_us{path=\"flow\"} 12\n\
             profile_wall_us{path=\"flow/connect\"} 5\n"
        );
    }

    #[test]
    fn empty_snapshot_renders_cleanly() {
        let snap = Snapshot::default();
        let json = to_json(&snap);
        mcs_obs::export::validate_json(&json).expect("empty JSON parses");
        assert_eq!(
            json,
            "{\"counters\":{},\"gauges\":{},\"histograms\":{},\"profile\":[]}"
        );
        assert_eq!(to_prometheus(&snap), "");
    }

    #[test]
    fn sanitize_maps_workspace_names() {
        assert_eq!(sanitize("probe.latency_us.memo"), "probe_latency_us_memo");
        assert_eq!(sanitize("pin-check"), "pin_check");
    }
}
