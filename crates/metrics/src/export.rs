//! Snapshot exporters: strict-valid JSON and a Prometheus-style text
//! exposition format. Both iterate ordered maps, so equal snapshots
//! render byte-identically — the property the `--jobs 1/2/8`
//! determinism tests and the golden tests lock. [`from_json`] is the
//! matching importer, used by `mcs-hls explain --metrics-in` to render
//! a metrics file written by an earlier run (possibly an earlier
//! binary).

use crate::{bucket_index, HistogramSnapshot, ProfileNode, Snapshot, HISTOGRAM_BUCKETS};

/// Escapes a string for a JSON string literal or a Prometheus label
/// value (the escape sets coincide for the characters we allow).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Sanitizes a metric name for Prometheus: `[a-zA-Z0-9_]` pass through,
/// everything else (the workspace uses `.` and `-`) becomes `_`.
pub fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Renders a snapshot as one JSON object:
///
/// ```json
/// {"counters":{...},"gauges":{...},
///  "histograms":{"name":{"count":N,"sum":N,"min":N,"max":N,
///                        "p50":N,"p90":N,"p99":N}},
///  "profile":[{"path":"flow/connect","calls":N,"wall_us":N}]}
/// ```
///
/// Keys are sorted; the output always passes
/// `mcs_obs::export::validate_json`.
pub fn to_json(snap: &Snapshot) -> String {
    let mut out = String::from("{\"counters\":{");
    for (i, (name, v)) in snap.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{v}", escape(name)));
    }
    out.push_str("},\"gauges\":{");
    for (i, (name, v)) in snap.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{v}", escape(name)));
    }
    out.push_str("},\"histograms\":{");
    for (i, (name, h)) in snap.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\"{}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
            escape(name),
            h.count,
            h.sum,
            h.min,
            h.max,
            h.quantile(0.5),
            h.quantile(0.9),
            h.quantile(0.99),
        ));
    }
    out.push_str("},\"profile\":[");
    for (i, node) in snap.profile.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"path\":\"{}\",\"calls\":{},\"wall_us\":{}}}",
            escape(&node.path),
            node.calls,
            node.wall_us
        ));
    }
    out.push_str("]}");
    out
}

/// Renders a snapshot in the Prometheus text exposition format:
/// counters and gauges as single samples, histograms as summaries
/// (`{quantile="0.5|0.9|0.99"}` plus `_count`/`_sum`/`_max`), and the
/// span profile as two labelled families (`profile_calls`,
/// `profile_wall_us`). Families are sorted by name, so equal snapshots
/// render byte-identically.
pub fn to_prometheus(snap: &Snapshot) -> String {
    let mut out = String::new();
    for (name, v) in &snap.counters {
        let n = sanitize(name);
        out.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
    }
    for (name, v) in &snap.gauges {
        let n = sanitize(name);
        out.push_str(&format!("# TYPE {n} gauge\n{n} {v}\n"));
    }
    for (name, h) in &snap.histograms {
        let n = sanitize(name);
        out.push_str(&format!("# TYPE {n} summary\n"));
        for (q, label) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")] {
            out.push_str(&format!("{n}{{quantile=\"{label}\"}} {}\n", h.quantile(q)));
        }
        out.push_str(&format!("{n}_count {}\n", h.count));
        out.push_str(&format!("{n}_sum {}\n", h.sum));
        out.push_str(&format!("{n}_max {}\n", h.max));
    }
    if !snap.profile.is_empty() {
        out.push_str("# TYPE profile_calls counter\n");
        for node in &snap.profile {
            out.push_str(&format!(
                "profile_calls{{path=\"{}\"}} {}\n",
                escape(&node.path),
                node.calls
            ));
        }
        out.push_str("# TYPE profile_wall_us counter\n");
        for node in &snap.profile {
            out.push_str(&format!(
                "profile_wall_us{{path=\"{}\"}} {}\n",
                escape(&node.path),
                node.wall_us
            ));
        }
    }
    out
}

/// Parses a snapshot previously rendered by [`to_json`].
///
/// Counters, gauges and the span profile round-trip exactly. Histograms
/// are rebuilt at bucket resolution from the exported quantiles: the
/// per-bucket counts are synthesized so that `quantile(0.5/0.9/0.99)`
/// and `max` reproduce the exported values (within the same ~25% bucket
/// width the live histogram already had). `count`, `sum`, `min` and
/// `max` are exact.
///
/// # Errors
///
/// A description of the first malformed construct. Unknown top-level
/// keys are rejected — a file that does not parse here was not written
/// by [`to_json`].
pub fn from_json(text: &str) -> Result<Snapshot, String> {
    let mut p = Reader {
        b: text.as_bytes(),
        i: 0,
    };
    let mut snap = Snapshot::default();
    p.expect(b'{')?;
    loop {
        let key = p.string()?;
        p.expect(b':')?;
        match key.as_str() {
            "counters" => {
                for (name, v) in p.flat_object()? {
                    let v = u64::try_from(v).map_err(|_| format!("counter `{name}` < 0"))?;
                    snap.counters.insert(name, v);
                }
            }
            "gauges" => {
                for (name, v) in p.flat_object()? {
                    let v = i64::try_from(v).map_err(|_| format!("gauge `{name}` overflows"))?;
                    snap.gauges.insert(name, v);
                }
            }
            "histograms" => {
                p.expect(b'{')?;
                if p.peek() == Some(b'}') {
                    p.i += 1;
                } else {
                    loop {
                        let name = p.string()?;
                        p.expect(b':')?;
                        let fields = p.flat_object()?;
                        let get = |k: &str| -> Result<u64, String> {
                            fields
                                .iter()
                                .find(|(n, _)| n == k)
                                .and_then(|(_, v)| u64::try_from(*v).ok())
                                .ok_or_else(|| format!("histogram `{name}` lacks `{k}`"))
                        };
                        snap.histograms.insert(
                            name.clone(),
                            rebuild_histogram(
                                get("count")?,
                                get("sum")?,
                                get("min")?,
                                get("max")?,
                                [get("p50")?, get("p90")?, get("p99")?],
                            ),
                        );
                        if !p.comma_or(b'}')? {
                            break;
                        }
                    }
                }
            }
            "profile" => {
                p.expect(b'[')?;
                if p.peek() == Some(b']') {
                    p.i += 1;
                } else {
                    loop {
                        let fields = p.profile_node()?;
                        snap.profile.push(fields);
                        if !p.comma_or(b']')? {
                            break;
                        }
                    }
                }
            }
            other => return Err(format!("unknown top-level key `{other}`")),
        }
        if !p.comma_or(b'}')? {
            break;
        }
    }
    p.skip_ws();
    if p.i != p.b.len() {
        return Err(format!("trailing garbage at byte {}", p.i));
    }
    Ok(snap)
}

/// Synthesizes bucket counts reproducing the exported quantiles: the
/// rank-mass up to each exported percentile lands in that percentile's
/// bucket, the remainder in `max`'s bucket.
fn rebuild_histogram(
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    [p50, p90, p99]: [u64; 3],
) -> HistogramSnapshot {
    let mut buckets = vec![0u64; HISTOGRAM_BUCKETS];
    if count > 0 {
        let rank = |q: f64| ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut placed = 0;
        for (value, r) in [
            (p50, rank(0.5)),
            (p90, rank(0.9)),
            (p99, rank(0.99)),
            (max, count),
        ] {
            let add = r.saturating_sub(placed);
            buckets[bucket_index(value)] += add;
            placed += add;
        }
    }
    HistogramSnapshot {
        count,
        sum,
        min,
        max,
        buckets,
    }
}

/// A minimal reader for the exact JSON shape [`to_json`] emits:
/// objects, arrays, strings with `\"`/`\\`/`\n` escapes, and integers.
struct Reader<'a> {
    b: &'a [u8],
    i: usize,
}

impl Reader<'_> {
    fn skip_ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", c as char, self.i))
        }
    }

    /// After a value: consumes `,` (returning `true`) or `close`
    /// (returning `false`).
    fn comma_or(&mut self, close: u8) -> Result<bool, String> {
        match self.peek() {
            Some(b',') => {
                self.i += 1;
                Ok(true)
            }
            Some(c) if c == close => {
                self.i += 1;
                Ok(false)
            }
            _ => Err(format!(
                "expected `,` or `{}` at byte {}",
                close as char, self.i
            )),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        while let Some(&c) = self.b.get(self.i) {
            self.i += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => match self.b.get(self.i).copied() {
                    Some(b'"') => {
                        out.push('"');
                        self.i += 1;
                    }
                    Some(b'\\') => {
                        out.push('\\');
                        self.i += 1;
                    }
                    Some(b'n') => {
                        out.push('\n');
                        self.i += 1;
                    }
                    _ => return Err(format!("bad escape at byte {}", self.i)),
                },
                c => out.push(c as char),
            }
        }
        Err("unterminated string".into())
    }

    fn integer(&mut self) -> Result<i128, String> {
        self.skip_ws();
        let start = self.i;
        if self.b.get(self.i) == Some(&b'-') {
            self.i += 1;
        }
        while self.i < self.b.len() && self.b[self.i].is_ascii_digit() {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("bad integer at byte {start}"))
    }

    /// `{"name":int,...}` — the shape of the counters/gauges maps and
    /// of one exported histogram.
    fn flat_object(&mut self) -> Result<Vec<(String, i128)>, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(fields);
        }
        loop {
            let name = self.string()?;
            self.expect(b':')?;
            fields.push((name, self.integer()?));
            if !self.comma_or(b'}')? {
                return Ok(fields);
            }
        }
    }

    fn profile_node(&mut self) -> Result<ProfileNode, String> {
        self.expect(b'{')?;
        let mut path = None;
        let mut calls = None;
        let mut wall_us = None;
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            match key.as_str() {
                "path" => path = Some(self.string()?),
                "calls" => calls = u64::try_from(self.integer()?).ok(),
                "wall_us" => wall_us = u64::try_from(self.integer()?).ok(),
                other => return Err(format!("unknown profile key `{other}`")),
            }
            if !self.comma_or(b'}')? {
                break;
            }
        }
        Ok(ProfileNode {
            path: path.ok_or("profile node lacks `path`")?,
            calls: calls.ok_or("profile node lacks `calls`")?,
            wall_us: wall_us.ok_or("profile node lacks `wall_us`")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MetricsHandle, Registry};
    use mcs_ctl::ManualClock;
    use std::sync::Arc;

    /// A small registry with one of everything, on a hand-cranked clock
    /// so every duration is exact.
    fn sample() -> Snapshot {
        let clock = Arc::new(ManualClock::new());
        let reg = Arc::new(Registry::with_clock(clock.clone()));
        let m = MetricsHandle::new(reg.clone());
        m.counter("ilp.pivots").add(42);
        m.gauge("explore.frontier").set(3);
        let h = m.histogram("probe.latency_us.solver");
        for v in [2u64, 3, 3, 90] {
            h.observe(v);
        }
        {
            let _flow = m.span("flow");
            clock.advance_us(7);
            let _c = m.span("connect");
            clock.advance_us(5);
        }
        reg.snapshot()
    }

    #[test]
    fn json_is_strict_valid_and_golden() {
        let line = to_json(&sample());
        mcs_obs::export::validate_json(&line).expect("metrics JSON parses");
        assert_eq!(
            line,
            "{\"counters\":{\"ilp.pivots\":42},\
             \"gauges\":{\"explore.frontier\":3},\
             \"histograms\":{\"probe.latency_us.solver\":{\"count\":4,\"sum\":98,\"min\":2,\"max\":90,\"p50\":3,\"p90\":90,\"p99\":90}},\
             \"profile\":[{\"path\":\"flow\",\"calls\":1,\"wall_us\":12},{\"path\":\"flow/connect\",\"calls\":1,\"wall_us\":5}]}"
        );
    }

    #[test]
    fn prometheus_text_is_golden() {
        assert_eq!(
            to_prometheus(&sample()),
            "# TYPE ilp_pivots counter\n\
             ilp_pivots 42\n\
             # TYPE explore_frontier gauge\n\
             explore_frontier 3\n\
             # TYPE probe_latency_us_solver summary\n\
             probe_latency_us_solver{quantile=\"0.5\"} 3\n\
             probe_latency_us_solver{quantile=\"0.9\"} 90\n\
             probe_latency_us_solver{quantile=\"0.99\"} 90\n\
             probe_latency_us_solver_count 4\n\
             probe_latency_us_solver_sum 98\n\
             probe_latency_us_solver_max 90\n\
             # TYPE profile_calls counter\n\
             profile_calls{path=\"flow\"} 1\n\
             profile_calls{path=\"flow/connect\"} 1\n\
             # TYPE profile_wall_us counter\n\
             profile_wall_us{path=\"flow\"} 12\n\
             profile_wall_us{path=\"flow/connect\"} 5\n"
        );
    }

    #[test]
    fn empty_snapshot_renders_cleanly() {
        let snap = Snapshot::default();
        let json = to_json(&snap);
        mcs_obs::export::validate_json(&json).expect("empty JSON parses");
        assert_eq!(
            json,
            "{\"counters\":{},\"gauges\":{},\"histograms\":{},\"profile\":[]}"
        );
        assert_eq!(to_prometheus(&snap), "");
    }

    #[test]
    fn sanitize_maps_workspace_names() {
        assert_eq!(sanitize("probe.latency_us.memo"), "probe_latency_us_memo");
        assert_eq!(sanitize("pin-check"), "pin_check");
    }

    #[test]
    fn json_round_trips_through_from_json() {
        let snap = sample();
        let loaded = from_json(&to_json(&snap)).unwrap();
        assert_eq!(loaded.counters, snap.counters);
        assert_eq!(loaded.gauges, snap.gauges);
        assert_eq!(loaded.profile, snap.profile);
        // Histograms round-trip at bucket resolution: the summary stats
        // and every exported quantile agree, so a re-export is golden.
        assert_eq!(to_json(&loaded), to_json(&snap));
        let h = &loaded.histograms["probe.latency_us.solver"];
        let orig = &snap.histograms["probe.latency_us.solver"];
        assert_eq!((h.count, h.sum, h.min, h.max), (4, 98, 2, 90));
        for q in [0.5, 0.9, 0.99] {
            assert_eq!(h.quantile(q), orig.quantile(q));
        }
    }

    #[test]
    fn from_json_rejects_malformed_input_with_context() {
        for (text, needle) in [
            ("", "expected `{`"),
            ("{\"bogus\":{}}", "unknown top-level key"),
            ("{\"counters\":{\"x\":-1}}", "< 0"),
            ("{\"counters\":{}} junk", "trailing garbage"),
            ("{\"histograms\":{\"h\":{\"count\":1}}}", "lacks `sum`"),
        ] {
            let err = from_json(text).unwrap_err();
            assert!(err.contains(needle), "`{text}` -> `{err}`");
        }
    }
}
