//! # mcs-metrics
//!
//! Aggregated runtime telemetry for the `multichip-hls` pipeline.
//!
//! Where `mcs-obs` answers *"what happened in this one run"* with an
//! ordered event stream, this crate answers *"how is the system
//! performing"* with a [`Registry`] of monotonic [`Counter`]s, settable
//! [`Gauge`]s and log-linear [`Histogram`]s (p50/p90/p99/max), plus a
//! hierarchical span self-profiler that builds a phase → sub-phase
//! wall-time tree. It is the substrate a long-running `mcs-serve`
//! daemon will scrape per request.
//!
//! Design points, mirroring the rest of the workspace:
//!
//! * **Zero cost when off.** Instrumentation goes through a
//!   [`MetricsHandle`] whose default is inactive; resolved [`Counter`] /
//!   [`Histogram`] handles are a single `Option` branch when disabled.
//! * **Lock-free recording.** Metric cells are plain relaxed atomics.
//!   The registry's name → cell maps are sharded behind short-lived
//!   locks, but those are touched only at *registration* (once per
//!   site), never on the record path.
//! * **Deterministic when it must be.** All timing flows through the
//!   injected [`mcs_ctl::Clock`] — never `Instant` directly — so a test
//!   registry over a [`mcs_ctl::ManualClock`] produces byte-identical
//!   exports regardless of wall time or worker count.
//!
//! ```
//! use mcs_metrics::{MetricsHandle, Registry};
//! use std::sync::Arc;
//!
//! let reg = Arc::new(Registry::new());
//! let m = MetricsHandle::new(reg.clone());
//! let pivots = m.counter("ilp.pivots");
//! pivots.add(3);
//! m.histogram("probe.latency_us.solver").observe(125);
//! {
//!     let _flow = m.span("flow");
//!     let _conn = m.span("connect");
//! }
//! let snap = reg.snapshot();
//! assert_eq!(snap.counters["ilp.pivots"], 3);
//! assert_eq!(snap.histograms["probe.latency_us.solver"].count, 1);
//! assert_eq!(snap.profile[0].path, "flow");
//! assert_eq!(snap.profile[1].path, "flow/connect");
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod export;

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::ThreadId;

use mcs_ctl::{Clock, MonotonicClock};

/// Number of independently locked name → cell map shards. Contention on
/// these only matters at registration time; eight shards keep even a
/// registration storm from serializing.
const SHARDS: usize = 8;

/// Number of histogram buckets: 16 exact small-value buckets plus four
/// log-linear sub-buckets per power of two up to `u64::MAX`.
pub const HISTOGRAM_BUCKETS: usize = 256;

fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Maps a recorded value to its bucket index.
///
/// Values `0..16` get an exact bucket each; larger values are split by
/// their most-significant bit into octaves with four linear sub-buckets
/// per octave, so the relative quantization error is bounded by 25%
/// while 256 buckets still span all of `u64`.
pub fn bucket_index(v: u64) -> usize {
    if v < 16 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros() as usize; // >= 4
    let sub = ((v >> (msb - 2)) & 3) as usize;
    16 + (msb - 4) * 4 + sub
}

/// The largest value mapping to bucket `index` — the representative the
/// quantile extractor reports for ranks landing in that bucket.
pub fn bucket_upper_bound(index: usize) -> u64 {
    if index < 16 {
        return index as u64;
    }
    let msb = (index - 16) / 4 + 4;
    let sub = ((index - 16) % 4) as u64;
    let base = 1u64 << msb;
    let chunk = 1u64 << (msb - 2);
    base.wrapping_add((sub + 1).wrapping_mul(chunk))
        .wrapping_sub(1)
}

struct CounterCell {
    value: AtomicU64,
}

struct GaugeCell {
    value: AtomicI64,
}

struct HistogramCell {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: Vec<AtomicU64>,
}

impl HistogramCell {
    fn new() -> Self {
        HistogramCell {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: (0..HISTOGRAM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn observe(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }
}

/// A resolved, lock-free handle to one monotonic counter. The default
/// handle is disconnected: [`Counter::add`] is a single branch.
#[derive(Clone, Default)]
pub struct Counter(Option<Arc<CounterCell>>);

impl Counter {
    /// Add `n` to the counter (no-op when disconnected).
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Increment the counter by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value (0 when disconnected).
    pub fn get(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |c| c.value.load(Ordering::Relaxed))
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Counter({})",
            if self.0.is_some() { "on" } else { "off" }
        )
    }
}

/// A resolved, lock-free handle to one settable gauge.
#[derive(Clone, Default)]
pub struct Gauge(Option<Arc<GaugeCell>>);

impl Gauge {
    /// Set the gauge to `v` (no-op when disconnected).
    #[inline]
    pub fn set(&self, v: i64) {
        if let Some(g) = &self.0 {
            g.value.store(v, Ordering::Relaxed);
        }
    }

    /// Add `v` (may be negative) to the gauge.
    #[inline]
    pub fn add(&self, v: i64) {
        if let Some(g) = &self.0 {
            g.value.fetch_add(v, Ordering::Relaxed);
        }
    }

    /// Raise the gauge to `v` if it is below it (peak tracking). Unlike
    /// [`set`](Self::set), the result is independent of the order in
    /// which concurrent writers land, so peak gauges stay deterministic
    /// under parallel sweeps.
    #[inline]
    pub fn set_max(&self, v: i64) {
        if let Some(g) = &self.0 {
            g.value.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Current value (0 when disconnected).
    pub fn get(&self) -> i64 {
        self.0
            .as_ref()
            .map_or(0, |g| g.value.load(Ordering::Relaxed))
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Gauge({})", if self.0.is_some() { "on" } else { "off" })
    }
}

/// A resolved, lock-free handle to one log-linear latency histogram.
#[derive(Clone, Default)]
pub struct Histogram(Option<Arc<HistogramCell>>);

impl Histogram {
    /// Record one value (no-op when disconnected).
    #[inline]
    pub fn observe(&self, v: u64) {
        if let Some(h) = &self.0 {
            h.observe(v);
        }
    }

    /// Whether this handle is connected to a registry cell.
    #[inline]
    pub fn connected(&self) -> bool {
        self.0.is_some()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Histogram({})",
            if self.0.is_some() { "on" } else { "off" }
        )
    }
}

/// Point-in-time copy of one histogram, with deterministic quantile
/// extraction over the bucket counts.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value — tracked exactly, not bucketed.
    pub max: u64,
    /// Per-bucket counts, indexed by [`bucket_index`].
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// The value at quantile `q` (0 < q <= 1): the upper bound of the
    /// bucket holding the rank-`ceil(q * count)` value, clamped to the
    /// exactly tracked `[min, max]` range. Purely a function of the
    /// bucket counts, so identical histograms give identical quantiles
    /// on every platform. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper_bound(i).clamp(self.min, self.max);
            }
        }
        self.max
    }
}

/// One node of the span profiler's phase tree.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProfileNode {
    /// `/`-joined path from the root span (`flow/connect`, ...).
    pub path: String,
    /// How many spans closed at this path.
    pub calls: u64,
    /// Total wall time across those spans, in clock microseconds.
    pub wall_us: u64,
}

/// Point-in-time copy of everything a [`Registry`] holds. Maps are
/// ordered so exports are byte-stable.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Span-profiler tree, sorted by path.
    pub profile: Vec<ProfileNode>,
}

#[derive(Default)]
struct ProfileState {
    /// Per-thread stack of open span names; spans nest LIFO within a
    /// thread, so the stack is exactly the open path.
    stacks: HashMap<ThreadId, Vec<&'static str>>,
    nodes: BTreeMap<String, (u64, u64)>,
}

/// The sharded metric registry: owns every cell and the injected clock.
pub struct Registry {
    clock: Arc<dyn Clock>,
    counters: Vec<Mutex<BTreeMap<&'static str, Arc<CounterCell>>>>,
    gauges: Vec<Mutex<BTreeMap<&'static str, Arc<GaugeCell>>>>,
    histograms: Vec<Mutex<BTreeMap<&'static str, Arc<HistogramCell>>>>,
    profile: Mutex<ProfileState>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Registry(now_us={})", self.clock.now_us())
    }
}

impl Registry {
    /// A registry timed by a fresh [`MonotonicClock`].
    pub fn new() -> Self {
        Self::with_clock(Arc::new(MonotonicClock::new()))
    }

    /// A registry over an injected clock. Tests pass a
    /// [`mcs_ctl::ManualClock`] so every recorded duration — and with it
    /// the whole export — is deterministic.
    pub fn with_clock(clock: Arc<dyn Clock>) -> Self {
        Registry {
            clock,
            counters: (0..SHARDS).map(|_| Mutex::default()).collect(),
            gauges: (0..SHARDS).map(|_| Mutex::default()).collect(),
            histograms: (0..SHARDS).map(|_| Mutex::default()).collect(),
            profile: Mutex::default(),
        }
    }

    /// Microseconds on the registry's clock. All instrumentation timing
    /// must come from here, never from `Instant` directly.
    pub fn now_us(&self) -> u64 {
        self.clock.now_us()
    }

    /// Resolve (registering on first use) the counter `name`.
    pub fn counter(&self, name: &'static str) -> Counter {
        let shard = fnv1a(name) as usize % SHARDS;
        let mut map = self.counters[shard].lock().expect("metrics counter shard");
        let cell = map
            .entry(name)
            .or_insert_with(|| {
                Arc::new(CounterCell {
                    value: AtomicU64::new(0),
                })
            })
            .clone();
        Counter(Some(cell))
    }

    /// Resolve (registering on first use) the gauge `name`.
    pub fn gauge(&self, name: &'static str) -> Gauge {
        let shard = fnv1a(name) as usize % SHARDS;
        let mut map = self.gauges[shard].lock().expect("metrics gauge shard");
        let cell = map
            .entry(name)
            .or_insert_with(|| {
                Arc::new(GaugeCell {
                    value: AtomicI64::new(0),
                })
            })
            .clone();
        Gauge(Some(cell))
    }

    /// Resolve (registering on first use) the histogram `name`.
    pub fn histogram(&self, name: &'static str) -> Histogram {
        let shard = fnv1a(name) as usize % SHARDS;
        let mut map = self.histograms[shard]
            .lock()
            .expect("metrics histogram shard");
        let cell = map
            .entry(name)
            .or_insert_with(|| Arc::new(HistogramCell::new()))
            .clone();
        Histogram(Some(cell))
    }

    fn span_begin(&self, name: &'static str) -> (String, u64) {
        let start = self.clock.now_us();
        let mut prof = self.profile.lock().expect("metrics profile lock");
        let stack = prof.stacks.entry(std::thread::current().id()).or_default();
        stack.push(name);
        let path = stack.join("/");
        (path, start)
    }

    fn span_end(&self, path: &str, start: u64) {
        let elapsed = self.clock.now_us().saturating_sub(start);
        let mut prof = self.profile.lock().expect("metrics profile lock");
        let tid = std::thread::current().id();
        if let Some(stack) = prof.stacks.get_mut(&tid) {
            stack.pop();
            if stack.is_empty() {
                prof.stacks.remove(&tid);
            }
        }
        let node = prof.nodes.entry(path.to_string()).or_insert((0, 0));
        node.0 += 1;
        node.1 += elapsed;
    }

    /// Copy out every counter, gauge, histogram and profile node.
    pub fn snapshot(&self) -> Snapshot {
        let mut snap = Snapshot::default();
        for shard in &self.counters {
            for (name, cell) in shard.lock().expect("metrics counter shard").iter() {
                snap.counters
                    .insert((*name).to_string(), cell.value.load(Ordering::Relaxed));
            }
        }
        for shard in &self.gauges {
            for (name, cell) in shard.lock().expect("metrics gauge shard").iter() {
                snap.gauges
                    .insert((*name).to_string(), cell.value.load(Ordering::Relaxed));
            }
        }
        for shard in &self.histograms {
            for (name, cell) in shard.lock().expect("metrics histogram shard").iter() {
                let count = cell.count.load(Ordering::Relaxed);
                let min = cell.min.load(Ordering::Relaxed);
                snap.histograms.insert(
                    (*name).to_string(),
                    HistogramSnapshot {
                        count,
                        sum: cell.sum.load(Ordering::Relaxed),
                        min: if count == 0 { 0 } else { min },
                        max: cell.max.load(Ordering::Relaxed),
                        buckets: cell
                            .buckets
                            .iter()
                            .map(|b| b.load(Ordering::Relaxed))
                            .collect(),
                    },
                );
            }
        }
        let prof = self.profile.lock().expect("metrics profile lock");
        snap.profile = prof
            .nodes
            .iter()
            .map(|(path, &(calls, wall_us))| ProfileNode {
                path: path.clone(),
                calls,
                wall_us,
            })
            .collect();
        snap
    }
}

/// A cheap, clonable handle to a registry, embeddable in configuration
/// structs exactly like `mcs_obs::RecorderHandle`. The default handle is
/// inactive: every operation is a single predicted branch, so
/// instrumented hot paths cost nothing when metrics are off.
#[derive(Clone, Default)]
pub struct MetricsHandle {
    reg: Option<Arc<Registry>>,
}

impl std::fmt::Debug for MetricsHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "MetricsHandle({})",
            if self.reg.is_some() { "active" } else { "off" }
        )
    }
}

impl MetricsHandle {
    /// An active handle over a registry.
    pub fn new(reg: Arc<Registry>) -> Self {
        MetricsHandle { reg: Some(reg) }
    }

    /// Whether recording through this handle goes anywhere. Sites with
    /// non-trivial value construction should gate on this.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.reg.is_some()
    }

    /// Resolve the counter `name` — disconnected (free) when the handle
    /// is off. Hot loops should resolve once and keep the [`Counter`].
    pub fn counter(&self, name: &'static str) -> Counter {
        match &self.reg {
            Some(r) => r.counter(name),
            None => Counter::default(),
        }
    }

    /// Resolve the gauge `name`.
    pub fn gauge(&self, name: &'static str) -> Gauge {
        match &self.reg {
            Some(r) => r.gauge(name),
            None => Gauge::default(),
        }
    }

    /// Resolve the histogram `name`.
    pub fn histogram(&self, name: &'static str) -> Histogram {
        match &self.reg {
            Some(r) => r.histogram(name),
            None => Histogram::default(),
        }
    }

    /// One-shot counter add — resolve and bump. Fine off the hot path;
    /// inside loops resolve a [`Counter`] once instead.
    #[inline]
    pub fn add(&self, name: &'static str, n: u64) {
        if let Some(r) = &self.reg {
            r.counter(name).add(n);
        }
    }

    /// One-shot histogram observation.
    #[inline]
    pub fn observe(&self, name: &'static str, v: u64) {
        if let Some(r) = &self.reg {
            r.histogram(name).observe(v);
        }
    }

    /// One-shot gauge set.
    #[inline]
    pub fn gauge_set(&self, name: &'static str, v: i64) {
        if let Some(r) = &self.reg {
            r.gauge(name).set(v);
        }
    }

    /// One-shot peak-gauge update (order-independent, see
    /// [`Gauge::set_max`]).
    #[inline]
    pub fn gauge_max(&self, name: &'static str, v: i64) {
        if let Some(r) = &self.reg {
            r.gauge(name).set_max(v);
        }
    }

    /// Microseconds on the registry's clock, or 0 when the handle is
    /// off. Latency sites subtract two of these; on an off handle both
    /// are 0 and the difference is never recorded.
    #[inline]
    pub fn now_us(&self) -> u64 {
        match &self.reg {
            Some(r) => r.now_us(),
            None => 0,
        }
    }

    /// Open a profiler span; the returned guard closes it on drop.
    /// Spans nest: a span opened while another is live on the same
    /// thread records under the parent's path (`flow/connect`).
    pub fn span(&self, name: &'static str) -> Span {
        match &self.reg {
            Some(r) => {
                let (path, start) = r.span_begin(name);
                Span {
                    state: Some((r.clone(), path, start)),
                }
            }
            None => Span { state: None },
        }
    }
}

/// RAII guard for one profiler span; records calls and wall time at its
/// path when dropped.
pub struct Span {
    state: Option<(Arc<Registry>, String, u64)>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((reg, path, start)) = self.state.take() {
            reg.span_end(&path, start);
        }
    }
}

impl std::fmt::Debug for Span {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.state {
            Some((_, path, _)) => write!(f, "Span({path})"),
            None => write!(f, "Span(off)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_ctl::ManualClock;

    #[test]
    fn off_handle_records_nothing_and_never_panics() {
        let m = MetricsHandle::default();
        assert!(!m.enabled());
        m.add("c", 5);
        m.observe("h", 9);
        m.gauge_set("g", -2);
        let c = m.counter("c");
        c.inc();
        assert_eq!(c.get(), 0);
        assert_eq!(m.now_us(), 0);
        let _s = m.span("flow");
    }

    #[test]
    fn counters_gauges_histograms_round_trip() {
        let reg = Arc::new(Registry::new());
        let m = MetricsHandle::new(reg.clone());
        let c = m.counter("ilp.pivots");
        c.add(41);
        c.inc();
        m.gauge("explore.frontier").set(7);
        m.gauge("explore.frontier").add(-2);
        let h = m.histogram("lat");
        for v in [1u64, 2, 2, 100] {
            h.observe(v);
        }
        let snap = reg.snapshot();
        assert_eq!(snap.counters["ilp.pivots"], 42);
        assert_eq!(snap.gauges["explore.frontier"], 5);
        let hs = &snap.histograms["lat"];
        assert_eq!((hs.count, hs.sum, hs.min, hs.max), (4, 105, 1, 100));
    }

    #[test]
    fn peak_gauge_keeps_the_maximum_regardless_of_order() {
        let reg = Arc::new(Registry::new());
        let g = reg.gauge("connect.cache_entries");
        for v in [232, 983, 451] {
            g.set_max(v);
        }
        assert_eq!(g.get(), 983);
        let m = MetricsHandle::new(reg.clone());
        m.gauge_max("connect.cache_entries", 12);
        assert_eq!(reg.snapshot().gauges["connect.cache_entries"], 983);
    }

    #[test]
    fn bucket_index_and_bounds_are_consistent() {
        // Small values are exact.
        for v in 0..16u64 {
            let i = bucket_index(v);
            assert_eq!(i, v as usize);
            assert_eq!(bucket_upper_bound(i), v);
        }
        // Every value lands in a bucket whose range contains it, and
        // bucket upper bounds are strictly increasing.
        for v in [
            16u64,
            17,
            31,
            32,
            63,
            64,
            1000,
            4096,
            123_456_789,
            u64::MAX / 2,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let i = bucket_index(v);
            assert!(i < HISTOGRAM_BUCKETS, "index {i} for {v}");
            assert!(bucket_upper_bound(i) >= v, "upper bound too small for {v}");
            if i > 0 {
                assert!(bucket_upper_bound(i - 1) < v, "lower bucket covers {v}");
            }
        }
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_upper_bound(HISTOGRAM_BUCKETS - 1), u64::MAX);
        for i in 1..HISTOGRAM_BUCKETS {
            assert!(bucket_upper_bound(i) > bucket_upper_bound(i - 1));
        }
    }

    #[test]
    fn quantiles_are_exact_on_small_values() {
        let reg = Registry::new();
        let h = reg.histogram("q");
        // 100 observations of 0..10 — all in exact buckets.
        for v in 0..10u64 {
            for _ in 0..10 {
                h.observe(v);
            }
        }
        let s = &reg.snapshot().histograms["q"];
        assert_eq!(s.quantile(0.5), 4); // rank 50 falls in bucket 4
        assert_eq!(s.quantile(0.9), 8);
        assert_eq!(s.quantile(0.99), 9);
        assert_eq!(s.quantile(1.0), 9);
        assert_eq!(s.max, 9);
    }

    #[test]
    fn quantiles_clamp_to_observed_range() {
        let reg = Registry::new();
        let h = reg.histogram("q");
        h.observe(1000);
        let s = &reg.snapshot().histograms["q"];
        // One sample: every quantile is that sample, not a bucket bound.
        assert_eq!(s.quantile(0.5), 1000);
        assert_eq!(s.quantile(0.99), 1000);
        let empty = HistogramSnapshot::default();
        assert_eq!(empty.quantile(0.5), 0);
    }

    #[test]
    fn spans_build_a_path_tree_with_manual_time() {
        let clock = Arc::new(ManualClock::new());
        let reg = Arc::new(Registry::with_clock(clock.clone()));
        let m = MetricsHandle::new(reg.clone());
        {
            let _flow = m.span("flow");
            clock.advance_us(5);
            {
                let _c = m.span("connect");
                clock.advance_us(10);
            }
            {
                let _s = m.span("schedule");
                clock.advance_us(20);
            }
        }
        {
            let _flow = m.span("flow");
            clock.advance_us(1);
        }
        let snap = reg.snapshot();
        let by_path: BTreeMap<&str, (u64, u64)> = snap
            .profile
            .iter()
            .map(|n| (n.path.as_str(), (n.calls, n.wall_us)))
            .collect();
        assert_eq!(by_path["flow"], (2, 36));
        assert_eq!(by_path["flow/connect"], (1, 10));
        assert_eq!(by_path["flow/schedule"], (1, 20));
    }

    #[test]
    fn recording_is_exact_across_threads() {
        let reg = Arc::new(Registry::new());
        let m = MetricsHandle::new(reg.clone());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let m = m.clone();
                s.spawn(move || {
                    let c = m.counter("shared");
                    let h = m.histogram("hist");
                    for i in 0..1000u64 {
                        c.inc();
                        h.observe(i % 32);
                    }
                });
            }
        });
        let snap = reg.snapshot();
        assert_eq!(snap.counters["shared"], 8000);
        let hs = &snap.histograms["hist"];
        assert_eq!(hs.count, 8000);
        assert_eq!(hs.buckets.iter().sum::<u64>(), 8000);
        assert_eq!((hs.min, hs.max), (0, 31));
    }

    #[test]
    fn manual_clock_registry_is_fully_deterministic() {
        let build = || {
            let reg = Registry::with_clock(Arc::new(ManualClock::new()));
            let h = reg.histogram("lat");
            for v in [3u64, 17, 300] {
                h.observe(v);
            }
            reg.counter("c").add(2);
            export::to_prometheus(&reg.snapshot())
        };
        assert_eq!(build(), build());
    }
}
