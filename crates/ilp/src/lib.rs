//! # mcs-ilp
//!
//! The integer-linear-programming substrate of the `multichip-hls`
//! workspace, implemented from scratch:
//!
//! * an exact rational two-phase [simplex] with Bland's
//!   rule;
//! * [branch-and-bound](Model::solve) on top of it, used to verify the
//!   interchip-connection formulations of Chapters 4 and 6 of the paper on
//!   small instances;
//! * Gomory's **Dual All-Integer cutting-plane** method
//!   ([`AllIntegerSolver`]) with the incremental `x >= 1` update of
//!   Section 3.3 — the engine of the pin-allocation feasibility checker
//!   that runs inside list scheduling;
//! * the [linearization](linearize) idioms of Section 6.1.1.4 (max / min /
//!   xor of binaries, big-M implications).
//!
//! ```
//! use mcs_ilp::Model;
//!
//! # fn main() -> Result<(), mcs_ilp::SolveError> {
//! let mut m = Model::new();
//! let x = m.integer("x", Some(10));
//! let y = m.integer("y", Some(10));
//! m.le(&[(x, 2), (y, 3)], 12);
//! m.maximize(&[(x, 3), (y, 4)]);
//! let s = m.solve()?;
//! assert_eq!(s.int_value(x), 6);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod branch;
mod gomory;
mod model;
mod rational;

pub mod linearize;
pub mod simplex;

pub use gomory::{AllIntegerSolver, Checkpoint, Feasibility};
pub use model::{Cmp, Constraint, Model, Sense, Solution, SolveError, VarDef, VarId};
pub use rational::Ratio;
