//! Branch-and-bound over the exact rational simplex.
//!
//! Used to solve the interchip-connection ILPs of Chapters 4 and 6 on small
//! instances (the paper itself notes that practical-size instances are out
//! of reach for exact methods and falls back to heuristic search — so do
//! we), and as the exact fallback behind the Chapter 3 feasibility checker.

use crate::model::{Model, Sense, Solution, SolveError, VarId};
use crate::rational::Ratio;
use crate::simplex::{solve_relaxation, Bounds, LpResult};

/// Solves `model` to proven optimality (or first feasible point if the
/// objective is empty).
pub(crate) fn solve(model: &Model) -> Result<Solution, SolveError> {
    for c in &model.cons {
        for &(v, _) in &c.terms {
            if v.index() >= model.vars.len() {
                return Err(SolveError::UnknownVariable(v));
            }
        }
    }
    let feasibility_only = model.objective.is_empty();
    let mut best: Option<Solution> = None;
    let mut nodes = 0usize;
    let mut stack: Vec<Bounds> = vec![Bounds::default()];

    while let Some(bounds) = stack.pop() {
        nodes += 1;
        if nodes > model.node_limit {
            return if let Some(b) = best {
                Ok(b)
            } else {
                Err(SolveError::LimitReached)
            };
        }
        if let Some(budget) = &model.budget {
            if budget.check().is_some() {
                return Err(SolveError::Interrupted);
            }
            budget.charge_pivots(1);
        }
        let (values, objective) = match solve_relaxation(model, &bounds) {
            LpResult::Infeasible => continue,
            LpResult::Unbounded => {
                // With integrality the problem may still be unbounded; the
                // paper's models are all bounded, so report it.
                return Err(SolveError::Unbounded);
            }
            LpResult::Optimal { values, objective } => (values, objective),
        };
        // Bound: worse than incumbent -> prune.
        if let Some(b) = &best {
            let improves = match model.sense {
                Sense::Maximize => objective > b.objective,
                Sense::Minimize => objective < b.objective,
            };
            if !improves {
                continue;
            }
        }
        // Find a fractional integer variable (most fractional, lowest id).
        let frac = model
            .vars
            .iter()
            .enumerate()
            .filter(|(v, def)| def.integer && !values[*v].is_integer())
            .max_by_key(|(v, _)| {
                let f = values[*v].fract();
                // distance to 1/2, negated: closer to 1/2 is better
                let d = (f - Ratio::new(1, 2)) * (f - Ratio::new(1, 2));
                (std::cmp::Reverse(d), std::cmp::Reverse(*v))
            })
            .map(|(v, _)| v);
        match frac {
            None => {
                let sol = Solution { values, objective };
                if feasibility_only {
                    return Ok(sol);
                }
                best = Some(sol);
            }
            Some(v) => {
                let x = values[v];
                let var = VarId(v as u32);
                let mut down = bounds.clone();
                down.overrides.push((var, None, Some(x.floor() as i64)));
                let mut up = bounds;
                up.overrides.push((var, Some(x.ceil() as i64), None));
                // DFS: explore "up" first (the paper's formulations mostly
                // push binaries toward 1).
                stack.push(down);
                stack.push(up);
            }
        }
    }
    best.ok_or(SolveError::Infeasible)
}

#[cfg(test)]
mod tests {
    use crate::model::{Model, SolveError};

    #[test]
    fn knapsack_is_solved_exactly() {
        // max 10a + 6b + 4c s.t. a+b+c <= 2 (binaries) -> 16.
        let mut m = Model::new();
        let a = m.binary("a");
        let b = m.binary("b");
        let c = m.binary("c");
        m.le(&[(a, 1), (b, 1), (c, 1)], 2);
        m.maximize(&[(a, 10), (b, 6), (c, 4)]);
        let s = m.solve().unwrap();
        assert_eq!(s.objective, crate::rational::Ratio::int(16));
        assert_eq!(s.int_value(a), 1);
        assert_eq!(s.int_value(b), 1);
        assert_eq!(s.int_value(c), 0);
    }

    #[test]
    fn integrality_changes_the_answer() {
        // max y s.t. 2y <= 3: LP gives 3/2, ILP gives 1.
        let mut m = Model::new();
        let y = m.integer("y", None);
        m.le(&[(y, 2)], 3);
        m.maximize(&[(y, 1)]);
        let s = m.solve().unwrap();
        assert_eq!(s.int_value(y), 1);
    }

    #[test]
    fn infeasible_integer_program() {
        // 2x = 1 has no integer solution.
        let mut m = Model::new();
        let x = m.integer("x", Some(10));
        m.eq(&[(x, 2)], 1);
        assert_eq!(m.solve(), Err(SolveError::Infeasible));
    }

    #[test]
    fn feasibility_probe_stops_early() {
        let mut m = Model::new();
        let xs: Vec<_> = (0..6).map(|i| m.binary(&format!("x{i}"))).collect();
        let terms: Vec<_> = xs.iter().map(|&x| (x, 1)).collect();
        m.ge(&terms, 3);
        let s = m.feasible().unwrap();
        let total: i64 = xs.iter().map(|&x| s.int_value(x)).sum();
        assert!(total >= 3);
    }

    #[test]
    fn minimization_sense() {
        // min 3x + 5y s.t. x + y >= 4, x <= 2, integers -> x=2,y=2 -> 16.
        let mut m = Model::new();
        let x = m.integer("x", Some(2));
        let y = m.integer("y", None);
        m.ge(&[(x, 1), (y, 1)], 4);
        m.minimize(&[(x, 3), (y, 5)]);
        let s = m.solve().unwrap();
        assert_eq!(s.objective, crate::rational::Ratio::int(16));
    }

    #[test]
    fn equality_with_binaries() {
        // Exactly-one constraint.
        let mut m = Model::new();
        let xs: Vec<_> = (0..4).map(|i| m.binary(&format!("x{i}"))).collect();
        let terms: Vec<_> = xs.iter().map(|&x| (x, 1)).collect();
        m.eq(&terms, 1);
        m.maximize(&[(xs[2], 1)]);
        let s = m.solve().unwrap();
        assert_eq!(s.int_value(xs[2]), 1);
    }

    #[test]
    fn node_limit_is_respected() {
        let mut m = Model::new();
        // A small hard-ish subset-sum to burn nodes.
        let xs: Vec<_> = (0..12)
            .map(|i| m.integer(&format!("x{i}"), Some(1)))
            .collect();
        let weights = [31, 41, 59, 26, 53, 58, 97, 93, 23, 84, 62, 64];
        let terms: Vec<_> = xs.iter().zip(weights).map(|(&x, w)| (x, w)).collect();
        m.eq(&terms, 101);
        m.node_limit = 1;
        // With a single node we cannot prove anything.
        assert!(matches!(m.solve(), Err(SolveError::LimitReached) | Ok(_)));
    }
}
