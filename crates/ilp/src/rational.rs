//! Exact rational arithmetic over `i128`.
//!
//! The rational simplex keeps tableaux exact; panicking on overflow is
//! preferable to silently returning wrong feasibility verdicts, but all
//! construction goes through [`Ratio::new`] which normalizes, keeping
//! magnitudes as small as possible.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// An exact rational number `num/den` with `den > 0`, always reduced.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ratio {
    num: i128,
    den: i128,
}

fn gcd(mut a: i128, mut b: i128) -> i128 {
    a = a.abs();
    b = b.abs();
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a.max(1)
}

impl Ratio {
    /// Zero.
    pub const ZERO: Ratio = Ratio { num: 0, den: 1 };
    /// One.
    pub const ONE: Ratio = Ratio { num: 1, den: 1 };

    /// Creates `num/den`, normalized.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Self {
        assert!(den != 0, "rational with zero denominator");
        let g = gcd(num, den);
        let sign = if den < 0 { -1 } else { 1 };
        Ratio {
            num: sign * num / g,
            den: sign * den / g,
        }
    }

    /// Integer `n` as a rational.
    pub fn int(n: i64) -> Self {
        Ratio {
            num: n as i128,
            den: 1,
        }
    }

    /// Numerator (after reduction).
    pub fn numer(self) -> i128 {
        self.num
    }

    /// Denominator (positive, after reduction).
    pub fn denom(self) -> i128 {
        self.den
    }

    /// `true` iff the value is an integer.
    pub fn is_integer(self) -> bool {
        self.den == 1
    }

    /// `true` iff zero.
    pub fn is_zero(self) -> bool {
        self.num == 0
    }

    /// `true` iff strictly positive.
    pub fn is_positive(self) -> bool {
        self.num > 0
    }

    /// `true` iff strictly negative.
    pub fn is_negative(self) -> bool {
        self.num < 0
    }

    /// Largest integer `<= self`.
    pub fn floor(self) -> i128 {
        self.num.div_euclid(self.den)
    }

    /// Smallest integer `>= self`.
    pub fn ceil(self) -> i128 {
        -((-self.num).div_euclid(self.den))
    }

    /// Fractional part `self - floor(self)`, in `[0, 1)`.
    pub fn fract(self) -> Ratio {
        Ratio::new(self.num.rem_euclid(self.den), self.den)
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if zero.
    pub fn recip(self) -> Ratio {
        assert!(self.num != 0, "reciprocal of zero");
        Ratio::new(self.den, self.num)
    }

    /// Approximate `f64` value (for reporting only).
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }
}

impl fmt::Debug for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl Default for Ratio {
    fn default() -> Self {
        Ratio::ZERO
    }
}

impl From<i64> for Ratio {
    fn from(n: i64) -> Self {
        Ratio::int(n)
    }
}

impl Add for Ratio {
    type Output = Ratio;
    fn add(self, rhs: Ratio) -> Ratio {
        let g = gcd(self.den, rhs.den);
        let l = self.den / g * rhs.den;
        Ratio::new(self.num * (l / self.den) + rhs.num * (l / rhs.den), l)
    }
}

impl Sub for Ratio {
    type Output = Ratio;
    fn sub(self, rhs: Ratio) -> Ratio {
        self + (-rhs)
    }
}

impl Mul for Ratio {
    type Output = Ratio;
    fn mul(self, rhs: Ratio) -> Ratio {
        // Cross-reduce before multiplying to limit growth.
        let g1 = gcd(self.num, rhs.den);
        let g2 = gcd(rhs.num, self.den);
        Ratio::new(
            (self.num / g1) * (rhs.num / g2),
            (self.den / g2) * (rhs.den / g1),
        )
    }
}

impl Div for Ratio {
    type Output = Ratio;
    #[allow(clippy::suspicious_arithmetic_impl)] // a/b = a * (1/b)
    fn div(self, rhs: Ratio) -> Ratio {
        self * rhs.recip()
    }
}

impl Neg for Ratio {
    type Output = Ratio;
    fn neg(self) -> Ratio {
        Ratio {
            num: -self.num,
            den: self.den,
        }
    }
}

impl AddAssign for Ratio {
    fn add_assign(&mut self, rhs: Ratio) {
        *self = *self + rhs;
    }
}

impl SubAssign for Ratio {
    fn sub_assign(&mut self, rhs: Ratio) {
        *self = *self - rhs;
    }
}

impl PartialOrd for Ratio {
    fn partial_cmp(&self, other: &Ratio) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ratio {
    fn cmp(&self, other: &Ratio) -> Ordering {
        (self.num * other.den).cmp(&(other.num * self.den))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_and_sign() {
        assert_eq!(Ratio::new(2, 4), Ratio::new(1, 2));
        assert_eq!(Ratio::new(1, -2), Ratio::new(-1, 2));
        assert_eq!(Ratio::new(-3, -6), Ratio::new(1, 2));
        assert_eq!(Ratio::new(0, 5), Ratio::ZERO);
    }

    #[test]
    fn arithmetic() {
        let half = Ratio::new(1, 2);
        let third = Ratio::new(1, 3);
        assert_eq!(half + third, Ratio::new(5, 6));
        assert_eq!(half - third, Ratio::new(1, 6));
        assert_eq!(half * third, Ratio::new(1, 6));
        assert_eq!(half / third, Ratio::new(3, 2));
        assert_eq!(-half, Ratio::new(-1, 2));
    }

    #[test]
    fn floor_ceil_fract() {
        assert_eq!(Ratio::new(7, 2).floor(), 3);
        assert_eq!(Ratio::new(7, 2).ceil(), 4);
        assert_eq!(Ratio::new(-7, 2).floor(), -4);
        assert_eq!(Ratio::new(-7, 2).ceil(), -3);
        assert_eq!(Ratio::new(-7, 2).fract(), Ratio::new(1, 2));
        assert!(Ratio::int(5).is_integer());
        assert!(!Ratio::new(1, 3).is_integer());
    }

    #[test]
    fn ordering() {
        assert!(Ratio::new(1, 3) < Ratio::new(1, 2));
        assert!(Ratio::new(-1, 2) < Ratio::ZERO);
        assert_eq!(Ratio::new(2, 6).cmp(&Ratio::new(1, 3)), Ordering::Equal);
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Ratio::new(1, 0);
    }

    #[test]
    fn display() {
        assert_eq!(Ratio::new(3, 1).to_string(), "3");
        assert_eq!(Ratio::new(-1, 2).to_string(), "-1/2");
    }
}
