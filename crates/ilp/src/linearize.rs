//! Linearization idioms of Section 6.1.1.4, packaged as helpers on
//! [`Model`].
//!
//! The sub-bus ILP of Chapter 6 uses `max`, `min` and exclusive-or of
//! binary variables, plus big-M implications between integer expressions;
//! each helper adds exactly the constraint set the paper derives.

use crate::model::{Model, VarId};

/// Adds constraints making `y >= max(xs)` for binaries (the relaxed form
/// used when only an upper bound is needed, e.g. Constraint 4.2).
pub fn ge_max_binary(m: &mut Model, y: VarId, xs: &[VarId]) {
    for &x in xs {
        m.ge(&[(y, 1), (x, -1)], 0);
    }
}

/// Adds constraints making `y = max(xs)` for binaries: `y >= x_i` and
/// `y <= sum(x_i)`.
pub fn eq_max_binary(m: &mut Model, y: VarId, xs: &[VarId]) {
    ge_max_binary(m, y, xs);
    let mut terms = vec![(y, 1)];
    terms.extend(xs.iter().map(|&x| (x, -1)));
    m.le(&terms, 0);
}

/// Adds constraints making `y <= min(xs)` for binaries.
pub fn le_min_binary(m: &mut Model, y: VarId, xs: &[VarId]) {
    for &x in xs {
        m.le(&[(y, 1), (x, -1)], 0);
    }
}

/// Adds constraints making `y = min(xs)` for binaries: `y <= x_i` and
/// `y >= sum(x_i) - (n - 1)`.
pub fn eq_min_binary(m: &mut Model, y: VarId, xs: &[VarId]) {
    le_min_binary(m, y, xs);
    let mut terms = vec![(y, 1)];
    terms.extend(xs.iter().map(|&x| (x, -1)));
    m.ge(&terms, 1 - xs.len() as i64);
}

/// Adds constraints making `z = x XOR y` for binaries, via
/// `z = max(x,y) - min(x,y)`: `z >= x - y`, `z >= y - x`, `z <= x + y`,
/// `z <= 2 - x - y`.
pub fn eq_xor_binary(m: &mut Model, z: VarId, x: VarId, y: VarId) {
    m.ge(&[(z, 1), (x, -1), (y, 1)], 0);
    m.ge(&[(z, 1), (y, -1), (x, 1)], 0);
    m.le(&[(z, 1), (x, -1), (y, -1)], 0);
    m.le(&[(z, 1), (x, 1), (y, 1)], 2);
}

/// `(c >= threshold) => (ix = 0)` for a nonnegative expression `ix`:
/// `ix <= (threshold - c) * M` rearranged to
/// `ix + M*c <= threshold * M` (the `(2 - C)M >= I_x` form of
/// Section 6.1.1.4).
pub fn implies_zero_if_ge(
    m: &mut Model,
    c_terms: &[(VarId, i64)],
    threshold: i64,
    ix_terms: &[(VarId, i64)],
    big_m: i64,
) {
    let mut terms: Vec<(VarId, i64)> = ix_terms.to_vec();
    terms.extend(c_terms.iter().map(|&(v, a)| (v, a * big_m)));
    m.le(&terms, threshold * big_m);
}

/// `(ix > 0) <=> (bx = 1)` for a nonnegative integer expression `ix` and a
/// binary `bx`: `ix <= M * bx` and `ix >= bx`.
pub fn iff_positive(m: &mut Model, ix_terms: &[(VarId, i64)], bx: VarId, big_m: i64) {
    let mut upper: Vec<(VarId, i64)> = ix_terms.to_vec();
    upper.push((bx, -big_m));
    m.le(&upper, 0);
    let mut lower: Vec<(VarId, i64)> = ix_terms.to_vec();
    lower.push((bx, -1));
    m.ge(&lower, 0);
}

/// `(bz = 1) => (ix >= iy)`: `ix >= iy - (1 - bz) * M`.
pub fn implies_ge(
    m: &mut Model,
    bz: VarId,
    ix_terms: &[(VarId, i64)],
    iy_terms: &[(VarId, i64)],
    big_m: i64,
) {
    let mut terms: Vec<(VarId, i64)> = ix_terms.to_vec();
    terms.extend(iy_terms.iter().map(|&(v, a)| (v, -a)));
    terms.push((bz, -big_m));
    m.ge(&terms, -big_m);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Model;

    fn check_xor(xv: i64, yv: i64) -> i64 {
        let mut m = Model::new();
        let x = m.binary("x");
        let y = m.binary("y");
        let z = m.binary("z");
        m.eq(&[(x, 1)], xv);
        m.eq(&[(y, 1)], yv);
        eq_xor_binary(&mut m, z, x, y);
        m.feasible().unwrap().int_value(z)
    }

    #[test]
    fn xor_truth_table() {
        assert_eq!(check_xor(0, 0), 0);
        assert_eq!(check_xor(0, 1), 1);
        assert_eq!(check_xor(1, 0), 1);
        assert_eq!(check_xor(1, 1), 0);
    }

    #[test]
    fn max_of_binaries() {
        for (a, b, want) in [(0, 0, 0), (1, 0, 1), (1, 1, 1)] {
            let mut m = Model::new();
            let x = m.binary("x");
            let y = m.binary("y");
            let z = m.binary("z");
            m.eq(&[(x, 1)], a);
            m.eq(&[(y, 1)], b);
            eq_max_binary(&mut m, z, &[x, y]);
            assert_eq!(m.feasible().unwrap().int_value(z), want);
        }
    }

    #[test]
    fn min_of_binaries() {
        for (a, b, want) in [(0, 1, 0), (1, 1, 1), (0, 0, 0)] {
            let mut m = Model::new();
            let x = m.binary("x");
            let y = m.binary("y");
            let z = m.binary("z");
            m.eq(&[(x, 1)], a);
            m.eq(&[(y, 1)], b);
            eq_min_binary(&mut m, z, &[x, y]);
            assert_eq!(m.feasible().unwrap().int_value(z), want);
        }
    }

    #[test]
    fn implication_zero_if_ge() {
        // c = c1 + c2 binaries; if c >= 2 then ix must be zero.
        let mut m = Model::new();
        let c1 = m.binary("c1");
        let c2 = m.binary("c2");
        let ix = m.integer("ix", Some(50));
        implies_zero_if_ge(&mut m, &[(c1, 1), (c2, 1)], 2, &[(ix, 1)], 100);
        m.eq(&[(c1, 1)], 1);
        m.eq(&[(c2, 1)], 1);
        m.maximize(&[(ix, 1)]);
        assert_eq!(m.solve().unwrap().int_value(ix), 0);

        // With c < 2 the expression is unconstrained (up to its bound).
        let mut m = Model::new();
        let c1 = m.binary("c1");
        let c2 = m.binary("c2");
        let ix = m.integer("ix", Some(50));
        implies_zero_if_ge(&mut m, &[(c1, 1), (c2, 1)], 2, &[(ix, 1)], 100);
        m.eq(&[(c1, 1)], 1);
        m.eq(&[(c2, 1)], 0);
        m.maximize(&[(ix, 1)]);
        assert_eq!(m.solve().unwrap().int_value(ix), 50);
    }

    #[test]
    fn iff_positive_links_indicator() {
        let mut m = Model::new();
        let ix = m.integer("ix", Some(9));
        let bx = m.binary("bx");
        iff_positive(&mut m, &[(ix, 1)], bx, 100);
        m.eq(&[(ix, 1)], 5);
        assert_eq!(m.feasible().unwrap().int_value(bx), 1);

        let mut m = Model::new();
        let ix = m.integer("ix", Some(9));
        let bx = m.binary("bx");
        iff_positive(&mut m, &[(ix, 1)], bx, 100);
        m.eq(&[(bx, 1)], 1);
        m.minimize(&[(ix, 1)]);
        assert_eq!(m.solve().unwrap().int_value(ix), 1);
    }

    #[test]
    fn conditional_ge_constraint() {
        let mut m = Model::new();
        let bz = m.binary("bz");
        let x = m.integer("x", Some(20));
        let y = m.integer("y", Some(20));
        implies_ge(&mut m, bz, &[(x, 1)], &[(y, 1)], 100);
        m.eq(&[(bz, 1)], 1);
        m.eq(&[(y, 1)], 7);
        m.minimize(&[(x, 1)]);
        assert_eq!(m.solve().unwrap().int_value(x), 7);

        // Disabled implication leaves x free.
        let mut m = Model::new();
        let bz = m.binary("bz");
        let x = m.integer("x", Some(20));
        let y = m.integer("y", Some(20));
        implies_ge(&mut m, bz, &[(x, 1)], &[(y, 1)], 100);
        m.eq(&[(bz, 1)], 0);
        m.eq(&[(y, 1)], 7);
        m.minimize(&[(x, 1)]);
        assert_eq!(m.solve().unwrap().int_value(x), 0);
    }
}
