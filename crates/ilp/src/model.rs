//! Problem modeling: variables, linear constraints, objective.

use std::fmt;

use crate::rational::Ratio;

/// Index of a decision variable in a [`Model`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub u32);

impl VarId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Comparison operator of a constraint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Cmp {
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `=`
    Eq,
}

/// Objective sense.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Sense {
    /// Maximize the objective (the paper's formulations all maximize).
    #[default]
    Maximize,
    /// Minimize the objective.
    Minimize,
}

/// A decision variable.
#[derive(Clone, Debug)]
pub struct VarDef {
    /// Display name.
    pub name: String,
    /// Lower bound (finite; the paper's variables are all nonnegative).
    pub lower: i64,
    /// Upper bound, or `None` for unbounded above.
    pub upper: Option<i64>,
    /// Whether the variable must take an integer value.
    pub integer: bool,
}

/// A linear constraint `sum(coeff * var) cmp rhs`.
#[derive(Clone, Debug)]
pub struct Constraint {
    /// `(variable, coefficient)` terms; variables may repeat (summed).
    pub terms: Vec<(VarId, i64)>,
    /// Comparison operator.
    pub cmp: Cmp,
    /// Right-hand side.
    pub rhs: i64,
}

/// Errors from solving a model.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SolveError {
    /// No assignment satisfies the constraints.
    Infeasible,
    /// The objective is unbounded.
    Unbounded,
    /// The node or pivot budget was exhausted before an answer was proven.
    LimitReached,
    /// The attached execution [`mcs_ctl::Budget`] tripped mid-search;
    /// query the budget for the reason. Unlike [`SolveError::LimitReached`]
    /// this is an external interruption, not an exhausted allowance.
    Interrupted,
    /// A term references a variable that does not exist.
    UnknownVariable(VarId),
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Infeasible => write!(f, "model is infeasible"),
            SolveError::Unbounded => write!(f, "objective is unbounded"),
            SolveError::LimitReached => {
                write!(f, "search budget exhausted before proving a result")
            }
            SolveError::Interrupted => {
                write!(f, "execution budget tripped before proving a result")
            }
            SolveError::UnknownVariable(v) => write!(f, "unknown variable id {v:?}"),
        }
    }
}

impl std::error::Error for SolveError {}

/// A solved assignment.
#[derive(Clone, Debug, PartialEq)]
pub struct Solution {
    /// Value per variable, indexed by [`VarId`].
    pub values: Vec<Ratio>,
    /// Objective value.
    pub objective: Ratio,
}

impl Solution {
    /// Value of one variable.
    pub fn value(&self, v: VarId) -> Ratio {
        self.values[v.index()]
    }

    /// Integer value of one variable.
    ///
    /// # Panics
    ///
    /// Panics if the value is fractional (cannot happen for integer
    /// variables in a solution returned by the ILP solver).
    pub fn int_value(&self, v: VarId) -> i64 {
        let r = self.values[v.index()];
        assert!(r.is_integer(), "variable {v:?} has fractional value {r}");
        r.numer() as i64
    }
}

/// An integer/mixed linear program.
///
/// # Examples
///
/// ```
/// use mcs_ilp::{Model, Cmp};
///
/// # fn main() -> Result<(), mcs_ilp::SolveError> {
/// let mut m = Model::new();
/// let x = m.binary("x");
/// let y = m.binary("y");
/// m.le(&[(x, 1), (y, 1)], 1); // x + y <= 1
/// m.maximize(&[(x, 2), (y, 3)]);
/// let s = m.solve()?;
/// assert_eq!(s.int_value(y), 1);
/// assert_eq!(s.int_value(x), 0);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default)]
pub struct Model {
    pub(crate) vars: Vec<VarDef>,
    pub(crate) cons: Vec<Constraint>,
    pub(crate) objective: Vec<(VarId, i64)>,
    pub(crate) sense: Sense,
    /// Branch-and-bound node budget (default 200 000).
    pub node_limit: usize,
    /// Optional execution budget, polled once per branch-and-bound node
    /// (each node runs a full rational simplex, so the poll granularity
    /// is one relaxation). Every node is also charged to the budget as
    /// one pivot — a deterministic unit of work, so count-based ceilings
    /// bound the exact search as reliably as deadlines do. A trip
    /// surfaces as [`SolveError::Interrupted`].
    pub budget: Option<mcs_ctl::Budget>,
}

impl Model {
    /// Creates an empty model.
    pub fn new() -> Self {
        Model {
            node_limit: 200_000,
            ..Model::default()
        }
    }

    /// Adds a binary (0/1) variable.
    pub fn binary(&mut self, name: &str) -> VarId {
        self.var(name, 0, Some(1), true)
    }

    /// Adds a nonnegative integer variable with an optional upper bound.
    pub fn integer(&mut self, name: &str, upper: Option<i64>) -> VarId {
        self.var(name, 0, upper, true)
    }

    /// Adds a nonnegative continuous variable with an optional upper bound.
    pub fn continuous(&mut self, name: &str, upper: Option<i64>) -> VarId {
        self.var(name, 0, upper, false)
    }

    /// Adds a variable with explicit bounds.
    pub fn var(&mut self, name: &str, lower: i64, upper: Option<i64>, integer: bool) -> VarId {
        let id = VarId(self.vars.len() as u32);
        self.vars.push(VarDef {
            name: name.to_string(),
            lower,
            upper,
            integer,
        });
        id
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.cons.len()
    }

    /// Variable definition.
    pub fn var_def(&self, v: VarId) -> &VarDef {
        &self.vars[v.index()]
    }

    /// Adds `sum(terms) <= rhs`.
    pub fn le(&mut self, terms: &[(VarId, i64)], rhs: i64) {
        self.constraint(terms, Cmp::Le, rhs);
    }

    /// Adds `sum(terms) >= rhs`.
    pub fn ge(&mut self, terms: &[(VarId, i64)], rhs: i64) {
        self.constraint(terms, Cmp::Ge, rhs);
    }

    /// Adds `sum(terms) = rhs`.
    pub fn eq(&mut self, terms: &[(VarId, i64)], rhs: i64) {
        self.constraint(terms, Cmp::Eq, rhs);
    }

    /// Adds a constraint with an explicit comparison operator.
    pub fn constraint(&mut self, terms: &[(VarId, i64)], cmp: Cmp, rhs: i64) {
        self.cons.push(Constraint {
            terms: terms.to_vec(),
            cmp,
            rhs,
        });
    }

    /// Sets a maximization objective.
    pub fn maximize(&mut self, terms: &[(VarId, i64)]) {
        self.objective = terms.to_vec();
        self.sense = Sense::Maximize;
    }

    /// Sets a minimization objective.
    pub fn minimize(&mut self, terms: &[(VarId, i64)]) {
        self.objective = terms.to_vec();
        self.sense = Sense::Minimize;
    }

    /// Solves the model: branch-and-bound over the exact rational simplex.
    ///
    /// # Errors
    ///
    /// [`SolveError::Infeasible`] if no assignment exists,
    /// [`SolveError::Unbounded`] if the objective diverges,
    /// [`SolveError::LimitReached`] if `node_limit` was exhausted.
    pub fn solve(&self) -> Result<Solution, SolveError> {
        crate::branch::solve(self)
    }

    /// Checks feasibility only (any objective is ignored): stops at the
    /// first integer-feasible point.
    ///
    /// # Errors
    ///
    /// Same as [`Model::solve`], minus `Unbounded`.
    pub fn feasible(&self) -> Result<Solution, SolveError> {
        let mut probe = self.clone();
        probe.objective.clear();
        probe.solve()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_building_blocks() {
        let mut m = Model::new();
        let x = m.binary("x");
        let y = m.integer("y", Some(7));
        m.le(&[(x, 3), (y, 2)], 12);
        m.ge(&[(y, 1)], 2);
        assert_eq!(m.num_vars(), 2);
        assert_eq!(m.num_constraints(), 2);
        assert!(m.var_def(x).integer);
        assert_eq!(m.var_def(y).upper, Some(7));
    }

    #[test]
    fn solution_accessors() {
        let s = Solution {
            values: vec![Ratio::int(3), Ratio::int(0)],
            objective: Ratio::int(3),
        };
        assert_eq!(s.int_value(VarId(0)), 3);
        assert_eq!(s.value(VarId(1)), Ratio::ZERO);
    }

    #[test]
    #[should_panic(expected = "fractional")]
    fn int_value_rejects_fractions() {
        let s = Solution {
            values: vec![Ratio::new(1, 2)],
            objective: Ratio::ZERO,
        };
        let _ = s.int_value(VarId(0));
    }

    #[test]
    fn knapsack_solves_to_the_known_optimum() {
        // max 10x + 6y + 4z  s.t.  x+y+z <= 10, 5x+4y+3z <= 15; integers.
        // Optimum: x=3 (uses the whole second budget), objective 30.
        let mut m = Model::new();
        let x = m.integer("x", Some(10));
        let y = m.integer("y", Some(10));
        let z = m.integer("z", Some(10));
        m.le(&[(x, 1), (y, 1), (z, 1)], 10);
        m.le(&[(x, 5), (y, 4), (z, 3)], 15);
        m.maximize(&[(x, 10), (y, 6), (z, 4)]);
        let s = m.solve().unwrap();
        assert_eq!(s.objective, Ratio::int(30));
        assert_eq!(s.int_value(x), 3);
    }

    #[test]
    fn equality_constraints_bind_exactly() {
        let mut m = Model::new();
        let x = m.integer("x", Some(100));
        let y = m.integer("y", Some(100));
        m.eq(&[(x, 2), (y, 3)], 12);
        m.maximize(&[(x, 1)]);
        let s = m.solve().unwrap();
        assert_eq!(2 * s.int_value(x) + 3 * s.int_value(y), 12);
        assert_eq!(s.int_value(x), 6, "x=6, y=0 maximizes x");
    }

    #[test]
    fn infeasible_models_are_reported_not_solved() {
        let mut m = Model::new();
        let x = m.binary("x");
        m.ge(&[(x, 1)], 2); // a binary cannot reach 2
        m.maximize(&[(x, 1)]);
        assert!(m.solve().is_err());
    }

    #[test]
    fn minimization_negates_correctly() {
        let mut m = Model::new();
        let x = m.integer("x", Some(50));
        m.ge(&[(x, 1)], 7);
        m.minimize(&[(x, 1)]);
        let s = m.solve().unwrap();
        assert_eq!(s.int_value(x), 7);
    }

    #[test]
    fn feasible_finds_any_point_without_an_objective() {
        let mut m = Model::new();
        let x = m.integer("x", Some(9));
        let y = m.integer("y", Some(9));
        m.ge(&[(x, 1), (y, 1)], 5);
        m.le(&[(x, 1), (y, 2)], 12);
        let s = m.feasible().unwrap();
        let (xv, yv) = (s.int_value(x), s.int_value(y));
        assert!(xv + yv >= 5 && xv + 2 * yv <= 12);
    }

    #[test]
    fn continuous_relaxations_may_be_fractional() {
        let mut m = Model::new();
        let x = m.continuous("x", Some(10));
        m.le(&[(x, 2)], 5);
        m.maximize(&[(x, 1)]);
        let s = m.solve().unwrap();
        assert_eq!(s.value(x), Ratio::new(5, 2));
    }
}
