//! Exact two-phase primal simplex over rationals, with Bland's rule for
//! guaranteed termination. Used as the relaxation solver inside
//! branch-and-bound, and directly for LP feasibility questions.

use crate::model::{Cmp, Model, Sense, VarId};
use crate::rational::Ratio;

/// Result of solving a linear relaxation.
#[derive(Clone, Debug, PartialEq)]
pub enum LpResult {
    /// Optimal point found: values per structural variable and objective.
    Optimal {
        /// Value of each structural variable, indexed by [`VarId`].
        values: Vec<Ratio>,
        /// Objective value in the model's own sense.
        objective: Ratio,
    },
    /// The constraints admit no point.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
}

/// Per-variable bound overrides applied by branch-and-bound nodes.
#[derive(Clone, Debug, Default)]
pub struct Bounds {
    /// `(variable, lower, upper)` triples; `None` keeps the model bound.
    pub overrides: Vec<(VarId, Option<i64>, Option<i64>)>,
}

impl Bounds {
    fn lower(&self, model: &Model, v: usize) -> i64 {
        // Overrides accumulate along a branch-and-bound path: every
        // recorded bound narrows the box, so take the tightest.
        self.overrides
            .iter()
            .filter(|(id, _, _)| id.index() == v)
            .filter_map(|&(_, l, _)| l)
            .fold(model.vars[v].lower, i64::max)
    }

    fn upper(&self, model: &Model, v: usize) -> Option<i64> {
        self.overrides
            .iter()
            .filter(|(id, _, _)| id.index() == v)
            .filter_map(|&(_, _, u)| u)
            .fold(model.vars[v].upper, |acc, u| {
                Some(acc.map_or(u, |a| a.min(u)))
            })
    }
}

/// Solves the linear relaxation of `model` (integrality dropped) under the
/// given bound overrides.
pub fn solve_relaxation(model: &Model, bounds: &Bounds) -> LpResult {
    let n = model.vars.len();
    let mut lower = vec![0i64; n];
    let mut upper = vec![None; n];
    for v in 0..n {
        lower[v] = bounds.lower(model, v);
        upper[v] = bounds.upper(model, v);
        if let Some(u) = upper[v] {
            if u < lower[v] {
                return LpResult::Infeasible;
            }
        }
    }

    // Shift every variable by its lower bound: x = x' + l, x' >= 0.
    // Collect rows as (coeffs over structural vars, cmp, rhs').
    struct RawRow {
        coeffs: Vec<Ratio>,
        cmp: Cmp,
        rhs: Ratio,
    }
    let mut raw: Vec<RawRow> = Vec::new();
    for c in &model.cons {
        let mut coeffs = vec![Ratio::ZERO; n];
        let mut rhs = Ratio::int(c.rhs);
        for &(v, a) in &c.terms {
            coeffs[v.index()] += Ratio::int(a);
            rhs -= Ratio::int(a) * Ratio::int(lower[v.index()]);
        }
        raw.push(RawRow {
            coeffs,
            cmp: c.cmp,
            rhs,
        });
    }
    // Upper bounds as explicit rows: x' <= u - l.
    for v in 0..n {
        if let Some(u) = upper[v] {
            let mut coeffs = vec![Ratio::ZERO; n];
            coeffs[v] = Ratio::ONE;
            raw.push(RawRow {
                coeffs,
                cmp: Cmp::Le,
                rhs: Ratio::int(u - lower[v]),
            });
        }
    }

    // Normalize rhs >= 0.
    for r in &mut raw {
        if r.rhs.is_negative() {
            for a in &mut r.coeffs {
                *a = -*a;
            }
            r.rhs = -r.rhs;
            r.cmp = match r.cmp {
                Cmp::Le => Cmp::Ge,
                Cmp::Ge => Cmp::Le,
                Cmp::Eq => Cmp::Eq,
            };
        }
    }

    let m = raw.len();
    // Column layout: [structural | slack/surplus | artificial], rhs last.
    let mut num_slack = 0usize;
    let mut num_art = 0usize;
    for r in &raw {
        match r.cmp {
            Cmp::Le => num_slack += 1,
            Cmp::Ge => {
                num_slack += 1;
                num_art += 1;
            }
            Cmp::Eq => num_art += 1,
        }
    }
    let ncols = n + num_slack + num_art;
    let mut t = vec![vec![Ratio::ZERO; ncols + 1]; m];
    let mut basis = vec![0usize; m];
    let mut is_art = vec![false; ncols];
    let mut next_slack = n;
    let mut next_art = n + num_slack;
    for (i, r) in raw.iter().enumerate() {
        t[i][..n].clone_from_slice(&r.coeffs);
        t[i][ncols] = r.rhs;
        match r.cmp {
            Cmp::Le => {
                t[i][next_slack] = Ratio::ONE;
                basis[i] = next_slack;
                next_slack += 1;
            }
            Cmp::Ge => {
                t[i][next_slack] = -Ratio::ONE;
                next_slack += 1;
                t[i][next_art] = Ratio::ONE;
                basis[i] = next_art;
                is_art[next_art] = true;
                next_art += 1;
            }
            Cmp::Eq => {
                t[i][next_art] = Ratio::ONE;
                basis[i] = next_art;
                is_art[next_art] = true;
                next_art += 1;
            }
        }
    }

    // Phase 1: maximize -(sum of artificials).
    if num_art > 0 {
        let mut obj = vec![Ratio::ZERO; ncols + 1];
        for (j, &a) in is_art.iter().enumerate() {
            if a {
                obj[j] = -Ratio::ONE;
            }
        }
        price_out(&mut obj, &t, &basis);
        if pivot_loop(&mut t, &mut basis, &mut obj, &is_art, false) == Outcome::Unbounded {
            unreachable!("phase-1 objective is bounded above by zero");
        }
        // The rhs cell holds -z; phase 1 is infeasible iff its optimum
        // z = -(sum of artificials) is strictly negative.
        if obj[ncols].is_positive() {
            return LpResult::Infeasible;
        }
        // Drive remaining artificials out of the basis where possible.
        for i in 0..m {
            if is_art[basis[i]] {
                if let Some(j) = (0..n + num_slack).find(|&j| !t[i][j].is_zero()) {
                    pivot(&mut t, &mut basis, &mut obj, i, j);
                } // else the row is redundant; artificial stays at zero.
            }
        }
    }

    // Phase 2: the real objective over shifted variables.
    let mut obj = vec![Ratio::ZERO; ncols + 1];
    let sign = match model.sense {
        Sense::Maximize => Ratio::ONE,
        Sense::Minimize => -Ratio::ONE,
    };
    let mut constant = Ratio::ZERO;
    for &(v, a) in &model.objective {
        obj[v.index()] += sign * Ratio::int(a);
        constant += sign * Ratio::int(a) * Ratio::int(lower[v.index()]);
    }
    price_out(&mut obj, &t, &basis);
    if pivot_loop(&mut t, &mut basis, &mut obj, &is_art, true) == Outcome::Unbounded {
        return LpResult::Unbounded;
    }

    // Read the solution.
    let mut values = vec![Ratio::ZERO; n];
    for i in 0..m {
        if basis[i] < n {
            values[basis[i]] = t[i][ncols];
        }
    }
    for (v, val) in values.iter_mut().enumerate() {
        *val += Ratio::int(lower[v]);
    }
    // The objective row's rhs cell accumulates -z for the shifted,
    // sign-normalized problem.
    let objective = sign * (constant - obj[ncols]);
    LpResult::Optimal { values, objective }
}

#[derive(PartialEq)]
enum Outcome {
    Optimal,
    Unbounded,
}

/// Makes the objective row consistent with the current basis (zero reduced
/// cost on basic columns).
fn price_out(obj: &mut [Ratio], t: &[Vec<Ratio>], basis: &[usize]) {
    for (i, &b) in basis.iter().enumerate() {
        if !obj[b].is_zero() {
            let f = obj[b];
            for j in 0..obj.len() {
                obj[j] -= f * t[i][j];
            }
        }
    }
    // Objective value lives in the rhs cell as -z; keep convention z = -obj[rhs].
}

fn pivot(t: &mut [Vec<Ratio>], basis: &mut [usize], obj: &mut [Ratio], row: usize, col: usize) {
    let p = t[row][col];
    let inv = p.recip();
    for x in t[row].iter_mut() {
        *x = *x * inv;
    }
    for i in 0..t.len() {
        if i != row && !t[i][col].is_zero() {
            let f = t[i][col];
            for j in 0..t[i].len() {
                let delta = f * t[row][j];
                t[i][j] -= delta;
            }
        }
    }
    if !obj[col].is_zero() {
        let f = obj[col];
        for j in 0..obj.len() {
            let delta = f * t[row][j];
            obj[j] -= delta;
        }
    }
    basis[row] = col;
}

/// Bland's-rule simplex loop; maximizes. `skip_art` bars artificial columns
/// from entering (phase 2).
fn pivot_loop(
    t: &mut [Vec<Ratio>],
    basis: &mut [usize],
    obj: &mut [Ratio],
    is_art: &[bool],
    skip_art: bool,
) -> Outcome {
    let ncols = obj.len() - 1;
    loop {
        // Entering: smallest index with positive reduced cost.
        let Some(col) = (0..ncols).find(|&j| obj[j].is_positive() && !(skip_art && is_art[j]))
        else {
            return Outcome::Optimal;
        };
        // Leaving: min ratio, Bland tie-break on basis index.
        let mut best: Option<(Ratio, usize, usize)> = None;
        for i in 0..t.len() {
            if t[i][col].is_positive() {
                let ratio = t[i][ncols] / t[i][col];
                let better = match &best {
                    None => true,
                    Some((r, b, _)) => ratio < *r || (ratio == *r && basis[i] < *b),
                };
                if better {
                    best = Some((ratio, basis[i], i));
                }
            }
        }
        match best {
            None => return Outcome::Unbounded,
            Some((_, _, row)) => pivot(t, basis, obj, row, col),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Model;

    fn opt(model: &Model) -> (Vec<Ratio>, Ratio) {
        match solve_relaxation(model, &Bounds::default()) {
            LpResult::Optimal { values, objective } => (values, objective),
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn maximize_simple_lp() {
        // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6, x,y >= 0 -> x=4, y=0.
        let mut m = Model::new();
        let x = m.continuous("x", None);
        let y = m.continuous("y", None);
        m.le(&[(x, 1), (y, 1)], 4);
        m.le(&[(x, 1), (y, 3)], 6);
        m.maximize(&[(x, 3), (y, 2)]);
        let (v, z) = opt(&m);
        assert_eq!(z, Ratio::int(12));
        assert_eq!(v[0], Ratio::int(4));
        assert_eq!(v[1], Ratio::ZERO);
    }

    #[test]
    fn fractional_optimum_is_exact() {
        // max x + y s.t. 2x + y <= 3, x + 2y <= 3 -> x=y=1 at corner; try
        // max 2x + y instead for a fractional-ish path.
        let mut m = Model::new();
        let x = m.continuous("x", None);
        let y = m.continuous("y", None);
        m.le(&[(x, 2), (y, 1)], 3);
        m.le(&[(x, 1), (y, 2)], 3);
        m.maximize(&[(x, 1), (y, 1)]);
        let (v, z) = opt(&m);
        assert_eq!(z, Ratio::int(2));
        assert_eq!(v[0], Ratio::ONE);
        assert_eq!(v[1], Ratio::ONE);
    }

    #[test]
    fn detects_infeasibility() {
        let mut m = Model::new();
        let x = m.continuous("x", None);
        m.ge(&[(x, 1)], 5);
        m.le(&[(x, 1)], 3);
        assert_eq!(
            solve_relaxation(&m, &Bounds::default()),
            LpResult::Infeasible
        );
    }

    #[test]
    fn detects_unboundedness() {
        let mut m = Model::new();
        let x = m.continuous("x", None);
        m.ge(&[(x, 1)], 1);
        m.maximize(&[(x, 1)]);
        assert_eq!(
            solve_relaxation(&m, &Bounds::default()),
            LpResult::Unbounded
        );
    }

    #[test]
    fn equality_constraints_work() {
        // max x s.t. x + y = 5, y >= 2  -> x = 3.
        let mut m = Model::new();
        let x = m.continuous("x", None);
        let y = m.continuous("y", None);
        m.eq(&[(x, 1), (y, 1)], 5);
        m.ge(&[(y, 1)], 2);
        m.maximize(&[(x, 1)]);
        let (v, z) = opt(&m);
        assert_eq!(z, Ratio::int(3));
        assert_eq!(v[1], Ratio::int(2));
    }

    #[test]
    fn minimization_and_lower_bounds() {
        // min x + y s.t. x + y >= 4, x >= 1, y in [0, 10].
        let mut m = Model::new();
        let x = m.var("x", 1, None, false);
        let y = m.var("y", 0, Some(10), false);
        m.ge(&[(x, 1), (y, 1)], 4);
        m.minimize(&[(x, 1), (y, 1)]);
        let (_, z) = opt(&m);
        assert_eq!(z, Ratio::int(4));
    }

    #[test]
    fn bound_overrides_apply() {
        let mut m = Model::new();
        let x = m.continuous("x", Some(10));
        m.maximize(&[(x, 1)]);
        let mut b = Bounds::default();
        b.overrides.push((x, None, Some(4)));
        match solve_relaxation(&m, &b) {
            LpResult::Optimal { objective, .. } => assert_eq!(objective, Ratio::int(4)),
            other => panic!("unexpected {other:?}"),
        }
        // Conflicting overrides are infeasible.
        let mut b = Bounds::default();
        b.overrides.push((x, Some(5), Some(4)));
        assert_eq!(solve_relaxation(&m, &b), LpResult::Infeasible);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // A classic degenerate setup; Bland's rule must not cycle.
        let mut m = Model::new();
        let x = m.continuous("x", None);
        let y = m.continuous("y", None);
        let z = m.continuous("z", None);
        m.le(&[(x, 1), (y, 1), (z, 1)], 0);
        m.le(&[(x, 1), (y, -1)], 0);
        m.maximize(&[(x, 1), (y, 1), (z, 1)]);
        let (_, obj) = opt(&m);
        assert_eq!(obj, Ratio::ZERO);
    }
}
