//! Gomory's Dual All-Integer cutting-plane method (1960), the algorithm
//! Section 3.3 of the paper prescribes for the incremental pin-allocation
//! feasibility checker.
//!
//! The solver checks feasibility of systems `A x <= b` over nonnegative
//! integers `x`. The working tableau expresses every *tracked* variable
//! (structural variables and original slacks) in terms of the current
//! nonbasic set, `x_i = t_i0 + sum_j t_ij (-u_j)`, and stays all-integer
//! throughout: each iteration selects a violated row (`t_i0 < 0`),
//! generates an all-integer Gomory cut with pivot element exactly `-1`
//! (divisor `lambda = -t_rk`), and pivots on the cut.
//!
//! Because the pin-allocation ILP only asks for *feasibility* (the paper
//! maximizes the constant 0), the dual-feasibility side condition on the
//! cut divisor is vacuous, which keeps the implementation faithful yet
//! simple. Termination is enforced with a pivot budget; if the budget is
//! exhausted the caller falls back to exact branch-and-bound
//! ([`AllIntegerSolver::solve_exact`]), so verdicts are always sound.
//!
//! The incremental update of Section 3.3 — adding `x >= 1` by substituting
//! `x' = x - 1`, i.e. subtracting the variable's column from the constant
//! column (Equation 3.13) — is [`AllIntegerSolver::assume_at_least`];
//! probing without committing is [`AllIntegerSolver::probe_at_least`].

use crate::model::{Model, SolveError};
use mcs_obs::{Event, RecorderHandle};

/// Verdict of a feasibility check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Feasibility {
    /// An all-integer assignment satisfying every constraint exists (the
    /// tableau's current basic point).
    Feasible,
    /// No nonnegative integer assignment satisfies the constraints.
    Infeasible,
    /// The pivot budget ran out before a verdict (fall back to
    /// [`AllIntegerSolver::solve_exact`]).
    PivotLimit,
}

#[derive(Clone, Debug)]
struct Row {
    /// Constant column `t_i0`.
    t0: i128,
    /// Coefficients `t_ij` over the current nonbasic columns.
    coeffs: Vec<i128>,
}

/// Incremental all-integer feasibility solver for `A x <= b`, `x >= 0`
/// integer.
///
/// # Examples
///
/// ```
/// use mcs_ilp::{AllIntegerSolver, Feasibility};
///
/// // x0 + x1 <= 1 with both required at least 1 is infeasible.
/// let mut s = AllIntegerSolver::new(2);
/// s.add_le(&[(0, 1), (1, 1)], 1);
/// assert_eq!(s.solve(1000), Feasibility::Feasible);
/// assert_eq!(s.probe_at_least(0, 1, 1000), Feasibility::Feasible);
/// s.assume_at_least(0, 1);
/// assert_eq!(s.solve(1000), Feasibility::Feasible);
/// assert_eq!(s.probe_at_least(1, 1, 1000), Feasibility::Infeasible);
/// ```
#[derive(Clone, Debug)]
pub struct AllIntegerSolver {
    num_vars: usize,
    /// Rows 0..num_vars track the structural variables; later rows track
    /// original slacks (one per constraint).
    rows: Vec<Row>,
    /// Width of the current nonbasic set.
    ncols: usize,
    /// Accumulated lower-bound shifts applied via `assume_at_least`.
    shifts: Vec<i64>,
    /// Original constraints, kept for the exact fallback.
    original: Vec<(Vec<(usize, i64)>, i64)>,
    /// Sink for per-pivot `GomoryCut` events (inactive by default).
    /// Clones share the sink, so probe clones report their pivots too.
    recorder: RecorderHandle,
}

impl AllIntegerSolver {
    /// Creates a solver over `num_vars` nonnegative integer variables.
    pub fn new(num_vars: usize) -> Self {
        let mut rows = Vec::with_capacity(num_vars);
        for v in 0..num_vars {
            // x_v = 0 + (-1) * (-u_v)  =  u_v.
            let mut coeffs = vec![0i128; num_vars];
            coeffs[v] = -1;
            rows.push(Row { t0: 0, coeffs });
        }
        AllIntegerSolver {
            num_vars,
            rows,
            ncols: num_vars,
            shifts: vec![0; num_vars],
            original: Vec::new(),
            recorder: RecorderHandle::default(),
        }
    }

    /// Routes per-pivot `GomoryCut` events to `recorder`.
    pub fn set_recorder(&mut self, recorder: RecorderHandle) {
        self.recorder = recorder;
    }

    /// Number of structural variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Adds `sum(coeff * x_var) <= rhs`.
    ///
    /// # Panics
    ///
    /// Panics if a variable index is out of range.
    pub fn add_le(&mut self, terms: &[(usize, i64)], rhs: i64) {
        for &(v, _) in terms {
            assert!(v < self.num_vars, "variable index out of range");
        }
        self.original.push((terms.to_vec(), rhs));
        // Slack s = rhs - sum a_v x_v, expressed over current nonbasics via
        // the structural rows (which are maintained for every variable).
        let mut t0 = rhs as i128;
        let mut coeffs = vec![0i128; self.ncols];
        for &(v, a) in terms {
            let a = a as i128;
            // The tracked row holds the shifted variable x' = x - shift.
            t0 -= a * (self.rows[v].t0 + self.shifts[v] as i128);
            for (c, &rv) in coeffs.iter_mut().zip(&self.rows[v].coeffs) {
                *c -= a * rv;
            }
        }
        self.rows.push(Row { t0, coeffs });
    }

    /// Adds `sum(coeff * x_var) >= rhs` (negated `<=`).
    pub fn add_ge(&mut self, terms: &[(usize, i64)], rhs: i64) {
        let neg: Vec<_> = terms.iter().map(|&(v, a)| (v, -a)).collect();
        self.add_le(&neg, -rhs);
    }

    /// Commits the assumption `x_var >= current assumption + by`
    /// (Section 3.3: substitute `x' = x - by` and subtract the column from
    /// the constant vector, Equation 3.13).
    pub fn assume_at_least(&mut self, var: usize, by: i64) {
        assert!(var < self.num_vars, "variable index out of range");
        // A new nonnegativity row for the shifted variable: x - (shift+by)
        // >= 0. Expressed via the tracked row of x (which is relative to
        // the existing shift): x_row - by >= 0.
        let row = Row {
            t0: self.rows[var].t0 - by as i128,
            coeffs: self.rows[var].coeffs.clone(),
        };
        // Replace the structural row: from now on the tracked row is the
        // re-shifted variable.
        self.rows[var] = row;
        self.shifts[var] += by;
    }

    /// Runs the dual all-integer cutting-plane loop with at most
    /// `max_pivots` pivots. The tableau retains all generated cuts, so the
    /// call is resumable and subsequent incremental checks are warm-started
    /// — exactly the usage pattern of the scheduling feasibility checker.
    pub fn solve(&mut self, max_pivots: usize) -> Feasibility {
        for round in 0..max_pivots {
            // Most negative constant column; ties to the lowest row index.
            let Some(r) = (0..self.rows.len())
                .filter(|&i| self.rows[i].t0 < 0)
                .min_by_key(|&i| (self.rows[i].t0, i))
            else {
                return Feasibility::Feasible;
            };
            // Columns that can raise row r: t_rj < 0.
            let Some(k) = (0..self.ncols).find(|&j| self.rows[r].coeffs[j] < 0) else {
                return Feasibility::Infeasible;
            };
            // All-integer Gomory cut with divisor lambda = -t_rk, giving a
            // pivot element of exactly -1.
            let lambda = -self.rows[r].coeffs[k];
            let cut = Row {
                t0: self.rows[r].t0.div_euclid(lambda),
                coeffs: self.rows[r]
                    .coeffs
                    .iter()
                    .map(|&a| a.div_euclid(lambda))
                    .collect(),
            };
            debug_assert_eq!(cut.coeffs[k], -1);
            if self.recorder.enabled() {
                self.recorder.record(Event::GomoryCut {
                    round: round as u32,
                    pivot: k as u32,
                    objective: self.rows[r].t0.clamp(i64::MIN as i128, i64::MAX as i128) as i64,
                });
            }
            self.pivot_on_cut(cut, k);
        }
        Feasibility::PivotLimit
    }

    /// Pivot: the cut's slack `s` enters the nonbasic set in place of
    /// column `k`; `u_k = -t0 + sum_{j != k} t_j u_j + s` is substituted
    /// into every tracked row. All arithmetic stays integral because the
    /// pivot element is `-1`.
    fn pivot_on_cut(&mut self, cut: Row, k: usize) {
        for row in &mut self.rows {
            let f = row.coeffs[k];
            if f != 0 {
                row.t0 += f * cut.t0;
                for j in 0..self.ncols {
                    if j != k {
                        row.coeffs[j] += f * cut.coeffs[j];
                    }
                }
                // Column k now belongs to the cut slack s; coefficient of
                // (-s) in this row is f * (pivot -1) * -1 = f... derive:
                // substituting u_k = -t0 + sum t_j u_j + s into
                // x = ... + t_ik (-u_k): contribution -f*s => coefficient
                // of (-s) is f. The stored coefficient stays f.
            }
        }
    }

    /// Current basic point (nonbasics at zero) for the structural
    /// variables, valid after [`AllIntegerSolver::solve`] returned
    /// [`Feasibility::Feasible`]. Includes accumulated shifts.
    pub fn solution(&self) -> Vec<i64> {
        (0..self.num_vars)
            .map(|v| (self.rows[v].t0 + self.shifts[v] as i128) as i64)
            .collect()
    }

    /// Checks whether committing `x_var >= by` more would keep the system
    /// feasible, without changing the solver state.
    pub fn probe_at_least(&self, var: usize, by: i64, max_pivots: usize) -> Feasibility {
        let mut clone = self.clone();
        clone.assume_at_least(var, by);
        let verdict = clone.solve(max_pivots);
        if verdict == Feasibility::PivotLimit {
            clone.solve_exact()
        } else {
            verdict
        }
    }

    /// Exact fallback: rebuilds the system (original constraints plus all
    /// committed assumptions) and solves it with branch-and-bound.
    pub fn solve_exact(&self) -> Feasibility {
        let mut m = Model::new();
        let vars: Vec<_> = (0..self.num_vars)
            .map(|v| m.integer(&format!("x{v}"), None))
            .collect();
        for (terms, rhs) in &self.original {
            let t: Vec<_> = terms.iter().map(|&(v, a)| (vars[v], a)).collect();
            m.le(&t, *rhs);
        }
        for (v, &s) in self.shifts.iter().enumerate() {
            if s > 0 {
                m.ge(&[(vars[v], 1)], s);
            }
        }
        match m.feasible() {
            Ok(_) => Feasibility::Feasible,
            Err(SolveError::Infeasible) => Feasibility::Infeasible,
            Err(_) => Feasibility::PivotLimit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivially_feasible_at_origin() {
        let mut s = AllIntegerSolver::new(3);
        s.add_le(&[(0, 1), (1, 2), (2, 3)], 10);
        assert_eq!(s.solve(100), Feasibility::Feasible);
        assert_eq!(s.solution(), vec![0, 0, 0]);
    }

    #[test]
    fn ge_constraints_force_positive_values() {
        let mut s = AllIntegerSolver::new(2);
        s.add_ge(&[(0, 1), (1, 1)], 3);
        s.add_le(&[(0, 1)], 1);
        assert_eq!(s.solve(1000), Feasibility::Feasible);
        let sol = s.solution();
        assert!(sol[0] + sol[1] >= 3, "solution {sol:?}");
        assert!(sol[0] <= 1);
        assert!(sol.iter().all(|&x| x >= 0));
    }

    #[test]
    fn detects_infeasibility() {
        let mut s = AllIntegerSolver::new(1);
        s.add_ge(&[(0, 1)], 5);
        s.add_le(&[(0, 1)], 3);
        assert_eq!(s.solve(1000), Feasibility::Infeasible);
    }

    #[test]
    fn integrality_matters() {
        // 2x <= 1 and x >= 1 is LP-infeasible too; but 2x >= 1, 2x <= 1
        // admits x = 1/2 and no integer: the all-integer method must say
        // infeasible.
        let mut s = AllIntegerSolver::new(1);
        s.add_ge(&[(0, 2)], 1);
        s.add_le(&[(0, 2)], 1);
        let v = match s.solve(1000) {
            Feasibility::PivotLimit => s.solve_exact(),
            other => other,
        };
        assert_eq!(v, Feasibility::Infeasible);
    }

    #[test]
    fn assume_at_least_matches_equation_3_13() {
        let mut s = AllIntegerSolver::new(2);
        s.add_le(&[(0, 1), (1, 1)], 2);
        s.assume_at_least(0, 1);
        assert_eq!(s.solve(1000), Feasibility::Feasible);
        let sol = s.solution();
        assert!(sol[0] >= 1);
        assert!(sol[0] + sol[1] <= 2);
        s.assume_at_least(1, 1);
        assert_eq!(s.solve(1000), Feasibility::Feasible);
        let sol = s.solution();
        assert_eq!(sol, vec![1, 1]);
        // A third unit of demand exceeds the budget.
        assert_eq!(s.probe_at_least(0, 1, 1000), Feasibility::Infeasible);
    }

    #[test]
    fn probe_does_not_mutate_state() {
        let mut s = AllIntegerSolver::new(2);
        s.add_le(&[(0, 1), (1, 1)], 1);
        let _ = s.probe_at_least(0, 1, 1000);
        let _ = s.probe_at_least(1, 1, 1000);
        assert_eq!(s.solve(1000), Feasibility::Feasible);
        assert_eq!(s.solution(), vec![0, 0]);
    }

    #[test]
    fn bin_packing_style_feasibility() {
        // Two bins of capacity 8; three items of width 8 must each go in
        // some bin: x[i][b] binaries, sum_b x[i][b] >= 1, per-bin width sums
        // <= 8. Only 2 of 3 items fit -> infeasible.
        let var = |i: usize, bin: usize| i * 2 + bin;
        let mut s = AllIntegerSolver::new(6);
        for i in 0..3 {
            s.add_ge(&[(var(i, 0), 1), (var(i, 1), 1)], 1);
            for bin in 0..2 {
                s.add_le(&[(var(i, bin), 1)], 1);
            }
        }
        for bin in 0..2 {
            let terms: Vec<_> = (0..3).map(|i| (var(i, bin), 8)).collect();
            s.add_le(&terms, 8);
        }
        let v = match s.solve(5000) {
            Feasibility::PivotLimit => s.solve_exact(),
            other => other,
        };
        assert_eq!(v, Feasibility::Infeasible);

        // With 8-bit-wide bins and 4-bit items, everything fits.
        let mut s = AllIntegerSolver::new(6);
        for i in 0..3 {
            s.add_ge(&[(var(i, 0), 1), (var(i, 1), 1)], 1);
            for bin in 0..2 {
                s.add_le(&[(var(i, bin), 1)], 1);
            }
        }
        for bin in 0..2 {
            let terms: Vec<_> = (0..3).map(|i| (var(i, bin), 4)).collect();
            s.add_le(&terms, 8);
        }
        let v = match s.solve(5000) {
            Feasibility::PivotLimit => s.solve_exact(),
            other => other,
        };
        assert_eq!(v, Feasibility::Feasible);
    }

    #[test]
    fn recorder_sees_every_pivot() {
        use mcs_obs::BufferingRecorder;
        use std::sync::Arc;
        let buf = Arc::new(BufferingRecorder::new());
        let mut s = AllIntegerSolver::new(2);
        s.set_recorder(RecorderHandle::new(buf.clone()));
        s.add_ge(&[(0, 1), (1, 1)], 3);
        s.add_le(&[(0, 1)], 1);
        assert_eq!(s.solve(1000), Feasibility::Feasible);
        let cuts = buf
            .events()
            .iter()
            .filter(|e| matches!(e, Event::GomoryCut { .. }))
            .count();
        assert!(cuts > 0, "a forced-positive system needs at least one cut");
        // Probe clones share the sink: probing records further pivots.
        let before = buf.events().len();
        let _ = s.probe_at_least(1, 1, 1000);
        assert!(buf.events().len() >= before);
    }

    #[test]
    fn exact_fallback_agrees_with_cutting_plane() {
        let mut s = AllIntegerSolver::new(3);
        s.add_ge(&[(0, 1), (1, 1), (2, 1)], 2);
        s.add_le(&[(0, 3), (1, 2), (2, 1)], 4);
        let cut = match s.clone().solve(10_000) {
            Feasibility::PivotLimit => None,
            v => Some(v),
        };
        let exact = s.solve_exact();
        if let Some(v) = cut {
            assert_eq!(v, exact);
        }
        assert_eq!(exact, Feasibility::Feasible);
    }
}
