//! Gomory's Dual All-Integer cutting-plane method (1960), the algorithm
//! Section 3.3 of the paper prescribes for the incremental pin-allocation
//! feasibility checker.
//!
//! The solver checks feasibility of systems `A x <= b` over nonnegative
//! integers `x`. The working tableau expresses every *tracked* variable
//! (structural variables and original slacks) in terms of the current
//! nonbasic set, `x_i = t_i0 + sum_j t_ij (-u_j)`, and stays all-integer
//! throughout: each iteration selects a violated row (`t_i0 < 0`),
//! generates an all-integer Gomory cut with pivot element exactly `-1`
//! (divisor `lambda = -t_rk`), and pivots on the cut.
//!
//! Because the pin-allocation ILP only asks for *feasibility* (the paper
//! maximizes the constant 0), the dual-feasibility side condition on the
//! cut divisor is vacuous, which keeps the implementation faithful yet
//! simple. Termination is enforced with a pivot budget; if the budget is
//! exhausted the caller falls back to exact branch-and-bound
//! ([`AllIntegerSolver::solve_exact`]), so verdicts are always sound.
//!
//! The incremental update of Section 3.3 — adding `x >= 1` by substituting
//! `x' = x - 1`, i.e. subtracting the variable's column from the constant
//! column (Equation 3.13) — is [`AllIntegerSolver::assume_at_least`];
//! probing without committing is [`AllIntegerSolver::probe_at_least`].
//!
//! # The copy-free probe engine
//!
//! The tableau lives in one contiguous row-major arena (stride
//! `ncols + 1`: the constant column followed by the coefficients), and
//! every mutation — row append, lower-bound shift, cut pivot — can be
//! recorded on an **undo trail**. A probe is therefore
//! [`AllIntegerSolver::checkpoint`] → mutate/solve →
//! [`AllIntegerSolver::rollback`] instead of a deep clone of the tableau
//! plus every accumulated cut: rolling a pivot back replays its cut row
//! (parked in a side arena) with the inverse sign, which restores the
//! arena byte for byte. Trail recording is active only while a
//! checkpoint is outstanding, so committed solves
//! ([`AllIntegerSolver::assume_at_least`] + [`AllIntegerSolver::solve`])
//! cost no trail memory at all. The legacy clone-based probe survives as
//! [`AllIntegerSolver::probe_at_least_via_clone`] and backs a
//! differential-testing mode ([`AllIntegerSolver::set_differential`])
//! that cross-checks every trail verdict against it.
//!
//! # Adaptive word size
//!
//! Pin-allocation tableaus hold small coefficients (bit widths, pin
//! budgets), so the arena starts as `Vec<i64>` — half the memory traffic
//! and twice the SIMD lanes of the old `i128` representation. Every
//! pivot's coefficient-explosion guard bounds the next tableau by
//! `tab_max * (1 + cut_max)`; when that bound leaves the i64 safe range
//! the solver **promotes**: both arenas (tableau and parked cut rows) are
//! widened to `i128` element for element and the in-flight pivot is
//! replayed on the wide representation. Promotion is sticky for the
//! solver's lifetime and preserves element indices, so the undo trail —
//! which stores no tableau values, only row counts, shift amounts and
//! cut-row offsets — survives unchanged; a probe that promoted mid-solve
//! still rolls back to a byte-faithful (widened) pre-probe state, and
//! [`AllIntegerSolver::tableau_digest`] hashes every cell as `i128`
//! regardless of representation, so digests are representation-independent
//! by construction. The wide path keeps the pre-existing guard: when even
//! `i128` would overflow, the heuristic loop abandons the solve *before*
//! mutating anything and the exact fallback decides (the corpus crasher
//! from the differential fuzzer exercises exactly this).
//! [`AllIntegerSolver::force_wide`] pins the wide representation up
//! front — the differential anchor the bench harness compares the
//! adaptive path against.

use crate::model::{Model, SolveError};
use mcs_ctl::Budget;
use mcs_metrics::{Counter, Histogram, MetricsHandle};
use mcs_obs::{Event, RecorderHandle};

/// Verdict of a feasibility check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Feasibility {
    /// An all-integer assignment satisfying every constraint exists (the
    /// tableau's current basic point).
    Feasible,
    /// No nonnegative integer assignment satisfies the constraints.
    Infeasible,
    /// The pivot budget ran out before a verdict (fall back to
    /// [`AllIntegerSolver::solve_exact`]).
    PivotLimit,
    /// An attached execution [`Budget`] tripped at a pivot boundary
    /// before a verdict; query the budget for the reason. Unlike
    /// [`Feasibility::PivotLimit`] this is *not* followed by the exact
    /// fallback — the flow is being asked to stop.
    Interrupted,
}

/// One undoable tableau mutation on the trail.
///
/// Variants store no tableau *values* — only counts, shift amounts and
/// cut-arena offsets — which is what lets the trail survive an i64→i128
/// promotion unchanged.
#[derive(Clone, Copy, Debug)]
enum TrailOp {
    /// A constraint row was appended (with its `original` entry).
    RowAppended,
    /// `assume_at_least(var, by)` shifted a structural row.
    Shifted { var: u32, by: i64 },
    /// A Gomory cut pivot on column `k`; its cut row starts at
    /// `cut_start` in the cut arena.
    Pivoted { k: u32, cut_start: usize },
}

/// A position on the undo trail, returned by
/// [`AllIntegerSolver::checkpoint`]. Checkpoints nest and must be rolled
/// back in LIFO order.
#[derive(Clone, Copy, Debug)]
pub struct Checkpoint {
    trail_len: usize,
    nrows: usize,
    cuts_len: usize,
    original_len: usize,
}

impl Checkpoint {
    /// Undo-trail depth this checkpoint snapshots. Exported so callers
    /// holding a long-lived checkpoint (the pin checker's cross-commit
    /// savepoint) can report how much trail a rollback will unwind.
    pub fn trail_depth(&self) -> usize {
        self.trail_len
    }
}

/// Cost accounting for one probe, for observability.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProbeStats {
    /// Gomory pivots the probe's solve performed.
    pub pivots: u64,
    /// Trail entries undone to restore the pre-probe tableau.
    pub rollback_ops: u64,
    /// Whether the pivot budget ran out and the exact branch-and-bound
    /// fallback decided the verdict.
    pub exact_fallback: bool,
}

/// The word types the tableau arena can hold. Private: callers only see
/// i64-valued solutions and i128-free APIs; the representation is an
/// internal performance detail.
trait Cell:
    Copy
    + Ord
    + std::ops::Add<Output = Self>
    + std::ops::Mul<Output = Self>
    + std::ops::Neg<Output = Self>
{
    const ZERO: Self;
    const NEG_ONE: Self;
    fn div_euclid_by(self, rhs: Self) -> Self;
    fn abs_u128(self) -> u128;
}

impl Cell for i64 {
    const ZERO: Self = 0;
    const NEG_ONE: Self = -1;
    #[inline]
    fn div_euclid_by(self, rhs: Self) -> Self {
        self.div_euclid(rhs)
    }
    #[inline]
    fn abs_u128(self) -> u128 {
        self.unsigned_abs() as u128
    }
}

impl Cell for i128 {
    const ZERO: Self = 0;
    const NEG_ONE: Self = -1;
    #[inline]
    fn div_euclid_by(self, rhs: Self) -> Self {
        self.div_euclid(rhs)
    }
    #[inline]
    fn abs_u128(self) -> u128 {
        self.unsigned_abs()
    }
}

/// What the next cutting-plane iteration should do.
enum PivotChoice {
    Feasible,
    Infeasible,
    Pivot { r: usize, k: usize },
}

/// Most negative constant column (ties to the lowest row index), then the
/// first column that can raise it. Monomorphized per word type so the
/// scan runs on the native width.
fn select_pivot<W: Cell>(tab: &[W], nrows: usize, stride: usize) -> PivotChoice {
    let Some(r) = (0..nrows)
        .filter(|&i| tab[i * stride] < W::ZERO)
        .min_by_key(|&i| (tab[i * stride], i))
    else {
        return PivotChoice::Feasible;
    };
    let base = r * stride;
    match tab[base + 1..base + stride]
        .iter()
        .position(|&c| c < W::ZERO)
    {
        Some(k) => PivotChoice::Pivot { r, k },
        None => PivotChoice::Infeasible,
    }
}

/// Builds the all-integer Gomory cut for row `base / stride` pivoting on
/// column `k` into `cut` (divisor `lambda = -t_rk`, pivot element exactly
/// `-1`) and returns the cut's magnitude `cut_max` for the
/// coefficient-explosion guard. The tableau-side magnitude comes from the
/// solver's cached [`AllIntegerSolver::max_bound`], so the hot pivot path
/// never rescans the arena.
fn build_cut<W: Cell>(tab: &[W], cut: &mut Vec<W>, base: usize, ncols: usize, k: usize) -> u128 {
    let lambda = -tab[base + 1 + k];
    let cut_start = cut.len();
    cut.reserve(ncols + 1);
    cut.push(tab[base].div_euclid_by(lambda));
    for j in 0..ncols {
        cut.push(tab[base + 1 + j].div_euclid_by(lambda));
    }
    debug_assert!(cut[cut_start + 1 + k] == W::NEG_ONE);
    cut[cut_start..]
        .iter()
        .map(|c| c.abs_u128())
        .max()
        .unwrap_or(0)
}

/// Pivot (`negate = false`): the cut's slack `s` enters the nonbasic set
/// in place of column `k`; `u_k = -t0 + sum_{j != k} t_j u_j + s` is
/// substituted into every tracked row. All arithmetic stays integral
/// because the pivot element is `-1`. The stored coefficient at column
/// `k` is unchanged by the substitution, which makes the transformation
/// an involution up to sign: `negate = true` replays the identical loop
/// subtracting instead of adding and restores the pre-pivot tableau
/// exactly — the rollback path.
///
/// The `j != k` exclusion is expressed by splitting each row (and the cut)
/// around the pivot column instead of testing per element, so both inner
/// loops run branch-free over contiguous slices — the shape the
/// autovectorizer wants. `tab` must be the live `nrows * stride` prefix
/// and `cut` exactly one `stride`-sized row.
fn apply_cut_arena<W: Cell>(tab: &mut [W], cut: &[W], k: usize, negate: bool) {
    let stride = cut.len();
    let c0 = cut[0];
    let (cut_lo, rest) = cut[1..].split_at(k);
    let cut_hi = &rest[1..];
    for row in tab.chunks_exact_mut(stride) {
        let f = if negate { -row[1 + k] } else { row[1 + k] };
        if f == W::ZERO {
            continue;
        }
        row[0] = row[0] + f * c0;
        let (row_lo, rest) = row[1..].split_at_mut(k);
        let row_hi = &mut rest[1..];
        for (cell, &c) in row_lo.iter_mut().zip(cut_lo) {
            *cell = *cell + f * c;
        }
        for (cell, &c) in row_hi.iter_mut().zip(cut_hi) {
            *cell = *cell + f * c;
        }
    }
}

/// Incremental all-integer feasibility solver for `A x <= b`, `x >= 0`
/// integer.
///
/// # Examples
///
/// ```
/// use mcs_ilp::{AllIntegerSolver, Feasibility};
///
/// // x0 + x1 <= 1 with both required at least 1 is infeasible.
/// let mut s = AllIntegerSolver::new(2);
/// s.add_le(&[(0, 1), (1, 1)], 1);
/// assert_eq!(s.solve(1000), Feasibility::Feasible);
/// assert_eq!(s.probe_at_least(0, 1, 1000), Feasibility::Feasible);
/// s.assume_at_least(0, 1);
/// assert_eq!(s.solve(1000), Feasibility::Feasible);
/// assert_eq!(s.probe_at_least(1, 1, 1000), Feasibility::Infeasible);
/// ```
#[derive(Clone, Debug)]
pub struct AllIntegerSolver {
    num_vars: usize,
    /// Width of the current nonbasic set (fixed: pivots swap columns in
    /// place, they never widen the tableau).
    ncols: usize,
    /// Row-major tableau arena, stride `ncols + 1`: `t_i0` then `t_ij`.
    /// Rows 0..num_vars track the structural variables; later rows track
    /// original slacks (one per constraint). The narrow (i64)
    /// representation; empty once `wide` is set.
    tab: Vec<i64>,
    /// The wide (i128) tableau arena; empty until promotion.
    tab_wide: Vec<i128>,
    /// Whether the solver has promoted to the i128 representation.
    wide: bool,
    nrows: usize,
    /// Accumulated lower-bound shifts applied via `assume_at_least`.
    shifts: Vec<i64>,
    /// Original constraints, kept for the exact fallback.
    original: Vec<(Vec<(usize, i64)>, i64)>,
    /// Cut rows parked for rollback (stride `ncols + 1` each). Outside a
    /// checkpoint the slot is reused per pivot, so steady-state solves
    /// allocate nothing. Narrow representation; empty once `wide`.
    cut_arena: Vec<i64>,
    /// The wide cut arena; empty until promotion.
    cut_wide: Vec<i128>,
    /// Undo trail; recorded only while a checkpoint is outstanding.
    trail: Vec<TrailOp>,
    /// Outstanding checkpoints.
    watchers: usize,
    /// Upper bound on the magnitude of every live arena cell. Maintained
    /// exactly on row appends and shifts, and multiplicatively on pivots
    /// (`bound *= 1 + cut_max`); rollback never lowers it, so it can be
    /// loose — the overflow guard rescans the arena for the true maximum
    /// only when this cheap bound trips, which tightens it again. The
    /// promote/fallback *decision* therefore sees the exact maximum, the
    /// common case just never pays the full scan.
    max_bound: u128,
    /// Total pivots performed over the solver's lifetime.
    pivots_total: u64,
    /// Times the narrow representation promoted to wide (overflow-driven
    /// only; `force_wide` does not count).
    promotions: u64,
    /// Cross-check every trail probe against the clone-based path.
    differential: bool,
    /// Sink for per-pivot `GomoryCut` events (inactive by default).
    /// Clones share the sink, so probe solves report their pivots too.
    recorder: RecorderHandle,
    /// Optional execution budget polled at pivot boundaries; every
    /// pivot is charged against it. Clones share the same budget.
    budget: Option<Budget>,
    /// Resolved metric cells (disconnected by default; clones share the
    /// cells, so probe solves aggregate into the same totals).
    m_pivots: Counter,
    m_overflow_fallbacks: Counter,
    m_promotions: Counter,
    m_rollback_depth: Histogram,
}

impl AllIntegerSolver {
    /// Creates a solver over `num_vars` nonnegative integer variables.
    pub fn new(num_vars: usize) -> Self {
        let stride = num_vars + 1;
        let mut tab = vec![0i64; num_vars * stride];
        for v in 0..num_vars {
            // x_v = 0 + (-1) * (-u_v)  =  u_v.
            tab[v * stride + 1 + v] = -1;
        }
        AllIntegerSolver {
            num_vars,
            ncols: num_vars,
            tab,
            tab_wide: Vec::new(),
            wide: false,
            nrows: num_vars,
            shifts: vec![0; num_vars],
            original: Vec::new(),
            cut_arena: Vec::new(),
            cut_wide: Vec::new(),
            trail: Vec::new(),
            watchers: 0,
            max_bound: 1,
            pivots_total: 0,
            promotions: 0,
            differential: false,
            recorder: RecorderHandle::default(),
            budget: None,
            m_pivots: Counter::default(),
            m_overflow_fallbacks: Counter::default(),
            m_promotions: Counter::default(),
            m_rollback_depth: Histogram::default(),
        }
    }

    /// Routes per-pivot `GomoryCut` events to `recorder`.
    pub fn set_recorder(&mut self, recorder: RecorderHandle) {
        self.recorder = recorder;
    }

    /// Connects the solver's aggregate telemetry — `ilp.pivots`,
    /// `ilp.cut_overflow_fallbacks`, `ilp.promotions`, the
    /// `ilp.rollback_depth` histogram — to a metrics registry. Cells are
    /// resolved once here, so the per-pivot cost with metrics on is one
    /// relaxed atomic add.
    pub fn set_metrics(&mut self, metrics: &MetricsHandle) {
        self.m_pivots = metrics.counter("ilp.pivots");
        self.m_overflow_fallbacks = metrics.counter("ilp.cut_overflow_fallbacks");
        self.m_promotions = metrics.counter("ilp.promotions");
        self.m_rollback_depth = metrics.histogram("ilp.rollback_depth");
    }

    /// Attaches an execution budget. [`AllIntegerSolver::solve`] polls
    /// it before every pivot and returns [`Feasibility::Interrupted`]
    /// once it trips; each pivot performed is charged to the budget.
    pub fn set_budget(&mut self, budget: Budget) {
        self.budget = Some(budget);
    }

    /// When enabled, every [`AllIntegerSolver::probe_at_least`] verdict is
    /// cross-checked against the legacy clone-based probe and any
    /// divergence panics — the differential-testing mode the CI probe
    /// checks run under. Off by default (the clone path doubles the cost
    /// of every probe).
    pub fn set_differential(&mut self, on: bool) {
        self.differential = on;
    }

    /// Number of structural variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Total Gomory pivots performed so far (probes included).
    pub fn pivots_total(&self) -> u64 {
        self.pivots_total
    }

    /// Current undo-trail depth (0 outside a checkpoint).
    pub fn trail_len(&self) -> usize {
        self.trail.len()
    }

    /// Times the adaptive narrow (i64) representation promoted to the
    /// wide (i128) one because a pivot, shift or row append would have
    /// overflowed. [`AllIntegerSolver::force_wide`] is not counted.
    pub fn promotions(&self) -> u64 {
        self.promotions
    }

    /// Whether the solver currently runs on the wide (i128)
    /// representation — after an overflow-driven promotion or
    /// [`AllIntegerSolver::force_wide`].
    pub fn is_wide(&self) -> bool {
        self.wide
    }

    /// Pins the wide (i128) representation immediately, bypassing the
    /// adaptive narrow path. Verdicts and
    /// [`AllIntegerSolver::tableau_digest`] values are identical either
    /// way; this is the differential anchor the bench harness compares
    /// the adaptive path against. Not counted in
    /// [`AllIntegerSolver::promotions`]. Idempotent.
    pub fn force_wide(&mut self) {
        if !self.wide {
            self.widen();
        }
    }

    /// Switches to the i128 representation: widens both arenas element
    /// for element (indices — and therefore the trail and every parked
    /// `cut_start` — are preserved) and retires the narrow ones.
    fn widen(&mut self) {
        debug_assert!(!self.wide);
        self.tab_wide = self.tab.iter().map(|&c| c as i128).collect();
        self.cut_wide = self.cut_arena.iter().map(|&c| c as i128).collect();
        self.tab = Vec::new();
        self.cut_arena = Vec::new();
        self.wide = true;
    }

    /// An overflow-driven [`AllIntegerSolver::widen`]: counted in
    /// [`AllIntegerSolver::promotions`] and the `ilp.promotions` metric.
    fn promote(&mut self) {
        self.widen();
        self.promotions += 1;
        self.m_promotions.inc();
    }

    #[inline]
    fn stride(&self) -> usize {
        self.ncols + 1
    }

    /// Reads one arena cell, widened — the representation-independent
    /// view the cold paths (digest, solution, row construction) use.
    #[inline]
    fn cell(&self, idx: usize) -> i128 {
        if self.wide {
            self.tab_wide[idx]
        } else {
            self.tab[idx] as i128
        }
    }

    /// Exact magnitude of the largest live arena cell — the slow path
    /// behind [`AllIntegerSolver::max_bound`], run only when the cached
    /// bound trips the overflow guard.
    fn live_max(&self) -> u128 {
        let live = self.nrows * self.stride();
        if self.wide {
            self.tab_wide[..live]
                .iter()
                .map(|c| c.unsigned_abs())
                .max()
                .unwrap_or(0)
        } else {
            self.tab[..live]
                .iter()
                .map(|c| c.unsigned_abs() as u128)
                .max()
                .unwrap_or(0)
        }
    }

    /// Live element count of the active cut arena (element indices are
    /// representation-independent).
    #[inline]
    fn cut_len(&self) -> usize {
        if self.wide {
            self.cut_wide.len()
        } else {
            self.cut_arena.len()
        }
    }

    /// FNV-1a digest over the entire solver state (tableau arena, shifts,
    /// original constraints). Two solvers with equal digests have
    /// byte-identical tableaus — the hook the rollback property tests
    /// assert restoration with. Cells are hashed as `i128` regardless of
    /// the active representation, so an adaptive (i64) solver and a
    /// forced-wide one digest identically at every step.
    pub fn tableau_digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        eat(&(self.nrows as u64).to_le_bytes());
        eat(&(self.ncols as u64).to_le_bytes());
        let live = self.nrows * self.stride();
        if self.wide {
            for &cell in &self.tab_wide[..live] {
                eat(&cell.to_le_bytes());
            }
        } else {
            for &cell in &self.tab[..live] {
                eat(&(cell as i128).to_le_bytes());
            }
        }
        for &s in &self.shifts {
            eat(&s.to_le_bytes());
        }
        eat(&(self.original.len() as u64).to_le_bytes());
        for (terms, rhs) in &self.original {
            for &(v, a) in terms {
                eat(&(v as u64).to_le_bytes());
                eat(&a.to_le_bytes());
            }
            eat(&rhs.to_le_bytes());
        }
        h
    }

    /// Adds `sum(coeff * x_var) <= rhs`.
    ///
    /// # Panics
    ///
    /// Panics if a variable index is out of range.
    pub fn add_le(&mut self, terms: &[(usize, i64)], rhs: i64) {
        for &(v, _) in terms {
            assert!(v < self.num_vars, "variable index out of range");
        }
        self.original.push((terms.to_vec(), rhs));
        // Slack s = rhs - sum a_v x_v, expressed over current nonbasics via
        // the structural rows (which are maintained for every variable).
        // Built in i128 (this is a cold path) and narrowed only when every
        // cell fits; a too-wide row promotes the solver first.
        let stride = self.stride();
        let mut row = vec![0i128; stride];
        row[0] = rhs as i128;
        for &(v, a) in terms {
            let a = a as i128;
            let base = v * stride;
            // The tracked row holds the shifted variable x' = x - shift.
            row[0] -= a * (self.cell(base) + self.shifts[v] as i128);
            for (j, c) in row[1..].iter_mut().enumerate() {
                *c -= a * self.cell(base + 1 + j);
            }
        }
        if !self.wide && row.iter().any(|&c| i64::try_from(c).is_err()) {
            self.promote();
        }
        let row_max = row.iter().map(|c| c.unsigned_abs()).max().unwrap_or(0);
        self.max_bound = self.max_bound.max(row_max);
        if self.wide {
            self.tab_wide.extend_from_slice(&row);
        } else {
            self.tab.extend(row.iter().map(|&c| c as i64));
        }
        self.nrows += 1;
        if self.watchers > 0 {
            self.trail.push(TrailOp::RowAppended);
        }
    }

    /// Adds `sum(coeff * x_var) >= rhs` (negated `<=`).
    pub fn add_ge(&mut self, terms: &[(usize, i64)], rhs: i64) {
        let neg: Vec<_> = terms.iter().map(|&(v, a)| (v, -a)).collect();
        self.add_le(&neg, -rhs);
    }

    /// Commits the assumption `x_var >= current assumption + by`
    /// (Section 3.3: substitute `x' = x - by` and subtract the column from
    /// the constant vector, Equation 3.13). With the tracked row stored
    /// relative to the existing shift this is a single constant-column
    /// update — no row copy.
    pub fn assume_at_least(&mut self, var: usize, by: i64) {
        assert!(var < self.num_vars, "variable index out of range");
        let base = var * self.stride();
        if self.wide {
            self.tab_wide[base] -= by as i128;
            self.max_bound = self.max_bound.max(self.tab_wide[base].unsigned_abs());
        } else {
            match self.tab[base].checked_sub(by) {
                Some(v) => {
                    self.tab[base] = v;
                    self.max_bound = self.max_bound.max(v.unsigned_abs() as u128);
                }
                None => {
                    self.promote();
                    self.tab_wide[base] -= by as i128;
                    self.max_bound = self.max_bound.max(self.tab_wide[base].unsigned_abs());
                }
            }
        }
        self.shifts[var] += by;
        if self.watchers > 0 {
            self.trail.push(TrailOp::Shifted {
                var: var as u32,
                by,
            });
        }
    }

    /// Opens a checkpoint: every subsequent mutation is recorded on the
    /// undo trail until the matching [`AllIntegerSolver::rollback`].
    /// Checkpoints nest; roll them back in LIFO order.
    pub fn checkpoint(&mut self) -> Checkpoint {
        self.watchers += 1;
        Checkpoint {
            trail_len: self.trail.len(),
            nrows: self.nrows,
            cuts_len: self.cut_len(),
            original_len: self.original.len(),
        }
    }

    /// Pops and undoes trail entries until the trail is `target` long.
    /// The shared engine under [`AllIntegerSolver::rollback`] and the
    /// per-candidate unwind of [`AllIntegerSolver::probe_batch_with_stats`].
    fn unwind_to(&mut self, target: usize) -> u64 {
        let mut undone = 0u64;
        while self.trail.len() > target {
            let op = self.trail.pop().expect("trail entry");
            undone += 1;
            match op {
                TrailOp::RowAppended => {
                    self.nrows -= 1;
                    let live = self.nrows * self.stride();
                    if self.wide {
                        self.tab_wide.truncate(live);
                    } else {
                        self.tab.truncate(live);
                    }
                    self.original.pop();
                }
                TrailOp::Shifted { var, by } => {
                    let base = var as usize * self.stride();
                    if self.wide {
                        self.tab_wide[base] += by as i128;
                    } else {
                        // The forward shift either fit i64 or promoted;
                        // undoing a fitted shift cannot overflow.
                        self.tab[base] += by;
                    }
                    self.shifts[var as usize] -= by;
                }
                TrailOp::Pivoted { k, cut_start } => {
                    self.apply_cut(cut_start, k as usize, true);
                    if self.wide {
                        self.cut_wide.truncate(cut_start);
                    } else {
                        self.cut_arena.truncate(cut_start);
                    }
                }
            }
        }
        undone
    }

    /// Undoes every mutation since `cp`, restoring the tableau byte for
    /// byte, and closes the checkpoint. Returns the number of trail
    /// entries undone (the probe's rollback depth).
    ///
    /// A probe that promoted mid-solve still restores every *value*
    /// exactly — on the wide representation; promotion is sticky.
    ///
    /// # Panics
    ///
    /// Panics if no checkpoint is outstanding or the trail is shorter
    /// than `cp` records (out-of-order rollback).
    pub fn rollback(&mut self, cp: Checkpoint) -> u64 {
        assert!(self.watchers > 0, "rollback without a checkpoint");
        assert!(cp.trail_len <= self.trail.len(), "out-of-order rollback");
        let undone = self.unwind_to(cp.trail_len);
        debug_assert_eq!(self.nrows, cp.nrows);
        debug_assert_eq!(self.cut_len(), cp.cuts_len);
        debug_assert_eq!(self.original.len(), cp.original_len);
        self.watchers -= 1;
        self.m_rollback_depth.observe(undone);
        undone
    }

    /// Runs the dual all-integer cutting-plane loop with at most
    /// `max_pivots` pivots. The tableau retains all generated cuts, so the
    /// call is resumable and subsequent incremental checks are warm-started
    /// — exactly the usage pattern of the scheduling feasibility checker.
    pub fn solve(&mut self, max_pivots: usize) -> Feasibility {
        let stride = self.stride();
        for round in 0..max_pivots {
            let live = self.nrows * stride;
            let choice = if self.wide {
                select_pivot(&self.tab_wide[..live], self.nrows, stride)
            } else {
                select_pivot(&self.tab[..live], self.nrows, stride)
            };
            let (r, k) = match choice {
                PivotChoice::Feasible => return Feasibility::Feasible,
                PivotChoice::Infeasible => return Feasibility::Infeasible,
                PivotChoice::Pivot { r, k } => (r, k),
            };
            // Poll the budget before the next unit of work — after the
            // convergence tests, which cost no pivot, so a solve that
            // converges exactly as it spends its last allowed pivot
            // still reports its natural verdict, never an interruption.
            if let Some(budget) = &self.budget {
                if budget.check().is_some() {
                    return Feasibility::Interrupted;
                }
            }
            // All-integer Gomory cut with divisor lambda = -t_rk, giving a
            // pivot element of exactly -1. The cut row is written into the
            // side arena: kept there when a checkpoint needs it for
            // rollback, reclaimed immediately otherwise.
            let base = r * stride;
            let cut_start = self.cut_len();
            // Coefficient-explosion guard (found by differential
            // fuzzing): stacked cuts can grow tableau entries until the
            // multiply-adds in `apply_cut` overflow. Applying this cut
            // bounds every new entry by `tab_max * (1 + cut_max)`. On the
            // narrow path a bound outside the i64 safe range promotes the
            // solver and replays this pivot on the wide representation;
            // on the wide path it abandons the heuristic loop *before*
            // mutating anything — the tableau and trail stay consistent,
            // and the caller's exact branch-and-bound fallback delivers
            // the verdict. The same bound covers rollback, whose products
            // mirror the forward pass exactly.
            let cut_max = if self.wide {
                build_cut(
                    &self.tab_wide[..live],
                    &mut self.cut_wide,
                    base,
                    self.ncols,
                    k,
                )
            } else {
                build_cut(&self.tab[..live], &mut self.cut_arena, base, self.ncols, k)
            };
            // The cheap cached bound decides first; only when it trips is
            // the arena rescanned for the true maximum, so the decision to
            // promote or fall back is always made on exact magnitudes.
            let factor = cut_max + 1;
            if !self.wide {
                let safe = |bound: u128| {
                    bound
                        .checked_mul(factor)
                        .is_some_and(|b| b <= i64::MAX as u128 / 2)
                };
                if !safe(self.max_bound) {
                    self.max_bound = self.live_max();
                    if !safe(self.max_bound) {
                        self.promote();
                    }
                }
            }
            if self.wide {
                let safe = |bound: u128| {
                    bound
                        .checked_mul(factor)
                        .is_some_and(|b| b <= i128::MAX as u128 / 2)
                };
                if !safe(self.max_bound) {
                    self.max_bound = self.live_max();
                    if !safe(self.max_bound) {
                        self.cut_wide.truncate(cut_start);
                        self.m_overflow_fallbacks.inc();
                        return Feasibility::PivotLimit;
                    }
                }
            }
            // Checked safe above on whichever representation is active.
            self.max_bound *= factor;
            if self.recorder.enabled() {
                self.recorder.record(Event::GomoryCut {
                    round: round as u32,
                    pivot: k as u32,
                    objective: self.cell(base).clamp(i64::MIN as i128, i64::MAX as i128) as i64,
                });
            }
            self.apply_cut(cut_start, k, false);
            self.pivots_total += 1;
            self.m_pivots.inc();
            if let Some(budget) = &self.budget {
                budget.charge_pivots(1);
            }
            if self.watchers > 0 {
                self.trail.push(TrailOp::Pivoted {
                    k: k as u32,
                    cut_start,
                });
            } else if self.wide {
                self.cut_wide.truncate(cut_start);
            } else {
                self.cut_arena.truncate(cut_start);
            }
        }
        Feasibility::PivotLimit
    }

    /// Applies (or with `negate` un-applies) the parked cut row starting
    /// at `cut_start` on pivot column `k`, on whichever representation is
    /// active. See [`apply_cut_arena`] for the algebra.
    fn apply_cut(&mut self, cut_start: usize, k: usize, negate: bool) {
        let stride = self.ncols + 1;
        let live = self.nrows * stride;
        if self.wide {
            let (tab, cuts) = (&mut self.tab_wide, &self.cut_wide);
            apply_cut_arena(
                &mut tab[..live],
                &cuts[cut_start..cut_start + stride],
                k,
                negate,
            );
        } else {
            let (tab, cuts) = (&mut self.tab, &self.cut_arena);
            apply_cut_arena(
                &mut tab[..live],
                &cuts[cut_start..cut_start + stride],
                k,
                negate,
            );
        }
    }

    /// Current basic point (nonbasics at zero) for the structural
    /// variables, valid after [`AllIntegerSolver::solve`] returned
    /// [`Feasibility::Feasible`]. Includes accumulated shifts.
    pub fn solution(&self) -> Vec<i64> {
        let stride = self.stride();
        (0..self.num_vars)
            .map(|v| (self.cell(v * stride) + self.shifts[v] as i128) as i64)
            .collect()
    }

    /// Checks whether committing `x_var >= by` more would keep the system
    /// feasible, leaving the solver state untouched: checkpoint, shift,
    /// solve, roll the trail back. No tableau copy is made.
    pub fn probe_at_least(&mut self, var: usize, by: i64, max_pivots: usize) -> Feasibility {
        self.probe_at_least_with_stats(var, by, max_pivots).0
    }

    /// [`AllIntegerSolver::probe_at_least`] plus the probe's cost
    /// accounting (pivots, rollback depth, exact fallback).
    pub fn probe_at_least_with_stats(
        &mut self,
        var: usize,
        by: i64,
        max_pivots: usize,
    ) -> (Feasibility, ProbeStats) {
        let pivots_before = self.pivots_total;
        let cp = self.checkpoint();
        self.assume_at_least(var, by);
        let mut verdict = self.solve(max_pivots);
        let exact_fallback = verdict == Feasibility::PivotLimit;
        if exact_fallback {
            // The exact model is built from `original` + `shifts`, which
            // still include the probed assumption at this point.
            verdict = self.solve_exact();
        }
        let rollback_ops = self.rollback(cp);
        if self.differential && verdict != Feasibility::Interrupted {
            let cloned = self.probe_at_least_via_clone(var, by, max_pivots);
            assert_eq!(
                verdict, cloned,
                "trail-based probe of x{var} >= +{by} disagrees with the clone path"
            );
        }
        (
            verdict,
            ProbeStats {
                pivots: self.pivots_total - pivots_before,
                rollback_ops,
                exact_fallback,
            },
        )
    }

    /// Probes every `(var, by)` request under **one** checkpoint: the
    /// trail is unwound to the batch's start mark between candidates and
    /// the checkpoint is opened and closed once, so a control step's worth
    /// of candidates shares the setup/teardown the per-probe path pays
    /// each time. Verdict-identical to calling
    /// [`AllIntegerSolver::probe_at_least_with_stats`] per request —
    /// every candidate still sees the exact pre-batch tableau.
    pub fn probe_batch_with_stats(
        &mut self,
        reqs: &[(usize, i64)],
        max_pivots: usize,
    ) -> Vec<(Feasibility, ProbeStats)> {
        let mut out = Vec::with_capacity(reqs.len());
        let cp = self.checkpoint();
        let mark = self.trail.len();
        for &(var, by) in reqs {
            let pivots_before = self.pivots_total;
            self.assume_at_least(var, by);
            let mut verdict = self.solve(max_pivots);
            let exact_fallback = verdict == Feasibility::PivotLimit;
            if exact_fallback {
                verdict = self.solve_exact();
            }
            let rollback_ops = self.unwind_to(mark);
            self.m_rollback_depth.observe(rollback_ops);
            out.push((
                verdict,
                ProbeStats {
                    pivots: self.pivots_total - pivots_before,
                    rollback_ops,
                    exact_fallback,
                },
            ));
        }
        // Nothing left to undo; close the checkpoint without skewing the
        // rollback-depth histogram with a zero-depth entry.
        assert!(self.watchers > 0, "batch checkpoint vanished");
        let undone = self.unwind_to(cp.trail_len);
        debug_assert_eq!(undone, 0);
        debug_assert_eq!(self.nrows, cp.nrows);
        debug_assert_eq!(self.cut_len(), cp.cuts_len);
        self.watchers -= 1;
        if self.differential {
            for (&(var, by), &(verdict, _)) in reqs.iter().zip(&out) {
                if verdict == Feasibility::Interrupted {
                    continue;
                }
                let cloned = self.probe_at_least_via_clone(var, by, max_pivots);
                assert_eq!(
                    verdict, cloned,
                    "batched probe of x{var} >= +{by} disagrees with the clone path"
                );
            }
        }
        out
    }

    /// Differential oracle hook: answers the same `x_var >= +by` probe
    /// through both engines — the trail-based checkpoint/rollback path
    /// and the legacy clone-per-probe path — and returns the verdict
    /// pair `(trail, clone)`. The fuzz harness asserts the two agree
    /// under arbitrary pivot budgets; the built-in differential mode is
    /// suspended for the trail half so a divergence is *returned* for
    /// triage instead of panicking mid-sweep.
    pub fn probe_agreement(
        &mut self,
        var: usize,
        by: i64,
        max_pivots: usize,
    ) -> (Feasibility, Feasibility) {
        let saved = self.differential;
        self.differential = false;
        let trail = self.probe_at_least(var, by, max_pivots);
        self.differential = saved;
        let clone = self.probe_at_least_via_clone(var, by, max_pivots);
        (trail, clone)
    }

    /// The legacy clone-per-probe path: deep-copies the solver, commits
    /// the assumption on the copy and solves there. Kept as the reference
    /// implementation for differential testing and the before/after
    /// microbenches.
    pub fn probe_at_least_via_clone(&self, var: usize, by: i64, max_pivots: usize) -> Feasibility {
        let mut clone = self.clone();
        clone.differential = false;
        // The reference path must not spend or observe the shared budget:
        // it exists to double-check verdicts, not to race the deadline.
        clone.budget = None;
        clone.assume_at_least(var, by);
        let verdict = clone.solve(max_pivots);
        if verdict == Feasibility::PivotLimit {
            clone.solve_exact()
        } else {
            verdict
        }
    }

    /// Exact fallback: rebuilds the system (original constraints plus all
    /// committed assumptions) and solves it with branch-and-bound.
    ///
    /// With an execution budget attached ([`AllIntegerSolver::set_budget`])
    /// the branch-and-bound polls it once per node and charges each node
    /// as one pivot — so deadlines and count-based ceilings interrupt a
    /// fallback that would otherwise burn its full 200 000-node
    /// allowance on an adversarial system. Without a budget the behavior
    /// is the classic single full-allowance attempt.
    pub fn solve_exact(&self) -> Feasibility {
        let mut m = Model::new();
        m.budget = self.budget.clone();
        let vars: Vec<_> = (0..self.num_vars)
            .map(|v| m.integer(&format!("x{v}"), None))
            .collect();
        for (terms, rhs) in &self.original {
            let t: Vec<_> = terms.iter().map(|&(v, a)| (vars[v], a)).collect();
            m.le(&t, *rhs);
        }
        for (v, &s) in self.shifts.iter().enumerate() {
            if s > 0 {
                m.ge(&[(vars[v], 1)], s);
            }
        }
        match m.feasible() {
            Ok(_) => Feasibility::Feasible,
            Err(SolveError::Infeasible) => Feasibility::Infeasible,
            Err(SolveError::Interrupted) => Feasibility::Interrupted,
            Err(_) => Feasibility::PivotLimit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivially_feasible_at_origin() {
        let mut s = AllIntegerSolver::new(3);
        s.add_le(&[(0, 1), (1, 2), (2, 3)], 10);
        assert_eq!(s.solve(100), Feasibility::Feasible);
        assert_eq!(s.solution(), vec![0, 0, 0]);
    }

    #[test]
    fn ge_constraints_force_positive_values() {
        let mut s = AllIntegerSolver::new(2);
        s.add_ge(&[(0, 1), (1, 1)], 3);
        s.add_le(&[(0, 1)], 1);
        assert_eq!(s.solve(1000), Feasibility::Feasible);
        let sol = s.solution();
        assert!(sol[0] + sol[1] >= 3, "solution {sol:?}");
        assert!(sol[0] <= 1);
        assert!(sol.iter().all(|&x| x >= 0));
    }

    #[test]
    fn detects_infeasibility() {
        let mut s = AllIntegerSolver::new(1);
        s.add_ge(&[(0, 1)], 5);
        s.add_le(&[(0, 1)], 3);
        assert_eq!(s.solve(1000), Feasibility::Infeasible);
    }

    #[test]
    fn tripped_budget_interrupts_at_pivot_boundary() {
        use mcs_ctl::{BudgetSpec, Termination};
        let mut s = AllIntegerSolver::new(2);
        s.add_ge(&[(0, 1), (1, 1)], 3);
        s.add_le(&[(0, 1)], 1);
        let budget = Budget::new(BudgetSpec::default().max_pivots(1));
        s.set_budget(budget.clone());
        assert_eq!(s.solve(1000), Feasibility::Interrupted);
        assert_eq!(budget.verdict(), Some(Termination::BudgetExhausted));
        assert_eq!(budget.pivots_spent(), 1);
    }

    #[test]
    fn tripped_budget_interrupts_the_exact_fallback() {
        use mcs_ctl::{BudgetSpec, Termination};
        // A subset-sum whose branch-and-bound needs several nodes; a
        // ceiling smaller than that trips inside solve_exact, which
        // polls per node and charges each node as one pivot.
        let weights = [31i64, 41, 59, 26, 53, 58, 97, 93, 23, 84, 62, 64];
        let mut s = AllIntegerSolver::new(weights.len());
        let terms: Vec<(usize, i64)> = weights.iter().copied().enumerate().collect();
        s.add_ge(&terms, 101);
        s.add_le(&terms, 101);
        for v in 0..weights.len() {
            s.add_le(&[(v, 1)], 1);
        }
        let budget = Budget::new(BudgetSpec::default().max_pivots(2));
        s.set_budget(budget.clone());
        assert_eq!(s.solve_exact(), Feasibility::Interrupted);
        assert_eq!(budget.verdict(), Some(Termination::BudgetExhausted));
        // Without a budget the same system still gets its full
        // allowance and a natural verdict.
        let mut unbudgeted = AllIntegerSolver::new(weights.len());
        unbudgeted.add_ge(&terms, 101);
        unbudgeted.add_le(&terms, 101);
        for v in 0..weights.len() {
            unbudgeted.add_le(&[(v, 1)], 1);
        }
        assert!(matches!(
            unbudgeted.solve_exact(),
            Feasibility::Feasible | Feasibility::Infeasible
        ));
    }

    #[test]
    fn exact_ceiling_still_reports_natural_verdict() {
        use mcs_ctl::BudgetSpec;
        // Measure how many pivots the solve needs, then allow exactly
        // that many: check-before-work means the verdict must still be
        // the natural one, not an interruption.
        let build = || {
            let mut s = AllIntegerSolver::new(2);
            s.add_ge(&[(0, 1), (1, 1)], 3);
            s.add_le(&[(0, 1)], 1);
            s
        };
        let mut reference = build();
        assert_eq!(reference.solve(1000), Feasibility::Feasible);
        let needed = reference.pivots_total();
        assert!(needed > 0);

        let mut s = build();
        let budget = Budget::new(BudgetSpec::default().max_pivots(needed));
        s.set_budget(budget.clone());
        assert_eq!(s.solve(1000), Feasibility::Feasible);
        assert_eq!(budget.verdict(), None);
        assert_eq!(budget.pivots_spent(), needed);
    }

    #[test]
    fn integrality_matters() {
        // 2x <= 1 and x >= 1 is LP-infeasible too; but 2x >= 1, 2x <= 1
        // admits x = 1/2 and no integer: the all-integer method must say
        // infeasible.
        let mut s = AllIntegerSolver::new(1);
        s.add_ge(&[(0, 2)], 1);
        s.add_le(&[(0, 2)], 1);
        let v = match s.solve(1000) {
            Feasibility::PivotLimit => s.solve_exact(),
            other => other,
        };
        assert_eq!(v, Feasibility::Infeasible);
    }

    #[test]
    fn assume_at_least_matches_equation_3_13() {
        let mut s = AllIntegerSolver::new(2);
        s.add_le(&[(0, 1), (1, 1)], 2);
        s.assume_at_least(0, 1);
        assert_eq!(s.solve(1000), Feasibility::Feasible);
        let sol = s.solution();
        assert!(sol[0] >= 1);
        assert!(sol[0] + sol[1] <= 2);
        s.assume_at_least(1, 1);
        assert_eq!(s.solve(1000), Feasibility::Feasible);
        let sol = s.solution();
        assert_eq!(sol, vec![1, 1]);
        // A third unit of demand exceeds the budget.
        assert_eq!(s.probe_at_least(0, 1, 1000), Feasibility::Infeasible);
    }

    #[test]
    fn probe_does_not_mutate_state() {
        let mut s = AllIntegerSolver::new(2);
        s.add_le(&[(0, 1), (1, 1)], 1);
        let before = s.tableau_digest();
        let _ = s.probe_at_least(0, 1, 1000);
        let _ = s.probe_at_least(1, 1, 1000);
        assert_eq!(s.tableau_digest(), before, "probes must leave no trace");
        assert_eq!(s.solve(1000), Feasibility::Feasible);
        assert_eq!(s.solution(), vec![0, 0]);
    }

    #[test]
    fn checkpoint_rollback_restores_after_solve() {
        let mut s = AllIntegerSolver::new(2);
        s.add_ge(&[(0, 1), (1, 1)], 3);
        s.add_le(&[(0, 1)], 1);
        assert_eq!(s.solve(1000), Feasibility::Feasible);
        let digest = s.tableau_digest();
        let cp = s.checkpoint();
        s.assume_at_least(1, 2);
        s.add_le(&[(1, 1)], 5);
        let _ = s.solve(1000);
        let undone = s.rollback(cp);
        assert!(undone >= 2, "shift + row append at minimum");
        assert_eq!(s.tableau_digest(), digest);
        assert_eq!(s.trail_len(), 0);
    }

    #[test]
    fn nested_checkpoints_roll_back_in_lifo_order() {
        let mut s = AllIntegerSolver::new(2);
        s.add_le(&[(0, 1), (1, 1)], 4);
        let d0 = s.tableau_digest();
        let outer = s.checkpoint();
        s.assume_at_least(0, 1);
        let d1 = s.tableau_digest();
        let inner = s.checkpoint();
        s.assume_at_least(1, 2);
        s.rollback(inner);
        assert_eq!(s.tableau_digest(), d1);
        s.rollback(outer);
        assert_eq!(s.tableau_digest(), d0);
    }

    #[test]
    fn trail_is_not_recorded_outside_checkpoints() {
        let mut s = AllIntegerSolver::new(2);
        s.add_ge(&[(0, 1), (1, 1)], 3);
        assert_eq!(s.solve(1000), Feasibility::Feasible);
        s.assume_at_least(0, 1);
        assert_eq!(s.trail_len(), 0, "committed work must not grow the trail");
    }

    #[test]
    fn trail_and_clone_probes_agree_with_differential_on() {
        let mut s = AllIntegerSolver::new(3);
        s.set_differential(true);
        s.add_ge(&[(0, 1), (1, 1), (2, 1)], 2);
        s.add_le(&[(0, 3), (1, 2), (2, 1)], 4);
        assert_eq!(s.solve(10_000), Feasibility::Feasible);
        for v in 0..3 {
            // The differential mode asserts agreement internally.
            let _ = s.probe_at_least(v, 1, 10_000);
        }
        s.assume_at_least(2, 1);
        assert_eq!(s.solve(10_000), Feasibility::Feasible);
        for v in 0..3 {
            assert_eq!(
                s.probe_at_least(v, 1, 10_000),
                s.probe_at_least_via_clone(v, 1, 10_000),
            );
        }
    }

    #[test]
    fn probe_stats_report_pivots_and_rollback_depth() {
        let mut s = AllIntegerSolver::new(2);
        s.add_le(&[(0, 1), (1, 1)], 1);
        let (v, stats) = s.probe_at_least_with_stats(0, 1, 1000);
        assert_eq!(v, Feasibility::Feasible);
        // At least the shift itself is on the trail; forcing x0 >= 1
        // requires pivoting.
        assert!(stats.rollback_ops >= 1);
        assert!(stats.pivots >= 1);
        assert!(!stats.exact_fallback);
        // A zero budget must fall back to the exact solver and stay sound.
        let (v0, stats0) = s.probe_at_least_with_stats(0, 1, 0);
        assert_eq!(v0, Feasibility::Feasible);
        assert!(stats0.exact_fallback);
    }

    #[test]
    fn bin_packing_style_feasibility() {
        // Two bins of capacity 8; three items of width 8 must each go in
        // some bin: x[i][b] binaries, sum_b x[i][b] >= 1, per-bin width sums
        // <= 8. Only 2 of 3 items fit -> infeasible.
        let var = |i: usize, bin: usize| i * 2 + bin;
        let mut s = AllIntegerSolver::new(6);
        for i in 0..3 {
            s.add_ge(&[(var(i, 0), 1), (var(i, 1), 1)], 1);
            for bin in 0..2 {
                s.add_le(&[(var(i, bin), 1)], 1);
            }
        }
        for bin in 0..2 {
            let terms: Vec<_> = (0..3).map(|i| (var(i, bin), 8)).collect();
            s.add_le(&terms, 8);
        }
        let v = match s.solve(5000) {
            Feasibility::PivotLimit => s.solve_exact(),
            other => other,
        };
        assert_eq!(v, Feasibility::Infeasible);

        // With 8-bit-wide bins and 4-bit items, everything fits.
        let mut s = AllIntegerSolver::new(6);
        for i in 0..3 {
            s.add_ge(&[(var(i, 0), 1), (var(i, 1), 1)], 1);
            for bin in 0..2 {
                s.add_le(&[(var(i, bin), 1)], 1);
            }
        }
        for bin in 0..2 {
            let terms: Vec<_> = (0..3).map(|i| (var(i, bin), 4)).collect();
            s.add_le(&terms, 8);
        }
        let v = match s.solve(5000) {
            Feasibility::PivotLimit => s.solve_exact(),
            other => other,
        };
        assert_eq!(v, Feasibility::Feasible);
    }

    #[test]
    fn recorder_sees_every_pivot() {
        use mcs_obs::BufferingRecorder;
        use std::sync::Arc;
        let buf = Arc::new(BufferingRecorder::new());
        let mut s = AllIntegerSolver::new(2);
        s.set_recorder(RecorderHandle::new(buf.clone()));
        s.add_ge(&[(0, 1), (1, 1)], 3);
        s.add_le(&[(0, 1)], 1);
        assert_eq!(s.solve(1000), Feasibility::Feasible);
        let cuts = buf
            .events()
            .iter()
            .filter(|e| matches!(e, Event::GomoryCut { .. }))
            .count();
        assert!(cuts > 0, "a forced-positive system needs at least one cut");
        // Probe solves share the sink: probing records further pivots.
        let before = buf.events().len();
        let _ = s.probe_at_least(1, 1, 1000);
        assert!(buf.events().len() >= before);
    }

    #[test]
    fn metrics_count_pivots_and_rollbacks() {
        use mcs_metrics::Registry;
        use std::sync::Arc;
        let reg = Arc::new(Registry::new());
        let mut s = AllIntegerSolver::new(2);
        s.set_metrics(&MetricsHandle::new(reg.clone()));
        s.add_ge(&[(0, 1), (1, 1)], 3);
        s.add_le(&[(0, 1)], 1);
        assert_eq!(s.solve(1000), Feasibility::Feasible);
        let _ = s.probe_at_least(1, 1, 1000);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["ilp.pivots"], s.pivots_total());
        assert!(snap.counters["ilp.pivots"] > 0);
        // One probe = one rollback observed.
        assert_eq!(snap.histograms["ilp.rollback_depth"].count, 1);
        assert!(snap.histograms["ilp.rollback_depth"].max >= 1);
    }

    #[test]
    fn exact_fallback_agrees_with_cutting_plane() {
        let mut s = AllIntegerSolver::new(3);
        s.add_ge(&[(0, 1), (1, 1), (2, 1)], 2);
        s.add_le(&[(0, 3), (1, 2), (2, 1)], 4);
        let cut = match s.clone().solve(10_000) {
            Feasibility::PivotLimit => None,
            v => Some(v),
        };
        let exact = s.solve_exact();
        if let Some(v) = cut {
            assert_eq!(v, exact);
        }
        assert_eq!(exact, Feasibility::Feasible);
    }

    #[test]
    fn solver_starts_narrow_and_stays_narrow_on_small_systems() {
        let mut s = AllIntegerSolver::new(3);
        s.add_ge(&[(0, 1), (1, 1), (2, 1)], 2);
        s.add_le(&[(0, 3), (1, 2), (2, 1)], 4);
        assert!(!s.is_wide());
        assert_eq!(s.solve(10_000), Feasibility::Feasible);
        let _ = s.probe_at_least(0, 1, 10_000);
        assert!(!s.is_wide(), "small coefficients must not promote");
        assert_eq!(s.promotions(), 0);
    }

    #[test]
    fn forced_wide_matches_adaptive_digest_and_verdicts() {
        let build = |wide: bool| {
            let mut s = AllIntegerSolver::new(3);
            if wide {
                s.force_wide();
            }
            s.add_ge(&[(0, 1), (1, 1), (2, 1)], 2);
            s.add_le(&[(0, 3), (1, 2), (2, 1)], 4);
            s
        };
        let mut narrow = build(false);
        let mut wide = build(true);
        assert_eq!(narrow.tableau_digest(), wide.tableau_digest());
        assert_eq!(narrow.solve(10_000), wide.solve(10_000));
        assert_eq!(narrow.tableau_digest(), wide.tableau_digest());
        for v in 0..3 {
            assert_eq!(
                narrow.probe_at_least(v, 1, 10_000),
                wide.probe_at_least(v, 1, 10_000),
            );
        }
        assert_eq!(narrow.tableau_digest(), wide.tableau_digest());
        assert_eq!(wide.promotions(), 0, "force_wide is not a promotion");
    }

    #[test]
    fn overflowing_pivot_promotes_and_keeps_the_clone_verdict() {
        // Coefficients near i64::MAX make the very first cut's explosion
        // bound exceed the i64 safe range, forcing a promotion; the
        // verdict must match both the forced-wide path and the exact
        // fallback.
        let big = i64::MAX / 4;
        let build = || {
            let mut s = AllIntegerSolver::new(2);
            s.add_ge(&[(0, 1), (1, 1)], 3);
            s.add_le(&[(0, big), (1, big)], big);
            s
        };
        let mut adaptive = build();
        let mut forced = build();
        forced.force_wide();
        let va = adaptive.solve(10_000);
        let vf = forced.solve(10_000);
        assert_eq!(va, vf);
        assert!(adaptive.is_wide(), "the huge system must promote");
        assert!(adaptive.promotions() >= 1);
        assert_eq!(adaptive.tableau_digest(), forced.tableau_digest());
        let exact = build().solve_exact();
        let settled = match va {
            Feasibility::PivotLimit => adaptive.solve_exact(),
            v => v,
        };
        assert_eq!(settled, exact);
    }

    #[test]
    fn promotion_during_probe_still_rolls_back_exactly() {
        let big = i64::MAX / 2;
        let mut s = AllIntegerSolver::new(2);
        s.add_le(&[(0, big), (1, big)], big);
        assert_eq!(s.solve(10_000), Feasibility::Feasible);
        assert!(!s.is_wide());
        let digest = s.tableau_digest();
        // The probe forces a pivot on the huge row and promotes mid-solve;
        // rollback must restore every value (digest is representation-
        // independent, so it must match even though the solver is now wide).
        let verdict = s.probe_at_least(0, 1, 10_000);
        assert!(s.is_wide(), "the probe must have promoted");
        assert_eq!(s.tableau_digest(), digest, "promotion must not leak state");
        assert_eq!(verdict, s.probe_at_least_via_clone(0, 1, 10_000));
    }

    #[test]
    fn promotions_metric_counts_overflow_promotions() {
        use mcs_metrics::Registry;
        use std::sync::Arc;
        let reg = Arc::new(Registry::new());
        let big = i64::MAX / 4;
        let mut s = AllIntegerSolver::new(2);
        s.set_metrics(&MetricsHandle::new(reg.clone()));
        s.add_ge(&[(0, 1), (1, 1)], 3);
        s.add_le(&[(0, big), (1, big)], big);
        let _ = s.solve(10_000);
        assert!(s.is_wide());
        assert_eq!(reg.snapshot().counters["ilp.promotions"], s.promotions());
        assert!(s.promotions() >= 1);
    }

    #[test]
    fn batch_probe_matches_individual_probes() {
        let mut s = AllIntegerSolver::new(3);
        s.add_ge(&[(0, 1), (1, 1), (2, 1)], 2);
        s.add_le(&[(0, 3), (1, 2), (2, 1)], 4);
        assert_eq!(s.solve(10_000), Feasibility::Feasible);
        let digest = s.tableau_digest();
        let reqs: Vec<(usize, i64)> = vec![(0, 1), (1, 1), (2, 1), (0, 2), (1, 3)];
        let batch = s.probe_batch_with_stats(&reqs, 10_000);
        assert_eq!(s.tableau_digest(), digest, "batch must leave no trace");
        assert_eq!(s.trail_len(), 0);
        for (&(var, by), (verdict, _)) in reqs.iter().zip(&batch) {
            assert_eq!(*verdict, s.probe_at_least(var, by, 10_000));
        }
    }

    #[test]
    fn batch_probe_under_differential_mode_cross_checks() {
        let mut s = AllIntegerSolver::new(2);
        s.set_differential(true);
        s.add_le(&[(0, 1), (1, 1)], 1);
        // Panics internally on divergence; passing is the assertion.
        let out = s.probe_batch_with_stats(&[(0, 1), (1, 1), (0, 2)], 1000);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].0, Feasibility::Feasible);
        assert_eq!(out[1].0, Feasibility::Feasible);
        assert_eq!(out[2].0, Feasibility::Infeasible);
    }
}
