//! Gomory's Dual All-Integer cutting-plane method (1960), the algorithm
//! Section 3.3 of the paper prescribes for the incremental pin-allocation
//! feasibility checker.
//!
//! The solver checks feasibility of systems `A x <= b` over nonnegative
//! integers `x`. The working tableau expresses every *tracked* variable
//! (structural variables and original slacks) in terms of the current
//! nonbasic set, `x_i = t_i0 + sum_j t_ij (-u_j)`, and stays all-integer
//! throughout: each iteration selects a violated row (`t_i0 < 0`),
//! generates an all-integer Gomory cut with pivot element exactly `-1`
//! (divisor `lambda = -t_rk`), and pivots on the cut.
//!
//! Because the pin-allocation ILP only asks for *feasibility* (the paper
//! maximizes the constant 0), the dual-feasibility side condition on the
//! cut divisor is vacuous, which keeps the implementation faithful yet
//! simple. Termination is enforced with a pivot budget; if the budget is
//! exhausted the caller falls back to exact branch-and-bound
//! ([`AllIntegerSolver::solve_exact`]), so verdicts are always sound.
//!
//! The incremental update of Section 3.3 — adding `x >= 1` by substituting
//! `x' = x - 1`, i.e. subtracting the variable's column from the constant
//! column (Equation 3.13) — is [`AllIntegerSolver::assume_at_least`];
//! probing without committing is [`AllIntegerSolver::probe_at_least`].
//!
//! # The copy-free probe engine
//!
//! The tableau lives in one contiguous row-major `i128` arena (stride
//! `ncols + 1`: the constant column followed by the coefficients), and
//! every mutation — row append, lower-bound shift, cut pivot — can be
//! recorded on an **undo trail**. A probe is therefore
//! [`AllIntegerSolver::checkpoint`] → mutate/solve →
//! [`AllIntegerSolver::rollback`] instead of a deep clone of the tableau
//! plus every accumulated cut: rolling a pivot back replays its cut row
//! (parked in a side arena) with the inverse sign, which restores the
//! arena byte for byte. Trail recording is active only while a
//! checkpoint is outstanding, so committed solves
//! ([`AllIntegerSolver::assume_at_least`] + [`AllIntegerSolver::solve`])
//! cost no trail memory at all. The legacy clone-based probe survives as
//! [`AllIntegerSolver::probe_at_least_via_clone`] and backs a
//! differential-testing mode ([`AllIntegerSolver::set_differential`])
//! that cross-checks every trail verdict against it.

use crate::model::{Model, SolveError};
use mcs_ctl::Budget;
use mcs_metrics::{Counter, Histogram, MetricsHandle};
use mcs_obs::{Event, RecorderHandle};

/// Verdict of a feasibility check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Feasibility {
    /// An all-integer assignment satisfying every constraint exists (the
    /// tableau's current basic point).
    Feasible,
    /// No nonnegative integer assignment satisfies the constraints.
    Infeasible,
    /// The pivot budget ran out before a verdict (fall back to
    /// [`AllIntegerSolver::solve_exact`]).
    PivotLimit,
    /// An attached execution [`Budget`] tripped at a pivot boundary
    /// before a verdict; query the budget for the reason. Unlike
    /// [`Feasibility::PivotLimit`] this is *not* followed by the exact
    /// fallback — the flow is being asked to stop.
    Interrupted,
}

/// One undoable tableau mutation on the trail.
#[derive(Clone, Copy, Debug)]
enum TrailOp {
    /// A constraint row was appended (with its `original` entry).
    RowAppended,
    /// `assume_at_least(var, by)` shifted a structural row.
    Shifted { var: u32, by: i64 },
    /// A Gomory cut pivot on column `k`; its cut row starts at
    /// `cut_start` in the cut arena.
    Pivoted { k: u32, cut_start: usize },
}

/// A position on the undo trail, returned by
/// [`AllIntegerSolver::checkpoint`]. Checkpoints nest and must be rolled
/// back in LIFO order.
#[derive(Clone, Copy, Debug)]
pub struct Checkpoint {
    trail_len: usize,
    nrows: usize,
    cuts_len: usize,
    original_len: usize,
}

/// Cost accounting for one probe, for observability.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProbeStats {
    /// Gomory pivots the probe's solve performed.
    pub pivots: u64,
    /// Trail entries undone to restore the pre-probe tableau.
    pub rollback_ops: u64,
    /// Whether the pivot budget ran out and the exact branch-and-bound
    /// fallback decided the verdict.
    pub exact_fallback: bool,
}

/// Incremental all-integer feasibility solver for `A x <= b`, `x >= 0`
/// integer.
///
/// # Examples
///
/// ```
/// use mcs_ilp::{AllIntegerSolver, Feasibility};
///
/// // x0 + x1 <= 1 with both required at least 1 is infeasible.
/// let mut s = AllIntegerSolver::new(2);
/// s.add_le(&[(0, 1), (1, 1)], 1);
/// assert_eq!(s.solve(1000), Feasibility::Feasible);
/// assert_eq!(s.probe_at_least(0, 1, 1000), Feasibility::Feasible);
/// s.assume_at_least(0, 1);
/// assert_eq!(s.solve(1000), Feasibility::Feasible);
/// assert_eq!(s.probe_at_least(1, 1, 1000), Feasibility::Infeasible);
/// ```
#[derive(Clone, Debug)]
pub struct AllIntegerSolver {
    num_vars: usize,
    /// Width of the current nonbasic set (fixed: pivots swap columns in
    /// place, they never widen the tableau).
    ncols: usize,
    /// Row-major tableau arena, stride `ncols + 1`: `t_i0` then `t_ij`.
    /// Rows 0..num_vars track the structural variables; later rows track
    /// original slacks (one per constraint).
    tab: Vec<i128>,
    nrows: usize,
    /// Accumulated lower-bound shifts applied via `assume_at_least`.
    shifts: Vec<i64>,
    /// Original constraints, kept for the exact fallback.
    original: Vec<(Vec<(usize, i64)>, i64)>,
    /// Cut rows parked for rollback (stride `ncols + 1` each). Outside a
    /// checkpoint the slot is reused per pivot, so steady-state solves
    /// allocate nothing.
    cut_arena: Vec<i128>,
    /// Undo trail; recorded only while a checkpoint is outstanding.
    trail: Vec<TrailOp>,
    /// Outstanding checkpoints.
    watchers: usize,
    /// Total pivots performed over the solver's lifetime.
    pivots_total: u64,
    /// Cross-check every trail probe against the clone-based path.
    differential: bool,
    /// Sink for per-pivot `GomoryCut` events (inactive by default).
    /// Clones share the sink, so probe solves report their pivots too.
    recorder: RecorderHandle,
    /// Optional execution budget polled at pivot boundaries; every
    /// pivot is charged against it. Clones share the same budget.
    budget: Option<Budget>,
    /// Resolved metric cells (disconnected by default; clones share the
    /// cells, so probe solves aggregate into the same totals).
    m_pivots: Counter,
    m_overflow_fallbacks: Counter,
    m_rollback_depth: Histogram,
}

impl AllIntegerSolver {
    /// Creates a solver over `num_vars` nonnegative integer variables.
    pub fn new(num_vars: usize) -> Self {
        let stride = num_vars + 1;
        let mut tab = vec![0i128; num_vars * stride];
        for v in 0..num_vars {
            // x_v = 0 + (-1) * (-u_v)  =  u_v.
            tab[v * stride + 1 + v] = -1;
        }
        AllIntegerSolver {
            num_vars,
            ncols: num_vars,
            tab,
            nrows: num_vars,
            shifts: vec![0; num_vars],
            original: Vec::new(),
            cut_arena: Vec::new(),
            trail: Vec::new(),
            watchers: 0,
            pivots_total: 0,
            differential: false,
            recorder: RecorderHandle::default(),
            budget: None,
            m_pivots: Counter::default(),
            m_overflow_fallbacks: Counter::default(),
            m_rollback_depth: Histogram::default(),
        }
    }

    /// Routes per-pivot `GomoryCut` events to `recorder`.
    pub fn set_recorder(&mut self, recorder: RecorderHandle) {
        self.recorder = recorder;
    }

    /// Connects the solver's aggregate telemetry — `ilp.pivots`,
    /// `ilp.cut_overflow_fallbacks`, the `ilp.rollback_depth` histogram —
    /// to a metrics registry. Cells are resolved once here, so the
    /// per-pivot cost with metrics on is one relaxed atomic add.
    pub fn set_metrics(&mut self, metrics: &MetricsHandle) {
        self.m_pivots = metrics.counter("ilp.pivots");
        self.m_overflow_fallbacks = metrics.counter("ilp.cut_overflow_fallbacks");
        self.m_rollback_depth = metrics.histogram("ilp.rollback_depth");
    }

    /// Attaches an execution budget. [`AllIntegerSolver::solve`] polls
    /// it before every pivot and returns [`Feasibility::Interrupted`]
    /// once it trips; each pivot performed is charged to the budget.
    pub fn set_budget(&mut self, budget: Budget) {
        self.budget = Some(budget);
    }

    /// When enabled, every [`AllIntegerSolver::probe_at_least`] verdict is
    /// cross-checked against the legacy clone-based probe and any
    /// divergence panics — the differential-testing mode the CI probe
    /// checks run under. Off by default (the clone path doubles the cost
    /// of every probe).
    pub fn set_differential(&mut self, on: bool) {
        self.differential = on;
    }

    /// Number of structural variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Total Gomory pivots performed so far (probes included).
    pub fn pivots_total(&self) -> u64 {
        self.pivots_total
    }

    /// Current undo-trail depth (0 outside a checkpoint).
    pub fn trail_len(&self) -> usize {
        self.trail.len()
    }

    #[inline]
    fn stride(&self) -> usize {
        self.ncols + 1
    }

    /// FNV-1a digest over the entire solver state (tableau arena, shifts,
    /// original constraints). Two solvers with equal digests have
    /// byte-identical tableaus — the hook the rollback property tests
    /// assert restoration with.
    pub fn tableau_digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        eat(&(self.nrows as u64).to_le_bytes());
        eat(&(self.ncols as u64).to_le_bytes());
        for &cell in &self.tab[..self.nrows * self.stride()] {
            eat(&cell.to_le_bytes());
        }
        for &s in &self.shifts {
            eat(&s.to_le_bytes());
        }
        eat(&(self.original.len() as u64).to_le_bytes());
        for (terms, rhs) in &self.original {
            for &(v, a) in terms {
                eat(&(v as u64).to_le_bytes());
                eat(&a.to_le_bytes());
            }
            eat(&rhs.to_le_bytes());
        }
        h
    }

    /// Adds `sum(coeff * x_var) <= rhs`.
    ///
    /// # Panics
    ///
    /// Panics if a variable index is out of range.
    pub fn add_le(&mut self, terms: &[(usize, i64)], rhs: i64) {
        for &(v, _) in terms {
            assert!(v < self.num_vars, "variable index out of range");
        }
        self.original.push((terms.to_vec(), rhs));
        // Slack s = rhs - sum a_v x_v, expressed over current nonbasics via
        // the structural rows (which are maintained for every variable).
        let stride = self.stride();
        let mut row = vec![0i128; stride];
        row[0] = rhs as i128;
        for &(v, a) in terms {
            let a = a as i128;
            let base = v * stride;
            // The tracked row holds the shifted variable x' = x - shift.
            row[0] -= a * (self.tab[base] + self.shifts[v] as i128);
            for (c, &rv) in row[1..].iter_mut().zip(&self.tab[base + 1..base + stride]) {
                *c -= a * rv;
            }
        }
        self.tab.extend_from_slice(&row);
        self.nrows += 1;
        if self.watchers > 0 {
            self.trail.push(TrailOp::RowAppended);
        }
    }

    /// Adds `sum(coeff * x_var) >= rhs` (negated `<=`).
    pub fn add_ge(&mut self, terms: &[(usize, i64)], rhs: i64) {
        let neg: Vec<_> = terms.iter().map(|&(v, a)| (v, -a)).collect();
        self.add_le(&neg, -rhs);
    }

    /// Commits the assumption `x_var >= current assumption + by`
    /// (Section 3.3: substitute `x' = x - by` and subtract the column from
    /// the constant vector, Equation 3.13). With the tracked row stored
    /// relative to the existing shift this is a single constant-column
    /// update — no row copy.
    pub fn assume_at_least(&mut self, var: usize, by: i64) {
        assert!(var < self.num_vars, "variable index out of range");
        let stride = self.stride();
        self.tab[var * stride] -= by as i128;
        self.shifts[var] += by;
        if self.watchers > 0 {
            self.trail.push(TrailOp::Shifted {
                var: var as u32,
                by,
            });
        }
    }

    /// Opens a checkpoint: every subsequent mutation is recorded on the
    /// undo trail until the matching [`AllIntegerSolver::rollback`].
    /// Checkpoints nest; roll them back in LIFO order.
    pub fn checkpoint(&mut self) -> Checkpoint {
        self.watchers += 1;
        Checkpoint {
            trail_len: self.trail.len(),
            nrows: self.nrows,
            cuts_len: self.cut_arena.len(),
            original_len: self.original.len(),
        }
    }

    /// Undoes every mutation since `cp`, restoring the tableau byte for
    /// byte, and closes the checkpoint. Returns the number of trail
    /// entries undone (the probe's rollback depth).
    ///
    /// # Panics
    ///
    /// Panics if no checkpoint is outstanding or the trail is shorter
    /// than `cp` records (out-of-order rollback).
    pub fn rollback(&mut self, cp: Checkpoint) -> u64 {
        assert!(self.watchers > 0, "rollback without a checkpoint");
        assert!(cp.trail_len <= self.trail.len(), "out-of-order rollback");
        let mut undone = 0u64;
        while self.trail.len() > cp.trail_len {
            let op = self.trail.pop().expect("trail entry");
            undone += 1;
            match op {
                TrailOp::RowAppended => {
                    self.nrows -= 1;
                    self.tab.truncate(self.nrows * self.stride());
                    self.original.pop();
                }
                TrailOp::Shifted { var, by } => {
                    let base = var as usize * self.stride();
                    self.tab[base] += by as i128;
                    self.shifts[var as usize] -= by;
                }
                TrailOp::Pivoted { k, cut_start } => {
                    self.apply_cut(cut_start, k as usize, -1);
                    self.cut_arena.truncate(cut_start);
                }
            }
        }
        debug_assert_eq!(self.nrows, cp.nrows);
        debug_assert_eq!(self.cut_arena.len(), cp.cuts_len);
        debug_assert_eq!(self.original.len(), cp.original_len);
        self.watchers -= 1;
        self.m_rollback_depth.observe(undone);
        undone
    }

    /// Runs the dual all-integer cutting-plane loop with at most
    /// `max_pivots` pivots. The tableau retains all generated cuts, so the
    /// call is resumable and subsequent incremental checks are warm-started
    /// — exactly the usage pattern of the scheduling feasibility checker.
    pub fn solve(&mut self, max_pivots: usize) -> Feasibility {
        let stride = self.stride();
        for round in 0..max_pivots {
            // Most negative constant column; ties to the lowest row index.
            let Some(r) = (0..self.nrows)
                .filter(|&i| self.tab[i * stride] < 0)
                .min_by_key(|&i| (self.tab[i * stride], i))
            else {
                return Feasibility::Feasible;
            };
            let base = r * stride;
            // Columns that can raise row r: t_rj < 0.
            let Some(k) = (0..self.ncols).find(|&j| self.tab[base + 1 + j] < 0) else {
                return Feasibility::Infeasible;
            };
            // Poll the budget before the next unit of work — after the
            // convergence tests, which cost no pivot, so a solve that
            // converges exactly as it spends its last allowed pivot
            // still reports its natural verdict, never an interruption.
            if let Some(budget) = &self.budget {
                if budget.check().is_some() {
                    return Feasibility::Interrupted;
                }
            }
            // All-integer Gomory cut with divisor lambda = -t_rk, giving a
            // pivot element of exactly -1. The cut row is written into the
            // side arena: kept there when a checkpoint needs it for
            // rollback, reclaimed immediately otherwise.
            let lambda = -self.tab[base + 1 + k];
            let cut_start = self.cut_arena.len();
            self.cut_arena.reserve(stride);
            self.cut_arena.push(self.tab[base].div_euclid(lambda));
            for j in 0..self.ncols {
                self.cut_arena
                    .push(self.tab[base + 1 + j].div_euclid(lambda));
            }
            debug_assert_eq!(self.cut_arena[cut_start + 1 + k], -1);
            // Coefficient-explosion guard (found by differential
            // fuzzing): stacked cuts can grow tableau entries until the
            // i128 multiply-adds in `apply_cut` overflow. Applying this
            // cut bounds every new entry by `tab_max * (1 + cut_max)`;
            // when that bound leaves the safe range, abandon the
            // heuristic loop *before* mutating anything — the tableau
            // and trail stay consistent, and the caller's exact
            // branch-and-bound fallback delivers the verdict. The same
            // bound covers rollback, whose products mirror the forward
            // pass exactly.
            let cut_max = self.cut_arena[cut_start..]
                .iter()
                .map(|c| c.unsigned_abs())
                .max()
                .unwrap_or(0);
            let tab_max = self.tab[..self.nrows * stride]
                .iter()
                .map(|c| c.unsigned_abs())
                .max()
                .unwrap_or(0);
            let safe = cut_max
                .checked_add(1)
                .and_then(|m| tab_max.checked_mul(m))
                .is_some_and(|bound| bound <= i128::MAX as u128 / 2);
            if !safe {
                self.cut_arena.truncate(cut_start);
                self.m_overflow_fallbacks.inc();
                return Feasibility::PivotLimit;
            }
            if self.recorder.enabled() {
                self.recorder.record(Event::GomoryCut {
                    round: round as u32,
                    pivot: k as u32,
                    objective: self.tab[base].clamp(i64::MIN as i128, i64::MAX as i128) as i64,
                });
            }
            self.apply_cut(cut_start, k, 1);
            self.pivots_total += 1;
            self.m_pivots.inc();
            if let Some(budget) = &self.budget {
                budget.charge_pivots(1);
            }
            if self.watchers > 0 {
                self.trail.push(TrailOp::Pivoted {
                    k: k as u32,
                    cut_start,
                });
            } else {
                self.cut_arena.truncate(cut_start);
            }
        }
        Feasibility::PivotLimit
    }

    /// Pivot (`sign = 1`): the cut's slack `s` enters the nonbasic set in
    /// place of column `k`; `u_k = -t0 + sum_{j != k} t_j u_j + s` is
    /// substituted into every tracked row. All arithmetic stays integral
    /// because the pivot element is `-1`. The stored coefficient at
    /// column `k` is unchanged by the substitution, which makes the
    /// transformation an involution up to sign: `sign = -1` replays the
    /// identical loop subtracting instead of adding and restores the
    /// pre-pivot tableau exactly — the rollback path.
    fn apply_cut(&mut self, cut_start: usize, k: usize, sign: i128) {
        let stride = self.ncols + 1;
        let (tab, cuts) = (&mut self.tab, &self.cut_arena);
        let cut = &cuts[cut_start..cut_start + stride];
        for row in tab[..self.nrows * stride].chunks_exact_mut(stride) {
            let f = sign * row[1 + k];
            if f != 0 {
                row[0] += f * cut[0];
                for (j, cell) in row[1..].iter_mut().enumerate() {
                    if j != k {
                        *cell += f * cut[1 + j];
                    }
                }
            }
        }
    }

    /// Current basic point (nonbasics at zero) for the structural
    /// variables, valid after [`AllIntegerSolver::solve`] returned
    /// [`Feasibility::Feasible`]. Includes accumulated shifts.
    pub fn solution(&self) -> Vec<i64> {
        let stride = self.stride();
        (0..self.num_vars)
            .map(|v| (self.tab[v * stride] + self.shifts[v] as i128) as i64)
            .collect()
    }

    /// Checks whether committing `x_var >= by` more would keep the system
    /// feasible, leaving the solver state untouched: checkpoint, shift,
    /// solve, roll the trail back. No tableau copy is made.
    pub fn probe_at_least(&mut self, var: usize, by: i64, max_pivots: usize) -> Feasibility {
        self.probe_at_least_with_stats(var, by, max_pivots).0
    }

    /// [`AllIntegerSolver::probe_at_least`] plus the probe's cost
    /// accounting (pivots, rollback depth, exact fallback).
    pub fn probe_at_least_with_stats(
        &mut self,
        var: usize,
        by: i64,
        max_pivots: usize,
    ) -> (Feasibility, ProbeStats) {
        let pivots_before = self.pivots_total;
        let cp = self.checkpoint();
        self.assume_at_least(var, by);
        let mut verdict = self.solve(max_pivots);
        let exact_fallback = verdict == Feasibility::PivotLimit;
        if exact_fallback {
            // The exact model is built from `original` + `shifts`, which
            // still include the probed assumption at this point.
            verdict = self.solve_exact();
        }
        let rollback_ops = self.rollback(cp);
        if self.differential && verdict != Feasibility::Interrupted {
            let cloned = self.probe_at_least_via_clone(var, by, max_pivots);
            assert_eq!(
                verdict, cloned,
                "trail-based probe of x{var} >= +{by} disagrees with the clone path"
            );
        }
        (
            verdict,
            ProbeStats {
                pivots: self.pivots_total - pivots_before,
                rollback_ops,
                exact_fallback,
            },
        )
    }

    /// Differential oracle hook: answers the same `x_var >= +by` probe
    /// through both engines — the trail-based checkpoint/rollback path
    /// and the legacy clone-per-probe path — and returns the verdict
    /// pair `(trail, clone)`. The fuzz harness asserts the two agree
    /// under arbitrary pivot budgets; the built-in differential mode is
    /// suspended for the trail half so a divergence is *returned* for
    /// triage instead of panicking mid-sweep.
    pub fn probe_agreement(
        &mut self,
        var: usize,
        by: i64,
        max_pivots: usize,
    ) -> (Feasibility, Feasibility) {
        let saved = self.differential;
        self.differential = false;
        let trail = self.probe_at_least(var, by, max_pivots);
        self.differential = saved;
        let clone = self.probe_at_least_via_clone(var, by, max_pivots);
        (trail, clone)
    }

    /// The legacy clone-per-probe path: deep-copies the solver, commits
    /// the assumption on the copy and solves there. Kept as the reference
    /// implementation for differential testing and the before/after
    /// microbenches.
    pub fn probe_at_least_via_clone(&self, var: usize, by: i64, max_pivots: usize) -> Feasibility {
        let mut clone = self.clone();
        clone.differential = false;
        // The reference path must not spend or observe the shared budget:
        // it exists to double-check verdicts, not to race the deadline.
        clone.budget = None;
        clone.assume_at_least(var, by);
        let verdict = clone.solve(max_pivots);
        if verdict == Feasibility::PivotLimit {
            clone.solve_exact()
        } else {
            verdict
        }
    }

    /// Exact fallback: rebuilds the system (original constraints plus all
    /// committed assumptions) and solves it with branch-and-bound.
    pub fn solve_exact(&self) -> Feasibility {
        let mut m = Model::new();
        let vars: Vec<_> = (0..self.num_vars)
            .map(|v| m.integer(&format!("x{v}"), None))
            .collect();
        for (terms, rhs) in &self.original {
            let t: Vec<_> = terms.iter().map(|&(v, a)| (vars[v], a)).collect();
            m.le(&t, *rhs);
        }
        for (v, &s) in self.shifts.iter().enumerate() {
            if s > 0 {
                m.ge(&[(vars[v], 1)], s);
            }
        }
        match m.feasible() {
            Ok(_) => Feasibility::Feasible,
            Err(SolveError::Infeasible) => Feasibility::Infeasible,
            Err(_) => Feasibility::PivotLimit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivially_feasible_at_origin() {
        let mut s = AllIntegerSolver::new(3);
        s.add_le(&[(0, 1), (1, 2), (2, 3)], 10);
        assert_eq!(s.solve(100), Feasibility::Feasible);
        assert_eq!(s.solution(), vec![0, 0, 0]);
    }

    #[test]
    fn ge_constraints_force_positive_values() {
        let mut s = AllIntegerSolver::new(2);
        s.add_ge(&[(0, 1), (1, 1)], 3);
        s.add_le(&[(0, 1)], 1);
        assert_eq!(s.solve(1000), Feasibility::Feasible);
        let sol = s.solution();
        assert!(sol[0] + sol[1] >= 3, "solution {sol:?}");
        assert!(sol[0] <= 1);
        assert!(sol.iter().all(|&x| x >= 0));
    }

    #[test]
    fn detects_infeasibility() {
        let mut s = AllIntegerSolver::new(1);
        s.add_ge(&[(0, 1)], 5);
        s.add_le(&[(0, 1)], 3);
        assert_eq!(s.solve(1000), Feasibility::Infeasible);
    }

    #[test]
    fn tripped_budget_interrupts_at_pivot_boundary() {
        use mcs_ctl::{BudgetSpec, Termination};
        let mut s = AllIntegerSolver::new(2);
        s.add_ge(&[(0, 1), (1, 1)], 3);
        s.add_le(&[(0, 1)], 1);
        let budget = Budget::new(BudgetSpec::default().max_pivots(1));
        s.set_budget(budget.clone());
        assert_eq!(s.solve(1000), Feasibility::Interrupted);
        assert_eq!(budget.verdict(), Some(Termination::BudgetExhausted));
        assert_eq!(budget.pivots_spent(), 1);
    }

    #[test]
    fn exact_ceiling_still_reports_natural_verdict() {
        use mcs_ctl::BudgetSpec;
        // Measure how many pivots the solve needs, then allow exactly
        // that many: check-before-work means the verdict must still be
        // the natural one, not an interruption.
        let build = || {
            let mut s = AllIntegerSolver::new(2);
            s.add_ge(&[(0, 1), (1, 1)], 3);
            s.add_le(&[(0, 1)], 1);
            s
        };
        let mut reference = build();
        assert_eq!(reference.solve(1000), Feasibility::Feasible);
        let needed = reference.pivots_total();
        assert!(needed > 0);

        let mut s = build();
        let budget = Budget::new(BudgetSpec::default().max_pivots(needed));
        s.set_budget(budget.clone());
        assert_eq!(s.solve(1000), Feasibility::Feasible);
        assert_eq!(budget.verdict(), None);
        assert_eq!(budget.pivots_spent(), needed);
    }

    #[test]
    fn integrality_matters() {
        // 2x <= 1 and x >= 1 is LP-infeasible too; but 2x >= 1, 2x <= 1
        // admits x = 1/2 and no integer: the all-integer method must say
        // infeasible.
        let mut s = AllIntegerSolver::new(1);
        s.add_ge(&[(0, 2)], 1);
        s.add_le(&[(0, 2)], 1);
        let v = match s.solve(1000) {
            Feasibility::PivotLimit => s.solve_exact(),
            other => other,
        };
        assert_eq!(v, Feasibility::Infeasible);
    }

    #[test]
    fn assume_at_least_matches_equation_3_13() {
        let mut s = AllIntegerSolver::new(2);
        s.add_le(&[(0, 1), (1, 1)], 2);
        s.assume_at_least(0, 1);
        assert_eq!(s.solve(1000), Feasibility::Feasible);
        let sol = s.solution();
        assert!(sol[0] >= 1);
        assert!(sol[0] + sol[1] <= 2);
        s.assume_at_least(1, 1);
        assert_eq!(s.solve(1000), Feasibility::Feasible);
        let sol = s.solution();
        assert_eq!(sol, vec![1, 1]);
        // A third unit of demand exceeds the budget.
        assert_eq!(s.probe_at_least(0, 1, 1000), Feasibility::Infeasible);
    }

    #[test]
    fn probe_does_not_mutate_state() {
        let mut s = AllIntegerSolver::new(2);
        s.add_le(&[(0, 1), (1, 1)], 1);
        let before = s.tableau_digest();
        let _ = s.probe_at_least(0, 1, 1000);
        let _ = s.probe_at_least(1, 1, 1000);
        assert_eq!(s.tableau_digest(), before, "probes must leave no trace");
        assert_eq!(s.solve(1000), Feasibility::Feasible);
        assert_eq!(s.solution(), vec![0, 0]);
    }

    #[test]
    fn checkpoint_rollback_restores_after_solve() {
        let mut s = AllIntegerSolver::new(2);
        s.add_ge(&[(0, 1), (1, 1)], 3);
        s.add_le(&[(0, 1)], 1);
        assert_eq!(s.solve(1000), Feasibility::Feasible);
        let digest = s.tableau_digest();
        let cp = s.checkpoint();
        s.assume_at_least(1, 2);
        s.add_le(&[(1, 1)], 5);
        let _ = s.solve(1000);
        let undone = s.rollback(cp);
        assert!(undone >= 2, "shift + row append at minimum");
        assert_eq!(s.tableau_digest(), digest);
        assert_eq!(s.trail_len(), 0);
    }

    #[test]
    fn nested_checkpoints_roll_back_in_lifo_order() {
        let mut s = AllIntegerSolver::new(2);
        s.add_le(&[(0, 1), (1, 1)], 4);
        let d0 = s.tableau_digest();
        let outer = s.checkpoint();
        s.assume_at_least(0, 1);
        let d1 = s.tableau_digest();
        let inner = s.checkpoint();
        s.assume_at_least(1, 2);
        s.rollback(inner);
        assert_eq!(s.tableau_digest(), d1);
        s.rollback(outer);
        assert_eq!(s.tableau_digest(), d0);
    }

    #[test]
    fn trail_is_not_recorded_outside_checkpoints() {
        let mut s = AllIntegerSolver::new(2);
        s.add_ge(&[(0, 1), (1, 1)], 3);
        assert_eq!(s.solve(1000), Feasibility::Feasible);
        s.assume_at_least(0, 1);
        assert_eq!(s.trail_len(), 0, "committed work must not grow the trail");
    }

    #[test]
    fn trail_and_clone_probes_agree_with_differential_on() {
        let mut s = AllIntegerSolver::new(3);
        s.set_differential(true);
        s.add_ge(&[(0, 1), (1, 1), (2, 1)], 2);
        s.add_le(&[(0, 3), (1, 2), (2, 1)], 4);
        assert_eq!(s.solve(10_000), Feasibility::Feasible);
        for v in 0..3 {
            // The differential mode asserts agreement internally.
            let _ = s.probe_at_least(v, 1, 10_000);
        }
        s.assume_at_least(2, 1);
        assert_eq!(s.solve(10_000), Feasibility::Feasible);
        for v in 0..3 {
            assert_eq!(
                s.probe_at_least(v, 1, 10_000),
                s.probe_at_least_via_clone(v, 1, 10_000),
            );
        }
    }

    #[test]
    fn probe_stats_report_pivots_and_rollback_depth() {
        let mut s = AllIntegerSolver::new(2);
        s.add_le(&[(0, 1), (1, 1)], 1);
        let (v, stats) = s.probe_at_least_with_stats(0, 1, 1000);
        assert_eq!(v, Feasibility::Feasible);
        // At least the shift itself is on the trail; forcing x0 >= 1
        // requires pivoting.
        assert!(stats.rollback_ops >= 1);
        assert!(stats.pivots >= 1);
        assert!(!stats.exact_fallback);
        // A zero budget must fall back to the exact solver and stay sound.
        let (v0, stats0) = s.probe_at_least_with_stats(0, 1, 0);
        assert_eq!(v0, Feasibility::Feasible);
        assert!(stats0.exact_fallback);
    }

    #[test]
    fn bin_packing_style_feasibility() {
        // Two bins of capacity 8; three items of width 8 must each go in
        // some bin: x[i][b] binaries, sum_b x[i][b] >= 1, per-bin width sums
        // <= 8. Only 2 of 3 items fit -> infeasible.
        let var = |i: usize, bin: usize| i * 2 + bin;
        let mut s = AllIntegerSolver::new(6);
        for i in 0..3 {
            s.add_ge(&[(var(i, 0), 1), (var(i, 1), 1)], 1);
            for bin in 0..2 {
                s.add_le(&[(var(i, bin), 1)], 1);
            }
        }
        for bin in 0..2 {
            let terms: Vec<_> = (0..3).map(|i| (var(i, bin), 8)).collect();
            s.add_le(&terms, 8);
        }
        let v = match s.solve(5000) {
            Feasibility::PivotLimit => s.solve_exact(),
            other => other,
        };
        assert_eq!(v, Feasibility::Infeasible);

        // With 8-bit-wide bins and 4-bit items, everything fits.
        let mut s = AllIntegerSolver::new(6);
        for i in 0..3 {
            s.add_ge(&[(var(i, 0), 1), (var(i, 1), 1)], 1);
            for bin in 0..2 {
                s.add_le(&[(var(i, bin), 1)], 1);
            }
        }
        for bin in 0..2 {
            let terms: Vec<_> = (0..3).map(|i| (var(i, bin), 4)).collect();
            s.add_le(&terms, 8);
        }
        let v = match s.solve(5000) {
            Feasibility::PivotLimit => s.solve_exact(),
            other => other,
        };
        assert_eq!(v, Feasibility::Feasible);
    }

    #[test]
    fn recorder_sees_every_pivot() {
        use mcs_obs::BufferingRecorder;
        use std::sync::Arc;
        let buf = Arc::new(BufferingRecorder::new());
        let mut s = AllIntegerSolver::new(2);
        s.set_recorder(RecorderHandle::new(buf.clone()));
        s.add_ge(&[(0, 1), (1, 1)], 3);
        s.add_le(&[(0, 1)], 1);
        assert_eq!(s.solve(1000), Feasibility::Feasible);
        let cuts = buf
            .events()
            .iter()
            .filter(|e| matches!(e, Event::GomoryCut { .. }))
            .count();
        assert!(cuts > 0, "a forced-positive system needs at least one cut");
        // Probe solves share the sink: probing records further pivots.
        let before = buf.events().len();
        let _ = s.probe_at_least(1, 1, 1000);
        assert!(buf.events().len() >= before);
    }

    #[test]
    fn metrics_count_pivots_and_rollbacks() {
        use mcs_metrics::Registry;
        use std::sync::Arc;
        let reg = Arc::new(Registry::new());
        let mut s = AllIntegerSolver::new(2);
        s.set_metrics(&MetricsHandle::new(reg.clone()));
        s.add_ge(&[(0, 1), (1, 1)], 3);
        s.add_le(&[(0, 1)], 1);
        assert_eq!(s.solve(1000), Feasibility::Feasible);
        let _ = s.probe_at_least(1, 1, 1000);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["ilp.pivots"], s.pivots_total());
        assert!(snap.counters["ilp.pivots"] > 0);
        // One probe = one rollback observed.
        assert_eq!(snap.histograms["ilp.rollback_depth"].count, 1);
        assert!(snap.histograms["ilp.rollback_depth"].max >= 1);
    }

    #[test]
    fn exact_fallback_agrees_with_cutting_plane() {
        let mut s = AllIntegerSolver::new(3);
        s.add_ge(&[(0, 1), (1, 1), (2, 1)], 2);
        s.add_le(&[(0, 3), (1, 2), (2, 1)], 4);
        let cut = match s.clone().solve(10_000) {
            Feasibility::PivotLimit => None,
            v => Some(v),
        };
        let exact = s.solve_exact();
        if let Some(v) = cut {
            assert_eq!(v, exact);
        }
        assert_eq!(exact, Feasibility::Feasible);
    }
}
