//! Fixed worker pool with admission control and two-lane fairness.
//!
//! Jobs queue in one of two lanes — **cheap** (`synth`) and
//! **expensive** (`explore`) — and workers alternate lanes whenever
//! both hold work, so a burst of sweeps cannot starve one-shot
//! synthesis requests (and vice versa). Admission control bounds the
//! *total* queued depth: a full queue rejects instead of buffering
//! without limit, which keeps tail latency bounded and makes overload
//! visible to clients as a structured `overloaded` error.
//!
//! A panicking job is quarantined with the same `catch_unwind`
//! discipline the sweep driver and portfolio search use: the worker
//! answers that one request with a `worker-panicked` error and keeps
//! serving. The daemon never dies to a job.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use mcs_metrics::MetricsHandle;

use crate::proto::{error_response, ErrorKind};

/// A queued unit of work: produces the response line for one request.
pub type Job = Box<dyn FnOnce() -> String + Send + 'static>;

/// Which queue a job lands in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Lane {
    /// One-shot synthesis: short, latency-sensitive.
    Cheap,
    /// Design-space sweeps: long, throughput work.
    Expensive,
}

struct Pending {
    job: Job,
    reply: Sender<String>,
}

struct QueueState {
    cheap: VecDeque<Pending>,
    expensive: VecDeque<Pending>,
    /// Alternation bit: which lane the next contended pop prefers.
    prefer_expensive: bool,
    open: bool,
}

impl QueueState {
    fn depth(&self) -> usize {
        self.cheap.len() + self.expensive.len()
    }

    /// Pops fairly: alternate lanes when both have work, otherwise
    /// whichever is non-empty.
    fn pop(&mut self) -> Option<Pending> {
        let (first, second): (&mut VecDeque<_>, &mut VecDeque<_>) = if self.prefer_expensive {
            (&mut self.expensive, &mut self.cheap)
        } else {
            (&mut self.cheap, &mut self.expensive)
        };
        if !first.is_empty() && !second.is_empty() {
            self.prefer_expensive = !self.prefer_expensive;
        }
        match first.pop_front() {
            Some(p) => Some(p),
            None => second.pop_front(),
        }
    }
}

struct Shared {
    state: Mutex<QueueState>,
    ready: Condvar,
}

/// The pool: `workers` threads draining the two-lane queue.
pub struct WorkerPool {
    shared: Arc<Shared>,
    queue_cap: usize,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl WorkerPool {
    /// Spawns `workers` threads (floor 1) over a queue bounded to
    /// `queue_cap` pending jobs. `metrics` receives a `serve.panics`
    /// counter increment for every quarantined job.
    pub fn new(workers: usize, queue_cap: usize, metrics: &MetricsHandle) -> WorkerPool {
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                cheap: VecDeque::new(),
                expensive: VecDeque::new(),
                prefer_expensive: false,
                open: true,
            }),
            ready: Condvar::new(),
        });
        let handles = (0..workers.max(1))
            .map(|i| {
                let shared = shared.clone();
                let panics = metrics.counter("serve.panics");
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared, &panics))
                    .expect("spawn serve worker")
            })
            .collect();
        WorkerPool {
            shared,
            queue_cap: queue_cap.max(1),
            workers: Mutex::new(handles),
        }
    }

    /// Enqueues `job` on `lane` and returns the channel its response
    /// arrives on.
    ///
    /// # Errors
    ///
    /// The response line to send instead, when admission control
    /// rejects (queue full) or the pool is shutting down.
    pub fn submit(&self, lane: Lane, job: Job) -> Result<Receiver<String>, String> {
        let mut state = self.shared.state.lock().expect("pool lock");
        if !state.open {
            return Err(error_response(
                ErrorKind::ShuttingDown,
                "daemon is shutting down",
            ));
        }
        if state.depth() >= self.queue_cap {
            return Err(error_response(
                ErrorKind::Overloaded,
                &format!("queue full ({} pending jobs)", state.depth()),
            ));
        }
        let (reply, rx) = channel();
        let pending = Pending { job, reply };
        match lane {
            Lane::Cheap => state.cheap.push_back(pending),
            Lane::Expensive => state.expensive.push_back(pending),
        }
        drop(state);
        self.shared.ready.notify_one();
        Ok(rx)
    }

    /// Jobs currently queued (not counting in-flight ones).
    pub fn queued(&self) -> usize {
        self.shared.state.lock().expect("pool lock").depth()
    }

    /// Stops accepting work, drains the queues, and joins the workers.
    pub fn shutdown(&self) {
        self.shared.state.lock().expect("pool lock").open = false;
        self.shared.ready.notify_all();
        let handles: Vec<_> = self.workers.lock().expect("pool lock").drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared, panics: &mcs_metrics::Counter) {
    loop {
        let pending = {
            let mut state = shared.state.lock().expect("pool lock");
            loop {
                if let Some(p) = state.pop() {
                    break p;
                }
                if !state.open {
                    return;
                }
                state = shared.ready.wait(state).expect("pool lock");
            }
        };
        let response = match catch_unwind(AssertUnwindSafe(pending.job)) {
            Ok(line) => line,
            Err(payload) => {
                panics.inc();
                let what = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                error_response(
                    ErrorKind::WorkerPanicked,
                    &format!("job quarantined: {what}"),
                )
            }
        };
        // The client may have disconnected while the job ran; that is
        // its prerogative, not an error.
        let _ = pending.reply.send(response);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(workers: usize, cap: usize) -> WorkerPool {
        WorkerPool::new(workers, cap, &MetricsHandle::default())
    }

    #[test]
    fn jobs_run_and_answer_on_their_channel() {
        let p = pool(2, 8);
        let rx = p
            .submit(Lane::Cheap, Box::new(|| "pong".to_string()))
            .expect("admitted");
        assert_eq!(rx.recv().unwrap(), "pong");
        p.shutdown();
    }

    #[test]
    fn a_panicking_job_is_quarantined_and_the_pool_survives() {
        let reg = Arc::new(mcs_metrics::Registry::new());
        let metrics = MetricsHandle::new(reg.clone());
        let p = WorkerPool::new(1, 8, &metrics);
        let rx = p
            .submit(Lane::Cheap, Box::new(|| panic!("injected fault")))
            .expect("admitted");
        let line = rx.recv().unwrap();
        assert!(line.contains("\"kind\":\"worker-panicked\""), "{line}");
        assert!(line.contains("injected fault"), "{line}");
        // The same (sole) worker still serves the next job.
        let rx = p
            .submit(Lane::Expensive, Box::new(|| "alive".to_string()))
            .expect("admitted");
        assert_eq!(rx.recv().unwrap(), "alive");
        assert_eq!(metrics.counter("serve.panics").get(), 1);
        p.shutdown();
    }

    #[test]
    fn admission_control_bounds_the_queue() {
        // One worker wedged on a gate keeps the queue from draining.
        let p = pool(1, 2);
        let (gate_tx, gate_rx) = channel::<()>();
        let wedge = p
            .submit(
                Lane::Cheap,
                Box::new(move || {
                    gate_rx.recv().expect("gate");
                    "done".to_string()
                }),
            )
            .expect("admitted");
        // Fill the queue behind the wedged job.
        let mut queued = Vec::new();
        loop {
            match p.submit(Lane::Cheap, Box::new(|| "q".to_string())) {
                Ok(rx) => queued.push(rx),
                Err(line) => {
                    assert!(line.contains("\"kind\":\"overloaded\""), "{line}");
                    break;
                }
            }
            assert!(queued.len() <= 3, "queue never filled");
        }
        gate_tx.send(()).expect("unwedge");
        assert_eq!(wedge.recv().unwrap(), "done");
        for rx in queued {
            assert_eq!(rx.recv().unwrap(), "q");
        }
        p.shutdown();
    }

    #[test]
    fn contended_pops_alternate_lanes() {
        // Single-threaded probe of the fairness rule itself.
        let mut state = QueueState {
            cheap: VecDeque::new(),
            expensive: VecDeque::new(),
            prefer_expensive: false,
            open: true,
        };
        let (tx, _rx) = channel();
        for tag in ["c1", "c2", "c3"] {
            state.cheap.push_back(Pending {
                job: Box::new(move || tag.to_string()),
                reply: tx.clone(),
            });
        }
        for tag in ["e1", "e2", "e3"] {
            state.expensive.push_back(Pending {
                job: Box::new(move || tag.to_string()),
                reply: tx.clone(),
            });
        }
        let order: Vec<String> = (0..6).map(|_| (state.pop().unwrap().job)()).collect();
        assert_eq!(order, vec!["c1", "e1", "c2", "e2", "c3", "e3"]);
    }

    #[test]
    fn shutdown_drains_queued_jobs_before_joining() {
        let p = pool(1, 16);
        let receivers: Vec<_> = (0..8)
            .map(|i| {
                p.submit(Lane::Expensive, Box::new(move || format!("job{i}")))
                    .expect("admitted")
            })
            .collect();
        p.shutdown();
        for (i, rx) in receivers.into_iter().enumerate() {
            assert_eq!(rx.recv().unwrap(), format!("job{i}"));
        }
        assert!(p
            .submit(Lane::Cheap, Box::new(|| "late".to_string()))
            .is_err());
    }
}
