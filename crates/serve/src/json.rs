//! Dependency-free strict JSON for the wire protocol: a reader that
//! keeps numbers as raw source text (budget ceilings are `u64`; lossy
//! `f64` round-trips are not acceptable on a request boundary) and the
//! escape helper every response emitter uses.

/// A parsed JSON value. Numbers keep their raw source text so integer
/// fields parse exactly.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, as its raw source text.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object; `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String payload, `None` for non-strings.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Exact unsigned integer payload, `None` for anything else.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// Array items, `None` for non-arrays.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses one strict JSON document (the whole input must be consumed).
///
/// # Errors
///
/// A byte-positioned message for malformed input.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("byte {}: trailing garbage", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "byte {}: expected `{}`, found `{}`",
                self.pos,
                b as char,
                self.peek().map(|c| c as char).unwrap_or('?')
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "byte {}: unexpected `{}`",
                self.pos,
                other.map(|c| c as char).unwrap_or('?')
            )),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("byte {}: expected `{word}`", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("byte {start}: non-utf8 number"))?;
        raw.parse::<f64>()
            .map_err(|_| format!("byte {start}: malformed number `{raw}`"))?;
        Ok(Json::Num(raw.to_string()))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| format!("byte {}: dangling escape", self.pos))?;
                    self.pos += 1;
                    out.push(match esc {
                        b'"' => '"',
                        b'\\' => '\\',
                        b'/' => '/',
                        b'n' => '\n',
                        b't' => '\t',
                        b'r' => '\r',
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| format!("byte {}: truncated \\u", self.pos))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("byte {}: malformed \\u{hex}", self.pos))?;
                            self.pos += 4;
                            char::from_u32(code)
                                .ok_or_else(|| format!("byte {}: invalid \\u{hex}", self.pos))?
                        }
                        other => {
                            return Err(format!(
                                "byte {}: unsupported escape `\\{}`",
                                self.pos, other as char
                            ))
                        }
                    });
                }
                Some(_) => {
                    let start = self.pos;
                    while let Some(b) = self.peek() {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| format!("byte {start}: non-utf8 string"))?,
                    );
                }
                None => return Err(format!("byte {}: unterminated string", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("byte {}: expected `,` or `]`", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("byte {}: expected `,` or `}}`", self.pos)),
            }
        }
    }
}

/// Escapes `s` for embedding in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_request_shapes() {
        let v = parse(r#"{"cmd":"synth","rate":4,"pin_budget":[48,64],"opts":{"x":true}}"#)
            .expect("parses");
        assert_eq!(v.get("cmd").and_then(Json::as_str), Some("synth"));
        assert_eq!(v.get("rate").and_then(Json::as_u64), Some(4));
        let budget: Vec<u64> = v
            .get("pin_budget")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .map(|j| j.as_u64().unwrap())
            .collect();
        assert_eq!(budget, vec![48, 64]);
        assert_eq!(v.get("opts").unwrap().get("x"), Some(&Json::Bool(true)));
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_escapes() {
        assert!(parse("{} extra").is_err());
        assert!(parse(r#""\q""#).is_err());
        assert!(parse("{\"a\":}").is_err());
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let original = "line1\nline2\t\"quoted\" \\ end";
        let doc = format!("{{\"s\":\"{}\"}}", escape(original));
        let v = parse(&doc).expect("escaped text parses");
        assert_eq!(v.get("s").and_then(Json::as_str), Some(original));
    }

    #[test]
    fn unicode_escapes_decode() {
        let v = parse("\"a\\u0041\\u00e9\"").expect("parses");
        assert_eq!(v.as_str(), Some("aA\u{e9}"));
    }
}
