//! `mcs-serve`: synthesis as a service.
//!
//! A zero-external-dependency daemon that turns the `multichip-hls`
//! flows into a long-running service: newline-delimited JSON over a
//! std `TcpListener` (or stdin/stdout in `--stdio` sandbox mode),
//! concurrent `synth`/`explore` jobs on a fixed worker pool with
//! admission control and cheap/expensive lane fairness, per-request
//! execution budgets clamped by server caps, `catch_unwind` quarantine
//! for panicking jobs, and — the headline — a digest-keyed
//! **cross-request warm-start cache** ([`cache::ServeCache`]): repeat
//! designs replay their response in microseconds, near-repeat designs
//! seed their solvers with probe memos and refutation certificates the
//! way `mcs-explore` sweep points already do.
//!
//! The wire protocol is specified in `docs/SERVE.md`. Every response
//! body is a deterministic function of the request and cache state;
//! wall-clock telemetry lives in the per-daemon `mcs-metrics` registry,
//! scraped via the `metrics` request (JSON or Prometheus text).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod json;
pub mod pool;
pub mod proto;
pub mod server;

pub use cache::{Lookup, Seeds, ServeCache, ServeEntry, ServeKey};
pub use proto::{ErrorKind, JobFlow, Request};
pub use server::{ServeConfig, Server};
