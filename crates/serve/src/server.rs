//! The daemon: request dispatch, the worker pool, and the serve loops.
//!
//! `handle_line` is the whole protocol — both the TCP loop and the
//! `--stdio` loop feed it one line at a time, so every behavior is
//! testable without a socket. Control requests (`ping`, `metrics`,
//! `cache`, `shutdown`) and exact cache hits answer inline on the
//! connection thread; `synth`/`explore` jobs go through the two-lane
//! pool ([`crate::pool`]) with admission control.
//!
//! Response bodies are deterministic functions of the request and the
//! cache state: no wall times, thread counts or node counters appear in
//! them, which is what makes responses byte-identical across
//! `--workers` values (the CI gate) and exact-hit replay sound. Timing
//! lives in the metrics registry, scraped via the `metrics` request.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use mcs_cdfg::{format, Cdfg, PartitionId};
use mcs_ctl::{Budget, BudgetSpec, Termination};
use mcs_explore::{FlowVariant, SweepOptions, SweepSpec};
use mcs_metrics::export::{to_json, to_prometheus};
use mcs_metrics::{MetricsHandle, Registry};
use mcs_obs::RecorderHandle;
use mcs_pinalloc::{PinAllocError, PinChecker};
use multichip_hls::explore::run_sweep;
use multichip_hls::flows::{
    connect_first_flow_seeded, simple_flow_with_checker, ConnectFirstOptions, FlowError,
    SynthesisResult,
};
use multichip_hls::netlist;
use multichip_hls::resynth;

use crate::cache::{
    effective_budgets, fnv1a, normalized_digest, Lookup, Seeds, ServeCache, ServeEntry, ServeKey,
};
use crate::json;
use crate::pool::{Lane, WorkerPool};
use crate::proto::{
    error_response, parse_request, with_provenance, ErrorKind, ExploreRequest, JobFlow, Request,
    ResynthRequest, SynthRequest,
};

/// Portfolio size pinned for every connect-first job, mirroring the
/// sweep driver's fixed portfolio: the search result must not depend on
/// how many daemon workers happen to run.
const SERVE_PORTFOLIO: usize = 4;

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker threads in the job pool.
    pub workers: usize,
    /// Maximum queued (not yet running) jobs before admission control
    /// rejects with `overloaded`.
    pub queue_cap: usize,
    /// Warm-start cache bound, in entries.
    pub cache_entries: usize,
    /// Server-side budget ceilings; every request's budget is
    /// intersected with these ([`BudgetSpec::intersect`]), so a client
    /// cannot ask for more runtime than the operator allows.
    pub caps: BudgetSpec,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            queue_cap: 64,
            cache_entries: 256,
            caps: BudgetSpec::default(),
        }
    }
}

/// The daemon state shared by every connection.
pub struct Server {
    pool: WorkerPool,
    cache: Arc<ServeCache>,
    registry: Arc<Registry>,
    metrics: MetricsHandle,
    caps: BudgetSpec,
    stop: Arc<AtomicBool>,
}

impl Server {
    /// Builds a daemon from `cfg` with its own metrics registry.
    pub fn new(cfg: ServeConfig) -> Server {
        let registry = Arc::new(Registry::new());
        let metrics = MetricsHandle::new(registry.clone());
        Server {
            pool: WorkerPool::new(cfg.workers, cfg.queue_cap, &metrics),
            cache: Arc::new(ServeCache::new(cfg.cache_entries)),
            registry,
            metrics,
            caps: cfg.caps,
            stop: Arc::new(AtomicBool::new(false)),
        }
    }

    /// The warm-start cache (exposed for tests and the bench harness).
    pub fn cache(&self) -> &ServeCache {
        &self.cache
    }

    /// The daemon's metrics registry.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// `true` once a `shutdown` request was accepted.
    pub fn stop_requested(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Handles one request line and returns the response line.
    pub fn handle_line(&self, line: &str) -> String {
        let started = self.registry.now_us();
        self.metrics.add("serve.requests", 1);
        let req = match parse_request(line) {
            Ok(r) => r,
            Err((kind, detail)) => {
                self.metrics.add("serve.errors", 1);
                return error_response(kind, &detail);
            }
        };
        let response = match req {
            Request::Ping => "{\"ok\":true,\"cmd\":\"ping\"}".to_string(),
            Request::Metrics(prometheus) => self.metrics_response(prometheus),
            Request::CacheStats => self.cache_response(),
            Request::Shutdown => {
                self.stop.store(true, Ordering::SeqCst);
                "{\"ok\":true,\"cmd\":\"shutdown\"}".to_string()
            }
            Request::Synth(req) => self.synth_response(req),
            Request::Explore(req) => self.explore_response(req),
            Request::Resynth(req) => self.resynth_response(req),
        };
        self.metrics
            .observe("serve.request_us", self.registry.now_us() - started);
        response
    }

    fn metrics_response(&self, prometheus: bool) -> String {
        self.metrics
            .gauge_set("serve.cache.entries", self.cache.len() as i64);
        self.metrics
            .gauge_set("serve.cache.evictions", self.cache.evictions() as i64);
        let snap = self.registry.snapshot();
        if prometheus {
            format!(
                "{{\"ok\":true,\"cmd\":\"metrics\",\"format\":\"prometheus\",\"registry\":\"{}\"}}",
                json::escape(&to_prometheus(&snap))
            )
        } else {
            format!(
                "{{\"ok\":true,\"cmd\":\"metrics\",\"format\":\"json\",\"registry\":{}}}",
                to_json(&snap)
            )
        }
    }

    fn cache_response(&self) -> String {
        format!(
            "{{\"ok\":true,\"cmd\":\"cache\",\"entries\":{},\"capacity\":{},\"evictions\":{}}}",
            self.cache.len(),
            self.cache.capacity(),
            self.cache.evictions()
        )
    }

    /// Parses the design text and applies a per-chip budget override.
    fn prepare_design(
        design: &str,
        pin_budget: Option<&[u32]>,
    ) -> Result<Cdfg, (ErrorKind, String)> {
        let parsed =
            format::parse(design).map_err(|e| (ErrorKind::BadRequest, format!("design: {e}")))?;
        let mut cdfg = parsed.cdfg().clone();
        if let Some(budget) = pin_budget {
            let chips = cdfg.partition_count().saturating_sub(1);
            if budget.len() != chips {
                return Err((
                    ErrorKind::BadRequest,
                    format!(
                        "pin_budget has {} entries but the design has {chips} chips",
                        budget.len()
                    ),
                ));
            }
            for (i, &pins) in budget.iter().enumerate() {
                let p = cdfg.partition_mut(PartitionId::new(i as u32 + 1));
                p.total_pins = pins;
                p.fixed_split = None;
            }
        }
        Ok(cdfg)
    }

    /// The per-request execution budget: the client's ask clamped by
    /// the server caps. Each job gets its own ledger (and with it its
    /// own deadline clock and cancel token).
    fn job_budget(&self, requested: &BudgetSpec) -> Option<Budget> {
        let effective = self.caps.intersect(requested);
        if effective.is_unlimited() {
            None
        } else {
            Some(Budget::new(effective))
        }
    }

    fn synth_response(&self, req: SynthRequest) -> String {
        self.metrics.add("serve.jobs.synth", 1);
        let cdfg = match Self::prepare_design(&req.design, req.pin_budget.as_deref()) {
            Ok(c) => c,
            Err((kind, detail)) => {
                self.metrics.add("serve.errors", 1);
                return error_response(kind, &detail);
            }
        };
        let digest = normalized_digest(&cdfg);
        let key = ServeKey::synth(digest, req.flow, req.rate, effective_budgets(&cdfg));
        let seeds = match self.cache.lookup(&key) {
            Lookup::Hit(body) => {
                self.metrics.add("serve.hits.exact", 1);
                return with_provenance(&body, "hit");
            }
            Lookup::Seeds(seeds) => {
                self.metrics.add("serve.hits.seed", 1);
                seeds
            }
            Lookup::Cold => {
                self.metrics.add("serve.misses", 1);
                Seeds::default()
            }
        };
        let provenance = if seeds.donors > 0 { "warm" } else { "cold" };
        let budget = self.job_budget(&req.budget);
        let cache = self.cache.clone();
        let metrics = self.metrics.clone();
        let job = Box::new(move || {
            let (core, termination, exports) =
                run_synth(&cdfg, digest, req.rate, req.flow, budget, &seeds, &metrics);
            if termination == Termination::Complete {
                let (probe_memo, certs) = exports;
                cache.insert(
                    key,
                    ServeEntry {
                        probe_memo,
                        certs,
                        body: core.clone(),
                    },
                );
            }
            with_provenance(&core, provenance)
        });
        self.run_job(Lane::Cheap, job)
    }

    fn explore_response(&self, req: ExploreRequest) -> String {
        self.metrics.add("serve.jobs.explore", 1);
        let cdfg = match Self::prepare_design(&req.design, None) {
            Ok(c) => c,
            Err((kind, detail)) => {
                self.metrics.add("serve.errors", 1);
                return error_response(kind, &detail);
            }
        };
        let digest = normalized_digest(&cdfg);
        let key = ServeKey::explore(digest, req.flow, &req.rates, &req.pin_budgets);
        match self.cache.lookup(&key) {
            Lookup::Hit(body) => {
                self.metrics.add("serve.hits.exact", 1);
                return with_provenance(&body, "hit");
            }
            Lookup::Seeds(_) | Lookup::Cold => self.metrics.add("serve.misses", 1),
        }
        let budget = self.job_budget(&req.budget);
        let cache = self.cache.clone();
        let metrics = self.metrics.clone();
        let job = Box::new(move || {
            let (core, termination) = match run_explore(&cdfg, digest, &req, budget, &metrics) {
                Ok(r) => r,
                // Lattice validation failed; the error line is final.
                Err(line) => return line,
            };
            if termination == Termination::Complete {
                cache.insert(
                    key,
                    ServeEntry {
                        probe_memo: Vec::new(),
                        certs: Vec::new(),
                        body: core.clone(),
                    },
                );
            }
            with_provenance(&core, "cold")
        });
        self.run_job(Lane::Expensive, job)
    }

    /// A resynth job: validate the `(design, prev, edit)` triple on the
    /// connection thread, then run the incremental ladder in the cheap
    /// lane. The cache key is `(parent digest, prev digest, delta
    /// digest)`, where the prev digest is taken over the *canonical*
    /// re-rendering of the saved result — two textually different but
    /// semantically identical `prev` bodies share an entry.
    fn resynth_response(&self, req: ResynthRequest) -> String {
        self.metrics.add("serve.jobs.resynth", 1);
        let bad = |metrics: &MetricsHandle, detail: String| {
            metrics.add("serve.errors", 1);
            error_response(ErrorKind::BadRequest, &detail)
        };
        let cdfg = match Self::prepare_design(&req.design, None) {
            Ok(c) => c,
            Err((kind, detail)) => {
                self.metrics.add("serve.errors", 1);
                return error_response(kind, &detail);
            }
        };
        let saved = match resynth::result_from_json(&req.prev) {
            Ok(s) => s,
            Err(e) => return bad(&self.metrics, format!("prev: {e}")),
        };
        let digest = mcs_cdfg::fuzz::design_digest(&cdfg);
        if saved.design_digest != digest {
            return bad(
                &self.metrics,
                format!(
                    "prev: saved result is for design digest {:#018x}, \
                     but the submitted design has digest {digest:#018x}",
                    saved.design_digest
                ),
            );
        }
        let delta = match mcs_cdfg::delta::DesignDelta::parse(&req.edit) {
            Ok(d) => d,
            Err(e) => return bad(&self.metrics, format!("edit: {e}")),
        };
        let prev_canon = resynth::result_to_json(digest, &saved.result);
        let key = ServeKey::resynth(digest, fnv1a(prev_canon.as_bytes()), delta.digest());
        match self.cache.lookup(&key) {
            Lookup::Hit(body) => {
                self.metrics.add("serve.hits.exact", 1);
                return with_provenance(&body, "hit");
            }
            Lookup::Seeds(_) | Lookup::Cold => self.metrics.add("serve.misses", 1),
        }
        let cache = self.cache.clone();
        let metrics = self.metrics.clone();
        let job = Box::new(move || {
            let core = run_resynth(&cdfg, digest, &saved.result, &delta, &metrics);
            // Resynthesis is budget-free and deterministic, so every
            // outcome (including a definitive failure) is cacheable.
            cache.insert(
                key,
                ServeEntry {
                    probe_memo: Vec::new(),
                    certs: Vec::new(),
                    body: core.clone(),
                },
            );
            with_provenance(&core, "cold")
        });
        self.run_job(Lane::Cheap, job)
    }

    fn run_job(&self, lane: Lane, job: crate::pool::Job) -> String {
        match self.pool.submit(lane, job) {
            Ok(rx) => rx.recv().unwrap_or_else(|_| {
                error_response(ErrorKind::ShuttingDown, "daemon stopped before the job ran")
            }),
            Err(line) => {
                self.metrics.add("serve.rejected", 1);
                line
            }
        }
    }

    /// Serves newline-delimited requests from `input` to `output` until
    /// EOF or a `shutdown` request — the `--stdio` sandbox mode, also
    /// the deterministic harness the integration tests script against.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures on either stream.
    pub fn serve_stdio<R: BufRead, W: Write>(&self, input: R, mut output: W) -> io::Result<()> {
        for line in input.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            writeln!(output, "{}", self.handle_line(line.trim()))?;
            output.flush()?;
            if self.stop_requested() {
                break;
            }
        }
        self.pool.shutdown();
        Ok(())
    }

    /// Accept loop: one thread per connection, shared dispatch. Returns
    /// after a `shutdown` request has been accepted and every
    /// connection thread has exited.
    ///
    /// # Errors
    ///
    /// Propagates listener configuration failures.
    pub fn serve_tcp(self: &Arc<Self>, listener: TcpListener) -> io::Result<()> {
        listener.set_nonblocking(true)?;
        let mut connections: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !self.stop_requested() {
            match listener.accept() {
                Ok((stream, _)) => {
                    let server = self.clone();
                    connections.push(std::thread::spawn(move || server.serve_connection(stream)));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(_) => {}
            }
            connections.retain(|h| !h.is_finished());
        }
        for h in connections {
            let _ = h.join();
        }
        self.pool.shutdown();
        Ok(())
    }

    fn serve_connection(&self, stream: TcpStream) {
        let _ = stream.set_nodelay(true);
        if stream
            .set_read_timeout(Some(Duration::from_millis(100)))
            .is_err()
        {
            return;
        }
        let Ok(read_half) = stream.try_clone() else {
            return;
        };
        let mut reader = BufReader::new(read_half);
        let mut writer = stream;
        let mut buf = String::new();
        loop {
            if self.stop_requested() {
                return;
            }
            match reader.read_line(&mut buf) {
                Ok(0) => return,
                Ok(_) => {
                    let line = buf.trim().to_string();
                    buf.clear();
                    if line.is_empty() {
                        continue;
                    }
                    let response = self.handle_line(&line);
                    if writeln!(writer, "{response}").is_err() || writer.flush().is_err() {
                        return;
                    }
                }
                // Timeout: poll the stop flag and keep waiting. A
                // partially read line stays in `buf` and completes on
                // the next pass.
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    continue;
                }
                Err(_) => return,
            }
        }
    }
}

fn flow_label(digest: u64) -> String {
    format!("{digest:016x}")
}

fn synth_core(
    digest: u64,
    rate: u32,
    flow: JobFlow,
    status: &str,
    termination: Termination,
    extra: &str,
) -> String {
    format!(
        "{{\"ok\":true,\"cmd\":\"synth\",\"design\":\"{}\",\"rate\":{rate},\"flow\":\"{}\",\"status\":\"{status}\",\"termination\":\"{}\"{extra}}}",
        flow_label(digest),
        flow.as_str(),
        termination.name()
    )
}

/// The feasible-result members, mirroring the sweep's point measures.
fn measure_extra(cdfg: &Cdfg, result: &SynthesisResult) -> String {
    let total_pins: u32 = result.pins_used.iter().skip(1).sum();
    let buses = result.interconnect.buses.len();
    let nl = netlist::build(cdfg, &result.schedule, &result.interconnect);
    let registers: u32 = nl
        .chips
        .values()
        .flat_map(|c| c.registers.iter())
        .map(|r| r.copies)
        .sum();
    format!(
        ",\"latency\":{},\"total_pins\":{total_pins},\"buses\":{buses},\"registers\":{registers},\"reassigned\":{}",
        result.pipe_length, result.reassigned
    )
}

fn detail_extra(detail: &str) -> String {
    format!(",\"detail\":\"{}\"", json::escape(detail))
}

/// Maps a definitive flow failure onto the response status taxonomy —
/// the same split the sweep runner makes: only the gate's exact
/// `InfeasibleFromTheStart` is an infeasibility proof; everything else
/// is an incomplete search or a malformed request.
fn fail_status(err: &FlowError) -> &'static str {
    match err {
        FlowError::PinAllocation(PinAllocError::InfeasibleFromTheStart) => "pin-infeasible",
        FlowError::NotSimple(_) | FlowError::PinAllocation(_) => "error",
        _ => "search-failed",
    }
}

type SynthExports = (Vec<((usize, i64), bool)>, Vec<mcs_connect::RefutationCert>);

/// Runs one synth job. Returns the canonical response core, how the run
/// terminated (only [`Termination::Complete`] results are cacheable),
/// and the warm-start exports to publish.
fn run_synth(
    cdfg: &Cdfg,
    digest: u64,
    rate: u32,
    flow: JobFlow,
    budget: Option<Budget>,
    seeds: &Seeds,
    metrics: &MetricsHandle,
) -> (String, Termination, SynthExports) {
    let recorder = RecorderHandle::default();
    let complete = Termination::Complete;
    let none: SynthExports = (Vec::new(), Vec::new());
    // The exact pin-feasibility gate fronts every flow, exactly as in
    // the sweep runner: its construction-time rejection is the one
    // budget-sound infeasibility proof. The budget attaches *before*
    // the gate's construction-time solve — on adversarial designs that
    // solve alone can exceed any deadline, and a daemon must be able to
    // interrupt it.
    let gate = match &budget {
        Some(b) => PinChecker::new_budgeted(cdfg, rate, b.clone()),
        None => PinChecker::new(cdfg, rate),
    };
    let mut checker = match gate {
        Ok(c) => c,
        Err(PinAllocError::Interrupted(t)) => {
            let core = synth_core(
                digest,
                rate,
                flow,
                "interrupted",
                t,
                ",\"best_depth\":0,\"best_buses\":0",
            );
            return (core, t, none);
        }
        Err(e @ PinAllocError::InfeasibleFromTheStart) => {
            let core = synth_core(
                digest,
                rate,
                flow,
                "pin-infeasible",
                complete,
                &detail_extra(&e.to_string()),
            );
            return (core, complete, none);
        }
        Err(e) => {
            let core = synth_core(
                digest,
                rate,
                flow,
                "error",
                complete,
                &detail_extra(&e.to_string()),
            );
            return (core, complete, none);
        }
    };
    match flow {
        JobFlow::Simple => {
            checker.seed_initial_memo(&seeds.memo);
            if let Some(b) = &budget {
                checker.set_budget(b.clone());
            }
            match simple_flow_with_checker(cdfg, rate, checker, &recorder, metrics) {
                Ok((result, probe)) => {
                    let core = synth_core(
                        digest,
                        rate,
                        flow,
                        "feasible",
                        complete,
                        &measure_extra(cdfg, &result),
                    );
                    (core, complete, (probe.initial_memo, Vec::new()))
                }
                Err(FlowError::Interrupted(t)) => {
                    let core = synth_core(
                        digest,
                        rate,
                        flow,
                        "interrupted",
                        t,
                        ",\"best_depth\":0,\"best_buses\":0",
                    );
                    (core, t, none)
                }
                Err(e) => {
                    let core = synth_core(
                        digest,
                        rate,
                        flow,
                        fail_status(&e),
                        complete,
                        &detail_extra(&e.to_string()),
                    );
                    (core, complete, none)
                }
            }
        }
        JobFlow::Connect => {
            let mut opts = ConnectFirstOptions::new(rate);
            opts.workers = 1;
            opts.portfolio = Some(SERVE_PORTFOLIO);
            opts.budget = budget.clone();
            opts.metrics = metrics.clone();
            let (res, report) = connect_first_flow_seeded(cdfg, &opts, &seeds.certs, &recorder);
            // Certificates export even from failed runs — failed
            // searches produce the most valuable proofs.
            let exports = (Vec::new(), report.learned);
            match res {
                Ok(result) => {
                    let core = synth_core(
                        digest,
                        rate,
                        flow,
                        "feasible",
                        complete,
                        &measure_extra(cdfg, &result),
                    );
                    (core, complete, exports)
                }
                Err(FlowError::Interrupted(t)) => {
                    let extra = format!(
                        ",\"best_depth\":{},\"best_buses\":{}",
                        report.stats.deepest, report.stats.deepest_buses
                    );
                    let core = synth_core(digest, rate, flow, "interrupted", t, &extra);
                    (core, t, exports)
                }
                Err(e) => {
                    let core = synth_core(
                        digest,
                        rate,
                        flow,
                        fail_status(&e),
                        complete,
                        &detail_extra(&e.to_string()),
                    );
                    (core, complete, exports)
                }
            }
        }
    }
}

/// Runs one resynth job: the incremental ladder, with the path taken,
/// the dirty-region size and the reuse telemetry in the response body.
/// All of those are deterministic functions of the inputs, so the body
/// stays exact-replay-sound.
fn run_resynth(
    cdfg: &Cdfg,
    digest: u64,
    prev: &SynthesisResult,
    delta: &mcs_cdfg::delta::DesignDelta,
    metrics: &MetricsHandle,
) -> String {
    let recorder = RecorderHandle::default();
    let head = format!(
        "{{\"ok\":true,\"cmd\":\"resynth\",\"design\":\"{}\",\"delta\":\"{:016x}\"",
        flow_label(digest),
        delta.digest()
    );
    match resynth::resynth_flow_traced(cdfg, prev, delta, &recorder, metrics) {
        Ok(out) => {
            let total_pins: u32 = out.result.pins_used.iter().skip(1).sum();
            format!(
                "{head},\"status\":\"feasible\",\"path\":\"{}\",\"rate\":{},\"latency\":{},\
                 \"total_pins\":{total_pins},\"buses\":{},\"dirty_ops\":{},\
                 \"dirty_transfers\":{},\"reused\":{},\"fresh\":{},\
                 \"replayed_commits\":{},\"rollbacks\":{}}}",
                out.path,
                out.result.schedule.rate,
                out.result.pipe_length,
                out.result.interconnect.buses.len(),
                out.dirty.ops.len(),
                out.dirty.transfers.len(),
                out.stats.reused_assignments,
                out.stats.fresh_assignments,
                out.stats.replayed_commits,
                out.stats.rollbacks,
            )
        }
        Err(e) => format!(
            "{head},\"status\":\"error\"{}}}",
            detail_extra(&e.to_string())
        ),
    }
}

/// Runs one explore job: a single-worker sweep (request concurrency
/// comes from the pool, point determinism from `jobs: 1`).
///
/// # Errors
///
/// The `bad-request` response line, when the lattice is invalid.
fn run_explore(
    cdfg: &Cdfg,
    digest: u64,
    req: &ExploreRequest,
    budget: Option<Budget>,
    metrics: &MetricsHandle,
) -> Result<(String, Termination), String> {
    let recorder = RecorderHandle::default();
    let spec = SweepSpec {
        design: flow_label(digest),
        flow: match req.flow {
            JobFlow::Simple => FlowVariant::Simple,
            JobFlow::Connect => FlowVariant::ConnectFirst,
        },
        rates: req.rates.clone(),
        budgets: req.pin_budgets.clone(),
    };
    let opts = SweepOptions {
        jobs: 1,
        prune: true,
        budget,
        recorder: recorder.clone(),
        metrics: metrics.clone(),
    };
    match run_sweep(cdfg, &spec, &opts, &recorder) {
        Ok(report) => {
            let termination = report.stats.termination;
            let core = format!(
                "{{\"ok\":true,\"cmd\":\"explore\",\"design\":\"{}\",\"flow\":\"{}\",\"termination\":\"{}\",\"points\":{},\"feasible\":{},\"frontier\":{},\"report\":{}}}",
                flow_label(digest),
                req.flow.as_str(),
                termination.name(),
                report.stats.points,
                report.stats.feasible,
                report.frontier.len(),
                report.to_json()
            );
            Ok((core, termination))
        }
        Err(e) => Err(error_response(ErrorKind::BadRequest, &e.to_string())),
    }
}
