//! Wire protocol: newline-delimited JSON requests and responses.
//!
//! One request object per line, one response object per line, in order.
//! The full schema (every request and response member, plus the error
//! taxonomy and how it maps onto `docs/ERRORS.md`) is specified in
//! `docs/SERVE.md`; this module is the single point where the wire
//! shapes are parsed and rendered.

use mcs_ctl::BudgetSpec;

use crate::json::{self, Json};

/// Which synthesis flow a job runs. The daemon exposes the two
/// budget-constrained flows; the schedule-first flow reports pins
/// instead of constraining them and stays a CLI-only experiment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobFlow {
    /// Chapter 3 simple partitioning behind the pin-probe gate.
    Simple,
    /// Chapter 4 connect-first search (the default).
    Connect,
}

impl JobFlow {
    /// Stable lower-case wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            JobFlow::Simple => "simple",
            JobFlow::Connect => "connect",
        }
    }

    /// Inverse of [`JobFlow::as_str`] (also accepts the sweep spelling
    /// `connect-first`).
    pub fn parse(s: &str) -> Option<JobFlow> {
        match s {
            "simple" => Some(JobFlow::Simple),
            "connect" | "connect-first" => Some(JobFlow::Connect),
            _ => None,
        }
    }
}

/// A `synth` job: one design at one rate through one flow.
#[derive(Clone, Debug)]
pub struct SynthRequest {
    /// Design source in the `.mcs` text format.
    pub design: String,
    /// Initiation rate `L`.
    pub rate: u32,
    /// Flow to run.
    pub flow: JobFlow,
    /// Per-chip pin-budget override (one entry per chip); `None` keeps
    /// the budgets written in the design text.
    pub pin_budget: Option<Vec<u32>>,
    /// Per-request execution budget; intersected with the server caps.
    pub budget: BudgetSpec,
}

/// An `explore` job: a design-space sweep over a rate × budget lattice.
#[derive(Clone, Debug)]
pub struct ExploreRequest {
    /// Design source in the `.mcs` text format.
    pub design: String,
    /// Initiation rates of the lattice.
    pub rates: Vec<u32>,
    /// Per-chip pin-budget vectors of the lattice.
    pub pin_budgets: Vec<Vec<u32>>,
    /// Flow run at every point.
    pub flow: JobFlow,
    /// Per-request execution budget; intersected with the server caps.
    pub budget: BudgetSpec,
}

/// A `resynth` job: incremental resynthesis of an edited design from a
/// previously saved result (the `mcs-hls synth --out-result` format).
#[derive(Clone, Debug)]
pub struct ResynthRequest {
    /// Design source in the `.mcs` text format — the *pre-edit* design
    /// the saved result was synthesized from.
    pub design: String,
    /// The saved-result JSON for `design` (digest-checked).
    pub prev: String,
    /// Design-delta spec, e.g. `width:a1=8; rate:7`
    /// ([`mcs_cdfg::delta::DesignDelta::parse`]).
    pub edit: String,
}

/// One parsed request line.
#[derive(Clone, Debug)]
pub enum Request {
    /// Liveness check, answered inline.
    Ping,
    /// Registry snapshot; `true` requests Prometheus text exposition.
    Metrics(bool),
    /// Warm-start cache statistics, answered inline.
    CacheStats,
    /// Graceful shutdown: drain workers, then stop accepting.
    Shutdown,
    /// A synthesis job (pool-scheduled, cheap lane).
    Synth(SynthRequest),
    /// A sweep job (pool-scheduled, expensive lane).
    Explore(ExploreRequest),
    /// An incremental resynthesis job (pool-scheduled, cheap lane).
    Resynth(ResynthRequest),
}

/// Protocol-level error kinds (`docs/SERVE.md` maps these onto the
/// repo-wide taxonomy in `docs/ERRORS.md`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorKind {
    /// The line is not a well-formed request object.
    Parse,
    /// The request is well-formed but semantically invalid.
    BadRequest,
    /// Admission control rejected the job: the queue is full.
    Overloaded,
    /// The daemon is shutting down and no longer accepts jobs.
    ShuttingDown,
    /// The job panicked and was quarantined; the daemon survives.
    WorkerPanicked,
}

impl ErrorKind {
    /// Stable kebab-case wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::Parse => "parse",
            ErrorKind::BadRequest => "bad-request",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::ShuttingDown => "shutting-down",
            ErrorKind::WorkerPanicked => "worker-panicked",
        }
    }
}

/// Renders the error response line for `kind` with a human detail.
pub fn error_response(kind: ErrorKind, detail: &str) -> String {
    format!(
        "{{\"ok\":false,\"error\":{{\"kind\":\"{}\",\"detail\":\"{}\"}}}}",
        kind.as_str(),
        json::escape(detail)
    )
}

fn field_u64(obj: &Json, key: &str) -> Result<Option<u64>, String> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("`{key}` must be a non-negative integer")),
    }
}

fn field_str<'j>(obj: &'j Json, key: &str) -> Result<&'j str, String> {
    obj.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("`{key}` must be a string"))
}

fn field_u32_vec(value: &Json, what: &str) -> Result<Vec<u32>, String> {
    value
        .as_arr()
        .ok_or_else(|| format!("{what} must be an array of integers"))?
        .iter()
        .map(|j| {
            j.as_u64()
                .and_then(|v| u32::try_from(v).ok())
                .ok_or_else(|| format!("{what} entries must be u32 integers"))
        })
        .collect()
}

fn budget_spec(obj: &Json) -> Result<BudgetSpec, String> {
    let Some(b) = obj.get("budget") else {
        return Ok(BudgetSpec::default());
    };
    if !matches!(b, Json::Obj(_)) {
        return Err("`budget` must be an object".into());
    }
    Ok(BudgetSpec {
        deadline_ms: field_u64(b, "deadline_ms")?,
        max_pivots: field_u64(b, "max_pivots")?,
        max_nodes: field_u64(b, "max_nodes")?,
        max_probes: field_u64(b, "max_probes")?,
    })
}

fn job_flow(obj: &Json) -> Result<JobFlow, String> {
    match obj.get("flow") {
        None => Ok(JobFlow::Connect),
        Some(v) => {
            let s = v.as_str().ok_or("`flow` must be a string")?;
            JobFlow::parse(s).ok_or_else(|| format!("unknown flow `{s}`"))
        }
    }
}

/// Parses one request line.
///
/// # Errors
///
/// [`ErrorKind::Parse`] for malformed JSON, [`ErrorKind::BadRequest`]
/// for a well-formed object that is not a valid request.
pub fn parse_request(line: &str) -> Result<Request, (ErrorKind, String)> {
    let obj = json::parse(line).map_err(|e| (ErrorKind::Parse, e))?;
    let bad = |msg: String| (ErrorKind::BadRequest, msg);
    let cmd = field_str(&obj, "cmd").map_err(bad)?;
    match cmd {
        "ping" => Ok(Request::Ping),
        "metrics" => {
            let prometheus = match obj.get("format").and_then(Json::as_str) {
                None | Some("json") => false,
                Some("prometheus") | Some("prom") => true,
                Some(other) => return Err(bad(format!("unknown metrics format `{other}`"))),
            };
            Ok(Request::Metrics(prometheus))
        }
        "cache" => Ok(Request::CacheStats),
        "shutdown" => Ok(Request::Shutdown),
        "synth" => {
            let rate = field_u64(&obj, "rate")
                .map_err(bad)?
                .ok_or_else(|| bad("`rate` is required".into()))?;
            let rate = u32::try_from(rate)
                .ok()
                .filter(|&r| r > 0)
                .ok_or_else(|| bad("`rate` must be a positive u32".into()))?;
            let pin_budget = match obj.get("pin_budget") {
                None | Some(Json::Null) => None,
                Some(v) => Some(field_u32_vec(v, "`pin_budget`").map_err(bad)?),
            };
            Ok(Request::Synth(SynthRequest {
                design: field_str(&obj, "design").map_err(bad)?.to_string(),
                rate,
                flow: job_flow(&obj).map_err(bad)?,
                pin_budget,
                budget: budget_spec(&obj).map_err(bad)?,
            }))
        }
        "explore" => {
            let rates = field_u32_vec(
                obj.get("rates")
                    .ok_or_else(|| bad("`rates` is required".into()))?,
                "`rates`",
            )
            .map_err(bad)?;
            let budgets = obj
                .get("pin_budgets")
                .and_then(Json::as_arr)
                .ok_or_else(|| bad("`pin_budgets` must be an array of arrays".into()))?
                .iter()
                .map(|v| field_u32_vec(v, "`pin_budgets`"))
                .collect::<Result<Vec<_>, _>>()
                .map_err(bad)?;
            Ok(Request::Explore(ExploreRequest {
                design: field_str(&obj, "design").map_err(bad)?.to_string(),
                rates,
                pin_budgets: budgets,
                flow: job_flow(&obj).map_err(bad)?,
                budget: budget_spec(&obj).map_err(bad)?,
            }))
        }
        "resynth" => Ok(Request::Resynth(ResynthRequest {
            design: field_str(&obj, "design").map_err(bad)?.to_string(),
            prev: field_str(&obj, "prev").map_err(bad)?.to_string(),
            edit: field_str(&obj, "edit").map_err(bad)?.to_string(),
        })),
        other => Err(bad(format!("unknown cmd `{other}`"))),
    }
}

/// Appends the cache-provenance member to a stored response core.
/// Response cores are rendered without the `cache` member so one cached
/// body can be replayed under any provenance (`cold`, `warm`, `hit`).
pub fn with_provenance(core: &str, provenance: &str) -> String {
    debug_assert!(core.ends_with('}'));
    format!("{},\"cache\":\"{provenance}\"}}", &core[..core.len() - 1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_synth_request() {
        let line = r#"{"cmd":"synth","design":"chip a 8","rate":4,"flow":"simple",
                       "pin_budget":[48,64],"budget":{"deadline_ms":250,"max_nodes":1000}}"#
            .replace('\n', " ");
        let Request::Synth(req) = parse_request(&line).expect("parses") else {
            panic!("not a synth request");
        };
        assert_eq!(req.design, "chip a 8");
        assert_eq!(req.rate, 4);
        assert_eq!(req.flow, JobFlow::Simple);
        assert_eq!(req.pin_budget, Some(vec![48, 64]));
        assert_eq!(req.budget.deadline_ms, Some(250));
        assert_eq!(req.budget.max_nodes, Some(1000));
        assert_eq!(req.budget.max_pivots, None);
    }

    #[test]
    fn defaults_are_connect_flow_and_unlimited_budget() {
        let Request::Synth(req) =
            parse_request(r#"{"cmd":"synth","design":"x","rate":2}"#).expect("parses")
        else {
            panic!("not a synth request");
        };
        assert_eq!(req.flow, JobFlow::Connect);
        assert!(req.budget.is_unlimited());
        assert_eq!(req.pin_budget, None);
    }

    #[test]
    fn parses_an_explore_request() {
        let line =
            r#"{"cmd":"explore","design":"x","rates":[4,5],"pin_budgets":[[48,64],[32,32]]}"#;
        let Request::Explore(req) = parse_request(line).expect("parses") else {
            panic!("not an explore request");
        };
        assert_eq!(req.rates, vec![4, 5]);
        assert_eq!(req.pin_budgets, vec![vec![48, 64], vec![32, 32]]);
        assert_eq!(req.flow, JobFlow::Connect);
    }

    #[test]
    fn parses_a_resynth_request() {
        let line = r#"{"cmd":"resynth","design":"x","prev":"{\"design\":1}","edit":"rate:7"}"#;
        let Request::Resynth(req) = parse_request(line).expect("parses") else {
            panic!("not a resynth request");
        };
        assert_eq!(req.design, "x");
        assert_eq!(req.prev, "{\"design\":1}");
        assert_eq!(req.edit, "rate:7");
        // All three members are required.
        assert_eq!(
            parse_request(r#"{"cmd":"resynth","design":"x","edit":"rate:7"}"#)
                .unwrap_err()
                .0,
            ErrorKind::BadRequest
        );
    }

    #[test]
    fn rejects_malformed_and_invalid_lines() {
        assert_eq!(parse_request("not json").unwrap_err().0, ErrorKind::Parse);
        assert_eq!(
            parse_request(r#"{"cmd":"warp"}"#).unwrap_err().0,
            ErrorKind::BadRequest
        );
        assert_eq!(
            parse_request(r#"{"cmd":"synth","design":"x"}"#)
                .unwrap_err()
                .0,
            ErrorKind::BadRequest
        );
        assert_eq!(
            parse_request(r#"{"cmd":"synth","design":"x","rate":0}"#)
                .unwrap_err()
                .0,
            ErrorKind::BadRequest
        );
    }

    #[test]
    fn provenance_is_appended_inside_the_object() {
        assert_eq!(
            with_provenance(r#"{"ok":true,"cmd":"synth"}"#, "hit"),
            r#"{"ok":true,"cmd":"synth","cache":"hit"}"#
        );
    }

    #[test]
    fn error_responses_escape_details() {
        let line = error_response(ErrorKind::Parse, "bad \"quote\"");
        assert_eq!(
            line,
            r#"{"ok":false,"error":{"kind":"parse","detail":"bad \"quote\""}}"#
        );
    }
}
