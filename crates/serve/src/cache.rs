//! The cross-request warm-start tier: a digest-keyed view over
//! [`mcs_explore::WarmStartCache`].
//!
//! After every job that runs to a *complete* termination (success or a
//! definitive failure — failed searches produce the most valuable
//! refutation certificates), the daemon publishes the job's canonical
//! response body plus its warm-start exports (the `PinChecker`
//! epoch-0 probe memo and the connection search's learned
//! [`RefutationCert`]s) under a key derived from the design digest, the
//! rate and the effective pin-budget vector. Lookups then tier:
//!
//! 1. **Exact hit** — same key: the stored response body is replayed
//!    inline on the connection thread, no pool dispatch, microseconds.
//! 2. **Near-repeat** — same design/flow/rate, a donor budget vector
//!    that componentwise dominates the request's: the donor's `false`
//!    probe verdicts and certificates seed the new run, exactly the
//!    transfer rule `mcs-explore` applies between sweep points.
//! 3. **Cold** — no donor; the job runs from scratch.
//!
//! Interrupted runs never publish: a deadline trip is not evidence
//! about the design, and replaying it would bake scheduling noise into
//! a deterministic surface.
//!
//! The digest in the key is *budget-normalized* (chip pin budgets are
//! zeroed before hashing), so the same structure under different
//! budgets shares a digest and near-repeat seeding can find it.

use mcs_cdfg::fuzz::design_digest;
use mcs_cdfg::{Cdfg, PartitionId};
use mcs_connect::RefutationCert;
use mcs_explore::WarmStartCache;

use crate::proto::JobFlow;

/// Cache key: budget-normalized design digest, flow, rate, effective
/// pin-budget vector. Explore jobs use [`ServeKey::explore`], which
/// folds the whole lattice into the budget vector and a reserved flow
/// code so sweep entries are exact-replay-only (never donors).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct ServeKey {
    /// [`normalized_digest`] of the design.
    pub digest: u64,
    /// Flow code: 0 simple, 1 connect, 2/3 the explore variants,
    /// 4 resynth.
    pub flow: u8,
    /// Initiation rate (0 for explore keys).
    pub rate: u32,
    /// Effective per-chip budgets (synth) or encoded lattice (explore).
    pub budgets: Vec<u32>,
}

impl ServeKey {
    /// Key for a synth job.
    pub fn synth(digest: u64, flow: JobFlow, rate: u32, budgets: Vec<u32>) -> ServeKey {
        ServeKey {
            digest,
            flow: match flow {
                JobFlow::Simple => 0,
                JobFlow::Connect => 1,
            },
            rate,
            budgets,
        }
    }

    /// Key for a resynth job: `(parent digest, previous result, delta)`.
    /// The parent design digest is the primary digest; the canonical
    /// previous-result digest and the delta digest are folded into the
    /// budget vector. Flow code 4 keeps resynth entries
    /// exact-replay-only — like explore keys, they never donate seeds.
    pub fn resynth(digest: u64, prev_digest: u64, delta_digest: u64) -> ServeKey {
        ServeKey {
            digest,
            flow: 4,
            rate: 0,
            budgets: vec![
                (prev_digest >> 32) as u32,
                prev_digest as u32,
                (delta_digest >> 32) as u32,
                delta_digest as u32,
            ],
        }
    }

    /// Key for an explore job: the lattice is flattened into the budget
    /// vector (`rates.len`, rates, then each budget vector) so equality
    /// means the identical sweep.
    pub fn explore(digest: u64, flow: JobFlow, rates: &[u32], budgets: &[Vec<u32>]) -> ServeKey {
        let mut encoded = Vec::with_capacity(1 + rates.len());
        encoded.push(rates.len() as u32);
        encoded.extend_from_slice(rates);
        for b in budgets {
            encoded.push(b.len() as u32);
            encoded.extend_from_slice(b);
        }
        ServeKey {
            digest,
            flow: match flow {
                JobFlow::Simple => 2,
                JobFlow::Connect => 3,
            },
            rate: 0,
            budgets: encoded,
        }
    }
}

/// What one completed job publishes.
#[derive(Clone, Debug, Default)]
pub struct ServeEntry {
    /// Epoch-0 probe verdicts ([`mcs_pinalloc::PinChecker::initial_probe_memo`]);
    /// only `false` entries transfer to dominated budgets.
    pub probe_memo: Vec<((usize, i64), bool)>,
    /// Refutation certificates learned by the connection search.
    pub certs: Vec<RefutationCert>,
    /// Canonical response body (no `cache` member) for exact replay.
    pub body: String,
}

/// Warm-start seeds assembled from donor entries.
#[derive(Clone, Debug, Default)]
pub struct Seeds {
    /// Probe verdicts to adopt (already filtered to `false`).
    pub memo: Vec<((usize, i64), bool)>,
    /// Certificates to adopt.
    pub certs: Vec<RefutationCert>,
    /// How many donor entries contributed.
    pub donors: usize,
}

/// Outcome of a cache lookup, in decreasing warmth.
#[derive(Clone, Debug)]
pub enum Lookup {
    /// Exact key match: replay this stored response body.
    Hit(String),
    /// Same design/flow/rate under a dominating budget: seed the run.
    Seeds(Seeds),
    /// Nothing applicable.
    Cold,
}

/// The server-wide cache: a size-bounded [`WarmStartCache`] keyed by
/// [`ServeKey`]. Eviction is LRU over publications (deterministic; see
/// the `mcs-explore` cache docs), with the eviction count surfaced for
/// the `cache` request and the metrics registry.
pub struct ServeCache {
    inner: WarmStartCache<ServeKey, ServeEntry>,
}

impl ServeCache {
    /// A cache bounded to `capacity` entries.
    pub fn new(capacity: usize) -> ServeCache {
        ServeCache {
            inner: WarmStartCache::with_capacity(capacity),
        }
    }

    /// Publishes a completed job's entry.
    pub fn insert(&self, key: ServeKey, entry: ServeEntry) {
        self.inner.insert(key, entry);
    }

    /// Tiered lookup: exact hit, then donor seeding, then cold.
    pub fn lookup(&self, key: &ServeKey) -> Lookup {
        if let Some(entry) = self.inner.get(key) {
            return Lookup::Hit(entry.body.clone());
        }
        // Explore keys never seed: their budget vector is an encoded
        // lattice, not a per-chip vector, so dominance is meaningless.
        if key.flow > 1 {
            return Lookup::Cold;
        }
        let mut seeds = Seeds::default();
        for donor in self.inner.keys() {
            let applicable = donor.digest == key.digest
                && donor.flow == key.flow
                && donor.rate == key.rate
                && donor.budgets.len() == key.budgets.len()
                && donor
                    .budgets
                    .iter()
                    .zip(&key.budgets)
                    .all(|(&have, &need)| have >= need)
                && donor.budgets != key.budgets;
            if !applicable {
                continue;
            }
            if let Some(entry) = self.inner.get(&donor) {
                seeds
                    .memo
                    .extend(entry.probe_memo.iter().filter(|&&(_, v)| !v));
                seeds.certs.extend(entry.certs.iter().cloned());
                seeds.donors += 1;
            }
        }
        if seeds.donors == 0 {
            Lookup::Cold
        } else {
            Lookup::Seeds(seeds)
        }
    }

    /// Resident entries.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// `true` when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Entries evicted by the size bound since start.
    pub fn evictions(&self) -> u64 {
        self.inner.evictions()
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.inner.capacity().unwrap_or(usize::MAX)
    }
}

/// FNV-1a over `bytes` — digests the canonical previous-result body for
/// the resynth cache key (the same hash family
/// [`mcs_cdfg::delta::DesignDelta::digest`] uses for the delta half).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Digest of `cdfg` with every chip's pin budget normalized out (budget
/// 0, no fixed split), so near-repeat requests — same structure,
/// different budgets — share a digest. The environment partition is
/// untouched. The per-chip budget lives in [`ServeKey::budgets`].
pub fn normalized_digest(cdfg: &Cdfg) -> u64 {
    let mut normalized = cdfg.clone();
    for i in 1..normalized.partition_count() {
        let p = normalized.partition_mut(PartitionId::new(i as u32));
        p.total_pins = 0;
        p.fixed_split = None;
    }
    design_digest(&normalized)
}

/// The effective per-chip budget vector of a design (what the key
/// carries and what donor dominance is judged over).
pub fn effective_budgets(cdfg: &Cdfg) -> Vec<u32> {
    (1..cdfg.partition_count())
        .map(|i| cdfg.partition(PartitionId::new(i as u32)).total_pins)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(body: &str, memo: Vec<((usize, i64), bool)>) -> ServeEntry {
        ServeEntry {
            probe_memo: memo,
            certs: Vec::new(),
            body: body.to_string(),
        }
    }

    #[test]
    fn exact_hits_replay_the_stored_body() {
        let cache = ServeCache::new(8);
        let key = ServeKey::synth(7, JobFlow::Connect, 4, vec![48, 64]);
        cache.insert(key.clone(), entry("{\"ok\":true}", vec![]));
        match cache.lookup(&key) {
            Lookup::Hit(body) => assert_eq!(body, "{\"ok\":true}"),
            other => panic!("expected a hit, got {other:?}"),
        }
    }

    #[test]
    fn dominating_budgets_seed_false_verdicts_only() {
        let cache = ServeCache::new(8);
        let donor = ServeKey::synth(7, JobFlow::Simple, 4, vec![64, 64]);
        cache.insert(
            donor,
            entry("{}", vec![((0, 1), true), ((0, 2), false), ((1, 0), false)]),
        );
        let poorer = ServeKey::synth(7, JobFlow::Simple, 4, vec![48, 64]);
        match cache.lookup(&poorer) {
            Lookup::Seeds(seeds) => {
                assert_eq!(seeds.donors, 1);
                assert_eq!(seeds.memo, vec![((0, 2), false), ((1, 0), false)]);
            }
            other => panic!("expected seeds, got {other:?}"),
        }
    }

    #[test]
    fn wrong_rate_flow_digest_or_poorer_donor_stays_cold() {
        let cache = ServeCache::new(8);
        cache.insert(
            ServeKey::synth(7, JobFlow::Simple, 4, vec![32, 32]),
            entry("{}", vec![((0, 0), false)]),
        );
        // Donor's budgets do not dominate the request's.
        let richer = ServeKey::synth(7, JobFlow::Simple, 4, vec![48, 64]);
        assert!(matches!(cache.lookup(&richer), Lookup::Cold));
        // Same budgets, different rate / flow / digest.
        let poorer = |digest, flow, rate| ServeKey::synth(digest, flow, rate, vec![16, 16]);
        assert!(matches!(
            cache.lookup(&poorer(7, JobFlow::Simple, 5)),
            Lookup::Cold
        ));
        assert!(matches!(
            cache.lookup(&poorer(7, JobFlow::Connect, 4)),
            Lookup::Cold
        ));
        assert!(matches!(
            cache.lookup(&poorer(8, JobFlow::Simple, 4)),
            Lookup::Cold
        ));
    }

    #[test]
    fn explore_keys_replay_but_never_seed() {
        let cache = ServeCache::new(8);
        let key = ServeKey::explore(7, JobFlow::Connect, &[4, 5], &[vec![64, 64]]);
        cache.insert(key.clone(), entry("{\"sweep\":1}", vec![((0, 0), false)]));
        assert!(matches!(cache.lookup(&key), Lookup::Hit(_)));
        let smaller = ServeKey::explore(7, JobFlow::Connect, &[4], &[vec![32, 32]]);
        assert!(matches!(cache.lookup(&smaller), Lookup::Cold));
    }

    #[test]
    fn resynth_keys_replay_but_never_seed() {
        let cache = ServeCache::new(8);
        let key = ServeKey::resynth(7, fnv1a(b"{\"design\":7}"), 99);
        cache.insert(key.clone(), entry("{\"resynth\":1}", vec![((0, 0), false)]));
        assert!(matches!(cache.lookup(&key), Lookup::Hit(_)));
        // A different delta against the same parent and prev is cold.
        let other = ServeKey::resynth(7, fnv1a(b"{\"design\":7}"), 100);
        assert!(matches!(cache.lookup(&other), Lookup::Cold));
    }

    #[test]
    fn the_bound_and_eviction_counter_surface() {
        let cache = ServeCache::new(2);
        for i in 0..5u32 {
            cache.insert(
                ServeKey::synth(u64::from(i), JobFlow::Simple, 4, vec![i]),
                entry("{}", vec![]),
            );
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 3);
        assert_eq!(cache.capacity(), 2);
    }
}
