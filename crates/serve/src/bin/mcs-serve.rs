//! The `mcs-serve` daemon binary.
//!
//! ```text
//! mcs-serve [--listen ADDR] [--workers N] [--queue N] [--cache-entries N]
//!           [--max-deadline-ms N] [--max-nodes N] [--stdio]
//! ```
//!
//! TCP mode binds `--listen` (default `127.0.0.1:7411`) and serves
//! until a `shutdown` request. `--stdio` serves stdin→stdout instead —
//! the sandboxed mode CI and the integration tests use. See
//! `docs/SERVE.md` for the protocol.

use std::net::TcpListener;
use std::process::ExitCode;
use std::sync::Arc;

use mcs_serve::{ServeConfig, Server};

fn usage() -> &'static str {
    "usage: mcs-serve [--listen ADDR] [--workers N] [--queue N] \
     [--cache-entries N] [--max-deadline-ms N] [--max-nodes N] [--stdio]"
}

fn num_value(args: &mut impl Iterator<Item = String>, name: &str) -> Result<u64, String> {
    args.next()
        .ok_or_else(|| format!("{name} needs a value"))?
        .parse()
        .map_err(|e| format!("{name}: {e}"))
}

fn main() -> ExitCode {
    let mut cfg = ServeConfig::default();
    let mut listen = "127.0.0.1:7411".to_string();
    let mut stdio = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let parsed = match arg.as_str() {
            "--listen" => match args.next() {
                Some(a) => {
                    listen = a;
                    Ok(())
                }
                None => Err("--listen needs a value".to_string()),
            },
            "--workers" => num_value(&mut args, "--workers").map(|v| cfg.workers = v as usize),
            "--queue" => num_value(&mut args, "--queue").map(|v| cfg.queue_cap = v as usize),
            "--cache-entries" => {
                num_value(&mut args, "--cache-entries").map(|v| cfg.cache_entries = v as usize)
            }
            "--max-deadline-ms" => {
                num_value(&mut args, "--max-deadline-ms").map(|v| cfg.caps.deadline_ms = Some(v))
            }
            "--max-nodes" => {
                num_value(&mut args, "--max-nodes").map(|v| cfg.caps.max_nodes = Some(v))
            }
            "--stdio" => {
                stdio = true;
                Ok(())
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => Err(format!("unknown flag `{other}`")),
        };
        if let Err(e) = parsed {
            eprintln!("{e}\n{}", usage());
            return ExitCode::from(2);
        }
    }

    let server = Arc::new(Server::new(cfg));
    if stdio {
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        if let Err(e) = server.serve_stdio(stdin.lock(), stdout.lock()) {
            eprintln!("mcs-serve: stdio loop failed: {e}");
            return ExitCode::FAILURE;
        }
        return ExitCode::SUCCESS;
    }

    let listener = match TcpListener::bind(&listen) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("mcs-serve: cannot bind {listen}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match listener.local_addr() {
        // Printed to stdout so scripts can scrape the bound port when
        // asked for :0.
        Ok(addr) => println!("mcs-serve listening on {addr}"),
        Err(_) => println!("mcs-serve listening on {listen}"),
    }
    if let Err(e) = server.serve_tcp(listener) {
        eprintln!("mcs-serve: accept loop failed: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
