//! # mcs-pinalloc
//!
//! Chapter 3 of the paper: synthesis support for designs with a *simple*
//! partitioning.
//!
//! * [`simple`] — recognition of Definition 3.2 (`is_simple`,
//!   `check_simple`).
//! * [`PinChecker`] — the pin-allocation ILP of Section 3.1 solved with
//!   Gomory's dual all-integer cutting planes, updated incrementally as
//!   list scheduling places I/O operations (Sections 3.2–3.3). Scheduling
//!   asks [`PinChecker::can_commit`] before every I/O placement, which is
//!   the "safety check" that postponed `I1..I4` to control step 1 in the
//!   paper's AR-filter run.
//! * [`connection`] — the constructive side of Theorem 3.1: conflict-free
//!   link sizing and per-group allocation for the fan-out / fan-in
//!   communication forms of a simple partitioning.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checker;

pub mod connection;
pub mod simple;

pub use checker::{
    CommitSavepoint, PinAllocError, PinChecker, ProbeCacheStats, DEFAULT_PIVOT_BUDGET,
};
pub use simple::{check_simple, is_simple, SimplicityViolation};
