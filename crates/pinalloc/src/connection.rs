//! The constructive half of Theorem 3.1: conflict-free interchip links for
//! the two communication forms of a simple partitioning (Figure 3.2).
//!
//! * **Fan-out** (Figure 3.2(a)): partition `f` drives `a` and `b`. Links
//!   `A: f->a`, `B: f->b` and `C: f->{a,b}` are sized per the proof:
//!   `N_c = max(0, M_a + M_b - O_f)`, `N_a = I_a - N_c`, `N_b = I_b - N_c`.
//! * **Fan-in** (Figure 3.2(b)): `a` and `b` drive `f`; the construction is
//!   the mirror image with input/output roles exchanged.
//!
//! [`construct_fanout`] also produces the per-group wire allocation
//! following the case analysis of the proof, so the no-conflict claim is
//! checked — not assumed — for every schedule.

/// Per-control-step-group transfer demand out of the fan-out source, in
/// bits. `to_a`/`to_b` are totals including the doubly-destined bits.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GroupDemand {
    /// Bits transferred to destination `a` this group (`a_k`).
    pub to_a: u32,
    /// Bits transferred to destination `b` this group (`b_k`).
    pub to_b: u32,
    /// Bits of values transferred to *both* destinations this group
    /// (`c_k`); at most `min(to_a, to_b)`.
    pub to_both: u32,
}

/// Pin budgets of a fan-out junction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FanoutJunction {
    /// Output pins of the source (`O_f`).
    pub source_outputs: u32,
    /// Input pins of destination `a` (`I_a`).
    pub dest_a_inputs: u32,
    /// Input pins of destination `b` (`I_b`).
    pub dest_b_inputs: u32,
}

/// Link widths produced by the construction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Links {
    /// Width of the direct `f -> a` connection (`N_a`).
    pub direct_a: u32,
    /// Width of the direct `f -> b` connection (`N_b`).
    pub direct_b: u32,
    /// Width of the shared `f -> {a, b}` connection (`N_c`).
    pub shared: u32,
}

/// How one group's bits map onto the links.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GroupAllocation {
    /// Doubly-destined bits carried once on the shared link.
    pub shared_both: u32,
    /// `a`-only bits overflowing onto the shared link.
    pub shared_a: u32,
    /// `b`-only bits overflowing onto the shared link.
    pub shared_b: u32,
    /// Bits on the direct `f -> a` link (including doubly-destined bits
    /// replicated when the shared link is full).
    pub direct_a: u32,
    /// Bits on the direct `f -> b` link.
    pub direct_b: u32,
}

/// Why a demand set admits no conflict-free allocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConflictError {
    /// A group's demand violates the pin-level preconditions of the
    /// theorem (`a_k <= I_a`, `b_k <= I_b`, `a_k + b_k - c_k <= O_f`), i.e.
    /// the schedule was not pin-feasible to begin with.
    DemandExceedsPins {
        /// Index of the violating group.
        group: usize,
    },
    /// `to_both` exceeds `min(to_a, to_b)`.
    MalformedDemand {
        /// Index of the malformed group.
        group: usize,
    },
}

impl std::fmt::Display for ConflictError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConflictError::DemandExceedsPins { group } => {
                write!(f, "group {group} demand exceeds the junction pin budget")
            }
            ConflictError::MalformedDemand { group } => {
                write!(
                    f,
                    "group {group} doubly-destined bits exceed a single-destination total"
                )
            }
        }
    }
}

impl std::error::Error for ConflictError {}

/// Sizes the links of a fan-out junction and allocates every group's bits
/// onto them, following the proof of Theorem 3.1. The same function serves
/// the fan-in form with `source_outputs` read as the *destination's input*
/// pins and the two `dest` budgets as the *sources' output* pins.
///
/// # Errors
///
/// Returns [`ConflictError`] iff some group violates the theorem's
/// pin-feasibility preconditions — for pin-feasible schedules of a simple
/// partitioning the construction always succeeds, which is the theorem.
pub fn construct_fanout(
    junction: &FanoutJunction,
    demands: &[GroupDemand],
) -> Result<(Links, Vec<GroupAllocation>), ConflictError> {
    let i_a = junction.dest_a_inputs;
    let i_b = junction.dest_b_inputs;
    let o_f = junction.source_outputs;
    let mut m_a = 0u32;
    let mut m_b = 0u32;
    for (k, d) in demands.iter().enumerate() {
        if d.to_both > d.to_a.min(d.to_b) {
            return Err(ConflictError::MalformedDemand { group: k });
        }
        if d.to_a > i_a || d.to_b > i_b || d.to_a + d.to_b - d.to_both > o_f {
            return Err(ConflictError::DemandExceedsPins { group: k });
        }
        m_a = m_a.max(d.to_a);
        m_b = m_b.max(d.to_b);
    }

    let links = if m_a + m_b <= o_f {
        Links {
            direct_a: m_a,
            direct_b: m_b,
            shared: 0,
        }
    } else {
        let n_c = m_a + m_b - o_f;
        Links {
            direct_a: i_a - n_c,
            direct_b: i_b - n_c,
            shared: n_c,
        }
    };

    let mut allocations = Vec::with_capacity(demands.len());
    for d in demands {
        let (a_only, b_only, c) = (d.to_a - d.to_both, d.to_b - d.to_both, d.to_both);
        let alloc = if c <= links.shared {
            // All doubly-destined bits ride the shared link; leftovers of
            // the shared link absorb single-destination overflow.
            let mut spare = links.shared - c;
            let direct_a = a_only.min(links.direct_a);
            let shared_a = (a_only - direct_a).min(spare);
            spare -= shared_a;
            let direct_b = b_only.min(links.direct_b);
            let shared_b = (b_only - direct_b).min(spare);
            GroupAllocation {
                shared_both: c,
                shared_a,
                shared_b,
                direct_a,
                direct_b,
            }
        } else {
            // Shared link full of doubly-destined bits; the rest of those
            // bits are replicated on both direct links.
            let dup = c - links.shared;
            GroupAllocation {
                shared_both: links.shared,
                shared_a: 0,
                shared_b: 0,
                direct_a: a_only + dup,
                direct_b: b_only + dup,
            }
        };
        // The theorem guarantees the allocation fits; these checks turn a
        // latent proof error into a loud failure instead of silent
        // wrong-answer tables.
        let delivered_a = alloc.shared_both + alloc.shared_a + alloc.direct_a;
        let delivered_b = alloc.shared_both + alloc.shared_b + alloc.direct_b;
        debug_assert!(alloc.direct_a <= links.direct_a);
        debug_assert!(alloc.direct_b <= links.direct_b);
        debug_assert!(alloc.shared_both + alloc.shared_a + alloc.shared_b <= links.shared);
        assert!(
            delivered_a >= d.to_a && delivered_b >= d.to_b,
            "Theorem 3.1 allocation under-delivered: {alloc:?} for {d:?} on {links:?}"
        );
        allocations.push(alloc);
    }
    Ok((links, allocations))
}

/// Link width for the degenerate single-destination junction: the maximum
/// per-group demand.
pub fn single_dest_width(per_group_bits: &[u32]) -> u32 {
    per_group_bits.iter().copied().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_sharing_needed_when_outputs_are_plentiful() {
        let j = FanoutJunction {
            source_outputs: 32,
            dest_a_inputs: 16,
            dest_b_inputs: 16,
        };
        let demands = [
            GroupDemand {
                to_a: 8,
                to_b: 16,
                to_both: 0,
            },
            GroupDemand {
                to_a: 16,
                to_b: 8,
                to_both: 8,
            },
        ];
        let (links, _) = construct_fanout(&j, &demands).unwrap();
        assert_eq!(
            links,
            Links {
                direct_a: 16,
                direct_b: 16,
                shared: 0
            }
        );
    }

    #[test]
    fn shared_links_appear_when_outputs_are_scarce() {
        // M_a = M_b = 16 but O_f = 24: N_c = 8.
        let j = FanoutJunction {
            source_outputs: 24,
            dest_a_inputs: 16,
            dest_b_inputs: 16,
        };
        let demands = [
            GroupDemand {
                to_a: 16,
                to_b: 8,
                to_both: 8,
            },
            GroupDemand {
                to_a: 8,
                to_b: 16,
                to_both: 8,
            },
        ];
        let (links, allocs) = construct_fanout(&j, &demands).unwrap();
        assert_eq!(
            links,
            Links {
                direct_a: 8,
                direct_b: 8,
                shared: 8
            }
        );
        for a in &allocs {
            assert_eq!(a.shared_both, 8);
        }
    }

    #[test]
    fn doubly_destined_overflow_replicates_on_direct_links() {
        // c_k > N_c forces replication (second case of the proof).
        let j = FanoutJunction {
            source_outputs: 30,
            dest_a_inputs: 16,
            dest_b_inputs: 16,
        };
        let demands = [
            GroupDemand {
                to_a: 16,
                to_b: 16,
                to_both: 16,
            },
            GroupDemand {
                to_a: 16,
                to_b: 14,
                to_both: 0,
            },
        ];
        let (links, allocs) = construct_fanout(&j, &demands).unwrap();
        assert_eq!(links.shared, 2);
        assert_eq!(allocs[0].shared_both, 2);
        assert_eq!(allocs[0].direct_a, 14);
        assert_eq!(allocs[0].direct_b, 14);
    }

    #[test]
    fn infeasible_demand_is_reported() {
        let j = FanoutJunction {
            source_outputs: 8,
            dest_a_inputs: 8,
            dest_b_inputs: 8,
        };
        let demands = [GroupDemand {
            to_a: 8,
            to_b: 8,
            to_both: 0,
        }];
        assert_eq!(
            construct_fanout(&j, &demands),
            Err(ConflictError::DemandExceedsPins { group: 0 })
        );
    }

    #[test]
    fn malformed_demand_is_reported() {
        let j = FanoutJunction {
            source_outputs: 32,
            dest_a_inputs: 16,
            dest_b_inputs: 16,
        };
        let demands = [GroupDemand {
            to_a: 4,
            to_b: 4,
            to_both: 8,
        }];
        assert_eq!(
            construct_fanout(&j, &demands),
            Err(ConflictError::MalformedDemand { group: 0 })
        );
    }

    #[test]
    fn single_destination_width_is_group_maximum() {
        assert_eq!(single_dest_width(&[8, 24, 16]), 24);
        assert_eq!(single_dest_width(&[]), 0);
    }

    /// Exhaustive mini-check of the theorem over a demand grid: every
    /// pin-feasible demand pair admits a conflict-free allocation.
    #[test]
    fn theorem_3_1_holds_on_a_grid() {
        let j = FanoutJunction {
            source_outputs: 6,
            dest_a_inputs: 4,
            dest_b_inputs: 4,
        };
        for a0 in 0..=4u32 {
            for b0 in 0..=4u32 {
                for c0 in 0..=a0.min(b0) {
                    for a1 in 0..=4u32 {
                        for b1 in 0..=4u32 {
                            for c1 in 0..=a1.min(b1) {
                                let d = [
                                    GroupDemand {
                                        to_a: a0,
                                        to_b: b0,
                                        to_both: c0,
                                    },
                                    GroupDemand {
                                        to_a: a1,
                                        to_b: b1,
                                        to_both: c1,
                                    },
                                ];
                                let feasible = d.iter().all(|g| {
                                    g.to_a <= 4 && g.to_b <= 4 && g.to_a + g.to_b - g.to_both <= 6
                                });
                                let got = construct_fanout(&j, &d);
                                assert_eq!(got.is_ok(), feasible, "demands {d:?}");
                            }
                        }
                    }
                }
            }
        }
    }
}
