//! The pin-allocation ILP (Section 3.1) and the incremental feasibility
//! checker used inside list scheduling (Sections 3.2–3.3).
//!
//! For a pipelined design with initiation rate `L`, every I/O operation
//! must receive pins in some control-step *group* `k in 0..L`. The ILP
//! over binaries `x_{w,k}` (pins allocated for transfer `w` in group `k`)
//! enforces:
//!
//! * per-partition, per-group input capacity (Constraint 3.2 / 3.7),
//! * per-partition, per-group output capacity, counting a multi-destination
//!   value once via `y_{v,k} = max_w x_{w,k}` (Constraints 3.3/3.5/3.6 /
//!   3.8),
//! * coverage: every transfer gets a group (Constraint 3.4).
//!
//! When a partition's pins are not pre-divided into inputs and outputs,
//! integer variables `o_j` choose the split (Constraints 3.7, 3.8).
//!
//! The tableau-size reduction of Section 3.1.2 aggregates single-fanout
//! transfers with identical endpoints and width into one general-integer
//! variable with coverage `sum_k x_{g,k} >= q`.
//!
//! The checker solves the system with the Gomory dual all-integer method
//! ([`mcs_ilp::AllIntegerSolver`]), committing `x >= 1` increments as
//! scheduling proceeds (Equation 3.13) and probing candidate placements
//! without mutating state.

use std::collections::BTreeMap;

use mcs_cdfg::{Cdfg, OpId, PartitionId, ValueId};
use mcs_ctl::{Budget, Termination};
use mcs_ilp::{AllIntegerSolver, Feasibility};
use mcs_metrics::{Histogram, MetricsHandle};
use mcs_obs::{Event, ProbeSource, RecorderHandle};

/// Default pivot budget per feasibility probe before falling back to
/// exact branch-and-bound. Configurable per checker via
/// [`PinChecker::with_pivot_budget`] / [`PinChecker::set_pivot_budget`];
/// any budget — including 0 — yields sound verdicts because the exact
/// fallback always decides.
pub const DEFAULT_PIVOT_BUDGET: usize = 4_000;

/// Cumulative accounting of how the checker's probe layers resolved
/// feasibility questions, cheapest first: memo cache, surrogate
/// capacity bound, tableau solve.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProbeCacheStats {
    /// Probes answered from the memo cache (no solver work at all).
    pub memo_hits: u64,
    /// Probes rejected by the surrogate group-capacity bound.
    pub surrogate_rejects: u64,
    /// Probes that reached the tableau solver.
    pub solver_probes: u64,
    /// Solver probes whose pivot budget ran out (exact fallback decided).
    pub exact_fallbacks: u64,
    /// Deepest undo-trail rollback any solver probe performed.
    pub max_rollback_depth: u64,
    /// Commits, i.e. memo-cache invalidations (the commit epoch).
    pub commits: u64,
    /// Memo hits answered by entries seeded from another checker via
    /// [`PinChecker::seed_initial_memo`] (a subset of `memo_hits`).
    pub seed_hits: u64,
    /// Solver probes resolved through the batched path
    /// ([`PinChecker::probe_candidates`]) — a subset of `solver_probes`.
    pub batched_probes: u64,
    /// Shared checkpoints opened by batched probing: one per
    /// [`PinChecker::probe_candidates`] call that reached the solver,
    /// however many candidates it carried.
    pub batch_shared_checkpoints: u64,
}

impl ProbeCacheStats {
    /// Total probes across all layers.
    pub fn total_probes(&self) -> u64 {
        self.memo_hits + self.surrogate_rejects + self.solver_probes
    }
}

/// Errors from building the pin-allocation model.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PinAllocError {
    /// The initiation rate must be at least 1.
    ZeroRate,
    /// An operation passed to the checker is not an I/O operation.
    NotAnIoOperation(OpId),
    /// The initial system already admits no pin allocation.
    InfeasibleFromTheStart,
    /// The attached execution [`Budget`] tripped before the checker
    /// could reach a verdict; the carried [`Termination`] says why.
    Interrupted(Termination),
}

impl std::fmt::Display for PinAllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PinAllocError::ZeroRate => write!(f, "initiation rate must be at least 1"),
            PinAllocError::NotAnIoOperation(op) => {
                write!(f, "{op} is not an I/O operation")
            }
            PinAllocError::InfeasibleFromTheStart => {
                write!(f, "no pin allocation exists even before scheduling")
            }
            PinAllocError::Interrupted(t) => {
                write!(f, "pin-allocation check interrupted ({t})")
            }
        }
    }
}

impl std::error::Error for PinAllocError {}

/// Which solver variable carries an I/O operation.
#[derive(Clone, Copy, Debug)]
enum OpVar {
    /// Aggregated single-fanout group (Section 3.1.2): variable block
    /// index, group size `q`.
    Aggregate(usize),
    /// Individual binary for a member of a multi-destination value.
    Member(usize),
}

/// The incremental pin-allocation feasibility checker of Figure 3.4.
///
/// # Examples
///
/// ```
/// use mcs_cdfg::designs::ar_filter;
/// use mcs_pinalloc::PinChecker;
///
/// # fn main() -> Result<(), mcs_pinalloc::PinAllocError> {
/// let design = ar_filter::simple();
/// let mut checker = PinChecker::new(design.cdfg(), 2)?;
/// let x5 = design.op_named("X5");
/// assert!(checker.can_commit(x5, 0));
/// checker.commit(x5, 0)?;
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct PinChecker {
    solver: AllIntegerSolver,
    rate: u32,
    /// Variable carrying each I/O op, by op id.
    op_vars: BTreeMap<OpId, OpVar>,
    /// Base solver-variable index of each aggregate block (stride = rate).
    agg_base: Vec<usize>,
    /// Base solver-variable index of each member binary block.
    member_base: Vec<usize>,
    /// Remaining uncommitted demand per aggregate block.
    agg_remaining: Vec<i64>,
    /// Whether each member binary has been committed.
    member_done: Vec<bool>,
    /// Bit-width of each transfer, captured at build so probe/commit
    /// sites can report pin pressure without a `Cdfg` in hand.
    op_bits: BTreeMap<OpId, u32>,
    /// Committed pin-bits per control-step group `k in 0..L`.
    group_load: Vec<u32>,
    /// Total pin budget across all partitions — the ceiling the per-group
    /// pressure in `PinCheck` events is reported against.
    total_cap: u32,
    /// Pivot budget per feasibility solve before the exact fallback.
    pivot_budget: usize,
    /// Memo cache of probe verdicts for the current commit epoch, keyed
    /// by `(solver var, increment)`. Sound because probe verdicts are a
    /// pure function of solver state, which only commits mutate; cleared
    /// on every commit.
    memo: BTreeMap<(usize, i64), bool>,
    /// Probe verdicts this checker *computed* (memo entries excluded)
    /// while no commit had happened yet — a pure function of
    /// `(design, rate, budgets)`, exportable for cross-run warm starts.
    epoch0_learned: BTreeMap<(usize, i64), bool>,
    /// Keys in `memo` that came from [`PinChecker::seed_initial_memo`]
    /// rather than this checker's own solves (for `seed_hits`).
    seeded: std::collections::BTreeSet<(usize, i64)>,
    /// Destination-partition index of each transfer (surrogate bound).
    op_dest: BTreeMap<OpId, u32>,
    /// Every `(op, group)` probe the checker can answer, in the canonical
    /// sweep order (ops ascending, groups ascending) — derived once at
    /// construction so [`PinChecker::probe_sweep`] does not rebuild it
    /// per call.
    sweep_order: Vec<(OpId, i64)>,
    /// Committed input pin-bits per `[partition * L + group]`.
    part_in_load: Vec<i64>,
    /// Input-side pin capacity per partition: the fixed input split, or
    /// the whole budget when the split is free (inputs can use at most
    /// all of it since `o_j >= 0`).
    in_cap: Vec<i64>,
    /// Probe-layer resolution counters.
    stats: ProbeCacheStats,
    /// Sink for `PinCheck` (and the solver's `GomoryCut`) events.
    recorder: RecorderHandle,
    /// Optional execution budget. Every resolved probe is charged to
    /// it; the embedded solver polls it at pivot boundaries.
    budget: Option<Budget>,
    /// Metrics handle (for the registry clock) and the resolved
    /// per-source probe latency histograms.
    metrics: MetricsHandle,
    m_lat_memo: Histogram,
    m_lat_surrogate: Histogram,
    m_lat_solver: Histogram,
}

impl PinChecker {
    /// Builds the ILP for `cdfg` at initiation rate `rate` and verifies
    /// initial feasibility.
    ///
    /// # Errors
    ///
    /// [`PinAllocError::ZeroRate`] for `rate == 0`;
    /// [`PinAllocError::InfeasibleFromTheStart`] if the pin budgets cannot
    /// carry the design's transfers at all.
    pub fn new(cdfg: &Cdfg, rate: u32) -> Result<Self, PinAllocError> {
        Self::with_pivot_budget(cdfg, rate, DEFAULT_PIVOT_BUDGET)
    }

    /// [`PinChecker::new`] with an execution [`Budget`] attached *before*
    /// the construction-time feasibility solve, so even the initial
    /// exact resolve is interruptible. [`PinChecker::new`] runs that
    /// solve unbudgeted, which on adversarial designs can take
    /// arbitrarily long; long-running callers (the serve daemon, any
    /// deadline-bound driver) should construct through here.
    ///
    /// # Errors
    ///
    /// As [`PinChecker::new`], plus [`PinAllocError::Interrupted`] when
    /// the budget trips mid-construction.
    pub fn new_budgeted(cdfg: &Cdfg, rate: u32, budget: Budget) -> Result<Self, PinAllocError> {
        Self::construct(cdfg, rate, DEFAULT_PIVOT_BUDGET, Some(budget))
    }

    /// [`PinChecker::new`] with an explicit pivot budget per feasibility
    /// solve. A budget of 0 sends every solve straight to the exact
    /// branch-and-bound fallback — slow but still sound.
    pub fn with_pivot_budget(
        cdfg: &Cdfg,
        rate: u32,
        pivot_budget: usize,
    ) -> Result<Self, PinAllocError> {
        Self::construct(cdfg, rate, pivot_budget, None)
    }

    fn construct(
        cdfg: &Cdfg,
        rate: u32,
        pivot_budget: usize,
        budget: Option<Budget>,
    ) -> Result<Self, PinAllocError> {
        if rate == 0 {
            return Err(PinAllocError::ZeroRate);
        }
        let l = rate as usize;
        let groups = cdfg.io_ops_by_value();

        // Partition transfers into aggregates (single-destination values,
        // merged by (from, to, bits)) and members of multi-destination
        // values.
        #[derive(Default)]
        struct Agg {
            ops: Vec<OpId>,
        }
        let mut aggs: BTreeMap<(PartitionId, PartitionId, u32), Agg> = BTreeMap::new();
        let mut multi: Vec<(ValueId, Vec<OpId>)> = Vec::new();
        for (value, ops) in &groups {
            if ops.len() == 1 {
                let op = ops[0];
                let (_, from, to) = cdfg.op(op).io_endpoints().expect("io op");
                let bits = cdfg.io_bits(op);
                aggs.entry((from, to, bits)).or_default().ops.push(op);
            } else {
                multi.push((*value, ops.clone()));
            }
        }

        // Assign solver variable indices.
        let mut n_vars = 0usize;
        let mut agg_base = Vec::new();
        let mut agg_remaining = Vec::new();
        let mut op_vars: BTreeMap<OpId, OpVar> = BTreeMap::new();
        let agg_list: Vec<(&(PartitionId, PartitionId, u32), &Agg)> = aggs.iter().collect();
        for (gi, (_, agg)) in agg_list.iter().enumerate() {
            agg_base.push(n_vars);
            agg_remaining.push(agg.ops.len() as i64);
            n_vars += l;
            for &op in &agg.ops {
                op_vars.insert(op, OpVar::Aggregate(gi));
            }
        }
        let mut member_base = Vec::new();
        let mut member_list: Vec<OpId> = Vec::new();
        let mut y_base: BTreeMap<ValueId, usize> = BTreeMap::new();
        for (value, ops) in &multi {
            for &op in ops {
                member_base.push(n_vars);
                op_vars.insert(op, OpVar::Member(member_list.len()));
                member_list.push(op);
                n_vars += l;
            }
            y_base.insert(*value, n_vars);
            n_vars += l;
        }
        // Output-split variables o_j for partitions without a fixed split.
        let mut o_var: BTreeMap<PartitionId, usize> = BTreeMap::new();
        for (pi, part) in cdfg.partitions().iter().enumerate() {
            if part.fixed_split.is_none() {
                o_var.insert(PartitionId::new(pi as u32), n_vars);
                n_vars += 1;
            }
        }

        let mut solver = AllIntegerSolver::new(n_vars);

        // Upper bounds: aggregates x_{g,k} <= q, members and y binaries <= 1.
        for (gi, (_, agg)) in agg_list.iter().enumerate() {
            for k in 0..l {
                solver.add_le(&[(agg_base[gi] + k, 1)], agg.ops.len() as i64);
            }
        }
        for (mi, _) in member_list.iter().enumerate() {
            for k in 0..l {
                solver.add_le(&[(member_base[mi] + k, 1)], 1);
            }
        }
        for &yb in y_base.values() {
            for k in 0..l {
                solver.add_le(&[(yb + k, 1)], 1);
            }
        }

        // Coverage (Constraint 3.4, aggregated per Section 3.1.2).
        for (gi, (_, agg)) in agg_list.iter().enumerate() {
            let terms: Vec<_> = (0..l).map(|k| (agg_base[gi] + k, 1)).collect();
            solver.add_ge(&terms, agg.ops.len() as i64);
        }
        for (mi, _) in member_list.iter().enumerate() {
            let terms: Vec<_> = (0..l).map(|k| (member_base[mi] + k, 1)).collect();
            solver.add_ge(&terms, 1);
        }
        // Link y_{v,k} to its members (Constraint 3.6):
        // sum_w x_{w,k} - |W_v| y_{v,k} <= 0.
        for (value, ops) in &multi {
            let yb = y_base[value];
            for k in 0..l {
                let mut terms: Vec<(usize, i64)> = ops
                    .iter()
                    .map(|op| {
                        let OpVar::Member(mi) = op_vars[op] else {
                            unreachable!()
                        };
                        (member_base[mi] + k, 1)
                    })
                    .collect();
                terms.push((yb + k, -(ops.len() as i64)));
                solver.add_le(&terms, 0);
            }
        }

        // Capacity constraints per partition and group.
        for (pi, part) in cdfg.partitions().iter().enumerate() {
            let p = PartitionId::new(pi as u32);
            let inputs = cdfg.input_io_ops(p);
            let out_values = cdfg.output_values(p);
            for k in 0..l {
                // Input side: sum B_w x_{w,k} (+ o_i) <= I_i or T_i. An
                // aggregate variable already counts how many of its
                // transfers land in group k, so its bit-width coefficient
                // enters once per aggregate, not once per member.
                let mut in_map: BTreeMap<usize, i64> = BTreeMap::new();
                for &w in &inputs {
                    let bits = cdfg.io_bits(w) as i64;
                    match op_vars[&w] {
                        OpVar::Aggregate(gi) => {
                            in_map.insert(agg_base[gi] + k, bits);
                        }
                        OpVar::Member(mi) => {
                            in_map.insert(member_base[mi] + k, bits);
                        }
                    }
                }
                let in_terms: Vec<(usize, i64)> = in_map.into_iter().collect();
                // Output side: sum B_v y_{v,k} (- o_j) <= O_j or 0.
                let mut out_map: BTreeMap<usize, i64> = BTreeMap::new();
                for &v in &out_values {
                    let bits = cdfg.value(v).bits as i64;
                    if let Some(&yb) = y_base.get(&v) {
                        out_map.insert(yb + k, bits);
                    } else {
                        // Single-destination: y == x of the lone transfer.
                        let w = groups[&v][0];
                        match op_vars[&w] {
                            OpVar::Aggregate(gi) => {
                                out_map.insert(agg_base[gi] + k, bits);
                            }
                            OpVar::Member(mi) => {
                                out_map.insert(member_base[mi] + k, bits);
                            }
                        }
                    }
                }
                let out_terms: Vec<(usize, i64)> = out_map.into_iter().collect();
                match part.fixed_split {
                    Some((i_cap, o_cap)) => {
                        if !in_terms.is_empty() {
                            solver.add_le(&in_terms, i_cap as i64);
                        }
                        if !out_terms.is_empty() {
                            solver.add_le(&out_terms, o_cap as i64);
                        }
                    }
                    None => {
                        let o = o_var[&p];
                        let t = part.total_pins as i64;
                        if !in_terms.is_empty() {
                            let mut terms = in_terms.clone();
                            terms.push((o, 1));
                            solver.add_le(&terms, t);
                        }
                        if !out_terms.is_empty() {
                            let mut terms = out_terms.clone();
                            terms.push((o, -1));
                            solver.add_le(&terms, 0);
                        }
                        solver.add_le(&[(o, 1)], t);
                    }
                }
            }
        }

        let op_bits: BTreeMap<OpId, u32> =
            op_vars.keys().map(|&op| (op, cdfg.io_bits(op))).collect();
        let total_cap: u32 = cdfg
            .partitions()
            .iter()
            .map(|part| match part.fixed_split {
                Some((i_cap, o_cap)) => i_cap + o_cap,
                None => part.total_pins,
            })
            .sum();
        let op_dest: BTreeMap<OpId, u32> = op_vars
            .keys()
            .map(|&op| {
                let (_, _, to) = cdfg.op(op).io_endpoints().expect("io op");
                (op, u32::from(to))
            })
            .collect();
        let in_cap: Vec<i64> = cdfg
            .partitions()
            .iter()
            .map(|part| match part.fixed_split {
                Some((i_cap, _)) => i_cap as i64,
                None => part.total_pins as i64,
            })
            .collect();
        let sweep_order: Vec<(OpId, i64)> = op_vars
            .keys()
            .flat_map(|&op| (0..l as i64).map(move |k| (op, k)))
            .collect();
        let mut checker = PinChecker {
            solver,
            rate,
            op_vars,
            agg_base,
            member_base,
            agg_remaining,
            member_done: vec![false; member_list.len()],
            op_bits,
            group_load: vec![0; l],
            total_cap,
            pivot_budget,
            memo: BTreeMap::new(),
            epoch0_learned: BTreeMap::new(),
            seeded: std::collections::BTreeSet::new(),
            op_dest,
            sweep_order,
            part_in_load: vec![0; cdfg.partitions().len() * l],
            in_cap,
            stats: ProbeCacheStats::default(),
            recorder: RecorderHandle::default(),
            budget: None,
            metrics: MetricsHandle::default(),
            m_lat_memo: Histogram::default(),
            m_lat_surrogate: Histogram::default(),
            m_lat_solver: Histogram::default(),
        };
        if let Some(b) = budget {
            checker.set_budget(b);
        }
        match checker.resolve() {
            Feasibility::Feasible => Ok(checker),
            Feasibility::Interrupted => Err(PinAllocError::Interrupted(checker.interruption())),
            _ => Err(PinAllocError::InfeasibleFromTheStart),
        }
    }

    /// Attaches an execution budget: probes are charged against it and
    /// the embedded solver polls it at pivot boundaries, so a long
    /// feasibility solve can be interrupted mid-flight. Interrupted
    /// probes conservatively answer "cannot commit" and are never
    /// memoized.
    pub fn set_budget(&mut self, budget: Budget) {
        self.solver.set_budget(budget.clone());
        self.budget = Some(budget);
    }

    /// The execution budget attached via [`PinChecker::set_budget`], if
    /// any — callers embedding the checker in a larger flow share it so
    /// every layer charges the same ledger.
    pub fn budget(&self) -> Option<&Budget> {
        self.budget.as_ref()
    }

    /// The budget's sticky verdict, defaulting to
    /// [`Termination::Cancelled`] only when no budget is attached (an
    /// interruption without a budget cannot happen in practice).
    fn interruption(&self) -> Termination {
        self.budget
            .as_ref()
            .and_then(|b| b.verdict())
            .unwrap_or(Termination::Cancelled)
    }

    /// The initiation rate the checker was built for.
    pub fn rate(&self) -> u32 {
        self.rate
    }

    /// The pivot budget per feasibility solve.
    pub fn pivot_budget(&self) -> usize {
        self.pivot_budget
    }

    /// Changes the pivot budget for subsequent solves. Verdicts stay
    /// sound for any value (the exact fallback decides when the budget
    /// runs out); the memo cache is unaffected because verdicts do not
    /// depend on the budget.
    pub fn set_pivot_budget(&mut self, pivot_budget: usize) {
        self.pivot_budget = pivot_budget;
    }

    /// Cross-checks every trail-based solver probe against the legacy
    /// clone-based path (panicking on divergence). For differential
    /// testing; off by default.
    pub fn set_differential(&mut self, on: bool) {
        self.solver.set_differential(on);
    }

    /// Pins the embedded solver to its wide (i128) tableau
    /// representation, bypassing the adaptive i64 fast path. Verdicts are
    /// identical either way; this is the differential anchor the bench
    /// harness compares the adaptive path against.
    pub fn force_wide_words(&mut self) {
        self.solver.force_wide();
    }

    /// Times the embedded solver's adaptive i64 representation promoted
    /// to i128 because an operation would have overflowed (the
    /// `ilp.promotions` metric).
    pub fn solver_promotions(&self) -> u64 {
        self.solver.promotions()
    }

    /// Representation-independent digest of the embedded solver's live
    /// tableau (cells hashed as i128 regardless of the current word
    /// size). Equal digests mean equal tableaus: an adaptive checker and
    /// a [`PinChecker::force_wide_words`] checker that ran the same
    /// probe/commit sequence must report the same value.
    pub fn solver_tableau_digest(&self) -> u64 {
        self.solver.tableau_digest()
    }

    /// Cumulative probe-layer resolution counters.
    pub fn probe_stats(&self) -> ProbeCacheStats {
        self.stats
    }

    /// Routes `PinCheck` events from probes/commits — and `GomoryCut`
    /// events from the embedded solver — to `recorder`.
    pub fn set_recorder(&mut self, recorder: RecorderHandle) {
        self.solver.set_recorder(recorder.clone());
        self.recorder = recorder;
    }

    /// Connects the checker's aggregate telemetry — a probe latency
    /// histogram per resolution layer (`probe.latency_us.memo` /
    /// `.surrogate` / `.solver`) plus the embedded solver's `ilp.*`
    /// metrics — to a metrics registry. Latencies are measured on the
    /// registry's injected clock, so a `ManualClock` registry records
    /// deterministic (zero) durations with exact counts.
    pub fn set_metrics(&mut self, metrics: &MetricsHandle) {
        self.solver.set_metrics(metrics);
        self.m_lat_memo = metrics.histogram("probe.latency_us.memo");
        self.m_lat_surrogate = metrics.histogram("probe.latency_us.surrogate");
        self.m_lat_solver = metrics.histogram("probe.latency_us.solver");
        self.metrics = metrics.clone();
    }

    /// Committed pin-bits in control-step group `step mod L`.
    pub fn group_load(&self, step: i64) -> u32 {
        self.group_load[step.rem_euclid(self.rate as i64) as usize]
    }

    fn resolve(&mut self) -> Feasibility {
        match self.solver.solve(self.pivot_budget) {
            Feasibility::PivotLimit => self.solver.solve_exact(),
            v => v,
        }
    }

    /// Surrogate quick-reject (necessary condition, checked without any
    /// pivoting): the committed input pin-bits of the probed transfer's
    /// destination partition in group `k`, plus the transfer's own bits,
    /// must fit the partition's input capacity. With a free split the
    /// bound is the whole pin budget (`o_j >= 0`). Exceeding it means
    /// the full ILP is certainly infeasible, so rejecting is sound.
    fn surrogate_rejects(&self, op: OpId, k: usize) -> bool {
        let Some(&pi) = self.op_dest.get(&op) else {
            return false;
        };
        let bits = self.op_bits.get(&op).copied().unwrap_or(0) as i64;
        let load = self.part_in_load[pi as usize * self.rate as usize + k];
        load + bits > self.in_cap[pi as usize]
    }

    fn var_of(&self, op: OpId, step: i64) -> usize {
        let k = step.rem_euclid(self.rate as i64) as usize;
        match self.op_vars[&op] {
            OpVar::Aggregate(gi) => self.agg_base[gi] + k,
            OpVar::Member(mi) => self.member_base[mi] + k,
        }
    }

    /// Whether scheduling `op` in control step `step` (allocating pins in
    /// group `step mod L`) still leaves a complete pin allocation for all
    /// unscheduled transfers. Leaves the committed allocation state
    /// untouched (`&mut` only for the probe caches and the solver's
    /// checkpoint/rollback trail).
    ///
    /// Resolution is layered cheapest-first: the memo cache (valid until
    /// the next commit), the surrogate capacity bound, and finally a
    /// checkpointed tableau solve.
    pub fn can_commit(&mut self, op: OpId, step: i64) -> bool {
        let var = self.var_of(op, step);
        let k = step.rem_euclid(self.rate as i64) as usize;
        let probe_start = self.metrics.now_us();
        let (verdict, source, trail_depth) = if let Some(&v) = self.memo.get(&(var, 1)) {
            self.stats.memo_hits += 1;
            if self.seeded.contains(&(var, 1)) {
                self.stats.seed_hits += 1;
            }
            (v, ProbeSource::Memo, 0)
        } else if self.surrogate_rejects(op, k) {
            self.stats.surrogate_rejects += 1;
            self.memo.insert((var, 1), false);
            if self.stats.commits == 0 {
                self.epoch0_learned.insert((var, 1), false);
            }
            (false, ProbeSource::Surrogate, 0)
        } else {
            let (f, pstats) = self
                .solver
                .probe_at_least_with_stats(var, 1, self.pivot_budget);
            self.stats.solver_probes += 1;
            if pstats.exact_fallback {
                self.stats.exact_fallbacks += 1;
            }
            self.stats.max_rollback_depth = self.stats.max_rollback_depth.max(pstats.rollback_ops);
            let v = f == Feasibility::Feasible;
            // An interrupted probe conservatively answers "cannot
            // commit" but proves nothing — memoizing it would poison
            // the cache with a verdict the solver never reached.
            if f != Feasibility::Interrupted {
                self.memo.insert((var, 1), v);
                if self.stats.commits == 0 {
                    self.epoch0_learned.insert((var, 1), v);
                }
            }
            (v, ProbeSource::Solver, pstats.rollback_ops)
        };
        if self.metrics.enabled() {
            let elapsed = self.metrics.now_us().saturating_sub(probe_start);
            match source {
                ProbeSource::Memo => self.m_lat_memo.observe(elapsed),
                ProbeSource::Surrogate => self.m_lat_surrogate.observe(elapsed),
                ProbeSource::Solver => self.m_lat_solver.observe(elapsed),
            }
        }
        // Charged after resolution so a flow that finishes on exactly
        // its last allowed probe still completes naturally.
        if let Some(budget) = &self.budget {
            budget.charge_probes(1);
        }
        if self.recorder.enabled() {
            self.recorder.record(Event::PinCheck {
                group: k as u32,
                pins_used: self.group_load[k] + self.op_bits.get(&op).copied().unwrap_or(0),
                cap: self.total_cap,
                verdict,
            });
            self.recorder.record(Event::ProbeResolved {
                var: var as u32,
                by: 1,
                verdict,
                source,
                trail_depth,
            });
        }
        verdict
    }

    /// Answers [`PinChecker::can_commit`] for a whole slate of
    /// `(op, step)` candidates — typically every placement a control step
    /// is considering — sharing the probe machinery across them: the memo
    /// cache and surrogate quick-reject resolve what they can, and the
    /// remainder is solved under **one** solver checkpoint
    /// ([`mcs_ilp::AllIntegerSolver::probe_batch_with_stats`]) instead of
    /// a checkpoint/rollback pair per candidate. Verdicts are identical
    /// to calling `can_commit` per candidate, and every solver verdict is
    /// memoized, so a follow-up `can_commit` on the chosen candidate is a
    /// memo hit — the scheduler's batch-prime-then-place pattern.
    ///
    /// Returns one verdict per candidate, in order. Counted under
    /// `batched_probes` / `batch_shared_checkpoints` in
    /// [`PinChecker::probe_stats`].
    pub fn probe_candidates(&mut self, candidates: &[(OpId, i64)]) -> Vec<bool> {
        let mut verdicts = vec![false; candidates.len()];
        let mut sources = vec![ProbeSource::Solver; candidates.len()];
        // (candidate index, solver var) for everything the cheap layers
        // could not answer.
        let mut unresolved: Vec<(usize, usize)> = Vec::new();
        for (ci, &(op, step)) in candidates.iter().enumerate() {
            let var = self.var_of(op, step);
            let k = step.rem_euclid(self.rate as i64) as usize;
            let probe_start = self.metrics.now_us();
            if let Some(&v) = self.memo.get(&(var, 1)) {
                self.stats.memo_hits += 1;
                if self.seeded.contains(&(var, 1)) {
                    self.stats.seed_hits += 1;
                }
                verdicts[ci] = v;
                sources[ci] = ProbeSource::Memo;
                if self.metrics.enabled() {
                    self.m_lat_memo
                        .observe(self.metrics.now_us().saturating_sub(probe_start));
                }
            } else if self.surrogate_rejects(op, k) {
                self.stats.surrogate_rejects += 1;
                self.memo.insert((var, 1), false);
                if self.stats.commits == 0 {
                    self.epoch0_learned.insert((var, 1), false);
                }
                sources[ci] = ProbeSource::Surrogate;
                if self.metrics.enabled() {
                    self.m_lat_surrogate
                        .observe(self.metrics.now_us().saturating_sub(probe_start));
                }
            } else {
                unresolved.push((ci, var));
            }
        }
        if !unresolved.is_empty() {
            let reqs: Vec<(usize, i64)> = unresolved.iter().map(|&(_, var)| (var, 1)).collect();
            let batch_start = self.metrics.now_us();
            let results = self.solver.probe_batch_with_stats(&reqs, self.pivot_budget);
            // One latency observation for the whole shared-checkpoint
            // solve; per-candidate counters stay exact.
            if self.metrics.enabled() {
                self.m_lat_solver
                    .observe(self.metrics.now_us().saturating_sub(batch_start));
            }
            self.stats.batch_shared_checkpoints += 1;
            for (&(ci, var), (f, pstats)) in unresolved.iter().zip(&results) {
                self.stats.solver_probes += 1;
                self.stats.batched_probes += 1;
                if pstats.exact_fallback {
                    self.stats.exact_fallbacks += 1;
                }
                self.stats.max_rollback_depth =
                    self.stats.max_rollback_depth.max(pstats.rollback_ops);
                let v = *f == Feasibility::Feasible;
                if *f != Feasibility::Interrupted {
                    self.memo.insert((var, 1), v);
                    if self.stats.commits == 0 {
                        self.epoch0_learned.insert((var, 1), v);
                    }
                }
                verdicts[ci] = v;
            }
        }
        if let Some(budget) = &self.budget {
            budget.charge_probes(candidates.len() as u64);
        }
        if self.recorder.enabled() {
            for (ci, &(op, step)) in candidates.iter().enumerate() {
                let var = self.var_of(op, step);
                let k = step.rem_euclid(self.rate as i64) as usize;
                self.recorder.record(Event::PinCheck {
                    group: k as u32,
                    pins_used: self.group_load[k] + self.op_bits.get(&op).copied().unwrap_or(0),
                    cap: self.total_cap,
                    verdict: verdicts[ci],
                });
                self.recorder.record(Event::ProbeResolved {
                    var: var as u32,
                    by: 1,
                    verdict: verdicts[ci],
                    source: sources[ci],
                    trail_depth: 0,
                });
            }
        }
        verdicts
    }

    /// Probes `op` at `step` through a chosen engine — the trail-based
    /// checkpoint/rollback path or the legacy clone-per-probe path —
    /// bypassing the memo cache and the surrogate bound. Benchmark and
    /// differential-test hook: both engines answer the same question on
    /// the same tableau, so their verdicts must agree.
    pub fn probe_uncached(&mut self, op: OpId, step: i64, via_clone: bool) -> bool {
        let var = self.var_of(op, step);
        let verdict = if via_clone {
            self.solver
                .probe_at_least_via_clone(var, 1, self.pivot_budget)
        } else {
            self.solver.probe_at_least(var, 1, self.pivot_budget)
        };
        verdict == Feasibility::Feasible
    }

    /// Differential oracle hook: probes every known transfer at every
    /// control-step group through both probe engines and returns the
    /// disagreeing `(op, step, trail, clone)` tuples. An empty sweep
    /// means the trail-based engine is verdict-identical to the clone
    /// oracle on the checker's full probe surface at the current pivot
    /// budget.
    ///
    /// The candidate order is derived once at construction
    /// (`sweep_order`), and the trail half runs through the same
    /// shared-checkpoint batch the scheduler's
    /// [`PinChecker::probe_candidates`] uses, so the fuzz differential
    /// exercises the production probe path, not a bespoke loop.
    pub fn probe_sweep(&mut self) -> Vec<(OpId, i64, bool, bool)> {
        let candidates = std::mem::take(&mut self.sweep_order);
        let reqs: Vec<(usize, i64)> = candidates
            .iter()
            .map(|&(op, step)| (self.var_of(op, step), 1))
            .collect();
        let batch = self.solver.probe_batch_with_stats(&reqs, self.pivot_budget);
        let mut diffs = Vec::new();
        for (&(op, step), (f, _)) in candidates.iter().zip(&batch) {
            let trail = *f == Feasibility::Feasible;
            let clone = self.probe_uncached(op, step, true);
            if trail != clone {
                diffs.push((op, step, trail, clone));
            }
        }
        self.sweep_order = candidates;
        diffs
    }

    /// Commits the placement of `op` in `step`'s group (the incremental
    /// tableau update of Section 3.3).
    ///
    /// # Errors
    ///
    /// [`PinAllocError::NotAnIoOperation`] if `op` is unknown to the
    /// checker, or [`PinAllocError::InfeasibleFromTheStart`] if the commit
    /// leaves no valid allocation (call [`PinChecker::can_commit`] first).
    pub fn commit(&mut self, op: OpId, step: i64) -> Result<(), PinAllocError> {
        if !self.op_vars.contains_key(&op) {
            return Err(PinAllocError::NotAnIoOperation(op));
        }
        let var = self.var_of(op, step);
        self.solver.assume_at_least(var, 1);
        match self.op_vars[&op] {
            OpVar::Aggregate(gi) => self.agg_remaining[gi] -= 1,
            OpVar::Member(mi) => self.member_done[mi] = true,
        }
        let k = step.rem_euclid(self.rate as i64) as usize;
        self.group_load[k] += self.op_bits.get(&op).copied().unwrap_or(0);
        if let Some(&pi) = self.op_dest.get(&op) {
            self.part_in_load[pi as usize * self.rate as usize + k] +=
                self.op_bits.get(&op).copied().unwrap_or(0) as i64;
        }
        // The solver state changed: every memoized *feasible* verdict is
        // stale (the feasible set only shrinks as commits accumulate).
        // Infeasible verdicts survive: adding constraints can never make
        // an infeasible increment feasible again, so a `false` entry —
        // including a seeded one — stays sound for the rest of the run.
        // This is what lets a batch-primed candidate slate keep its
        // rejections across the commits the scheduler interleaves.
        self.memo.retain(|_, v| !*v);
        self.seeded.retain(|key| self.memo.contains_key(key));
        self.stats.commits += 1;
        let outcome = match self.resolve() {
            Feasibility::Feasible => Ok(()),
            Feasibility::Interrupted => Err(PinAllocError::Interrupted(self.interruption())),
            _ => Err(PinAllocError::InfeasibleFromTheStart),
        };
        if self.recorder.enabled() {
            self.recorder.record(Event::PinCheck {
                group: k as u32,
                pins_used: self.group_load[k],
                cap: self.total_cap,
                verdict: outcome.is_ok(),
            });
        }
        outcome
    }

    /// `true` once every transfer has been committed.
    pub fn all_committed(&self) -> bool {
        self.agg_remaining.iter().all(|&r| r == 0) && self.member_done.iter().all(|&d| d)
    }

    /// Probe verdicts this checker computed itself before any commit —
    /// a pure function of `(design, rate, budgets)`, so another checker
    /// for the same problem may adopt them via
    /// [`PinChecker::seed_initial_memo`]. Entries that were themselves
    /// seeded are excluded: re-exporting them would launder their
    /// provenance. Sorted by key for deterministic consumption.
    pub fn initial_probe_memo(&self) -> Vec<((usize, i64), bool)> {
        self.epoch0_learned.iter().map(|(&k, &v)| (k, v)).collect()
    }

    /// Pre-populates the probe memo from another checker's
    /// [`PinChecker::initial_probe_memo`] export. Only legal while this
    /// checker has made no commit (the memo is a pure function of the
    /// initial tableau until then); afterwards the call is a no-op.
    /// Entries already resolved locally are kept. Returns how many
    /// entries were adopted.
    pub fn seed_initial_memo(&mut self, entries: &[((usize, i64), bool)]) -> usize {
        if self.stats.commits != 0 {
            return 0;
        }
        let mut adopted = 0;
        for &(key, verdict) in entries {
            if let std::collections::btree_map::Entry::Vacant(slot) = self.memo.entry(key) {
                slot.insert(verdict);
                self.seeded.insert(key);
                adopted += 1;
            }
        }
        adopted
    }

    /// Opens a cross-commit savepoint: a snapshot of the committed state
    /// that [`PinChecker::rollback_commits`] can restore after any number
    /// of further [`PinChecker::commit`] calls.
    ///
    /// This is the commit-level analogue of the per-probe trail use: the
    /// solver checkpoint keeps the undo trail recording across the
    /// commits (assumption shifts and their repair pivots), and the
    /// checker bookkeeping that commits mutate is snapshotted alongside.
    /// The incremental resynthesis flow snapshots after replaying the
    /// clean commits of a previous run, then trial-commits the dirty
    /// transfers — rolling back and retrying other step groups on
    /// failure instead of rebuilding the tableau from scratch.
    ///
    /// Savepoints nest LIFO with any probe the checker runs in between
    /// (probes open and close their own inner checkpoints), but two
    /// *savepoints* must themselves be rolled back in LIFO order, and a
    /// savepoint is consumed by its rollback: re-open after rolling back
    /// if another trial round is needed.
    pub fn commit_savepoint(&mut self) -> CommitSavepoint {
        CommitSavepoint {
            checkpoint: self.solver.checkpoint(),
            agg_remaining: self.agg_remaining.clone(),
            member_done: self.member_done.clone(),
            group_load: self.group_load.clone(),
            part_in_load: self.part_in_load.clone(),
            memo: self.memo.clone(),
            seeded: self.seeded.clone(),
            commits: self.stats.commits,
        }
    }

    /// Rolls the checker back to `savepoint`, undoing every commit made
    /// since it was opened. Returns the number of solver trail
    /// operations unwound. The savepoint is consumed.
    pub fn rollback_commits(&mut self, savepoint: CommitSavepoint) -> u64 {
        let undone = self.solver.rollback(savepoint.checkpoint);
        self.agg_remaining = savepoint.agg_remaining;
        self.member_done = savepoint.member_done;
        self.group_load = savepoint.group_load;
        self.part_in_load = savepoint.part_in_load;
        self.memo = savepoint.memo;
        self.seeded = savepoint.seeded;
        self.stats.commits = savepoint.commits;
        undone
    }
}

/// A cross-commit savepoint of a [`PinChecker`]: the solver's trail
/// checkpoint plus the commit bookkeeping (remaining demand, group
/// loads, probe memo). Created by [`PinChecker::commit_savepoint`],
/// consumed by [`PinChecker::rollback_commits`].
#[derive(Clone, Debug)]
pub struct CommitSavepoint {
    checkpoint: mcs_ilp::Checkpoint,
    agg_remaining: Vec<i64>,
    member_done: Vec<bool>,
    group_load: Vec<u32>,
    part_in_load: Vec<i64>,
    memo: BTreeMap<(usize, i64), bool>,
    seeded: std::collections::BTreeSet<(usize, i64)>,
    commits: u64,
}

impl CommitSavepoint {
    /// Undo-trail depth at the snapshot (diagnostics for resynthesis
    /// telemetry: `trail undone = trail_len() - trail_depth()`).
    pub fn trail_depth(&self) -> usize {
        self.checkpoint.trail_depth()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_cdfg::designs::{ar_filter, synthetic};

    #[test]
    fn simple_ar_filter_is_feasible_at_rate_two() {
        let d = ar_filter::simple();
        assert!(PinChecker::new(d.cdfg(), 2).is_ok());
    }

    #[test]
    fn rate_one_requires_all_transfers_simultaneously() {
        // At rate 1 every transfer shares one group: P1 needs
        // 10 inputs x 8 bits = 80 > 40 input pins.
        let d = ar_filter::simple();
        assert_eq!(
            PinChecker::new(d.cdfg(), 1).unwrap_err(),
            PinAllocError::InfeasibleFromTheStart
        );
    }

    #[test]
    fn zero_rate_is_rejected() {
        let d = ar_filter::simple();
        assert_eq!(
            PinChecker::new(d.cdfg(), 0).unwrap_err(),
            PinAllocError::ZeroRate
        );
    }

    #[test]
    fn fig_2_5_checker_foresees_the_dead_end() {
        // Section 2.4: Pa has 2 output pins, Pc 1 input pin, rate 2.
        // V1 and V2 both in group 0 strands V3/V4.
        let d = synthetic::fig_2_5();
        let mut c = PinChecker::new(d.cdfg(), 2).unwrap();
        let v1 = d.op_named("V1");
        let v2 = d.op_named("V2");
        assert!(c.can_commit(v1, 0));
        c.commit(v1, 0).unwrap();
        // After V1 in group 0, V2 must not join it: V3 and V4 (both to
        // Pc's single input pin) need different groups, but with V1 and V2
        // in group 0 Pa has no output pin left there for either.
        let ok0 = c.can_commit(v2, 0);
        let ok1 = c.can_commit(v2, 1);
        assert!(ok1, "V2 must be placeable in the other group");
        assert!(
            !ok0,
            "the checker must foresee that V1,V2 in one group strands V3/V4"
        );
    }

    #[test]
    fn commits_fill_all_groups_exactly() {
        let d = synthetic::fig_2_5();
        let mut c = PinChecker::new(d.cdfg(), 2).unwrap();
        for (name, step) in [("V1", 0), ("V2", 1), ("V3", 1), ("V4", 0)] {
            let op = d.op_named(name);
            assert!(c.can_commit(op, step), "{name} at {step}");
            c.commit(op, step).unwrap();
        }
    }

    #[test]
    fn savepoint_rolls_back_commits_exactly() {
        let d = synthetic::fig_2_5();
        let mut c = PinChecker::new(d.cdfg(), 2).unwrap();
        let v1 = d.op_named("V1");
        let v2 = d.op_named("V2");
        c.commit(v1, 0).unwrap();
        let digest = c.solver_tableau_digest();
        let load0 = c.group_load(0);
        let load1 = c.group_load(1);
        let sp = c.commit_savepoint();
        // Two further commits mutate the tableau and the bookkeeping,
        // with interleaved probes opening nested inner checkpoints.
        assert!(c.can_commit(v2, 1));
        c.commit(v2, 1).unwrap();
        c.commit(d.op_named("V3"), 1).unwrap();
        assert_ne!(c.solver_tableau_digest(), digest);
        let undone = c.rollback_commits(sp);
        assert!(undone > 0, "commits leave trail entries to unwind");
        assert_eq!(c.solver_tableau_digest(), digest);
        assert_eq!(c.group_load(0), load0);
        assert_eq!(c.group_load(1), load1);
        assert_eq!(c.probe_stats().commits, 1);
        // The restored state supports a fresh trial round: replay the
        // rolled-back commits plus the remaining cross-chip transfer.
        for (name, step) in [("V2", 1), ("V3", 1), ("V4", 0)] {
            c.commit(d.op_named(name), step).unwrap();
        }
        assert_eq!(c.probe_stats().commits, 4);
    }

    #[test]
    fn savepoints_nest_lifo() {
        let d = synthetic::fig_2_5();
        let mut c = PinChecker::new(d.cdfg(), 2).unwrap();
        c.commit(d.op_named("V1"), 0).unwrap();
        let outer = c.commit_savepoint();
        c.commit(d.op_named("V2"), 1).unwrap();
        let inner = c.commit_savepoint();
        c.commit(d.op_named("V3"), 1).unwrap();
        assert_eq!(c.probe_stats().commits, 3);
        assert!(outer.trail_depth() <= inner.trail_depth());
        c.rollback_commits(inner);
        assert_eq!(c.probe_stats().commits, 2);
        c.rollback_commits(outer);
        assert_eq!(c.probe_stats().commits, 1);
    }

    #[test]
    fn aggregation_groups_uniform_transfers() {
        // The simple AR filter's 26 primary inputs collapse into one
        // aggregate per (env, partition) pair, keeping the tableau small
        // (Section 3.1.2).
        let d = ar_filter::simple();
        let c = PinChecker::new(d.cdfg(), 2).unwrap();
        assert!(c.agg_base.len() <= 12, "got {} blocks", c.agg_base.len());
    }

    #[test]
    fn probing_does_not_change_state() {
        let d = synthetic::fig_2_5();
        let mut c = PinChecker::new(d.cdfg(), 2).unwrap();
        let v1 = d.op_named("V1");
        for _ in 0..3 {
            assert!(c.can_commit(v1, 0));
        }
        assert!(!c.all_committed());
        // The first probe hit the solver; the repeats were memo hits.
        let stats = c.probe_stats();
        assert_eq!(stats.solver_probes, 1);
        assert_eq!(stats.memo_hits, 2);
    }

    #[test]
    fn memo_cache_is_invalidated_by_commits() {
        let d = synthetic::fig_2_5();
        let mut c = PinChecker::new(d.cdfg(), 2).unwrap();
        let v1 = d.op_named("V1");
        let v2 = d.op_named("V2");
        assert!(c.can_commit(v1, 0));
        c.commit(v1, 0).unwrap();
        // V2-at-0 was never probed, and the V1 verdict must not leak:
        // this probe re-enters the solver against the updated tableau.
        let before = c.probe_stats().solver_probes;
        assert!(!c.can_commit(v2, 0));
        assert!(c.probe_stats().solver_probes > before);
        assert_eq!(c.probe_stats().commits, 1);
    }

    #[test]
    fn seeded_memo_answers_probes_and_counts_seed_hits() {
        let d = synthetic::fig_2_5();
        let mut donor = PinChecker::new(d.cdfg(), 2).unwrap();
        let v1 = d.op_named("V1");
        let v2 = d.op_named("V2");
        assert!(donor.can_commit(v1, 0));
        assert!(donor.can_commit(v2, 1));
        let export = donor.initial_probe_memo();
        assert_eq!(export.len(), 2);

        let mut fresh = PinChecker::new(d.cdfg(), 2).unwrap();
        assert_eq!(fresh.seed_initial_memo(&export), 2);
        assert!(fresh.can_commit(v1, 0));
        assert!(fresh.can_commit(v2, 1));
        let stats = fresh.probe_stats();
        assert_eq!(stats.solver_probes, 0, "seeded probes must not re-solve");
        assert_eq!(stats.memo_hits, 2);
        assert_eq!(stats.seed_hits, 2);
        // Seeded entries are adopted, not learned: they must not be
        // re-exported as this checker's own epoch-0 verdicts.
        assert!(fresh.initial_probe_memo().is_empty());
    }

    #[test]
    fn seeding_after_a_commit_is_rejected() {
        let d = synthetic::fig_2_5();
        let mut donor = PinChecker::new(d.cdfg(), 2).unwrap();
        let v1 = d.op_named("V1");
        assert!(donor.can_commit(v1, 0));
        let export = donor.initial_probe_memo();

        let mut c = PinChecker::new(d.cdfg(), 2).unwrap();
        c.commit(v1, 0).unwrap();
        assert_eq!(c.seed_initial_memo(&export), 0);
        assert_eq!(c.probe_stats().seed_hits, 0);
    }

    #[test]
    fn commits_drop_seeded_entries_with_the_memo() {
        let d = synthetic::fig_2_5();
        let mut donor = PinChecker::new(d.cdfg(), 2).unwrap();
        let v1 = d.op_named("V1");
        let v2 = d.op_named("V2");
        assert!(donor.can_commit(v1, 0));
        assert!(donor.can_commit(v2, 1));
        let export = donor.initial_probe_memo();

        let mut c = PinChecker::new(d.cdfg(), 2).unwrap();
        assert_eq!(c.seed_initial_memo(&export), 2);
        c.commit(v1, 0).unwrap();
        // The seeded V2 verdict died with the memo; this re-solves and
        // must not be miscounted as a seed hit.
        let before = c.probe_stats().solver_probes;
        assert!(c.can_commit(v2, 1));
        assert!(c.probe_stats().solver_probes > before);
        assert_eq!(c.probe_stats().seed_hits, 0);
    }

    #[test]
    fn zero_pivot_budget_is_still_sound() {
        // Budget 0 sends every solve to the exact fallback; verdicts must
        // match the default-budget checker on the fig. 2.5 dead end.
        let d = synthetic::fig_2_5();
        let mut slow = PinChecker::with_pivot_budget(d.cdfg(), 2, 0).unwrap();
        assert_eq!(slow.pivot_budget(), 0);
        let mut fast = PinChecker::new(d.cdfg(), 2).unwrap();
        let v1 = d.op_named("V1");
        let v2 = d.op_named("V2");
        for c in [&mut slow, &mut fast] {
            assert!(c.can_commit(v1, 0));
            c.commit(v1, 0).unwrap();
            assert!(!c.can_commit(v2, 0));
            assert!(c.can_commit(v2, 1));
        }
        assert!(slow.probe_stats().exact_fallbacks > 0);
        assert_eq!(fast.probe_stats().exact_fallbacks, 0);
    }

    #[test]
    fn surrogate_rejects_obvious_overload_without_pivoting() {
        // fig_2_5: Pc has 1 input pin and V3/V4 (1 bit each) both target
        // it. After committing V3 in group 0, probing V4 into group 0
        // must be rejected by the surrogate bound alone.
        let d = synthetic::fig_2_5();
        let mut c = PinChecker::new(d.cdfg(), 2).unwrap();
        let v3 = d.op_named("V3");
        let v4 = d.op_named("V4");
        assert!(c.can_commit(v3, 0));
        c.commit(v3, 0).unwrap();
        assert!(!c.can_commit(v4, 0));
        assert_eq!(c.probe_stats().surrogate_rejects, 1);
        // And the rejection is memoized.
        assert!(!c.can_commit(v4, 0));
        assert_eq!(c.probe_stats().surrogate_rejects, 1);
        assert_eq!(c.probe_stats().memo_hits, 1);
    }

    #[test]
    fn differential_mode_agrees_across_a_full_schedule() {
        let d = synthetic::fig_2_5();
        let mut c = PinChecker::new(d.cdfg(), 2).unwrap();
        c.set_differential(true);
        for (name, step) in [("V1", 0), ("V2", 1), ("V3", 1), ("V4", 0)] {
            let op = d.op_named(name);
            // Probe a few wrong steps too; differential mode panics on
            // any trail/clone divergence.
            let _ = c.can_commit(op, step + 1);
            assert!(c.can_commit(op, step), "{name} at {step}");
            c.commit(op, step).unwrap();
        }
        assert_eq!(c.probe_stats().commits, 4);
        assert!(c.probe_stats().solver_probes > 0);
    }

    #[test]
    fn recorder_sees_probes_and_commits() {
        use mcs_obs::BufferingRecorder;
        use std::sync::Arc;
        let d = synthetic::fig_2_5();
        let buf = Arc::new(BufferingRecorder::new());
        let mut c = PinChecker::new(d.cdfg(), 2).unwrap();
        c.set_recorder(RecorderHandle::new(buf.clone()));
        let v1 = d.op_named("V1");
        assert!(c.can_commit(v1, 0));
        c.commit(v1, 0).unwrap();
        let events = buf.events();
        let checks: Vec<_> = events
            .iter()
            .filter_map(|e| match *e {
                Event::PinCheck {
                    group,
                    pins_used,
                    cap,
                    verdict,
                } => Some((group, pins_used, cap, verdict)),
                _ => None,
            })
            .collect();
        assert_eq!(checks.len(), 2, "one probe + one commit: {events:?}");
        // Both report V1's single bit in group 0 against the total budget
        // (Pa: 2 out, Pb: 2 in + 1 out... summed across all partitions).
        assert!(checks
            .iter()
            .all(|&(g, used, _, ok)| g == 0 && used > 0 && ok));
        assert_eq!(c.group_load(0), checks[1].1);
        assert_eq!(c.group_load(1), 0);
    }

    #[test]
    fn metrics_histogram_per_probe_source() {
        use mcs_metrics::Registry;
        use std::sync::Arc;
        let d = synthetic::fig_2_5();
        let reg = Arc::new(Registry::new());
        let mut c = PinChecker::new(d.cdfg(), 2).unwrap();
        c.set_metrics(&MetricsHandle::new(reg.clone()));
        let v3 = d.op_named("V3");
        let v4 = d.op_named("V4");
        assert!(c.can_commit(v3, 0)); // solver
        assert!(c.can_commit(v3, 0)); // memo
        c.commit(v3, 0).unwrap();
        assert!(!c.can_commit(v4, 0)); // surrogate
        let snap = reg.snapshot();
        assert_eq!(snap.histograms["probe.latency_us.solver"].count, 1);
        assert_eq!(snap.histograms["probe.latency_us.memo"].count, 1);
        assert_eq!(snap.histograms["probe.latency_us.surrogate"].count, 1);
        // The embedded solver's metrics ride along: the warm-started
        // probe may pivot zero times, but the counter must be registered.
        assert!(snap.counters.contains_key("ilp.pivots"));
    }

    #[test]
    fn batched_probe_candidates_match_can_commit_and_prime_the_memo() {
        let d = synthetic::fig_2_5();
        let mut batched = PinChecker::new(d.cdfg(), 2).unwrap();
        let mut single = PinChecker::new(d.cdfg(), 2).unwrap();
        let cands: Vec<(OpId, i64)> = ["V1", "V2", "V3", "V4"]
            .iter()
            .flat_map(|n| {
                let op = d.op_named(n);
                (0..2i64).map(move |k| (op, k))
            })
            .collect();
        let verdicts = batched.probe_candidates(&cands);
        for (&(op, step), &v) in cands.iter().zip(&verdicts) {
            assert_eq!(v, single.can_commit(op, step), "{op} at {step}");
        }
        let stats = batched.probe_stats();
        assert!(stats.batched_probes > 0);
        assert_eq!(stats.batched_probes, stats.solver_probes);
        assert_eq!(stats.batch_shared_checkpoints, 1);
        // The batch primed the memo: placing any probed candidate later
        // costs no further solver work.
        let before = batched.probe_stats().solver_probes;
        assert_eq!(batched.can_commit(d.op_named("V1"), 0), verdicts[0]);
        assert_eq!(batched.probe_stats().solver_probes, before);
        assert!(batched.probe_stats().memo_hits > 0);
        // A repeated batch is all memo hits: no new shared checkpoint.
        let again = batched.probe_candidates(&cands);
        assert_eq!(again, verdicts);
        assert_eq!(batched.probe_stats().batch_shared_checkpoints, 1);
    }

    #[test]
    fn batched_probe_candidates_respect_commits() {
        let d = synthetic::fig_2_5();
        let mut c = PinChecker::new(d.cdfg(), 2).unwrap();
        let v1 = d.op_named("V1");
        let v2 = d.op_named("V2");
        c.commit(v1, 0).unwrap();
        let verdicts = c.probe_candidates(&[(v2, 0), (v2, 1)]);
        assert_eq!(verdicts, vec![false, true], "fig. 2.5 dead end");
    }

    #[test]
    fn probe_sweep_agrees_and_leaves_no_trace() {
        let d = synthetic::fig_2_5();
        let mut c = PinChecker::new(d.cdfg(), 2).unwrap();
        let stats_before = c.probe_stats();
        let diffs = c.probe_sweep();
        assert!(diffs.is_empty(), "engines diverged: {diffs:?}");
        // The sweep is an uncached differential hook: it must not touch
        // the probe-layer counters or the memo.
        assert_eq!(c.probe_stats(), stats_before);
        let v1 = d.op_named("V1");
        assert!(c.can_commit(v1, 0));
        assert_eq!(c.probe_stats().memo_hits, 0, "sweep must not prime memo");
    }

    #[test]
    fn forced_wide_checker_matches_adaptive_verdicts() {
        let d = synthetic::fig_2_5();
        let mut adaptive = PinChecker::new(d.cdfg(), 2).unwrap();
        let mut wide = PinChecker::new(d.cdfg(), 2).unwrap();
        wide.force_wide_words();
        for (name, step) in [("V1", 0), ("V2", 1), ("V3", 1), ("V4", 0)] {
            let op = d.op_named(name);
            assert_eq!(
                adaptive.can_commit(op, step),
                wide.can_commit(op, step),
                "{name} at {step}"
            );
            adaptive.commit(op, step).unwrap();
            wide.commit(op, step).unwrap();
        }
        assert_eq!(adaptive.solver_promotions(), 0);
    }

    #[test]
    fn non_io_operation_is_rejected() {
        let d = ar_filter::simple();
        let mut c = PinChecker::new(d.cdfg(), 2).unwrap();
        let func = d.op_named("m1p");
        assert!(matches!(
            c.commit(func, 0),
            Err(PinAllocError::NotAnIoOperation(_))
        ));
    }
}
