//! Recognition of *simple* partitionings (Definition 3.2).
//!
//! The drive relation is taken over real partitions; the pseudo
//! environment partition is exempt (the paper's own AR-filter experiment
//! feeds primary inputs to all four chips, which would otherwise violate
//! condition 1 for partition 0).

use std::collections::BTreeSet;

use mcs_cdfg::{Cdfg, PartitionId};

/// Why a partitioning fails Definition 3.2.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimplicityViolation {
    /// A partition drives more than two partitions (condition 1).
    DrivesTooMany {
        /// The offending driver.
        partition: PartitionId,
        /// Partitions it drives.
        drives: Vec<PartitionId>,
    },
    /// A partition is driven by more than two partitions (condition 2).
    DrivenByTooMany {
        /// The offending partition.
        partition: PartitionId,
        /// Its drivers.
        drivers: Vec<PartitionId>,
    },
    /// A partition driven by two partitions has a driver that also drives
    /// someone else (condition 3).
    SharedDriverDrivesOthers {
        /// The doubly-driven partition.
        partition: PartitionId,
        /// The driver that violates the condition.
        driver: PartitionId,
    },
    /// A partition driving two partitions is not their only driver
    /// (condition 4).
    FanoutTargetsHaveOtherDrivers {
        /// The fan-out driver.
        partition: PartitionId,
        /// The target with another driver.
        target: PartitionId,
    },
}

impl std::fmt::Display for SimplicityViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimplicityViolation::DrivesTooMany { partition, drives } => {
                write!(
                    f,
                    "{partition} drives {} partitions: {drives:?}",
                    drives.len()
                )
            }
            SimplicityViolation::DrivenByTooMany { partition, drivers } => {
                write!(
                    f,
                    "{partition} is driven by {} partitions: {drivers:?}",
                    drivers.len()
                )
            }
            SimplicityViolation::SharedDriverDrivesOthers { partition, driver } => write!(
                f,
                "{partition} is driven by two partitions but its driver {driver} drives others"
            ),
            SimplicityViolation::FanoutTargetsHaveOtherDrivers { partition, target } => write!(
                f,
                "{partition} drives two partitions but is not the only driver of {target}"
            ),
        }
    }
}

/// The drive relation over real partitions: `drives[i]` is the set of real
/// partitions that receive a value produced in partition `i`.
pub fn drive_sets(cdfg: &Cdfg) -> Vec<BTreeSet<PartitionId>> {
    let n = cdfg.partition_count();
    let mut drives: Vec<BTreeSet<PartitionId>> = vec![BTreeSet::new(); n];
    for op in cdfg.io_ops() {
        if let Some((_, from, to)) = cdfg.op(op).io_endpoints() {
            if !from.is_environment() && !to.is_environment() {
                drives[from.index()].insert(to);
            }
        }
    }
    drives
}

/// Checks Definition 3.2. Returns `Ok(())` for simple partitionings and
/// the first violation otherwise.
///
/// # Errors
///
/// Returns the violated condition.
pub fn check_simple(cdfg: &Cdfg) -> Result<(), SimplicityViolation> {
    let n = cdfg.partition_count();
    let drives = drive_sets(cdfg);
    let mut driven_by: Vec<BTreeSet<PartitionId>> = vec![BTreeSet::new(); n];
    for (i, ds) in drives.iter().enumerate() {
        for d in ds {
            driven_by[d.index()].insert(PartitionId::new(i as u32));
        }
    }
    for i in 1..n {
        let p = PartitionId::new(i as u32);
        if drives[i].len() > 2 {
            return Err(SimplicityViolation::DrivesTooMany {
                partition: p,
                drives: drives[i].iter().copied().collect(),
            });
        }
        if driven_by[i].len() > 2 {
            return Err(SimplicityViolation::DrivenByTooMany {
                partition: p,
                drivers: driven_by[i].iter().copied().collect(),
            });
        }
        if driven_by[i].len() == 2 {
            for d in &driven_by[i] {
                if drives[d.index()].len() > 1 {
                    return Err(SimplicityViolation::SharedDriverDrivesOthers {
                        partition: p,
                        driver: *d,
                    });
                }
            }
        }
        if drives[i].len() == 2 {
            for t in &drives[i] {
                if driven_by[t.index()].len() > 1 {
                    return Err(SimplicityViolation::FanoutTargetsHaveOtherDrivers {
                        partition: p,
                        target: *t,
                    });
                }
            }
        }
    }
    Ok(())
}

/// `true` iff the partitioning satisfies Definition 3.2.
pub fn is_simple(cdfg: &Cdfg) -> bool {
    check_simple(cdfg).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_cdfg::designs::{ar_filter, synthetic};
    use mcs_cdfg::PortMode;

    #[test]
    fn the_simple_ar_partitioning_is_simple() {
        let d = ar_filter::simple();
        assert_eq!(check_simple(d.cdfg()), Ok(()));
    }

    #[test]
    fn the_general_ar_partitioning_is_not_simple() {
        let d = ar_filter::general(3, PortMode::Unidirectional);
        assert!(check_simple(d.cdfg()).is_err());
    }

    #[test]
    fn fig_2_3_is_not_simple() {
        // Pa drives Pc and Pd; Pb drives Pd. Pd is driven by two (Pa, Pb)
        // whose driver Pa drives others (condition 3), equivalently Pa
        // fans out to a target with another driver (condition 4).
        let d = synthetic::fig_2_3();
        assert!(matches!(
            check_simple(d.cdfg()),
            Err(SimplicityViolation::SharedDriverDrivesOthers { .. })
                | Err(SimplicityViolation::FanoutTargetsHaveOtherDrivers { .. })
        ));
    }

    #[test]
    fn fig_2_5_is_simple() {
        // Pa drives Pb and Pc, and is the only driver of both.
        let d = synthetic::fig_2_5();
        assert_eq!(check_simple(d.cdfg()), Ok(()));
    }

    #[test]
    fn drive_sets_ignore_environment() {
        let d = ar_filter::simple();
        let drives = drive_sets(d.cdfg());
        // Ring: P1 -> P3 -> P2 -> P4 -> P1 (see the design docs).
        let names: Vec<Vec<u32>> = drives
            .iter()
            .map(|s| s.iter().map(|p| p.0).collect())
            .collect();
        assert_eq!(names[0], Vec::<u32>::new()); // environment exempt
        assert_eq!(names.iter().map(Vec::len).sum::<usize>(), 4);
    }
}
