//! # mcs-sched
//!
//! The scheduling engines of the `multichip-hls` workspace:
//!
//! * [`list_schedule`] — resource-constrained list scheduling of all
//!   partitions at once (Section 3.2), consulting a pluggable
//!   [`IoPolicy`] before each I/O placement: [`PinPolicy`] wraps the
//!   Chapter 3 pin-allocation feasibility checker; [`BusPolicy`] allocates
//!   communication slots on a fixed interchip connection with the dynamic
//!   bus reassignment of Section 4.2.
//! * [`fds_schedule`] — force-directed scheduling (Section 5.1) used by
//!   the schedule-first flow of Chapter 5.
//! * [`AllocationWheel`] — multi-cycle operation binding with the
//!   fragmentation safety check of Section 7.4.
//! * [`Schedule`]/[`validate`] — schedule representation and a full
//!   constraint validator (precedence with chaining, placement rules,
//!   resources, recursive-edge maximum time constraints).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bus_policy;
mod fds;
mod list;
mod schedule;
mod wheel;

pub use bus_policy::{BusPolicy, SlotPlacement};
pub use fds::{fds_schedule, FdsConfig};
pub use list::{
    feedback_consumers, list_schedule, list_schedule_restarts, IoPolicy, ListConfig, NullPolicy,
    PinPolicy, SchedError,
};
pub use schedule::{validate, Schedule, ScheduleViolation};
pub use wheel::{AllocationWheel, WheelError};
