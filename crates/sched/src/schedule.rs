//! Schedule representation and validation.
//!
//! A [`Schedule`] assigns every operation a start [`StepTime`]. Validation
//! checks the full constraint set the paper's schedulers must respect:
//! data precedence with chaining, the same-cycle I/O model, per-group
//! resource constraints via allocation-wheel binding (Section 7.4), and
//! the maximum time constraints induced by data recursive edges
//! (Section 7.1).

use std::collections::BTreeMap;

use mcs_cdfg::timing::{self, StepTime};
use mcs_cdfg::{Cdfg, OpId, OpKind, OperatorClass, PartitionId};

use crate::wheel::AllocationWheel;

/// A complete schedule of a pipelined design.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schedule {
    /// Initiation rate `L`.
    pub rate: u32,
    /// Start time per operation, indexed by `OpId`.
    pub start: Vec<StepTime>,
}

impl Schedule {
    /// Start time of one operation.
    pub fn of(&self, op: OpId) -> StepTime {
        self.start[op.index()]
    }

    /// Control-step group of one operation.
    pub fn group_of(&self, op: OpId) -> u32 {
        self.of(op).step.rem_euclid(self.rate as i64) as u32
    }

    /// First control step used.
    pub fn first_step(&self) -> i64 {
        self.start.iter().map(|t| t.step).min().unwrap_or(0)
    }

    /// Last control step used.
    pub fn last_step(&self) -> i64 {
        self.start.iter().map(|t| t.step).max().unwrap_or(0)
    }

    /// Pipe length: number of control steps from step 0 through the last
    /// finish (the paper reports pipe length over nonnegative steps;
    /// negative steps hold preloaded transfers of earlier instances).
    pub fn pipe_length(&self, cdfg: &Cdfg) -> i64 {
        let stage = cdfg.library().stage_ns() as i64;
        cdfg.op_ids()
            .map(|op| {
                let fin = timing::finish_ns(cdfg, op, self.of(op));
                fin.div_euclid(stage) + i64::from(fin.rem_euclid(stage) != 0)
            })
            .max()
            .unwrap_or(0)
    }

    /// Operations starting in `step`, in id order.
    pub fn ops_at(&self, cdfg: &Cdfg, step: i64) -> Vec<OpId> {
        cdfg.op_ids()
            .filter(|op| self.of(*op).step == step)
            .collect()
    }

    /// Maximum concurrent use per `(partition, class)` over step groups —
    /// the "resources required" measure reported by Tables 5.1 and 5.3.
    pub fn resource_usage(&self, cdfg: &Cdfg) -> BTreeMap<(PartitionId, OperatorClass), u32> {
        let mut per_group: BTreeMap<(PartitionId, OperatorClass, u32), u32> = BTreeMap::new();
        for op in cdfg.op_ids() {
            if let OpKind::Func(class) = &cdfg.op(op).kind {
                let p = cdfg.op(op).partition;
                let cycles = cdfg.op_cycles(op) as i64;
                for d in 0..cycles {
                    let g = (self.of(op).step + d).rem_euclid(self.rate as i64) as u32;
                    *per_group.entry((p, class.clone(), g)).or_insert(0) += 1;
                }
            }
        }
        let mut usage = BTreeMap::new();
        for ((p, class, _), n) in per_group {
            let e = usage.entry((p, class)).or_insert(0);
            *e = (*e).max(n);
        }
        usage
    }
}

/// A violated scheduling constraint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScheduleViolation {
    /// A consumer starts before its producer's data is ready.
    Precedence {
        /// Producer.
        from: OpId,
        /// Consumer.
        to: OpId,
    },
    /// A chainable operation does not fit within its control step, or a
    /// boundary-start operation starts mid-step.
    Placement {
        /// The misplaced operation.
        op: OpId,
    },
    /// More concurrent operations than functional units in some group.
    Resources {
        /// The starved partition.
        partition: PartitionId,
        /// Operator class.
        class: OperatorClass,
    },
    /// A maximum time constraint from a data recursive edge is violated.
    MaxTime {
        /// Producer of the recursive value.
        from: OpId,
        /// Consumer.
        to: OpId,
    },
}

impl std::fmt::Display for ScheduleViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleViolation::Precedence { from, to } => {
                write!(f, "{to} starts before its producer {from} finishes")
            }
            ScheduleViolation::Placement { op } => {
                write!(f, "{op} violates the chaining/boundary placement rules")
            }
            ScheduleViolation::Resources { partition, class } => {
                write!(
                    f,
                    "{partition} exceeds its {class} units in some step group"
                )
            }
            ScheduleViolation::MaxTime { from, to } => {
                write!(
                    f,
                    "recursive edge {from}->{to} violates its maximum time constraint"
                )
            }
        }
    }
}

/// Validates `schedule` against every constraint class; returns all
/// violations (empty for a legal schedule).
pub fn validate(cdfg: &Cdfg, schedule: &Schedule) -> Vec<ScheduleViolation> {
    let mut violations = Vec::new();
    let stage = cdfg.library().stage_ns();

    // Placement legality per operation.
    for op in cdfg.op_ids() {
        let t = schedule.of(op);
        if timing::boundary_start(cdfg, op) && t.offset_ns != 0 {
            violations.push(ScheduleViolation::Placement { op });
        }
        if cdfg.op_cycles(op) == 1 && t.offset_ns + cdfg.op_delay_ns(op) > stage {
            violations.push(ScheduleViolation::Placement { op });
        }
    }

    // Data precedence over degree-0 edges.
    for e in cdfg.edges() {
        if e.degree == 0 {
            let ready = timing::finish_ns(cdfg, e.from, schedule.of(e.from));
            if schedule.of(e.to).ns(stage) < ready {
                violations.push(ScheduleViolation::Precedence {
                    from: e.from,
                    to: e.to,
                });
            }
        }
    }

    // Maximum time constraints (Section 7.1).
    for c in timing::max_time_constraints(cdfg, schedule.rate) {
        if schedule.of(c.from).step - schedule.of(c.to).step > c.bound {
            violations.push(ScheduleViolation::MaxTime {
                from: c.from,
                to: c.to,
            });
        }
    }

    // Resources: bind every partition/class onto allocation wheels.
    let mut by_pc: BTreeMap<(PartitionId, OperatorClass), Vec<OpId>> = BTreeMap::new();
    for op in cdfg.op_ids() {
        if let OpKind::Func(class) = &cdfg.op(op).kind {
            by_pc
                .entry((cdfg.op(op).partition, class.clone()))
                .or_default()
                .push(op);
        }
    }
    for ((p, class), ops) in by_pc {
        // Unlimited when the partition declares no constraint; more units
        // than operations is never needed.
        let units = cdfg
            .partition(p)
            .resources
            .get(&class)
            .copied()
            .unwrap_or(u32::MAX)
            .min(ops.len() as u32);
        let cycles = cdfg.library().cycles(&class);
        // A wheel that cannot even be built (zero rate) can never bind
        // the operations: report it as a resource violation.
        let Ok(mut wheel) = AllocationWheel::new(units, schedule.rate, cycles) else {
            violations.push(ScheduleViolation::Resources {
                partition: p,
                class,
            });
            continue;
        };
        let mut ok = true;
        let mut sorted = ops.clone();
        sorted.sort_by_key(|&op| (schedule.of(op).step, op));
        for op in sorted {
            if wheel.place(schedule.of(op).step).is_none() {
                ok = false;
                break;
            }
        }
        if !ok {
            violations.push(ScheduleViolation::Resources {
                partition: p,
                class,
            });
        }
    }

    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_cdfg::designs::synthetic;
    use mcs_cdfg::timing::asap;

    #[test]
    fn asap_times_validate_cleanly() {
        let d = synthetic::quickstart();
        let t = asap(d.cdfg()).unwrap();
        let s = Schedule {
            rate: 1,
            start: t.start,
        };
        assert_eq!(validate(d.cdfg(), &s), vec![]);
    }

    #[test]
    fn precedence_violation_is_caught() {
        let d = synthetic::quickstart();
        let t = asap(d.cdfg()).unwrap();
        let mut s = Schedule {
            rate: 1,
            start: t.start,
        };
        // Yank the accumulator before its input transfer.
        let acc = d.op_named("acc");
        s.start[acc.index()] = StepTime::at_step(-5);
        assert!(validate(d.cdfg(), &s)
            .iter()
            .any(|v| matches!(v, ScheduleViolation::Precedence { .. })));
    }

    #[test]
    fn boundary_ops_must_start_at_offset_zero() {
        let d = synthetic::quickstart();
        let t = asap(d.cdfg()).unwrap();
        let mut s = Schedule {
            rate: 1,
            start: t.start,
        };
        let x = d.op_named("X");
        s.start[x.index()] = StepTime {
            step: s.of(x).step,
            offset_ns: 20,
        };
        assert!(validate(d.cdfg(), &s)
            .iter()
            .any(|v| matches!(v, ScheduleViolation::Placement { .. })));
    }

    #[test]
    fn resource_overuse_is_caught() {
        let d = synthetic::multicycle_example();
        let t = asap(d.cdfg()).unwrap();
        let mut s = Schedule {
            rate: 6,
            start: t.start,
        };
        // Force all three 2-cycle ops onto the single unit's same cells.
        for name in ["op1", "op2", "op3"] {
            s.start[d.op_named(name).index()] = StepTime::at_step(1);
        }
        assert!(validate(d.cdfg(), &s)
            .iter()
            .any(|v| matches!(v, ScheduleViolation::Resources { .. })));
    }

    #[test]
    fn max_time_violation_is_caught() {
        let d = synthetic::quickstart();
        let t = asap(d.cdfg()).unwrap();
        let mut s = Schedule {
            rate: 1,
            start: t.start,
        };
        // acc -> acc self edge with degree 1 bounds step(acc)-step(acc)=0
        // <= 1*1-1 = 0; make a fake violation via the io instead: move the
        // producer far past the consumer window.
        let acc = d.op_named("acc");
        let o = d.op_named("o");
        // o depends on acc; push acc after o to break precedence AND keep
        // max-time machinery exercised by recursive self-loop (trivially
        // satisfied).
        s.start[acc.index()] = StepTime::at_step(s.of(o).step + 3);
        let vs = validate(d.cdfg(), &s);
        assert!(!vs.is_empty());
    }

    #[test]
    fn resource_usage_reports_group_maxima() {
        let d = synthetic::multicycle_example();
        let t = asap(d.cdfg()).unwrap();
        let s = Schedule {
            rate: 6,
            start: t.start,
        };
        let usage = s.resource_usage(d.cdfg());
        let slow = mcs_cdfg::OperatorClass::Custom("slow".into());
        let p1 = PartitionId::new(1);
        assert!(usage[&(p1, slow)] >= 1);
    }

    #[test]
    fn pipe_length_counts_through_last_finish() {
        let d = synthetic::quickstart();
        let t = asap(d.cdfg()).unwrap();
        let s = Schedule {
            rate: 1,
            start: t.start,
        };
        assert!(s.pipe_length(d.cdfg()) >= s.last_step());
    }
}
