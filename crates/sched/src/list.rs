//! List scheduling under resource constraints with a pluggable I/O
//! placement policy (Figure 3.4 and Section 4.2).
//!
//! All partitions are scheduled simultaneously (Section 3.2). Before an
//! I/O operation is placed in a control step, the policy is consulted —
//! the Chapter 3 pin-allocation feasibility checker, the Chapter 4 bus
//! allocator with dynamic reassignment, or no policy at all. Rejected I/O
//! operations are postponed to a later step, exactly as in the paper's
//! prototype.
//!
//! Feedback transfers — I/O operations fed by a data recursive edge — are
//! placed in a second phase inside their legal window, which typically
//! lands them in *negative* control steps: the value of an earlier
//! execution instance is brought on-chip before the current instance
//! starts (Section 4.4.2's "I/O operations with negative indexes").

use std::collections::BTreeMap;

use mcs_cdfg::timing::{self, StepTime};
use mcs_cdfg::{Cdfg, OpId, OpKind, OperatorClass, PartitionId};
use mcs_ctl::{Budget, Termination};
use mcs_metrics::MetricsHandle;
use mcs_obs::{Event, PlaceVerdict, RecorderHandle};
use mcs_pinalloc::PinChecker;

use crate::schedule::Schedule;
use crate::wheel::{AllocationWheel, WheelError};

/// Pin/bus admission control consulted before every I/O placement.
pub trait IoPolicy {
    /// Attempts to allocate resources for `op` in `step`; commits and
    /// returns `true` on success, leaves state unchanged and returns
    /// `false` otherwise.
    fn try_place(&mut self, cdfg: &Cdfg, op: OpId, step: i64) -> bool;

    /// Like [`IoPolicy::try_place`], but reports *why* a placement was
    /// rejected. The default conflates every rejection into
    /// [`PlaceVerdict::Rejected`]; policies that know better override it
    /// (and implement `try_place` in terms of it).
    fn try_place_explained(&mut self, cdfg: &Cdfg, op: OpId, step: i64) -> PlaceVerdict {
        if self.try_place(cdfg, op, step) {
            PlaceVerdict::Placed
        } else {
            PlaceVerdict::Rejected
        }
    }

    /// Batch hint: the scheduler is about to consult the policy once per
    /// `(op, step)` entry of `candidates`, all within one control step.
    /// Policies that can answer a whole slate against a single snapshot
    /// warm their caches here — the pin checker opens one solver
    /// checkpoint for the lot instead of one per candidate. Must be
    /// verdict-neutral: priming may never change what a subsequent
    /// `try_place` would decide. The default does nothing.
    fn prime_candidates(&mut self, _cdfg: &Cdfg, _candidates: &[(OpId, i64)]) {}
}

/// A policy that admits everything (pure resource-constrained list
/// scheduling).
#[derive(Clone, Copy, Debug, Default)]
pub struct NullPolicy;

impl IoPolicy for NullPolicy {
    fn try_place(&mut self, _cdfg: &Cdfg, _op: OpId, _step: i64) -> bool {
        true
    }
}

/// The Chapter 3 policy: the incremental pin-allocation feasibility
/// checker guards every I/O placement (the bold boxes of Figure 3.4).
#[derive(Clone, Debug)]
pub struct PinPolicy {
    checker: PinChecker,
}

impl PinPolicy {
    /// Wraps a built checker.
    pub fn new(checker: PinChecker) -> Self {
        PinPolicy { checker }
    }

    /// The wrapped checker (to inspect commitments after scheduling).
    pub fn checker(&self) -> &PinChecker {
        &self.checker
    }

    /// Routes the checker's `PinCheck`/`GomoryCut` events to `recorder`.
    pub fn set_recorder(&mut self, recorder: RecorderHandle) {
        self.checker.set_recorder(recorder);
    }
}

impl IoPolicy for PinPolicy {
    fn try_place(&mut self, cdfg: &Cdfg, op: OpId, step: i64) -> bool {
        self.try_place_explained(cdfg, op, step).placed()
    }

    fn try_place_explained(&mut self, _cdfg: &Cdfg, op: OpId, step: i64) -> PlaceVerdict {
        if self.checker.can_commit(op, step) && self.checker.commit(op, step).is_ok() {
            PlaceVerdict::Placed
        } else {
            PlaceVerdict::PinInfeasible
        }
    }

    fn prime_candidates(&mut self, _cdfg: &Cdfg, candidates: &[(OpId, i64)]) {
        // One shared checkpoint for the step's whole I/O slate. Every
        // verdict lands in the memo, so the placement loop's `can_commit`
        // calls are memo hits until the first commit — and rejections
        // survive even that (infeasibility is monotone under commits).
        self.checker.probe_candidates(candidates);
    }
}

/// List-scheduler tuning.
#[derive(Clone, Debug)]
pub struct ListConfig {
    /// Initiation rate `L`.
    pub rate: u32,
    /// Abort if the schedule exceeds this many control steps.
    pub max_steps: i64,
    /// Deterministic priority perturbation. Zero keeps the pure
    /// critical-path order; other values postpone different operations,
    /// the knob behind [`list_schedule_restarts`] (the paper improves
    /// several Table 5.2/5.4 entries "by postponing some of the operations
    /// and rerunning the program").
    pub priority_bias: u64,
    /// Earliest permitted start step per operation. Flows use this to hold
    /// the consumers of feedback transfers back a few steps when a
    /// composite maximum time constraint proved too tight — the "constrain
    /// some of the operations and rerun" remedy of Sections 5.3/6.3.
    pub hold_back: BTreeMap<OpId, i64>,
    /// Sink for per-placement `ScheduleDecision` events (inactive by
    /// default, costing one branch per I/O consultation).
    pub recorder: RecorderHandle,
    /// Metrics sink (`sched.place_attempts`): every I/O policy
    /// consultation counts one attempt, placed or not. Disconnected by
    /// default, costing one branch per consultation.
    pub metrics: MetricsHandle,
    /// Optional execution budget, polled at every control-step boundary
    /// and before each phase-2 window search. A tripped budget aborts
    /// with [`SchedError::Interrupted`] rather than running to the step
    /// bound.
    pub budget: Option<Budget>,
}

impl ListConfig {
    /// Defaults: generous step bound, no perturbation.
    pub fn new(rate: u32) -> Self {
        ListConfig {
            rate,
            max_steps: 512,
            priority_bias: 0,
            hold_back: BTreeMap::new(),
            recorder: RecorderHandle::default(),
            metrics: MetricsHandle::default(),
            budget: None,
        }
    }
}

/// Why list scheduling failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SchedError {
    /// The initiation rate must be positive.
    ZeroRate,
    /// An operation missed the deadline imposed by a maximum time
    /// constraint (the greedy failure mode the paper reports for the
    /// elliptic filter at initiation rate 5).
    DeadlineMissed {
        /// The late operation.
        op: OpId,
    },
    /// A feedback transfer found no admissible step in its legal window.
    NoWindowSlot {
        /// The unplaceable transfer.
        op: OpId,
    },
    /// The step bound was exceeded (policy rejections or resource
    /// starvation never resolved).
    StepLimit,
    /// Equation 7.5's lower bound proves the declared units cannot carry
    /// the operations at this initiation rate.
    ResourceInfeasible {
        /// The starved partition.
        partition: PartitionId,
        /// The operator class.
        class: OperatorClass,
    },
    /// The graph is cyclic over degree-0 edges.
    Cyclic,
    /// The operator library declares a zero-cycle class — malformed
    /// input that used to trip an assert inside the allocation wheel.
    ZeroCycles {
        /// The offending operator class.
        class: OperatorClass,
    },
    /// A phase-2 feedback transfer depends on another deferred transfer
    /// (chained feedback), which this scheduler does not support — a
    /// malformed-graph shape that used to panic.
    UnscheduledDependence {
        /// The transfer whose window could not be computed.
        op: OpId,
    },
    /// An internal bookkeeping invariant failed (a bug guard; never
    /// expected on any input).
    Inconsistent(&'static str),
    /// The attached execution [`Budget`] tripped; the carried
    /// [`Termination`] says why.
    Interrupted(Termination),
}

impl std::fmt::Display for SchedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedError::ZeroRate => write!(f, "initiation rate must be at least 1"),
            SchedError::DeadlineMissed { op } => {
                write!(f, "{op} missed a recursive-edge deadline")
            }
            SchedError::NoWindowSlot { op } => {
                write!(f, "feedback transfer {op} fits no admissible step")
            }
            SchedError::StepLimit => write!(f, "schedule exceeded the step bound"),
            SchedError::ResourceInfeasible { partition, class } => write!(
                f,
                "{partition} cannot execute its {class} operations at this rate (Eq. 7.5)"
            ),
            SchedError::Cyclic => write!(f, "dependence cycle over degree-0 edges"),
            SchedError::ZeroCycles { class } => {
                write!(f, "operator class {class} declares zero cycles")
            }
            SchedError::UnscheduledDependence { op } => {
                write!(
                    f,
                    "feedback transfer {op} depends on another deferred transfer"
                )
            }
            SchedError::Inconsistent(what) => {
                write!(f, "internal scheduler invariant failed: {what}")
            }
            SchedError::Interrupted(t) => write!(f, "scheduling interrupted ({t})"),
        }
    }
}

impl std::error::Error for SchedError {}

/// Schedules `cdfg` with list scheduling under its partitions' resource
/// constraints, consulting `policy` before each I/O placement.
///
/// # Errors
///
/// See [`SchedError`]; greedy list scheduling is incomplete and may fail
/// on designs with tight maximum time constraints even when a schedule
/// exists (Section 4.4.2).
pub fn list_schedule<P: IoPolicy>(
    cdfg: &Cdfg,
    cfg: &ListConfig,
    policy: &mut P,
) -> Result<Schedule, SchedError> {
    if cfg.rate == 0 {
        return Err(SchedError::ZeroRate);
    }
    let m_place_attempts = cfg.metrics.counter("sched.place_attempts");
    let stage = cdfg.library().stage_ns() as i64;
    let n = cdfg.ops().len();
    let order = cdfg.topo_order().map_err(|_| SchedError::Cyclic)?;

    // Feedback transfers (fed by a recursive edge) go to phase 2.
    let deferred: Vec<bool> = cdfg
        .op_ids()
        .map(|op| cdfg.op(op).is_io() && cdfg.preds(op).iter().any(|&e| cdfg.edge(e).degree > 0))
        .collect();

    // Priority: longest path to a sink over degree-0 edges, in ns.
    let mut prio = vec![0i64; n];
    for &op in order.iter().rev() {
        let own = if cdfg.op_cycles(op) > 1 {
            cdfg.op_cycles(op) as i64 * stage
        } else {
            cdfg.op_delay_ns(op) as i64
        };
        let succ_max = cdfg
            .succs(op)
            .iter()
            .filter(|&&e| cdfg.edge(e).degree == 0)
            .map(|&e| prio[cdfg.edge(e).to.index()])
            .max()
            .unwrap_or(0);
        prio[op.index()] = own + succ_max;
    }

    // Same-value transfers prefer to ride one bus slot, which requires
    // co-scheduling (Section 2.2.1): order each value's non-deferred
    // transfers by priority and let followers wait for their leader, so
    // the within-step loop can land them together.
    let mut sibling_pred: Vec<Option<OpId>> = vec![None; n];
    {
        let groups = cdfg.io_ops_by_value();
        for (_, ops) in groups {
            let mut members: Vec<OpId> =
                ops.into_iter().filter(|op| !deferred[op.index()]).collect();
            if members.len() < 2 {
                continue;
            }
            members.sort_by_key(|&op| (std::cmp::Reverse(prio[op.index()]), op));
            for pair in members.windows(2) {
                sibling_pred[pair[1].index()] = Some(pair[0]);
            }
        }
    }

    // Maximum time constraints. Deferred transfers get their own phase-2
    // window, but the constraints *through* them must bind phase 1:
    // a producer feeding a feedback transfer of degree `d` whose value is
    // consumed by `cons` obeys
    // `t_prod - t_cons <= d*L - cycles(prod) - 1` (the transfer itself
    // takes a cycle between them). Without these composite constraints the
    // producer can drift so late that the transfer window becomes empty.
    let mut constraints: Vec<timing::MaxTimeConstraint> =
        timing::max_time_constraints(cdfg, cfg.rate)
            .into_iter()
            .filter(|c| !deferred[c.from.index()] && !deferred[c.to.index()])
            .collect();
    for w in cdfg.op_ids() {
        if !deferred[w.index()] {
            continue;
        }
        for &pe in cdfg.preds(w) {
            let pe = cdfg.edge(pe);
            if pe.degree == 0 {
                continue;
            }
            for &se in cdfg.succs(w) {
                let se = cdfg.edge(se);
                if se.degree == 0 && !deferred[se.to.index()] {
                    constraints.push(timing::MaxTimeConstraint {
                        from: pe.from,
                        to: se.to,
                        bound: pe.degree as i64 * cfg.rate as i64
                            - cdfg.op_cycles(pe.from) as i64
                            - 1,
                    });
                }
            }
        }
    }

    // Chaining-aware backward deadline propagation: once an op acquires a
    // start-step deadline, its predecessors must finish in time for it.
    let latest_start_ns = |op: OpId, d: i64| -> i64 {
        if timing::boundary_start(cdfg, op) {
            d * stage
        } else {
            d * stage + (stage - cdfg.op_delay_ns(op) as i64).max(0)
        }
    };
    let tighten = |deadline: &mut Vec<i64>, op: OpId, d: i64| {
        let mut work = vec![(op, d)];
        while let Some((o, d)) = work.pop() {
            if d >= deadline[o.index()] {
                continue;
            }
            deadline[o.index()] = d;
            let latest = latest_start_ns(o, d);
            for &e in cdfg.preds(o) {
                let e = cdfg.edge(e);
                if e.degree == 0 && !deferred[e.from.index()] {
                    let pd = timing::place_before(cdfg, e.from, latest).step;
                    work.push((e.from, pd));
                }
            }
        }
    };
    let mut deadline: Vec<i64> = vec![i64::MAX / 4; n];

    // Allocation wheels per (partition, class).
    let mut wheels: BTreeMap<(PartitionId, OperatorClass), AllocationWheel> = BTreeMap::new();
    let mut unscheduled_of: BTreeMap<(PartitionId, OperatorClass), u32> = BTreeMap::new();
    for op in cdfg.op_ids() {
        if let OpKind::Func(class) = &cdfg.op(op).kind {
            let key = (cdfg.op(op).partition, class.clone());
            *unscheduled_of.entry(key).or_insert(0) += 1;
        }
    }
    for (key, &count) in &unscheduled_of {
        let units = cdfg
            .partition(key.0)
            .resources
            .get(&key.1)
            .copied()
            .unwrap_or(u32::MAX)
            .min(count);
        let cycles = cdfg.library().cycles(&key.1);
        // Equation 7.5: fail fast when the units provably cannot keep up.
        match AllocationWheel::lower_bound(count, cfg.rate, cycles) {
            Some(need) if need <= units => {}
            _ => {
                return Err(SchedError::ResourceInfeasible {
                    partition: key.0,
                    class: key.1.clone(),
                })
            }
        }
        let wheel = AllocationWheel::new(units, cfg.rate, cycles).map_err(|e| match e {
            WheelError::ZeroRate => SchedError::ZeroRate,
            WheelError::ZeroCycles => SchedError::ZeroCycles {
                class: key.1.clone(),
            },
        })?;
        wheels.insert(key.clone(), wheel);
    }

    let mut start: Vec<Option<StepTime>> = vec![None; n];
    let mut pending_phase1 = (0..n).filter(|&i| !deferred[i]).count();

    let mut step = 0i64;
    while pending_phase1 > 0 {
        // A control-step boundary is a safe interruption point: nothing
        // is half-placed here.
        if let Some(budget) = &cfg.budget {
            if let Some(t) = budget.check() {
                return Err(SchedError::Interrupted(t));
            }
        }
        if step > cfg.max_steps {
            return Err(SchedError::StepLimit);
        }
        // Activate deadlines whose anchor (the constraint's consumer) is
        // placed, propagating backward through the dependence cone.
        for c in &constraints {
            if let Some(t_to) = start[c.to.index()] {
                tighten(&mut deadline, c.from, t_to.step + c.bound);
            }
        }
        for op in cdfg.op_ids() {
            if start[op.index()].is_none() && !deferred[op.index()] && step > deadline[op.index()] {
                return Err(SchedError::DeadlineMissed { op });
            }
        }
        // Chaining can make ops ready mid-step; iterate to a fixpoint.
        loop {
            let mut candidates: Vec<(i64, i64, OpId, StepTime)> = Vec::new();
            for op in cdfg.op_ids() {
                if start[op.index()].is_some() || deferred[op.index()] {
                    continue;
                }
                // Ready when every degree-0 predecessor not deferred is
                // placed (deferred producers deliver preloaded values).
                let mut ready = 0i64;
                let mut ok = true;
                for &e in cdfg.preds(op) {
                    let e = cdfg.edge(e);
                    if e.degree > 0 || deferred[e.from.index()] {
                        continue;
                    }
                    match start[e.from.index()] {
                        Some(t) => ready = ready.max(timing::finish_ns(cdfg, e.from, t)),
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
                if !ok {
                    continue;
                }
                if let Some(leader) = sibling_pred[op.index()] {
                    if start[leader.index()].is_none() {
                        continue;
                    }
                }
                let hold = cfg.hold_back.get(&op).copied().unwrap_or(i64::MIN);
                let cand = timing::place_after(cdfg, op, ready.max(step * stage));
                if cand.step == step && cand.step >= hold && cand.step <= deadline[op.index()] {
                    let jitter = if cfg.priority_bias == 0 {
                        0
                    } else {
                        // Small deterministic hash of (bias, op): enough to
                        // reorder ties and near-ties between restarts.
                        let mut h =
                            cfg.priority_bias ^ (op.0 as u64).wrapping_mul(0x9E3779B97F4A7C15);
                        h ^= h >> 33;
                        (h % 64) as i64
                    };
                    candidates.push((deadline[op.index()], -prio[op.index()] + jitter, op, cand));
                }
            }
            candidates.sort();
            // Hand the step's I/O slate to the policy in one batch before
            // placing anything: the pin checker probes them all under a
            // single checkpoint, so the per-candidate consultations below
            // resolve from the memo.
            let io_slate: Vec<(OpId, i64)> = candidates
                .iter()
                .filter(|c| matches!(cdfg.op(c.2).kind, OpKind::Io { .. }))
                .map(|c| (c.2, c.3.step))
                .collect();
            if io_slate.len() > 1 {
                policy.prime_candidates(cdfg, &io_slate);
            }
            let mut placed_any = false;
            for (_, _, op, cand) in candidates {
                if start[op.index()].is_some() {
                    continue;
                }
                match &cdfg.op(op).kind {
                    OpKind::Func(class) => {
                        let key = (cdfg.op(op).partition, class.clone());
                        let wheel = wheels
                            .get_mut(&key)
                            .ok_or(SchedError::Inconsistent("no wheel for a counted class"))?;
                        let remaining = unscheduled_of[&key] - 1;
                        let multicycle = cdfg.library().cycles(class) > 1;
                        let admissible = if multicycle {
                            // Section 7.4 safety check against wheel
                            // fragmentation.
                            wheel.is_safe(cand.step, remaining)
                        } else {
                            wheel.can_place(cand.step)
                        };
                        if admissible {
                            wheel.place(cand.step).ok_or(SchedError::Inconsistent(
                                "admissible placement had no free unit",
                            ))?;
                            *unscheduled_of
                                .get_mut(&key)
                                .ok_or(SchedError::Inconsistent(
                                    "no count for a counted class",
                                ))? -= 1;
                            start[op.index()] = Some(cand);
                            pending_phase1 -= 1;
                            placed_any = true;
                        }
                    }
                    OpKind::Io { .. } => {
                        m_place_attempts.inc();
                        let verdict = policy.try_place_explained(cdfg, op, cand.step);
                        cfg.recorder.record(Event::ScheduleDecision {
                            op: op.0,
                            step: cand.step,
                            verdict,
                        });
                        if verdict.placed() {
                            start[op.index()] = Some(cand);
                            pending_phase1 -= 1;
                            placed_any = true;
                        }
                    }
                    OpKind::Split { .. } | OpKind::Merge => {
                        start[op.index()] = Some(cand);
                        pending_phase1 -= 1;
                        placed_any = true;
                    }
                }
            }
            if !placed_any {
                break;
            }
        }
        step += 1;
    }

    // Phase 2: feedback transfers inside their legal windows, latest step
    // first (closest to the consumer, minimizing storage).
    for op in cdfg.op_ids() {
        if !deferred[op.index()] {
            continue;
        }
        if let Some(budget) = &cfg.budget {
            if let Some(t) = budget.check() {
                return Err(SchedError::Interrupted(t));
            }
        }
        // Window lower bound from the recursive producer edges:
        // t_op >= t_prod - d*L + cycles(prod).
        let mut lo = i64::MIN / 4;
        for &e in cdfg.preds(op) {
            let e = cdfg.edge(e);
            // A deferred transfer chained behind another deferred
            // transfer has no phase-1 start to anchor its window.
            let t = start[e.from.index()].ok_or(SchedError::UnscheduledDependence { op })?;
            if e.degree > 0 {
                lo = lo.max(
                    t.step + cdfg.op_cycles(e.from) as i64 - e.degree as i64 * cfg.rate as i64,
                );
            } else {
                // A plain forward edge into a transfer that also has a
                // recursive input: ready after the producer.
                let fin = timing::finish_ns(cdfg, e.from, t);
                lo = lo.max(fin.div_euclid(stage) + i64::from(fin.rem_euclid(stage) != 0));
            }
        }
        // Window upper bound from consumers: the transfer must finish
        // before each consumer reads.
        let mut hi = i64::MAX / 4;
        for &e in cdfg.succs(op) {
            let e = cdfg.edge(e);
            if e.degree > 0 {
                continue;
            }
            let t = start[e.to.index()].ok_or(SchedError::UnscheduledDependence { op })?;
            let io_fin = cdfg.library().io_delay_ns() as i64;
            // Latest boundary start such that finish <= consumer start.
            hi = hi.min((t.ns(cdfg.library().stage_ns()) - io_fin).div_euclid(stage));
        }
        if lo > hi {
            return Err(SchedError::NoWindowSlot { op });
        }
        let mut placed = false;
        let mut s = hi;
        while s >= lo {
            m_place_attempts.inc();
            let verdict = policy.try_place_explained(cdfg, op, s);
            cfg.recorder.record(Event::ScheduleDecision {
                op: op.0,
                step: s,
                verdict,
            });
            if verdict.placed() {
                start[op.index()] = Some(StepTime::at_step(s));
                placed = true;
                break;
            }
            s -= 1;
            // The pin groups repeat with period L; one full period of
            // rejections cannot improve.
            if hi - s >= cfg.rate as i64 && lo <= hi - cfg.rate as i64 {
                break;
            }
        }
        if !placed {
            return Err(SchedError::NoWindowSlot { op });
        }
    }

    let start = start
        .into_iter()
        .map(|t| t.ok_or(SchedError::Inconsistent("an operation was never placed")))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Schedule {
        rate: cfg.rate,
        start,
    })
}

/// Degree-0 consumers of feedback transfers: the operations a flow may
/// hold back to loosen composite maximum time constraints.
pub fn feedback_consumers(cdfg: &Cdfg) -> Vec<OpId> {
    let mut out = Vec::new();
    for w in cdfg.op_ids() {
        let is_feedback =
            cdfg.op(w).is_io() && cdfg.preds(w).iter().any(|&e| cdfg.edge(e).degree > 0);
        if !is_feedback {
            continue;
        }
        for &e in cdfg.succs(w) {
            let e = cdfg.edge(e);
            if e.degree == 0 {
                out.push(e.to);
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

/// Runs list scheduling up to `attempts` times with perturbed priorities
/// and returns the shortest valid schedule found — the paper's practice of
/// postponing operations and rerunning to improve tight results
/// (Sections 5.3, 6.3). `make_policy` builds a fresh I/O policy per
/// attempt. Returns the last error if every attempt fails.
///
/// # Errors
///
/// The error of the final attempt when none succeeds.
pub fn list_schedule_restarts<P: IoPolicy>(
    cdfg: &Cdfg,
    base: &ListConfig,
    attempts: u64,
    mut make_policy: impl FnMut() -> P,
) -> Result<(Schedule, P), SchedError> {
    let mut best: Option<(Schedule, P)> = None;
    let mut last_err = SchedError::StepLimit;
    for attempt in 0..attempts.max(1) {
        let mut cfg = base.clone();
        cfg.priority_bias = if attempt == 0 { 0 } else { attempt };
        let mut policy = make_policy();
        match list_schedule(cdfg, &cfg, &mut policy) {
            Ok(s) => {
                let better = best
                    .as_ref()
                    .is_none_or(|(b, _)| s.pipe_length(cdfg) < b.pipe_length(cdfg));
                if better {
                    best = Some((s, policy));
                }
            }
            Err(e) => last_err = e,
        }
    }
    best.ok_or(last_err)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::validate;
    use mcs_cdfg::designs::{ar_filter, synthetic};

    #[test]
    fn quickstart_schedules_cleanly() {
        let d = synthetic::quickstart();
        let s = list_schedule(d.cdfg(), &ListConfig::new(1), &mut NullPolicy).unwrap();
        assert_eq!(validate(d.cdfg(), &s), vec![]);
    }

    #[test]
    fn resource_constraints_spread_operations() {
        // The simple AR filter's P1 has 2 multipliers at rate 2: its four
        // multiplications must spread across >= 2 step groups.
        let d = ar_filter::simple();
        let s = list_schedule(d.cdfg(), &ListConfig::new(2), &mut NullPolicy).unwrap();
        assert_eq!(validate(d.cdfg(), &s), vec![]);
        let usage = s.resource_usage(d.cdfg());
        for ((p, class), used) in usage {
            let cap = d.cdfg().partition(p).resources[&class];
            assert!(used <= cap, "{p} {class}: {used} > {cap}");
        }
    }

    #[test]
    fn pin_policy_postpones_overcommitted_inputs() {
        // Chapter 3 end-to-end: the AR filter under the pin checker.
        let d = ar_filter::simple();
        let checker = PinChecker::new(d.cdfg(), 2).unwrap();
        let mut policy = PinPolicy::new(checker);
        let s = list_schedule(d.cdfg(), &ListConfig::new(2), &mut policy).unwrap();
        assert_eq!(validate(d.cdfg(), &s), vec![]);
        assert!(policy.checker().all_committed());
        // P1's ten inputs cannot all sit in one step group (5 bundles):
        // both groups must be used.
        let p1 = mcs_cdfg::PartitionId::new(1);
        let groups: std::collections::BTreeSet<u32> = d
            .cdfg()
            .input_io_ops(p1)
            .iter()
            .map(|&op| s.group_of(op))
            .collect();
        assert_eq!(groups.len(), 2);
    }

    #[test]
    fn feedback_transfers_land_before_their_consumers() {
        let d = ar_filter::simple();
        let s = list_schedule(d.cdfg(), &ListConfig::new(2), &mut NullPolicy).unwrap();
        for name in ["X3", "X4", "X5", "X6"] {
            let x = d.op_named(name);
            for &e in d.cdfg().succs(x) {
                let e = d.cdfg().edge(e);
                if e.degree == 0 {
                    assert!(
                        s.of(x).step < s.of(e.to).step
                            || (s.of(x).step == s.of(e.to).step && s.of(e.to).offset_ns > 0),
                        "{name} must finish before its consumer"
                    );
                }
            }
        }
    }

    #[test]
    fn zero_rate_is_rejected() {
        let d = synthetic::quickstart();
        assert_eq!(
            list_schedule(d.cdfg(), &ListConfig::new(0), &mut NullPolicy),
            Err(SchedError::ZeroRate)
        );
    }

    #[test]
    fn multicycle_safety_check_avoids_fragmentation() {
        // Three 2-cycle ops, one unit, rate 6 (Figure 7.10): naive greedy
        // fragmenting the wheel would strand op3; the safety check must
        // yield a valid schedule.
        let d = synthetic::multicycle_example();
        let s = list_schedule(d.cdfg(), &ListConfig::new(6), &mut NullPolicy).unwrap();
        assert_eq!(validate(d.cdfg(), &s), vec![]);
    }

    #[test]
    fn restarts_never_return_worse_schedules() {
        let d = ar_filter::simple();
        let base = list_schedule(d.cdfg(), &ListConfig::new(2), &mut NullPolicy).unwrap();
        let (best, _) =
            list_schedule_restarts(d.cdfg(), &ListConfig::new(2), 4, || NullPolicy).unwrap();
        assert!(best.pipe_length(d.cdfg()) <= base.pipe_length(d.cdfg()));
        assert_eq!(validate(d.cdfg(), &best), vec![]);
    }

    #[test]
    fn chained_feedback_is_a_typed_error() {
        // Regression: a feedback transfer whose producer is itself a
        // deferred transfer used to panic ("producer scheduled in
        // phase 1"). The shape is constructible from the public
        // builder, so it must surface as a typed error.
        use mcs_cdfg::{CdfgBuilder, Library, OperatorClass};
        let mut b = CdfgBuilder::new(Library::new(100));
        let p1 = b.partition("P1", 64);
        let p2 = b.partition("P2", 64);
        // Created first so it is processed first in phase 2, before its
        // (also deferred) producer has a start step.
        let (y, _) = b.io_pending("Y", 8, p2, p1);
        let (_, a) = b.input("a", 8, p1);
        let (_, v) = b.func("f", OperatorClass::Add, p1, &[(a, 0)], 8);
        let (_, v2) = b.io_with_degree("X", v, p2, 1);
        b.bind_io_source(y, v2, 1);
        let g = b.finish().unwrap();
        assert!(matches!(
            list_schedule(&g, &ListConfig::new(2), &mut NullPolicy),
            Err(SchedError::UnscheduledDependence { .. })
        ));
    }

    #[test]
    fn tripped_budget_interrupts_scheduling() {
        use mcs_ctl::{Budget, BudgetSpec, Termination};
        let d = ar_filter::simple();
        let mut cfg = ListConfig::new(2);
        cfg.budget = Some(Budget::new(BudgetSpec::default().deadline_ms(0)));
        assert_eq!(
            list_schedule(d.cdfg(), &cfg, &mut NullPolicy),
            Err(SchedError::Interrupted(Termination::DeadlineExceeded))
        );
    }

    #[test]
    fn metrics_count_every_policy_consultation() {
        use mcs_metrics::Registry;
        use std::sync::Arc;
        let d = ar_filter::simple();
        let reg = Arc::new(Registry::new());
        let mut cfg = ListConfig::new(2);
        cfg.metrics = MetricsHandle::new(reg.clone());
        list_schedule(d.cdfg(), &cfg, &mut NullPolicy).unwrap();
        // NullPolicy admits everything, so each I/O operation is
        // consulted exactly once (phase 1 or its phase-2 window).
        assert_eq!(
            reg.snapshot().counters["sched.place_attempts"],
            d.cdfg().io_ops().count() as u64
        );
    }

    #[test]
    fn batch_priming_keeps_the_schedule_and_feeds_the_memo() {
        // A pin policy that never primes — the pre-batching behavior.
        struct UnprimedPin(PinChecker);
        impl IoPolicy for UnprimedPin {
            fn try_place(&mut self, _cdfg: &Cdfg, op: OpId, step: i64) -> bool {
                self.0.can_commit(op, step) && self.0.commit(op, step).is_ok()
            }
        }
        for d in [ar_filter::simple(), synthetic::fig_2_5()] {
            let mut batched = PinPolicy::new(PinChecker::new(d.cdfg(), 2).unwrap());
            let s = list_schedule(d.cdfg(), &ListConfig::new(2), &mut batched).unwrap();
            let mut unprimed = UnprimedPin(PinChecker::new(d.cdfg(), 2).unwrap());
            let s0 = list_schedule(d.cdfg(), &ListConfig::new(2), &mut unprimed).unwrap();
            // Priming is verdict-neutral: the schedules are identical.
            assert_eq!(s.start, s0.start);
            assert_eq!(validate(d.cdfg(), &s), vec![]);
            let stats = batched.checker().probe_stats();
            assert!(stats.batched_probes > 0, "slate probing never engaged");
            assert!(stats.batch_shared_checkpoints > 0);
            // The placement loop's own consultations ride the memo.
            assert!(stats.memo_hits > 0);
        }
    }

    #[test]
    fn impossible_pin_budget_fails_cleanly() {
        let d = synthetic::fig_2_5();
        // Rate 1: Pa's 2 output pins cannot carry 4 one-bit values in one
        // group.
        assert!(PinChecker::new(d.cdfg(), 1).is_err());
        // Rate 2 schedules fine under the checker.
        let checker = PinChecker::new(d.cdfg(), 2).unwrap();
        let mut policy = PinPolicy::new(checker);
        let s = list_schedule(d.cdfg(), &ListConfig::new(2), &mut policy).unwrap();
        assert_eq!(validate(d.cdfg(), &s), vec![]);
    }
}
