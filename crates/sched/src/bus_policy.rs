//! Scheduling with a given interchip connection (Section 4.2): the bus
//! allocator consulted by list scheduling, with *dynamic reassignment* of
//! I/O operations to communication buses.
//!
//! Every I/O operation arrives with an initial bus assignment from the
//! connection-synthesis step. Static allocation ("w/o reassignment" in
//! Tables 4.2/4.10) only ever uses that bus. Dynamic allocation lets the
//! operation ride any *capable* bus whose slot is free, provided the
//! not-yet-scheduled operations can still all be accommodated — checked as
//! a bipartite matching between pending transfers and free communication
//! slots, the augmenting-path search of Figure 4.5. For split buses
//! (Chapter 6) the slot supply is tokenized conservatively, mirroring the
//! pruned preemption of Section 6.2.

use std::collections::BTreeMap;

use mcs_cdfg::{BusId, Cdfg, OpId, ValueId};
use mcs_connect::{BusAssignment, Interconnect, SubRange};
use mcs_matching::max_bipartite_matching_seeded;
use mcs_metrics::{Histogram, MetricsHandle};
use mcs_obs::{Event, PlaceVerdict, RecorderHandle};

use crate::list::IoPolicy;

/// Accounting of the incremental (warm-started) Figure 4.5 matching:
/// how often the pending-feasibility matching ran, how many pairs the
/// previous matching seeded, and how many augmenting-path searches were
/// still needed. With a cold start every pair costs a search; the gap
/// between `seeded` and `augmentations` is the work the warm start
/// saved.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RematchStats {
    /// Pending-feasibility matchings run.
    pub rounds: u64,
    /// Pairs adopted from the previous matching without any search.
    pub seeded: u64,
    /// Augmenting-path searches run for unseeded values.
    pub augmentations: u64,
}

/// Occupancy of one bus slot: the sub-range used, the value carried, and
/// the exact control step of the transfer.
type SlotEntry = (SubRange, ValueId, i64);

/// A committed bus allocation: which bus/range carries a transfer and in
/// which control step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SlotPlacement {
    /// Carrying bus.
    pub bus: BusId,
    /// Control step of the transfer.
    pub step: i64,
    /// Sub-bus range used.
    pub range: SubRange,
}

/// The Section 4.2 bus allocator.
#[derive(Clone, Debug)]
pub struct BusPolicy {
    interconnect: Interconnect,
    rate: u32,
    allow_reassign: bool,
    /// Current planned bus per pending I/O operation.
    plan: BTreeMap<OpId, BusAssignment>,
    /// Values occupying each `(bus, group)`: `(range, value, step)`.
    /// Same-value transfers share a slot only at the *same step* — at
    /// different steps of one group the bus would carry two instances'
    /// copies simultaneously.
    used: BTreeMap<(u32, u32), Vec<SlotEntry>>,
    /// Final placements of scheduled transfers.
    placements: BTreeMap<OpId, SlotPlacement>,
    /// Transfers whose final bus differs from the initial assignment.
    reassigned: usize,
    /// Lazily computed static group windows for feedback values: the step
    /// groups their transfer can legally occupy, estimated from ASAP times
    /// (used to keep phase-1 placements from exhausting them).
    feedback_groups: Option<BTreeMap<ValueId, std::collections::BTreeSet<u32>>>,
    /// `(bus, group)` each pending value matched to in the last adopted
    /// Figure 4.5 matching — the warm-start seed for the next one.
    last_match: BTreeMap<ValueId, (u32, u32)>,
    /// Warm-start accounting (rounds / seeded pairs / augmentations).
    rematch: RematchStats,
    /// Sink for `BusReassign` events (inactive by default). Trial clones
    /// used by the preemption chain share the sink but never record —
    /// events are emitted only for committed placements.
    recorder: RecorderHandle,
    /// `sched.rematch_size` histogram: how many pending values each
    /// committed Figure 4.5 matching had to route. Like the recorder,
    /// trial clones share the cell but observations happen only at
    /// commit points, so discarded trials never pollute the counts.
    m_rematch_size: Histogram,
    /// Pending-value count of the most recent matching run — the value
    /// observed when a placement built on that matching commits.
    last_pending: u64,
}

impl BusPolicy {
    /// Creates the allocator for a synthesized connection structure.
    /// `allow_reassign = false` reproduces the static-assignment baseline
    /// of Tables 4.2 and 4.10.
    pub fn new(interconnect: Interconnect, rate: u32, allow_reassign: bool) -> Self {
        let plan = interconnect.assignment.clone();
        BusPolicy {
            interconnect,
            rate,
            allow_reassign,
            plan,
            used: BTreeMap::new(),
            placements: BTreeMap::new(),
            reassigned: 0,
            feedback_groups: None,
            last_match: BTreeMap::new(),
            rematch: RematchStats::default(),
            recorder: RecorderHandle::default(),
            m_rematch_size: Histogram::default(),
            last_pending: 0,
        }
    }

    /// Warm-start accounting of the incremental pending-feasibility
    /// matching. Trial clones used by the preemption chain share the
    /// counters' lineage the same way they share the recorder: only
    /// adopted trials contribute.
    pub fn rematch_stats(&self) -> RematchStats {
        self.rematch
    }

    /// Routes `BusReassign` events to `recorder`.
    pub fn set_recorder(&mut self, recorder: RecorderHandle) {
        self.recorder = recorder;
    }

    /// Connects the `sched.rematch_size` histogram to `metrics`.
    pub fn set_metrics(&mut self, metrics: &MetricsHandle) {
        self.m_rematch_size = metrics.histogram("sched.rematch_size");
    }

    /// Final `(bus, step, range)` per scheduled transfer — the bus
    /// allocation tables (4.4, 4.6, 4.8, ...).
    pub fn placements(&self) -> &BTreeMap<OpId, SlotPlacement> {
        &self.placements
    }

    /// Number of transfers that ended up on a different bus than the
    /// initial assignment gave them.
    pub fn reassigned_count(&self) -> usize {
        self.reassigned
    }

    /// The connection structure being allocated.
    pub fn interconnect(&self) -> &Interconnect {
        &self.interconnect
    }

    fn group(&self, step: i64) -> u32 {
        step.rem_euclid(self.rate as i64) as u32
    }

    /// Is `(bus, range)` free for `value` at `step`? Same-value transfers
    /// on the same range at the same step share the slot (Section 4.4.2's
    /// `(Ia, Ib)`).
    fn slot_free(&self, bus: BusId, range: SubRange, step: i64, value: ValueId) -> bool {
        let group = self.group(step);
        match self.used.get(&(bus.0, group)) {
            None => true,
            Some(entries) => entries.iter().all(|&(r, v, t)| {
                if v == value && r == range && t == step {
                    true
                } else {
                    !r.overlaps(range)
                }
            }),
        }
    }

    /// Static group windows for feedback values (Section 7.1): a transfer
    /// fed by a recursive edge of degree `d` must start within
    /// `[asap(producer) + cycles - d*L, asap(consumer) - 1]`; the groups of
    /// that interval are the slots worth reserving for it.
    fn feedback_groups(
        &mut self,
        cdfg: &Cdfg,
    ) -> BTreeMap<ValueId, std::collections::BTreeSet<u32>> {
        if let Some(fg) = &self.feedback_groups {
            return fg.clone();
        }
        let mut map: BTreeMap<ValueId, std::collections::BTreeSet<u32>> = BTreeMap::new();
        if let Ok(asap) = mcs_cdfg::timing::asap(cdfg) {
            let l = self.rate as i64;
            for op in cdfg.io_ops() {
                let recursive: Vec<_> = cdfg
                    .preds(op)
                    .iter()
                    .map(|&e| cdfg.edge(e))
                    .filter(|e| e.degree > 0)
                    .cloned()
                    .collect();
                if recursive.is_empty() {
                    continue;
                }
                let (v, _, _) = cdfg.op(op).io_endpoints().expect("io op");
                let lo = recursive
                    .iter()
                    .map(|e| {
                        asap.of(e.from).step + cdfg.op_cycles(e.from) as i64 - e.degree as i64 * l
                    })
                    .max()
                    .expect("nonempty");
                let hi = cdfg
                    .succs(op)
                    .iter()
                    .map(|&e| cdfg.edge(e))
                    .filter(|e| e.degree == 0)
                    .map(|e| asap.of(e.to).step - 1)
                    .min()
                    .unwrap_or(lo + l - 1);
                let mut groups = std::collections::BTreeSet::new();
                if hi - lo + 1 >= l {
                    groups.extend(0..self.rate);
                } else {
                    for s in lo..=hi.max(lo) {
                        groups.insert(s.rem_euclid(l) as u32);
                    }
                }
                map.entry(v)
                    .and_modify(|g| {
                        let inter: std::collections::BTreeSet<u32> =
                            g.intersection(&groups).copied().collect();
                        if !inter.is_empty() {
                            *g = inter;
                        }
                    })
                    .or_insert(groups);
            }
        }
        self.feedback_groups = Some(map.clone());
        map
    }

    /// Checks that all pending transfers (minus `except`) can still be
    /// accommodated given an extra tentative occupation, reassigning plans
    /// from the matching when successful.
    ///
    /// The matching works at *value* granularity: transfers of one value
    /// share a communication slot when co-scheduled (Section 2.2.1), and
    /// once one of them is placed the rest can free-ride its slot, so a
    /// value's pending transfers demand a single slot served by a bus
    /// capable of every one of them.
    fn pending_feasible(
        &mut self,
        cdfg: &Cdfg,
        except: OpId,
        extra: Option<(BusId, u32, SubRange, ValueId)>,
    ) -> bool {
        // Demand: pending values whose transfers are all unscheduled.
        let mut pending: BTreeMap<ValueId, Vec<OpId>> = BTreeMap::new();
        let mut placed_values: std::collections::BTreeSet<ValueId> =
            std::collections::BTreeSet::new();
        if let Some((_, _, _, v)) = extra {
            placed_values.insert(v);
        }
        for &op in self.plan.keys() {
            let (v, _, _) = cdfg.op(op).io_endpoints().expect("io op");
            if self.placements.contains_key(&op) {
                placed_values.insert(v);
            } else if op != except {
                pending.entry(v).or_default().push(op);
            }
        }
        // Values with a placed sibling free-ride that slot.
        pending.retain(|v, _| !placed_values.contains(v));
        self.last_pending = pending.len() as u64;
        if pending.is_empty() {
            return true;
        }

        let feedback_groups = self.feedback_groups(cdfg);
        // Supply: one planning token per (bus, group) — even a split bus is
        // planned with a single value per cycle; in-cycle sub-bus pairing
        // is opportunistic at placement time. A token exists for a value
        // when some sub-range it can ride is still free in that group.
        let mut units: Vec<(u32, u32)> = Vec::new();
        for h in 0..self.interconnect.buses.len() {
            for g in 0..self.rate {
                units.push((h as u32, g));
            }
        }
        let values: Vec<(&ValueId, &Vec<OpId>)> = pending.iter().collect();
        let mut adj: Vec<Vec<usize>> = Vec::with_capacity(values.len());
        let mut token_range: BTreeMap<(usize, usize), SubRange> = BTreeMap::new();
        for (vi, (v, ops)) in values.iter().enumerate() {
            // Ranges every transfer of the value can ride.
            let mut shared: Option<Vec<BusAssignment>> = None;
            for &op in ops.iter() {
                let carriers = self.interconnect.capable_carriers(cdfg, op);
                shared = Some(match shared {
                    None => carriers,
                    Some(prev) => prev.into_iter().filter(|c| carriers.contains(c)).collect(),
                });
            }
            let shared = shared.unwrap_or_default();
            let groups = feedback_groups.get(*v);
            let mut edges = Vec::new();
            for (ti, &(bus, g)) in units.iter().enumerate() {
                if !groups.is_none_or(|gs| gs.contains(&g)) {
                    continue;
                }
                let free_range = shared.iter().find(|c| {
                    if c.bus.0 != bus {
                        return false;
                    }
                    let mut free = self
                        .used
                        .get(&(bus, g))
                        .is_none_or(|es| es.iter().all(|&(er, _, _)| !er.overlaps(c.range)));
                    if let Some((eb, eg, er, _)) = extra {
                        if eb.0 == bus && eg == g && er.overlaps(c.range) {
                            free = false;
                        }
                    }
                    free
                });
                if let Some(c) = free_range {
                    token_range.insert((vi, ti), c.range);
                    edges.push(ti);
                }
            }
            adj.push(edges);
        }
        // Warm start from the last adopted matching: a value that kept
        // its `(bus, group)` unit is re-adopted without search, and only
        // the values the placement displaced get an augmenting path
        // (Section 4.2's "augment from the previous matching").
        let seed: Vec<(usize, usize)> = values
            .iter()
            .enumerate()
            .filter_map(|(vi, (v, _))| {
                let &(bus, g) = self.last_match.get(*v)?;
                Some((vi, bus as usize * self.rate as usize + g as usize))
            })
            .collect();
        let seeded = max_bipartite_matching_seeded(units.len(), &adj, &seed);
        self.rematch.rounds += 1;
        self.rematch.seeded += seeded.seeded as u64;
        self.rematch.augmentations += seeded.augmentations as u64;
        let matching = seeded.pairs;
        if matching.iter().any(Option::is_none) {
            return false;
        }
        // Adopt the matching as the new plan (dynamic reassignment).
        for (i, (v, ops)) in values.iter().enumerate() {
            let ti = matching[i].expect("perfect matching");
            let (bus, group) = units[ti];
            self.last_match.insert(**v, (bus, group));
            let range = token_range[&(i, ti)];
            for &op in ops.iter() {
                self.plan.insert(
                    op,
                    BusAssignment {
                        bus: BusId::new(bus),
                        range,
                    },
                );
            }
        }
        true
    }

    /// Relocates the value occupying `(bus, range-overlapping, group)` to
    /// another capable bus, recursively preempting further values if
    /// needed — the paper's preemption chain (Section 4.2, Figure 4.5),
    /// here applied to *scheduled* transfers whose control steps stay
    /// fixed while only their bus changes, so timing validity is
    /// untouched.
    fn evict_value(
        &mut self,
        cdfg: &Cdfg,
        bus: u32,
        range: SubRange,
        g: u32,
        visited: &mut std::collections::BTreeSet<u32>,
    ) -> bool {
        let occupants: Vec<SlotEntry> = match self.used.get(&(bus, g)) {
            None => return true,
            Some(es) => es
                .iter()
                .copied()
                .filter(|&(r, _, _)| r.overlaps(range))
                .collect(),
        };
        if occupants.is_empty() {
            return true;
        }
        for (occ_range, occ_value, occ_step) in occupants {
            // Ops of this value scheduled on this slot.
            let moved_ops: Vec<OpId> = self
                .placements
                .iter()
                .filter(|(&o, pl)| {
                    pl.bus.0 == bus
                        && pl.range == occ_range
                        && self.group(pl.step) == g
                        && cdfg.op(o).io_endpoints().map(|(v, _, _)| v) == Some(occ_value)
                })
                .map(|(&o, _)| o)
                .collect();
            if moved_ops.is_empty() {
                return false; // reserved by the pending op being placed
            }
            // A new home must carry every moved transfer at the same group.
            let mut shared: Option<Vec<BusAssignment>> = None;
            for &o in &moved_ops {
                let carriers = self.interconnect.capable_carriers(cdfg, o);
                shared = Some(match shared {
                    None => carriers,
                    Some(prev) => prev.into_iter().filter(|c| carriers.contains(c)).collect(),
                });
            }
            let mut done = false;
            for cand in shared.unwrap_or_default() {
                if cand.bus.0 == bus || visited.contains(&cand.bus.0) {
                    continue;
                }
                visited.insert(cand.bus.0);
                let free = self.slot_free(cand.bus, cand.range, occ_step, occ_value);
                if free || self.evict_value(cdfg, cand.bus.0, cand.range, g, visited) {
                    // Move the value.
                    if let Some(es) = self.used.get_mut(&(bus, g)) {
                        es.retain(|&(r, v, _)| !(r == occ_range && v == occ_value));
                    }
                    self.used
                        .entry((cand.bus.0, g))
                        .or_default()
                        .push((cand.range, occ_value, occ_step));
                    for &o in &moved_ops {
                        let pl = self.placements.get_mut(&o).expect("placed");
                        pl.bus = cand.bus;
                        pl.range = cand.range;
                        self.reassigned += 1;
                    }
                    done = true;
                    break;
                }
                visited.remove(&cand.bus.0);
            }
            if !done {
                return false;
            }
        }
        true
    }

    /// Records a committed bus move (no-op with an inactive recorder).
    fn record_reassign(
        &self,
        op: OpId,
        step: i64,
        from: Option<BusAssignment>,
        to: BusId,
        chain: u32,
    ) {
        if self.recorder.enabled() {
            self.recorder.record(Event::BusReassign {
                op: op.0,
                step,
                from_bus: from.map(|a| a.bus.0).unwrap_or(to.0),
                to_bus: to.0,
                augmenting_path_len: chain,
            });
        }
    }

    /// Attempts to allocate a communication slot for `op` at `step`.
    pub fn try_place_impl(&mut self, cdfg: &Cdfg, op: OpId, step: i64) -> bool {
        self.place_explained(cdfg, op, step).placed()
    }

    /// Like [`BusPolicy::try_place_impl`], but reports the accurate
    /// rejection reason instead of a bare `false`:
    ///
    /// * [`PlaceVerdict::NoCapableBus`] — no bus can geometrically carry
    ///   the transfer, so no candidate slot existed at all;
    /// * [`PlaceVerdict::SameCycleConflict`] — capable buses exist but
    ///   every candidate slot in the step's group is occupied by a
    ///   conflicting transfer;
    /// * [`PlaceVerdict::PendingInfeasible`] — a free slot exists but
    ///   taking it would strand a not-yet-scheduled transfer (the
    ///   Figure 4.5 matching loses perfection).
    ///
    /// These used to be conflated, making postponement undiagnosable.
    pub fn place_explained(&mut self, cdfg: &Cdfg, op: OpId, step: i64) -> PlaceVerdict {
        let Some((value, _, _)) = cdfg.op(op).io_endpoints() else {
            return PlaceVerdict::Placed;
        };
        let g = self.group(step);
        let original = self.interconnect.assignment.get(&op).copied();
        let mut options: Vec<BusAssignment> = Vec::new();
        if self.allow_reassign {
            let planned = self.plan.get(&op).copied();
            let mut carriers = self.interconnect.capable_carriers(cdfg, op);
            carriers.sort_by_key(|c| (Some(*c) != planned, Some(*c) != original, c.bus, c.range));
            options = carriers;
        } else if let Some(a) = original {
            options.push(a);
        }
        if options.is_empty() {
            return PlaceVerdict::NoCapableBus;
        }
        let mut saw_free_slot = false;
        // Every placement must keep the remaining transfers routable — the
        // invariant behind the paper's preemption chains: whenever the
        // bipartite matching between pending transfers and free slots is
        // perfect before a step, some admissible placement order keeps it
        // perfect, so the allocator never strands a transfer. Same-value
        // free rides cannot shrink the free-slot supply and skip the
        // check.
        for cand in &options {
            let cand = *cand;
            if !self.slot_free(cand.bus, cand.range, step, value) {
                continue;
            }
            let sharing = self.used.get(&(cand.bus.0, g)).is_some_and(|es| {
                es.iter()
                    .any(|&(r, v, t)| v == value && r == cand.range && t == step)
            });
            if !sharing {
                saw_free_slot = true;
            }
            let ran_matching = !sharing && self.allow_reassign;
            let admissible = sharing
                || !self.allow_reassign
                || self.pending_feasible(cdfg, op, Some((cand.bus, g, cand.range, value)));
            if admissible {
                if ran_matching {
                    self.m_rematch_size.observe(self.last_pending);
                }
                self.used
                    .entry((cand.bus.0, g))
                    .or_default()
                    .push((cand.range, value, step));
                self.placements.insert(
                    op,
                    SlotPlacement {
                        bus: cand.bus,
                        step,
                        range: cand.range,
                    },
                );
                if original.map(|a| a.bus) != Some(cand.bus) {
                    self.reassigned += 1;
                    self.record_reassign(op, step, original, cand.bus, 0);
                }
                return if sharing {
                    PlaceVerdict::SharedSlot
                } else {
                    PlaceVerdict::Placed
                };
            }
        }
        // Last resort, for feedback transfers only: their placement window
        // is bounded (Section 7.1), so instead of postponing, run a
        // preemption chain over already-scheduled transfers — bus changes
        // only, steps untouched (Section 4.2's augmentation, applied at
        // the point the paper's negative-step preloads are committed).
        let is_feedback = cdfg.preds(op).iter().any(|&e| cdfg.edge(e).degree > 0);
        if self.allow_reassign && is_feedback {
            let before = self.reassigned;
            let carriers = self.interconnect.capable_carriers(cdfg, op);
            for cand in carriers {
                let mut visited = std::collections::BTreeSet::new();
                visited.insert(cand.bus.0);
                let mut trial = self.clone();
                if !(trial.evict_value(cdfg, cand.bus.0, cand.range, g, &mut visited)
                    && trial.slot_free(cand.bus, cand.range, step, value))
                {
                    continue;
                }
                trial
                    .used
                    .entry((cand.bus.0, g))
                    .or_default()
                    .push((cand.range, value, step));
                trial.placements.insert(
                    op,
                    SlotPlacement {
                        bus: cand.bus,
                        step,
                        range: cand.range,
                    },
                );
                if trial.pending_feasible(cdfg, op, None) {
                    *self = trial;
                    self.m_rematch_size.observe(self.last_pending);
                    // Scheduled transfers moved by the eviction chain.
                    let chain = (self.reassigned - before) as u32;
                    let moved = original.map(|a| a.bus) != Some(cand.bus);
                    if moved {
                        self.reassigned += 1;
                    }
                    if moved || chain > 0 {
                        self.record_reassign(op, step, original, cand.bus, chain);
                    }
                    return PlaceVerdict::Placed;
                }
            }
        }
        if saw_free_slot {
            PlaceVerdict::PendingInfeasible
        } else {
            PlaceVerdict::SameCycleConflict
        }
    }
}

impl IoPolicy for BusPolicy {
    fn try_place(&mut self, cdfg: &Cdfg, op: OpId, step: i64) -> bool {
        self.try_place_impl(cdfg, op, step)
    }

    fn try_place_explained(&mut self, cdfg: &Cdfg, op: OpId, step: i64) -> PlaceVerdict {
        self.place_explained(cdfg, op, step)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::list::{list_schedule, ListConfig};
    use crate::schedule::validate;
    use mcs_cdfg::designs::{ar_filter, synthetic};
    use mcs_cdfg::PortMode;
    use mcs_connect::{synthesize, SearchConfig};

    #[test]
    fn quickstart_schedules_over_its_connection() {
        let d = synthetic::quickstart();
        let ic = synthesize(d.cdfg(), PortMode::Unidirectional, &SearchConfig::new(1)).unwrap();
        let mut policy = BusPolicy::new(ic, 1, true);
        let s = list_schedule(d.cdfg(), &ListConfig::new(1), &mut policy).unwrap();
        assert_eq!(validate(d.cdfg(), &s), vec![]);
        assert_eq!(policy.placements().len(), d.cdfg().io_ops().count());
    }

    #[test]
    fn no_two_values_share_a_slot() {
        let d = ar_filter::general(3, PortMode::Unidirectional);
        let ic = synthesize(d.cdfg(), PortMode::Unidirectional, &SearchConfig::new(3)).unwrap();
        let mut policy = BusPolicy::new(ic, 3, true);
        let s = list_schedule(d.cdfg(), &ListConfig::new(3), &mut policy).unwrap();
        assert_eq!(validate(d.cdfg(), &s), vec![]);
        // Group placements by (bus, group): overlapping ranges only for
        // the same value.
        let mut seen: BTreeMap<(u32, u32), Vec<(SubRange, mcs_cdfg::ValueId)>> = BTreeMap::new();
        for (&op, pl) in policy.placements() {
            let (v, _, _) = d.cdfg().op(op).io_endpoints().unwrap();
            let g = pl.step.rem_euclid(3) as u32;
            let entry = seen.entry((pl.bus.0, g)).or_default();
            for &(r, v2) in entry.iter() {
                if r.overlaps(pl.range) {
                    assert_eq!(v2, v, "conflicting values on one bus slot");
                }
            }
            entry.push((pl.range, v));
        }
    }

    #[test]
    fn both_allocation_modes_produce_valid_schedules() {
        // The with/without-reassignment pipe-length comparison of Table 4.2
        // is asserted at the flow level (the flow keeps the better of the
        // two); here both raw policies must at least yield schedules that
        // pass full validation.
        for rate in [3u32, 4, 5] {
            let d = ar_filter::general(rate, PortMode::Unidirectional);
            let ic =
                synthesize(d.cdfg(), PortMode::Unidirectional, &SearchConfig::new(rate)).unwrap();
            for reassign in [true, false] {
                let mut policy = BusPolicy::new(ic.clone(), rate, reassign);
                let s = list_schedule(d.cdfg(), &ListConfig::new(rate), &mut policy)
                    .unwrap_or_else(|e| panic!("rate {rate} reassign {reassign}: {e}"));
                assert_eq!(validate(d.cdfg(), &s), vec![]);
                assert_eq!(policy.placements().len(), d.cdfg().io_ops().count());
            }
        }
    }

    #[test]
    fn static_assignment_uses_only_the_initial_bus() {
        let d = synthetic::quickstart();
        let ic = synthesize(d.cdfg(), PortMode::Unidirectional, &SearchConfig::new(1)).unwrap();
        let initial = ic.assignment.clone();
        let mut policy = BusPolicy::new(ic, 1, false);
        if let Ok(s) = list_schedule(d.cdfg(), &ListConfig::new(1), &mut policy) {
            assert_eq!(validate(d.cdfg(), &s), vec![]);
            for (&op, pl) in policy.placements() {
                assert_eq!(pl.bus, initial[&op].bus);
            }
            assert_eq!(policy.reassigned_count(), 0);
        }
    }

    /// A hand-built one-bus structure: P1 drives, P2 and the environment
    /// listen, and three transfers (two of the same value) all start
    /// planned onto the single bus.
    fn one_bus_fixture() -> (mcs_cdfg::Cdfg, Interconnect, Vec<OpId>) {
        use mcs_cdfg::{CdfgBuilder, Library, OperatorClass, PartitionId};
        use mcs_connect::Bus;

        let mut b = CdfgBuilder::new(Library::ar_filter());
        let p1 = b.partition("P1", 64);
        let p2 = b.partition("P2", 64);
        let (_, a) = b.input("a", 8, p1);
        let (_, v) = b.func("v", OperatorClass::Add, p1, &[(a, 0)], 8);
        let (_, w) = b.func("w", OperatorClass::Add, p1, &[(a, 0)], 8);
        let (va, _) = b.io("A", v, p2);
        let vo = b.output("O", v);
        let (wb, _) = b.io("B", w, p2);
        let g = b.finish().unwrap();

        let mut bus = Bus::new();
        bus.sub_widths = vec![8];
        bus.out_ports.insert(p1, 8);
        bus.in_ports.insert(p2, 8);
        bus.in_ports.insert(PartitionId::ENVIRONMENT, 8);
        let mut ic = Interconnect {
            mode: PortMode::Unidirectional,
            buses: vec![bus],
            assignment: BTreeMap::new(),
        };
        let whole = SubRange { lo: 0, hi: 0 };
        for op in [va, vo, wb] {
            ic.assignment.insert(
                op,
                BusAssignment {
                    bus: BusId(0),
                    range: whole,
                },
            );
        }
        (g, ic, vec![va, vo, wb])
    }

    #[test]
    fn same_value_same_step_shares_the_slot() {
        let (g, ic, ops) = one_bus_fixture();
        let mut policy = BusPolicy::new(ic, 2, false);
        assert!(policy.try_place_impl(&g, ops[0], 2), "first transfer");
        assert!(
            policy.try_place_impl(&g, ops[1], 2),
            "same value at the same step rides along"
        );
        assert_eq!(policy.placements().len(), 2);
    }

    #[test]
    fn same_value_different_step_of_one_group_conflicts() {
        // Steps 2 and 4 are both group 0 at rate 2 but belong to different
        // pipeline instances: the bus would carry two different words.
        let (g, ic, ops) = one_bus_fixture();
        let mut policy = BusPolicy::new(ic, 2, false);
        assert!(policy.try_place_impl(&g, ops[0], 2));
        assert!(!policy.try_place_impl(&g, ops[1], 4), "instances collide");
        assert!(policy.try_place_impl(&g, ops[1], 3), "other group is free");
    }

    #[test]
    fn different_values_never_share_a_group() {
        let (g, ic, ops) = one_bus_fixture();
        let mut policy = BusPolicy::new(ic, 2, false);
        assert!(policy.try_place_impl(&g, ops[0], 2));
        assert!(!policy.try_place_impl(&g, ops[2], 2), "same step");
        assert!(!policy.try_place_impl(&g, ops[2], 4), "same group");
        assert!(policy.try_place_impl(&g, ops[2], 3), "other group");
    }

    #[test]
    fn rejection_reasons_are_split() {
        let (g, ic, ops) = one_bus_fixture();
        // Same-cycle conflict: a capable bus exists but another value owns
        // the slot in this group.
        let mut policy = BusPolicy::new(ic.clone(), 2, false);
        assert_eq!(policy.place_explained(&g, ops[0], 2), PlaceVerdict::Placed);
        assert_eq!(
            policy.place_explained(&g, ops[1], 2),
            PlaceVerdict::SharedSlot,
            "same value, same step rides along"
        );
        assert_eq!(
            policy.place_explained(&g, ops[2], 2),
            PlaceVerdict::SameCycleConflict
        );
        assert_eq!(
            policy.place_explained(&g, ops[2], 4),
            PlaceVerdict::SameCycleConflict,
            "same group of another instance is still a transfer conflict"
        );
        assert_eq!(policy.place_explained(&g, ops[2], 3), PlaceVerdict::Placed);

        // No capable bus: static allocation with no initial assignment has
        // no candidate at all — distinct from a full slot.
        let mut bare = ic.clone();
        bare.assignment.remove(&ops[2]);
        let mut policy = BusPolicy::new(bare, 2, false);
        assert_eq!(
            policy.place_explained(&g, ops[2], 3),
            PlaceVerdict::NoCapableBus
        );

        // Pending-infeasible: at rate 1 the lone bus slot must serve two
        // values; taking it for one strands the other, so the slot is free
        // yet the placement is inadmissible.
        let mut policy = BusPolicy::new(ic, 1, true);
        assert_eq!(
            policy.place_explained(&g, ops[0], 0),
            PlaceVerdict::PendingInfeasible
        );
    }

    #[test]
    fn explained_and_bool_paths_agree() {
        let (g, ic, ops) = one_bus_fixture();
        let mut a = BusPolicy::new(ic.clone(), 2, true);
        let mut b = BusPolicy::new(ic, 2, true);
        for &op in &ops {
            for step in 2..6 {
                assert_eq!(
                    a.try_place_impl(&g, op, step),
                    b.place_explained(&g, op, step).placed(),
                    "op {op} step {step}"
                );
            }
        }
        assert_eq!(a.placements(), b.placements());
        assert_eq!(a.reassigned_count(), b.reassigned_count());
    }

    #[test]
    fn incremental_rematch_reuses_prior_matching() {
        let d = ar_filter::general(3, PortMode::Unidirectional);
        let ic = synthesize(d.cdfg(), PortMode::Unidirectional, &SearchConfig::new(3)).unwrap();
        let mut policy = BusPolicy::new(ic, 3, true);
        let s = list_schedule(d.cdfg(), &ListConfig::new(3), &mut policy).unwrap();
        assert_eq!(validate(d.cdfg(), &s), vec![]);
        let stats = policy.rematch_stats();
        assert!(stats.rounds > 0, "scheduling must run the matching");
        assert!(
            stats.seeded > 0,
            "successive matchings must reuse prior pairs: {stats:?}"
        );
        // The warm start must save work: across all rounds, fewer
        // augmenting searches than a cold start (which pays one search
        // per pair, i.e. seeded + augmentations in total).
        assert!(
            stats.augmentations < stats.seeded + stats.augmentations,
            "warm start saved no searches: {stats:?}"
        );
    }

    #[test]
    fn metrics_observe_committed_rematch_sizes() {
        use mcs_metrics::{MetricsHandle, Registry};
        use std::sync::Arc;
        let d = ar_filter::general(3, PortMode::Unidirectional);
        let ic = synthesize(d.cdfg(), PortMode::Unidirectional, &SearchConfig::new(3)).unwrap();
        let reg = Arc::new(Registry::new());
        let mut policy = BusPolicy::new(ic, 3, true);
        policy.set_metrics(&MetricsHandle::new(reg.clone()));
        let s = list_schedule(d.cdfg(), &ListConfig::new(3), &mut policy).unwrap();
        assert_eq!(validate(d.cdfg(), &s), vec![]);
        let snap = reg.snapshot();
        let h = &snap.histograms["sched.rematch_size"];
        // Only committed matchings observe, so at most one observation
        // per matching round, and the largest matching cannot exceed
        // the number of transferred values.
        assert!(h.count > 0, "dynamic allocation must run matchings");
        assert!(h.count <= policy.rematch_stats().rounds);
        let values: std::collections::BTreeSet<_> = d
            .cdfg()
            .io_ops()
            .filter_map(|op| d.cdfg().op(op).io_endpoints().map(|(v, _, _)| v))
            .collect();
        assert!(h.max <= values.len() as u64);
    }

    #[test]
    fn non_io_operations_place_trivially() {
        let (g, ic, _) = one_bus_fixture();
        let mut policy = BusPolicy::new(ic, 2, false);
        let func = g.func_ops().next().unwrap();
        assert!(policy.try_place_impl(&g, func, 0));
        assert!(policy.placements().is_empty(), "no slot consumed");
    }
}
