//! Force-directed scheduling (Section 5.1, after Paulin's FDS), adapted to
//! partitioned pipelined designs.
//!
//! All partitions are scheduled together. Distribution graphs are kept per
//! `(partition, operator class)` for functional operations and — because
//! an I/O operation is simultaneously an output of one partition and an
//! input of another — per partition *side* in bits for I/O operations
//! (Section 5.1's combined input/output distribution graphs). For a
//! pipelined design the distributions fold into the `L` control-step
//! groups.
//!
//! FDS minimizes resource needs by balancing concurrency; it does not
//! *enforce* resource constraints. Chapter 5's experiments read the
//! resulting per-group maxima as the "resources required" for a given
//! (initiation rate, pipe length) point — Tables 5.1 and 5.3.

use std::collections::BTreeMap;

use mcs_cdfg::timing::{self, StepTime};
use mcs_cdfg::{Cdfg, OpId, OpKind, OperatorClass, PartitionId};

use crate::list::SchedError;
use crate::schedule::Schedule;

/// FDS parameters: the global time constraint is the pipe length.
#[derive(Clone, Debug)]
pub struct FdsConfig {
    /// Initiation rate `L`.
    pub rate: u32,
    /// Pipe length (deadline in control steps).
    pub pipe_length: i64,
}

/// A composite maximum time constraint routed through a feedback transfer
/// (see `list_schedule`): `step(from) - step(to) <= bound`.
#[derive(Clone, Copy, Debug)]
struct Composite {
    from: OpId,
    to: OpId,
    bound: i64,
}

/// Composite constraints: producer of a feedback transfer vs its
/// consumers, `t_prod - t_cons <= d*L - cycles(prod) - 1`.
fn composite_constraints(cdfg: &Cdfg, rate: u32, deferred: &[bool]) -> Vec<Composite> {
    let mut out = Vec::new();
    for w in cdfg.op_ids() {
        if !deferred[w.index()] {
            continue;
        }
        for &pe in cdfg.preds(w) {
            let pe = cdfg.edge(pe);
            if pe.degree == 0 {
                continue;
            }
            for &se in cdfg.succs(w) {
                let se = cdfg.edge(se);
                if se.degree == 0 && !deferred[se.to.index()] {
                    out.push(Composite {
                        from: pe.from,
                        to: se.to,
                        bound: pe.degree as i64 * rate as i64 - cdfg.op_cycles(pe.from) as i64 - 1,
                    });
                }
            }
        }
    }
    out
}

/// Computes pinned ASAP/ALAP frames at ns resolution; `None` when the
/// pins are inconsistent with precedence, the deadline, or the composite
/// maximum time constraints (which couple feedback producers to the
/// consumers of their transfers and are resolved by fixpoint iteration —
/// they point "backward" against the topological order).
fn frames(
    cdfg: &Cdfg,
    pinned: &[Option<i64>],
    deferred: &[bool],
    composites: &[Composite],
    deadline_steps: i64,
) -> Option<(Vec<StepTime>, Vec<StepTime>)> {
    let order = cdfg.topo_order().ok()?;
    let stage = cdfg.library().stage_ns() as i64;
    let n = cdfg.ops().len();
    // Extra step lower bounds raised by composite constraints.
    let mut floor_step = vec![i64::MIN / 4; n];
    let mut est = vec![StepTime::at_step(0); n];
    for _round in 0..=composites.len() {
        for &op in &order {
            if deferred[op.index()] {
                continue;
            }
            let mut ready = (floor_step[op.index()].max(0)) * stage;
            for &eid in cdfg.preds(op) {
                let e = cdfg.edge(eid);
                if e.degree > 0 || deferred[e.from.index()] {
                    continue;
                }
                ready = ready.max(timing::finish_ns(cdfg, e.from, est[e.from.index()]));
            }
            let mut t = timing::place_after(cdfg, op, ready);
            if let Some(s) = pinned[op.index()] {
                if t.step > s {
                    return None;
                }
                t = timing::place_after(cdfg, op, ready.max(s * stage));
                if t.step != s {
                    return None;
                }
            }
            est[op.index()] = t;
        }
        // Composite: t_from - t_to <= bound raises est(to).
        let mut changed = false;
        for c in composites {
            let need = est[c.from.index()].step - c.bound;
            if need > floor_step[c.to.index()] && need > est[c.to.index()].step {
                floor_step[c.to.index()] = need;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // A second pass of composites after the fixpoint must hold.
    for c in composites {
        if est[c.from.index()].step - est[c.to.index()].step > c.bound
            && pinned[c.to.index()].is_some()
        {
            return None;
        }
    }
    let mut lst = vec![StepTime::at_step(0); n];
    let mut ceil_step = vec![i64::MAX / 4; n];
    for _round in 0..=composites.len() {
        for &op in order.iter().rev() {
            if deferred[op.index()] {
                continue;
            }
            let mut deadline = deadline_steps * stage;
            deadline = deadline.min((ceil_step[op.index()].min(deadline_steps) + 1) * stage);
            for &eid in cdfg.succs(op) {
                let e = cdfg.edge(eid);
                if e.degree > 0 || deferred[e.to.index()] {
                    continue;
                }
                deadline = deadline.min(lst[e.to.index()].ns(cdfg.library().stage_ns()));
            }
            let mut t = timing::place_before(cdfg, op, deadline);
            if let Some(s) = pinned[op.index()] {
                if t.step < s {
                    return None;
                }
                // Latest start within the pinned step; a multi-cycle
                // operation started at `s` completes at `s + cycles`.
                let cycles = cdfg.op_cycles(op) as i64;
                let step_end = (s + cycles.max(1)) * stage;
                t = timing::place_before(cdfg, op, deadline.min(step_end));
                if t.step != s {
                    return None;
                }
            }
            if t.step < est[op.index()].step {
                return None;
            }
            lst[op.index()] = t;
        }
        // Composite: t_from <= t_to + bound lowers lst(from).
        let mut changed = false;
        for c in composites {
            let cap = lst[c.to.index()].step + c.bound;
            if cap < ceil_step[c.from.index()] && cap < lst[c.from.index()].step {
                ceil_step[c.from.index()] = cap;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    Some((est, lst))
}

/// Distribution graphs: functional per `(partition, class)` in operation
/// probability; I/O per partition side in bits.
#[derive(Clone, Debug, Default)]
struct Distributions {
    func: BTreeMap<(PartitionId, OperatorClass), Vec<f64>>,
    io_out: BTreeMap<PartitionId, Vec<f64>>,
    io_in: BTreeMap<PartitionId, Vec<f64>>,
}

impl Distributions {
    fn build(
        cdfg: &Cdfg,
        rate: u32,
        est: &[StepTime],
        lst: &[StepTime],
        deferred: &[bool],
    ) -> Self {
        let l = rate as usize;
        let mut d = Distributions::default();
        for op in cdfg.op_ids() {
            if deferred[op.index()] {
                continue;
            }
            let lo = est[op.index()].step;
            let hi = lst[op.index()].step.max(lo);
            let w = (hi - lo + 1) as f64;
            let cycles = cdfg.op_cycles(op) as i64;
            match &cdfg.op(op).kind {
                OpKind::Func(class) => {
                    let dg = d
                        .func
                        .entry((cdfg.op(op).partition, class.clone()))
                        .or_insert_with(|| vec![0.0; l]);
                    for s in lo..=hi {
                        for c in 0..cycles {
                            dg[(s + c).rem_euclid(rate as i64) as usize] += 1.0 / w;
                        }
                    }
                }
                OpKind::Io { from, to, .. } => {
                    let bits = cdfg.io_bits(op) as f64;
                    let out = d.io_out.entry(*from).or_insert_with(|| vec![0.0; l]);
                    for s in lo..=hi {
                        out[s.rem_euclid(rate as i64) as usize] += bits / w;
                    }
                    let inp = d.io_in.entry(*to).or_insert_with(|| vec![0.0; l]);
                    for s in lo..=hi {
                        inp[s.rem_euclid(rate as i64) as usize] += bits / w;
                    }
                }
                _ => {}
            }
        }
        d
    }

    /// Force of narrowing `op`'s frame from `[lo, hi]` to exactly `s`.
    fn force(&self, cdfg: &Cdfg, rate: u32, op: OpId, lo: i64, hi: i64, s: i64) -> f64 {
        let w = (hi - lo + 1) as f64;
        let cycles = cdfg.op_cycles(op) as i64;
        let fold = |x: i64| x.rem_euclid(rate as i64) as usize;
        let mut f = 0.0;
        match &cdfg.op(op).kind {
            OpKind::Func(class) => {
                if let Some(dg) = self.func.get(&(cdfg.op(op).partition, class.clone())) {
                    for c in 0..cycles {
                        f += dg[fold(s + c)];
                        for t in lo..=hi {
                            f -= dg[fold(t + c)] / w;
                        }
                    }
                }
            }
            OpKind::Io { from, to, .. } => {
                let bits = cdfg.io_bits(op) as f64;
                for dg in [self.io_out.get(from), self.io_in.get(to)]
                    .into_iter()
                    .flatten()
                {
                    f += bits * dg[fold(s)];
                    for t in lo..=hi {
                        f -= bits * dg[fold(t)] / w;
                    }
                }
            }
            _ => {}
        }
        f
    }
}

/// Schedules `cdfg` with force-directed scheduling under the pipe-length
/// constraint; feedback transfers are placed afterwards inside their legal
/// windows at the least-loaded pin group.
///
/// # Errors
///
/// [`SchedError::StepLimit`] when no placement fits the pipe length,
/// [`SchedError::Cyclic`] for degree-0 cycles,
/// [`SchedError::NoWindowSlot`] when a feedback transfer has an empty
/// window.
pub fn fds_schedule(cdfg: &Cdfg, cfg: &FdsConfig) -> Result<Schedule, SchedError> {
    if cfg.rate == 0 {
        return Err(SchedError::ZeroRate);
    }
    let n = cdfg.ops().len();
    let deferred: Vec<bool> = cdfg
        .op_ids()
        .map(|op| cdfg.op(op).is_io() && cdfg.preds(op).iter().any(|&e| cdfg.edge(e).degree > 0))
        .collect();
    let mut pinned: Vec<Option<i64>> = vec![None; n];
    let composites = composite_constraints(cdfg, cfg.rate, &deferred);

    loop {
        let Some((est, lst)) = frames(cdfg, &pinned, &deferred, &composites, cfg.pipe_length)
        else {
            return Err(SchedError::StepLimit);
        };
        let dists = Distributions::build(cdfg, cfg.rate, &est, &lst, &deferred);
        // Pick the unpinned op/step pair with the lowest force; ties by id
        // and step for determinism.
        let mut best: Option<(f64, OpId, i64)> = None;
        for op in cdfg.op_ids() {
            if pinned[op.index()].is_some() || deferred[op.index()] {
                continue;
            }
            let (lo, hi) = (
                est[op.index()].step,
                lst[op.index()].step.max(est[op.index()].step),
            );
            if lo == hi {
                // Forced placement costs nothing to decide.
                best = Some((f64::MIN, op, lo));
                break;
            }
            for s in lo..=hi {
                // Placement must stay consistent with current pins.
                let mut trial = pinned.clone();
                trial[op.index()] = Some(s);
                if frames(cdfg, &trial, &deferred, &composites, cfg.pipe_length).is_none() {
                    continue;
                }
                let f = dists.force(cdfg, cfg.rate, op, lo, hi, s);
                let better = match &best {
                    None => true,
                    Some((bf, bop, bs)) => {
                        f < *bf - 1e-9 || ((f - *bf).abs() <= 1e-9 && (op, s) < (*bop, *bs))
                    }
                };
                if better {
                    best = Some((f, op, s));
                }
            }
        }
        match best {
            None => break, // everything placed
            Some((_, op, s)) => pinned[op.index()] = Some(s),
        }
    }

    // Materialize offsets for phase-1 ops.
    let Some((est, _)) = frames(cdfg, &pinned, &deferred, &composites, cfg.pipe_length) else {
        return Err(SchedError::StepLimit);
    };
    let mut start: Vec<StepTime> = est;

    // Phase 2: feedback transfers at the least-loaded group of their
    // window.
    let l = cfg.rate as usize;
    let mut io_load: BTreeMap<(PartitionId, bool), Vec<f64>> = BTreeMap::new();
    for op in cdfg.op_ids() {
        if deferred[op.index()] || !cdfg.op(op).is_io() {
            continue;
        }
        let (_, from, to) = cdfg.op(op).io_endpoints().expect("io op");
        let g = start[op.index()].step.rem_euclid(cfg.rate as i64) as usize;
        io_load.entry((from, true)).or_insert_with(|| vec![0.0; l])[g] += cdfg.io_bits(op) as f64;
        io_load.entry((to, false)).or_insert_with(|| vec![0.0; l])[g] += cdfg.io_bits(op) as f64;
    }
    let stage = cdfg.library().stage_ns() as i64;
    for op in cdfg.op_ids() {
        if !deferred[op.index()] {
            continue;
        }
        let (_, from, to) = cdfg.op(op).io_endpoints().expect("io op");
        let mut lo = i64::MIN / 4;
        let mut hi = i64::MAX / 4;
        for &eid in cdfg.preds(op) {
            let e = cdfg.edge(eid);
            let t = start[e.from.index()];
            if e.degree > 0 {
                lo = lo.max(
                    t.step + cdfg.op_cycles(e.from) as i64 - e.degree as i64 * cfg.rate as i64,
                );
            } else {
                let fin = timing::finish_ns(cdfg, e.from, t);
                lo = lo.max(fin.div_euclid(stage) + i64::from(fin.rem_euclid(stage) != 0));
            }
        }
        for &eid in cdfg.succs(op) {
            let e = cdfg.edge(eid);
            if e.degree == 0 {
                let t = start[e.to.index()];
                let io_fin = cdfg.library().io_delay_ns() as i64;
                hi = hi.min((t.ns(cdfg.library().stage_ns()) - io_fin).div_euclid(stage));
            }
        }
        if lo > hi {
            return Err(SchedError::NoWindowSlot { op });
        }
        // Least-loaded group within the window (scan at most one period).
        let span = ((hi - lo + 1).min(cfg.rate as i64)).max(1);
        let bits = cdfg.io_bits(op) as f64;
        let best = (0..span)
            .map(|d| hi - d)
            .min_by(|&a, &b| {
                let load = |s: i64| {
                    let g = s.rem_euclid(cfg.rate as i64) as usize;
                    io_load.get(&(from, true)).map_or(0.0, |v| v[g])
                        + io_load.get(&(to, false)).map_or(0.0, |v| v[g])
                };
                load(a)
                    .partial_cmp(&load(b))
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(b.cmp(&a))
            })
            .expect("nonempty window");
        let g = best.rem_euclid(cfg.rate as i64) as usize;
        io_load.entry((from, true)).or_insert_with(|| vec![0.0; l])[g] += bits;
        io_load.entry((to, false)).or_insert_with(|| vec![0.0; l])[g] += bits;
        start[op.index()] = StepTime::at_step(best);
    }

    Ok(Schedule {
        rate: cfg.rate,
        start,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::validate;
    use mcs_cdfg::designs::{ar_filter, synthetic};
    use mcs_cdfg::PortMode;

    #[test]
    fn quickstart_meets_its_pipe_length() {
        let d = synthetic::quickstart();
        let s = fds_schedule(
            d.cdfg(),
            &FdsConfig {
                rate: 1,
                pipe_length: 6,
            },
        )
        .unwrap();
        // FDS does not enforce unit counts, so filter those violations out
        // and insist on timing correctness.
        let v: Vec<_> = validate(d.cdfg(), &s)
            .into_iter()
            .filter(|v| !matches!(v, crate::schedule::ScheduleViolation::Resources { .. }))
            .collect();
        assert_eq!(v, vec![]);
        assert!(s.pipe_length(d.cdfg()) <= 6);
    }

    #[test]
    fn longer_pipe_never_needs_more_resources_on_balance() {
        let d = ar_filter::general(3, PortMode::Unidirectional);
        let short = fds_schedule(
            d.cdfg(),
            &FdsConfig {
                rate: 3,
                pipe_length: 8,
            },
        )
        .unwrap();
        let long = fds_schedule(
            d.cdfg(),
            &FdsConfig {
                rate: 3,
                pipe_length: 12,
            },
        )
        .unwrap();
        let total = |s: &Schedule| -> u32 { s.resource_usage(d.cdfg()).values().sum() };
        assert!(
            total(&long) <= total(&short) + 2,
            "long {} vs short {}",
            total(&long),
            total(&short)
        );
    }

    #[test]
    fn infeasible_pipe_length_is_reported() {
        let d = ar_filter::general(3, PortMode::Unidirectional);
        assert_eq!(
            fds_schedule(
                d.cdfg(),
                &FdsConfig {
                    rate: 3,
                    pipe_length: 2
                }
            ),
            Err(SchedError::StepLimit)
        );
    }

    #[test]
    fn ar_filter_fds_is_timing_valid() {
        for rate in [3u32, 4, 5] {
            let d = ar_filter::general(rate, PortMode::Unidirectional);
            let s = fds_schedule(
                d.cdfg(),
                &FdsConfig {
                    rate,
                    pipe_length: 10,
                },
            )
            .unwrap();
            let v: Vec<_> = validate(d.cdfg(), &s)
                .into_iter()
                .filter(|v| !matches!(v, crate::schedule::ScheduleViolation::Resources { .. }))
                .collect();
            assert_eq!(v, vec![], "rate {rate}");
        }
    }

    #[test]
    fn balancing_beats_asap_on_peak_concurrency() {
        // ASAP piles the AR filter's 16 multiplications into the earliest
        // steps; FDS must spread them across groups.
        let d = ar_filter::general(4, PortMode::Unidirectional);
        let fds = fds_schedule(
            d.cdfg(),
            &FdsConfig {
                rate: 4,
                pipe_length: 12,
            },
        )
        .unwrap();
        let asap_t = mcs_cdfg::timing::asap(d.cdfg()).unwrap();
        let asap = Schedule {
            rate: 4,
            start: asap_t.start,
        };
        let peak = |s: &Schedule| -> u32 {
            s.resource_usage(d.cdfg())
                .iter()
                .filter(|((_, c), _)| *c == mcs_cdfg::OperatorClass::Mul)
                .map(|(_, &n)| n)
                .max()
                .unwrap_or(0)
        };
        assert!(peak(&fds) <= peak(&asap));
    }

    #[test]
    fn elliptic_fds_respects_max_time_constraints() {
        // The recursive EWF is the stress case for composite constraints:
        // every feasible rate must come back timing-valid.
        for rate in [5u32, 6, 7] {
            let d = mcs_cdfg::designs::elliptic::partitioned_with(rate, PortMode::Unidirectional);
            let s = fds_schedule(
                d.cdfg(),
                &FdsConfig {
                    rate,
                    pipe_length: 30,
                },
            )
            .unwrap_or_else(|e| panic!("rate {rate}: {e}"));
            let timing: Vec<_> = validate(d.cdfg(), &s)
                .into_iter()
                .filter(|v| !matches!(v, crate::schedule::ScheduleViolation::Resources { .. }))
                .collect();
            assert_eq!(timing, vec![], "rate {rate}");
        }
    }

    #[test]
    fn tighter_pipe_lengths_are_monotone_in_feasibility() {
        // If FDS schedules pipe L, it must also schedule any longer pipe.
        let d = ar_filter::simple();
        let mut shortest = None;
        for pipe in 3..=12 {
            let ok = fds_schedule(
                d.cdfg(),
                &FdsConfig {
                    rate: 2,
                    pipe_length: pipe,
                },
            )
            .is_ok();
            if ok && shortest.is_none() {
                shortest = Some(pipe);
            }
            if let Some(s) = shortest {
                assert!(
                    ok || pipe < s,
                    "pipe {pipe} failed although pipe {s} succeeded"
                );
            }
        }
        assert!(shortest.is_some(), "some pipe length must work");
    }

    #[test]
    fn multicycle_ops_stay_on_stage_boundaries() {
        let d = synthetic::multicycle_example();
        let s = fds_schedule(
            d.cdfg(),
            &FdsConfig {
                rate: 6,
                pipe_length: 12,
            },
        )
        .unwrap();
        for op in d.cdfg().op_ids() {
            if d.cdfg().op_cycles(op) > 1 {
                assert_eq!(s.of(op).offset_ns, 0, "{op} must start a stage");
            }
        }
    }

    #[test]
    fn io_transfers_get_boundary_starts() {
        let d = synthetic::quickstart();
        let s = fds_schedule(
            d.cdfg(),
            &FdsConfig {
                rate: 1,
                pipe_length: 6,
            },
        )
        .unwrap();
        for op in d.cdfg().io_ops() {
            assert_eq!(s.of(op).offset_ns, 0, "{op} is an I/O transfer");
        }
    }
}
