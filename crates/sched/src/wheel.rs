//! The allocation wheel for multi-cycle operations (Section 7.4,
//! Figure 7.10).
//!
//! In a pipelined design with initiation rate `L`, a non-pipelined
//! `c`-cycle functional unit started in control step `t` is busy in wheel
//! cells `t mod L, ..., (t + c - 1) mod L`. Operations bound to one unit
//! must occupy disjoint cell sets; careless placement fragments the wheel
//! and strands later operations even when Equation 7.5 says enough units
//! exist.

/// Why an [`AllocationWheel`] could not be constructed. Both conditions
/// arise from malformed inputs (a zero initiation rate, or an operator
/// library declaring a zero-cycle class) that used to trip an assert.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WheelError {
    /// The initiation rate must be at least 1.
    ZeroRate,
    /// The operator class must take at least one cycle.
    ZeroCycles,
}

impl std::fmt::Display for WheelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WheelError::ZeroRate => write!(f, "initiation rate must be at least 1"),
            WheelError::ZeroCycles => write!(f, "operator class must take at least one cycle"),
        }
    }
}

impl std::error::Error for WheelError {}

/// Occupancy wheels for the units of one `(partition, operator-class)`
/// pair.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AllocationWheel {
    rate: u32,
    cycles: u32,
    /// `cells[u][g]` is true when unit `u` is busy in wheel cell `g`.
    cells: Vec<Vec<bool>>,
}

impl AllocationWheel {
    /// A wheel set for `units` units of a `cycles`-cycle class at
    /// initiation rate `rate`.
    ///
    /// # Errors
    ///
    /// [`WheelError::ZeroRate`] / [`WheelError::ZeroCycles`] when the
    /// corresponding parameter is zero — reachable from a malformed
    /// design (e.g. an operator library with a zero-cycle class), so it
    /// is an error, not a panic.
    pub fn new(units: u32, rate: u32, cycles: u32) -> Result<Self, WheelError> {
        if rate == 0 {
            return Err(WheelError::ZeroRate);
        }
        if cycles == 0 {
            return Err(WheelError::ZeroCycles);
        }
        Ok(AllocationWheel {
            rate,
            cycles,
            cells: vec![vec![false; rate as usize]; units as usize],
        })
    }

    /// The minimum operator count of Equation 7.5:
    /// `ceil(n / floor(L / c))`, undefined (`None`) when `c > L`.
    pub fn lower_bound(n_ops: u32, rate: u32, cycles: u32) -> Option<u32> {
        if cycles > rate {
            return None;
        }
        let per_unit = rate / cycles;
        Some(n_ops.div_ceil(per_unit))
    }

    /// Wheel cells occupied by a start step.
    fn occupied(&self, step: i64) -> Vec<usize> {
        (0..self.cycles as i64)
            .map(|d| (step + d).rem_euclid(self.rate as i64) as usize)
            .collect()
    }

    /// `true` if some unit can accept an operation starting at `step`.
    pub fn can_place(&self, step: i64) -> bool {
        self.unit_for(step).is_some()
    }

    /// First unit whose cells are free for a start at `step`.
    pub fn unit_for(&self, step: i64) -> Option<usize> {
        let occ = self.occupied(step);
        (0..self.cells.len()).find(|&u| occ.iter().all(|&g| !self.cells[u][g]))
    }

    /// Places an operation starting at `step`, returning the bound unit.
    ///
    /// # Errors
    ///
    /// Returns `Err(())`-like `None` if no unit has the cells free.
    pub fn place(&mut self, step: i64) -> Option<usize> {
        let u = self.unit_for(step)?;
        for g in self.occupied(step) {
            self.cells[u][g] = true;
        }
        Some(u)
    }

    /// Removes a placement previously made at `step` on `unit`.
    pub fn remove(&mut self, unit: usize, step: i64) {
        for g in self.occupied(step) {
            self.cells[unit][g] = false;
        }
    }

    /// How many more `cycles`-long operations could still be packed,
    /// summing `floor(arc / c)` over each unit's maximal free arcs (the
    /// fragmentation measure behind the Section 7.4 safety check).
    pub fn remaining_capacity(&self) -> u32 {
        let l = self.rate as usize;
        let c = self.cycles as usize;
        let mut total = 0u32;
        for unit in &self.cells {
            if unit.iter().all(|&b| !b) {
                total += (l / c) as u32;
                continue;
            }
            // Walk the circular wheel collecting free arcs between busy
            // cells.
            let Some(start) = unit.iter().position(|&b| b) else {
                unreachable!()
            };
            let mut run = 0usize;
            for i in 1..=l {
                let g = (start + i) % l;
                if unit[g] {
                    total += (run / c) as u32;
                    run = 0;
                } else {
                    run += 1;
                }
            }
        }
        total
    }

    /// The Section 7.4 safety check: would placing an operation at `step`
    /// still leave room for `remaining_ops` further operations of this
    /// class?
    pub fn is_safe(&self, step: i64, remaining_ops: u32) -> bool {
        let mut probe = self.clone();
        match probe.place(step) {
            None => false,
            Some(_) => probe.remaining_capacity() >= remaining_ops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_is_a_typed_error() {
        // Regression: used to be `assert!(rate > 0 && cycles > 0)`,
        // panicking on malformed designs reaching the public API.
        assert_eq!(
            AllocationWheel::new(1, 0, 1).unwrap_err(),
            WheelError::ZeroRate
        );
    }

    #[test]
    fn zero_cycles_is_a_typed_error() {
        assert_eq!(
            AllocationWheel::new(1, 6, 0).unwrap_err(),
            WheelError::ZeroCycles
        );
    }

    #[test]
    fn eq_7_5_lower_bound() {
        // 3 two-cycle ops at rate 6: one unit suffices.
        assert_eq!(AllocationWheel::lower_bound(3, 6, 2), Some(1));
        // 4 two-cycle ops at rate 6: two units.
        assert_eq!(AllocationWheel::lower_bound(4, 6, 2), Some(2));
        // No pipelined design with L < c.
        assert_eq!(AllocationWheel::lower_bound(1, 1, 2), None);
    }

    #[test]
    fn wrap_around_occupancy() {
        let mut w = AllocationWheel::new(1, 6, 2).unwrap();
        // Start in the last cell: occupies cells 5 and 0.
        assert_eq!(w.place(5), Some(0));
        assert!(!w.can_place(0)); // cell 0 busy
        assert!(!w.can_place(4)); // cell 5 busy
        assert!(w.can_place(2));
    }

    #[test]
    fn figure_7_10_fragmentation() {
        // Rate 6, 2-cycle ops, one unit. Placing at steps 0 and 3 leaves
        // cells 2 and 5 free but not contiguous: op3 is stranded.
        let mut w = AllocationWheel::new(1, 6, 2).unwrap();
        w.place(0).unwrap();
        assert!(w.is_safe(2, 1), "0,2 then 4 still fits");
        assert!(!w.is_safe(3, 1), "0,3 strands the third op");
        w.place(3).unwrap();
        assert!(!w.can_place(2));
        assert_eq!(w.remaining_capacity(), 0);
    }

    #[test]
    fn negative_steps_wrap_correctly() {
        let mut w = AllocationWheel::new(1, 4, 2).unwrap();
        assert_eq!(w.place(-1), Some(0)); // cells 3 and 0
        assert!(!w.can_place(3));
        assert!(w.can_place(1));
    }

    #[test]
    fn remove_restores_capacity() {
        let mut w = AllocationWheel::new(1, 6, 2).unwrap();
        let u = w.place(0).unwrap();
        assert_eq!(w.remaining_capacity(), 2);
        w.remove(u, 0);
        assert_eq!(w.remaining_capacity(), 3);
    }

    #[test]
    fn multiple_units_bind_independently() {
        let mut w = AllocationWheel::new(2, 4, 2).unwrap();
        assert_eq!(w.place(0), Some(0));
        assert_eq!(w.place(0), Some(1));
        assert!(!w.can_place(1)); // both units busy in cell 1
        assert!(w.can_place(2));
    }

    #[test]
    fn single_cycle_class_behaves_like_slot_counting() {
        let mut w = AllocationWheel::new(2, 3, 1).unwrap();
        assert!(w.place(0).is_some());
        assert!(w.place(0).is_some());
        assert!(!w.can_place(3)); // same group as step 0
        assert_eq!(w.remaining_capacity(), 4);
    }
}
