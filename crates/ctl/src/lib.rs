//! Execution control for long-running synthesis flows.
//!
//! The dissertation's solvers are unbounded searches: Gomory cutting
//! planes and the branching connection search can both blow up on
//! adversarial partitionings. This crate provides the pipeline-wide
//! control layer that keeps a pathological design from hanging or
//! crashing a run:
//!
//! * [`Budget`] — a cloneable, thread-safe handle carrying an optional
//!   wall-clock deadline plus pivot / node / probe count ceilings and a
//!   cooperative [`CancelToken`]. Solvers charge work units against it
//!   and poll it at safe points (pivot boundaries, epoch barriers, wave
//!   barriers, placement steps).
//! * [`Termination`] — the verdict every flow reports: why it stopped,
//!   whether by finishing, by a tripped budget, or by a quarantined
//!   worker panic. Flows interrupted mid-search return an *anytime
//!   result*: the best feasible artifact found so far, tagged with the
//!   verdict.
//! * [`fault`] — a debug-only fault-injection registry behind the
//!   [`faultpoint!`] macro, used by the test suite to force panics and
//!   stalls at named sites and prove graceful degradation. In release
//!   builds the macro expands to nothing.
//!
//! Time never comes from `Instant::now()` directly: budgets read an
//! injected [`Clock`], so tests use a [`ManualClock`] and advance it
//! deterministically.
//!
//! ```
//! use mcs_ctl::{Budget, BudgetSpec, Termination};
//!
//! let budget = Budget::new(BudgetSpec::default().max_pivots(2));
//! assert_eq!(budget.check(), None);
//! budget.charge_pivots(2);
//! assert_eq!(budget.check(), Some(Termination::BudgetExhausted));
//! // The verdict is sticky: later polls agree with the first trip.
//! assert_eq!(budget.check(), Some(Termination::BudgetExhausted));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod fault;

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Why a flow stopped.
///
/// Every budget-aware entry point reports one of these alongside its
/// (possibly partial) result. `Complete` is the only verdict that
/// promises the search ran to its natural end; all others tag an
/// *anytime* result — the best artifact found before the interruption.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Termination {
    /// The flow ran to its natural end; the result is final.
    Complete,
    /// The wall-clock deadline passed before the flow finished.
    DeadlineExceeded,
    /// A work-count ceiling (pivots, nodes, or probes) was reached.
    BudgetExhausted,
    /// A [`CancelToken`] was triggered by the caller.
    Cancelled,
    /// A worker thread panicked; its contribution was quarantined and
    /// the remaining workers' result is reported.
    WorkerPanicked,
}

impl Termination {
    /// Stable lower-case name used in reports and machine-readable
    /// output (`complete`, `deadline-exceeded`, …).
    pub fn name(self) -> &'static str {
        match self {
            Termination::Complete => "complete",
            Termination::DeadlineExceeded => "deadline-exceeded",
            Termination::BudgetExhausted => "budget-exhausted",
            Termination::Cancelled => "cancelled",
            Termination::WorkerPanicked => "worker-panicked",
        }
    }

    /// True when the flow was interrupted before its natural end
    /// (everything except [`Termination::Complete`] and
    /// [`Termination::WorkerPanicked`], which degrades the result but
    /// does not truncate the search).
    pub fn interrupted(self) -> bool {
        !matches!(self, Termination::Complete | Termination::WorkerPanicked)
    }
}

impl fmt::Display for Termination {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl Default for Termination {
    /// [`Termination::Complete`] — the verdict of an uninterrupted run,
    /// so stats structs can derive `Default`.
    fn default() -> Self {
        Termination::Complete
    }
}

/// Monotonic time source injected into budgets.
///
/// Production code uses [`MonotonicClock`]; tests use [`ManualClock`]
/// so deadline behaviour is reproducible without sleeping.
pub trait Clock: Send + Sync {
    /// Milliseconds elapsed since an arbitrary fixed origin. Must be
    /// monotonically non-decreasing.
    fn now_ms(&self) -> u64;

    /// Microseconds elapsed since the same origin. The default derives
    /// it from [`Clock::now_ms`] (millisecond granularity); clocks with
    /// a finer source override it. Used by `mcs-metrics` latency
    /// histograms and span timings.
    fn now_us(&self) -> u64 {
        self.now_ms().saturating_mul(1000)
    }
}

/// [`Clock`] over [`std::time::Instant`]; the origin is the moment the
/// clock was created.
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose origin is now.
    pub fn new() -> Self {
        MonotonicClock {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_ms(&self) -> u64 {
        self.origin.elapsed().as_millis() as u64
    }

    fn now_us(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }
}

/// Hand-cranked [`Clock`] for deterministic deadline tests.
///
/// ```
/// use mcs_ctl::{Budget, BudgetSpec, Clock, ManualClock, Termination};
/// use std::sync::Arc;
///
/// let clock = Arc::new(ManualClock::new());
/// let budget = Budget::with_clock(BudgetSpec::default().deadline_ms(10), clock.clone());
/// assert_eq!(budget.check(), None);
/// clock.advance_ms(10);
/// assert_eq!(budget.check(), Some(Termination::DeadlineExceeded));
/// ```
#[derive(Debug, Default)]
pub struct ManualClock {
    us: AtomicU64,
}

impl ManualClock {
    /// A clock frozen at 0 ms.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advance the clock by `ms` milliseconds.
    pub fn advance_ms(&self, ms: u64) {
        self.us.fetch_add(ms.saturating_mul(1000), Ordering::SeqCst);
    }

    /// Advance the clock by `us` microseconds.
    pub fn advance_us(&self, us: u64) {
        self.us.fetch_add(us, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_ms(&self) -> u64 {
        self.us.load(Ordering::SeqCst) / 1000
    }

    fn now_us(&self) -> u64 {
        self.us.load(Ordering::SeqCst)
    }
}

/// Cooperative cancellation flag shared between a caller and the flows
/// it launched. Cloning shares the flag; `cancel()` is sticky.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation. Flows observe it at their next safe point.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// Has [`CancelToken::cancel`] been called on any clone?
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// Declarative limits for a [`Budget`]. All fields optional; the
/// default spec is unlimited.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BudgetSpec {
    /// Wall-clock deadline in milliseconds from budget creation.
    pub deadline_ms: Option<u64>,
    /// Ceiling on Gomory pivots charged across the whole flow.
    pub max_pivots: Option<u64>,
    /// Ceiling on search nodes expanded across the whole flow.
    pub max_nodes: Option<u64>,
    /// Ceiling on pin-feasibility probes across the whole flow.
    pub max_probes: Option<u64>,
}

impl BudgetSpec {
    /// Set the wall-clock deadline in milliseconds.
    pub fn deadline_ms(mut self, ms: u64) -> Self {
        self.deadline_ms = Some(ms);
        self
    }

    /// Set the pivot ceiling.
    pub fn max_pivots(mut self, n: u64) -> Self {
        self.max_pivots = Some(n);
        self
    }

    /// Set the search-node ceiling.
    pub fn max_nodes(mut self, n: u64) -> Self {
        self.max_nodes = Some(n);
        self
    }

    /// Set the probe ceiling.
    pub fn max_probes(mut self, n: u64) -> Self {
        self.max_probes = Some(n);
        self
    }

    /// True when no limit at all is set.
    pub fn is_unlimited(&self) -> bool {
        *self == BudgetSpec::default()
    }

    /// The componentwise-tightest combination of two specs: each ceiling
    /// is the minimum of the ceilings present on either side. This is
    /// how a server clamps a per-request spec under its own caps — the
    /// request can only tighten the server's limits, never loosen them.
    pub fn intersect(&self, other: &BudgetSpec) -> BudgetSpec {
        fn tightest(a: Option<u64>, b: Option<u64>) -> Option<u64> {
            match (a, b) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            }
        }
        BudgetSpec {
            deadline_ms: tightest(self.deadline_ms, other.deadline_ms),
            max_pivots: tightest(self.max_pivots, other.max_pivots),
            max_nodes: tightest(self.max_nodes, other.max_nodes),
            max_probes: tightest(self.max_probes, other.max_probes),
        }
    }
}

#[derive(Debug)]
struct BudgetInner {
    clock: Arc<dyn Clock>,
    start_ms: u64,
    spec: BudgetSpec,
    pivots: AtomicU64,
    nodes: AtomicU64,
    probes: AtomicU64,
    cancel: CancelToken,
    /// Sticky verdict: 0 = not tripped, otherwise `Termination` code+1.
    tripped: AtomicU8,
}

impl fmt::Debug for dyn Clock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Clock(now_ms={})", self.now_ms())
    }
}

/// Shared, thread-safe execution budget.
///
/// Flows *charge* work units ([`charge_pivots`](Budget::charge_pivots),
/// [`charge_nodes`](Budget::charge_nodes),
/// [`charge_probes`](Budget::charge_probes)) and *poll* the budget at
/// safe points ([`check`](Budget::check)). The contract is
/// check-before-the-next-unit-of-work: a flow that finishes exactly as
/// it spends its last allowed unit never observes a trip and reports
/// [`Termination::Complete`].
///
/// The first trip is sticky — once any clone observes a verdict, all
/// later polls on any clone return the same verdict, so a multi-phase
/// flow reports one coherent reason even when the deadline keeps
/// receding into the past.
#[derive(Debug, Clone)]
pub struct Budget {
    inner: Arc<BudgetInner>,
}

impl Default for Budget {
    fn default() -> Self {
        Self::unlimited()
    }
}

impl Budget {
    /// Budget with the given limits, timed by a fresh [`MonotonicClock`].
    pub fn new(spec: BudgetSpec) -> Self {
        Self::with_clock(spec, Arc::new(MonotonicClock::new()))
    }

    /// Budget with the given limits and an injected clock (tests pass a
    /// [`ManualClock`]).
    pub fn with_clock(spec: BudgetSpec, clock: Arc<dyn Clock>) -> Self {
        let start_ms = clock.now_ms();
        Budget {
            inner: Arc::new(BudgetInner {
                clock,
                start_ms,
                spec,
                pivots: AtomicU64::new(0),
                nodes: AtomicU64::new(0),
                probes: AtomicU64::new(0),
                cancel: CancelToken::new(),
                tripped: AtomicU8::new(0),
            }),
        }
    }

    /// A budget that never trips (no deadline, no ceilings).
    pub fn unlimited() -> Self {
        Self::new(BudgetSpec::default())
    }

    /// The limits this budget was created with.
    pub fn spec(&self) -> BudgetSpec {
        self.inner.spec
    }

    /// The cancellation token wired into this budget. Cancelling it
    /// trips the budget at the next poll.
    pub fn cancel_token(&self) -> CancelToken {
        self.inner.cancel.clone()
    }

    /// Charge `n` Gomory pivots against the budget.
    pub fn charge_pivots(&self, n: u64) {
        self.inner.pivots.fetch_add(n, Ordering::Relaxed);
    }

    /// Charge `n` search-node expansions against the budget.
    pub fn charge_nodes(&self, n: u64) {
        self.inner.nodes.fetch_add(n, Ordering::Relaxed);
    }

    /// Charge `n` pin-feasibility probes against the budget.
    pub fn charge_probes(&self, n: u64) {
        self.inner.probes.fetch_add(n, Ordering::Relaxed);
    }

    /// Pivots charged so far.
    pub fn pivots_spent(&self) -> u64 {
        self.inner.pivots.load(Ordering::Relaxed)
    }

    /// Search nodes charged so far.
    pub fn nodes_spent(&self) -> u64 {
        self.inner.nodes.load(Ordering::Relaxed)
    }

    /// Probes charged so far.
    pub fn probes_spent(&self) -> u64 {
        self.inner.probes.load(Ordering::Relaxed)
    }

    /// Milliseconds elapsed since the budget was created.
    pub fn elapsed_ms(&self) -> u64 {
        self.inner
            .clock
            .now_ms()
            .saturating_sub(self.inner.start_ms)
    }

    /// Poll the budget at a safe point.
    ///
    /// Returns `None` while work may continue, or the sticky
    /// interruption verdict once the budget has tripped. Never returns
    /// [`Termination::Complete`] or [`Termination::WorkerPanicked`] —
    /// those are verdicts a *flow* reports, not conditions a budget
    /// detects.
    pub fn check(&self) -> Option<Termination> {
        if let Some(t) = self.verdict() {
            return Some(t);
        }
        let spec = &self.inner.spec;
        let trip = if self.inner.cancel.is_cancelled() {
            Some(Termination::Cancelled)
        } else if spec
            .deadline_ms
            .is_some_and(|limit| self.elapsed_ms() >= limit)
        {
            Some(Termination::DeadlineExceeded)
        } else if spec
            .max_pivots
            .is_some_and(|limit| self.pivots_spent() >= limit)
            || spec
                .max_nodes
                .is_some_and(|limit| self.nodes_spent() >= limit)
            || spec
                .max_probes
                .is_some_and(|limit| self.probes_spent() >= limit)
        {
            Some(Termination::BudgetExhausted)
        } else {
            None
        };
        if let Some(t) = trip {
            // First writer wins; later trips observe the sticky verdict.
            let _ = self.inner.tripped.compare_exchange(
                0,
                encode(t),
                Ordering::SeqCst,
                Ordering::SeqCst,
            );
            return self.verdict();
        }
        None
    }

    /// The sticky verdict, if a previous [`check`](Budget::check)
    /// tripped. Does not re-evaluate limits.
    pub fn verdict(&self) -> Option<Termination> {
        decode(self.inner.tripped.load(Ordering::SeqCst))
    }

    /// Convenience: `true` once the budget has tripped (polls first).
    pub fn is_tripped(&self) -> bool {
        self.check().is_some()
    }

    /// The flow's final verdict: the sticky trip if any, otherwise
    /// [`Termination::Complete`].
    pub fn termination(&self) -> Termination {
        self.verdict().unwrap_or(Termination::Complete)
    }
}

fn encode(t: Termination) -> u8 {
    match t {
        Termination::Complete => 1,
        Termination::DeadlineExceeded => 2,
        Termination::BudgetExhausted => 3,
        Termination::Cancelled => 4,
        Termination::WorkerPanicked => 5,
    }
}

fn decode(v: u8) -> Option<Termination> {
    match v {
        1 => Some(Termination::Complete),
        2 => Some(Termination::DeadlineExceeded),
        3 => Some(Termination::BudgetExhausted),
        4 => Some(Termination::Cancelled),
        5 => Some(Termination::WorkerPanicked),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_trips() {
        let b = Budget::unlimited();
        b.charge_pivots(1 << 20);
        b.charge_nodes(1 << 20);
        b.charge_probes(1 << 20);
        assert_eq!(b.check(), None);
        assert_eq!(b.termination(), Termination::Complete);
    }

    #[test]
    fn pivot_ceiling_trips_and_sticks() {
        let b = Budget::new(BudgetSpec::default().max_pivots(10));
        b.charge_pivots(9);
        assert_eq!(b.check(), None);
        b.charge_pivots(1);
        assert_eq!(b.check(), Some(Termination::BudgetExhausted));
        // Sticky even if a later, different condition would also hold.
        b.cancel_token().cancel();
        assert_eq!(b.check(), Some(Termination::BudgetExhausted));
    }

    #[test]
    fn deadline_with_manual_clock() {
        let clock = Arc::new(ManualClock::new());
        let b = Budget::with_clock(BudgetSpec::default().deadline_ms(100), clock.clone());
        assert_eq!(b.check(), None);
        clock.advance_ms(99);
        assert_eq!(b.check(), None);
        clock.advance_ms(1);
        assert_eq!(b.check(), Some(Termination::DeadlineExceeded));
    }

    #[test]
    fn zero_deadline_trips_immediately() {
        let clock = Arc::new(ManualClock::new());
        let b = Budget::with_clock(BudgetSpec::default().deadline_ms(0), clock);
        assert_eq!(b.check(), Some(Termination::DeadlineExceeded));
    }

    #[test]
    fn cancellation_is_cooperative_and_shared() {
        let b = Budget::unlimited();
        let token = b.cancel_token();
        let b2 = b.clone();
        assert_eq!(b2.check(), None);
        token.cancel();
        assert_eq!(b2.check(), Some(Termination::Cancelled));
        assert_eq!(b.verdict(), Some(Termination::Cancelled));
    }

    #[test]
    fn counters_are_shared_across_clones() {
        let b = Budget::new(BudgetSpec::default().max_nodes(4));
        let b2 = b.clone();
        b.charge_nodes(2);
        b2.charge_nodes(2);
        assert_eq!(b.nodes_spent(), 4);
        assert_eq!(b.check(), Some(Termination::BudgetExhausted));
    }

    #[test]
    fn manual_clock_counts_microseconds() {
        let c = ManualClock::new();
        c.advance_us(1500);
        assert_eq!(c.now_us(), 1500);
        assert_eq!(c.now_ms(), 1);
        c.advance_ms(2);
        assert_eq!(c.now_us(), 3500);
        assert_eq!(c.now_ms(), 3);
    }

    #[test]
    fn default_now_us_derives_from_now_ms() {
        struct MsOnly;
        impl Clock for MsOnly {
            fn now_ms(&self) -> u64 {
                7
            }
        }
        assert_eq!(MsOnly.now_us(), 7000);
    }

    #[test]
    fn verdict_names_are_stable() {
        assert_eq!(Termination::Complete.name(), "complete");
        assert_eq!(Termination::DeadlineExceeded.name(), "deadline-exceeded");
        assert_eq!(Termination::BudgetExhausted.name(), "budget-exhausted");
        assert_eq!(Termination::Cancelled.name(), "cancelled");
        assert_eq!(Termination::WorkerPanicked.name(), "worker-panicked");
    }

    #[test]
    fn intersect_takes_the_tightest_ceiling_per_axis() {
        let server = BudgetSpec::default().deadline_ms(500).max_nodes(1000);
        let request = BudgetSpec::default().deadline_ms(2000).max_probes(64);
        let clamped = server.intersect(&request);
        // The request's looser deadline is clamped; limits only ever
        // tighten regardless of which side carries them.
        assert_eq!(clamped.deadline_ms, Some(500));
        assert_eq!(clamped.max_nodes, Some(1000));
        assert_eq!(clamped.max_probes, Some(64));
        assert_eq!(clamped.max_pivots, None);
        assert_eq!(server.intersect(&request), request.intersect(&server));
        assert_eq!(
            BudgetSpec::default().intersect(&BudgetSpec::default()),
            BudgetSpec::default()
        );
    }
}
