//! Debug-only fault injection for the test suite.
//!
//! Production code marks interruption-safe sites with
//! [`faultpoint!`](crate::faultpoint):
//!
//! ```
//! mcs_ctl::faultpoint!("doc::example");
//! ```
//!
//! In release builds the macro expands to nothing. In debug builds it
//! consults a process-global registry: tests arm a site with [`arm`]
//! and the next thread to pass it panics (or stalls), which is how the
//! fault-injection suite proves that a panicking worker degrades its
//! contribution instead of aborting the whole process.
//!
//! Tests that arm faults must not run concurrently with each other;
//! use [`disarm_all`] in a guard so a failing test cannot leak an armed
//! fault into the next one.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// What an armed faultpoint does to the thread that hits it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic with a deterministic message naming the site.
    Panic,
    /// Sleep for the given number of milliseconds, then continue.
    /// Models a stalled worker; keep it small in tests.
    Stall(u64),
}

#[derive(Debug, Default)]
struct Registry {
    armed: HashMap<String, FaultAction>,
    hits: HashMap<String, u64>,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Registry::default()))
}

/// Arm `site` so the next [`hit`] triggers `action`. The fault stays
/// armed (every hit triggers) until [`disarm`] or [`disarm_all`].
pub fn arm(site: &str, action: FaultAction) {
    let mut reg = registry().lock().expect("fault registry");
    reg.armed.insert(site.to_string(), action);
}

/// Disarm a single site.
pub fn disarm(site: &str) {
    let mut reg = registry().lock().expect("fault registry");
    reg.armed.remove(site);
}

/// Disarm every site. Call from a test's cleanup guard.
pub fn disarm_all() {
    let mut reg = registry().lock().expect("fault registry");
    reg.armed.clear();
}

/// How many times `site` was reached (armed or not) since process
/// start. Lets tests assert a site is actually on the exercised path.
pub fn hits(site: &str) -> u64 {
    let reg = registry().lock().expect("fault registry");
    reg.hits.get(site).copied().unwrap_or(0)
}

/// Called by [`faultpoint!`](crate::faultpoint) in debug builds. Counts
/// the visit and triggers the armed action, if any.
pub fn hit(site: &str) {
    let action = {
        let mut reg = registry().lock().expect("fault registry");
        *reg.hits.entry(site.to_string()).or_insert(0) += 1;
        reg.armed.get(site).copied()
    };
    match action {
        None => {}
        Some(FaultAction::Panic) => panic!("injected fault at {site}"),
        Some(FaultAction::Stall(ms)) => std::thread::sleep(std::time::Duration::from_millis(ms)),
    }
}

/// Marks an interruption-safe site for fault injection.
///
/// Expands to a registry probe in debug builds and to nothing in
/// release builds, so faultpoints cost nothing in shipped binaries.
#[macro_export]
macro_rules! faultpoint {
    ($site:expr) => {{
        #[cfg(debug_assertions)]
        {
            $crate::fault::hit($site);
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_faultpoint_is_a_noop() {
        faultpoint!("test::noop");
        assert!(hits("test::noop") >= 1);
    }

    #[test]
    fn armed_panic_fires_and_disarms_cleanly() {
        arm("test::boom", FaultAction::Panic);
        let r = std::panic::catch_unwind(|| faultpoint!("test::boom"));
        disarm("test::boom");
        assert!(r.is_err());
        // After disarm the same site is inert again.
        faultpoint!("test::boom");
    }

    #[test]
    fn stall_returns_control() {
        arm("test::stall", FaultAction::Stall(1));
        faultpoint!("test::stall");
        disarm_all();
    }
}
