//! The heuristic interchip-connection search of Section 4.1.2
//! (Figure 4.3), with the bidirectional-port variant of Section 4.3 and
//! the sub-bus extension of Section 6.1.2.
//!
//! I/O operations are assigned to buses in descending bit-width order. At
//! each node, a small number of candidate buses with the best *gain*
//! `g = 10000*g1 + 100*g2 + g3` is explored:
//!
//! * `g1` rewards reuse of already-existing ports, weighted by pin
//!   pressure `wf_i = unassigned bits / unallocated pins`;
//! * `g2` rewards co-locating transfers of the same value (they share a
//!   communication slot);
//! * `g3` balances bus utilization (free slots).
//!
//! The branching factor trades run time against the chance of finding a
//! connection; exploration is additionally capped by a node budget. With
//! sub-bus sharing enabled, assignment may also split an unsplit bus in
//! two when the incoming transfer fits beside a previously assigned one
//! (the prototype's at-most-two-sub-buses restriction, Section 6.1.2).

use std::collections::BTreeMap;

use mcs_cdfg::{BusId, Cdfg, OpId, PartitionId, PortMode, ValueId};

use crate::model::{Bus, BusAssignment, Interconnect, SubRange};

/// Tuning knobs of the search.
#[derive(Clone, Debug)]
pub struct SearchConfig {
    /// Initiation rate `L` (bus slots per bus).
    pub rate: u32,
    /// Candidates explored per node (the paper's user-set branching
    /// factor). In a portfolio run this is the *base* factor that the
    /// diversified worker plans are derived from.
    pub branching_factor: usize,
    /// Enable Chapter 6 sub-bus sharing (at most two sub-buses per bus).
    pub allow_split: bool,
    /// Backtracking node budget (per portfolio worker; worker 0 always
    /// keeps the full budget, the diversified workers run on slices).
    pub node_budget: usize,
    /// Threads used to expand portfolio workers. Purely an execution
    /// knob: the synthesized `Interconnect` is a function of the
    /// *portfolio*, never of how many threads expanded it.
    pub workers: usize,
    /// Number of diversified search configurations raced against each
    /// other. `None` means "one per worker". A portfolio of 1 runs
    /// exactly the classic Figure 4.3 search (and disables the shared
    /// pruning cache), so single-config results are bit-for-bit those of
    /// the sequential implementation.
    pub portfolio: Option<usize>,
    /// Nodes each live worker expands between synchronization barriers.
    /// Epoch-lockstep execution is what makes the parallel search
    /// deterministic: cancellation and cache visibility are decided by
    /// node counts, never by wall-clock timing.
    pub epoch_nodes: usize,
    /// Sink for `SearchNode` events. The orchestrator records one event
    /// per (worker, epoch) at the barrier, in portfolio-index order, so
    /// the event stream is deterministic across thread counts.
    pub recorder: mcs_obs::RecorderHandle,
    /// Metrics sink: a `connect.epoch_us` histogram (one observation per
    /// live worker per epoch, timed on the registry clock) plus
    /// `connect.seed_hits` / `connect.cache_hits` / `connect.nodes`
    /// counters added once at the end of the run. Disconnected by
    /// default.
    pub metrics: mcs_metrics::MetricsHandle,
    /// Execution budget polled at every epoch barrier. When it trips,
    /// the run stops with [`ConnectError::Interrupted`] and the search
    /// stats carry the deepest partial connection reached (the anytime
    /// result). Count ceilings are checked only at barriers, so the
    /// interruption point — like everything else about the search — is
    /// independent of the thread count; a wall-clock deadline trades
    /// that determinism for latency control.
    pub budget: Option<mcs_ctl::Budget>,
    /// Seed the diversified portfolio with a probe-ranked plan: one
    /// worker orders operations by pin-feasibility pressure measured
    /// through a single batched probe pass over every (operation, step
    /// group) pair ([`crate::portfolio::OpOrder::ProbeSeeded`]). Off by
    /// default so the classic plan menu — and every event stream and
    /// result derived from it — stays byte-identical.
    pub probe_seed_plans: bool,
}

impl SearchConfig {
    /// A configuration with the defaults used by the experiments.
    pub fn new(rate: u32) -> Self {
        SearchConfig {
            rate,
            branching_factor: 3,
            allow_split: false,
            node_budget: 200_000,
            workers: 1,
            portfolio: None,
            epoch_nodes: 512,
            recorder: mcs_obs::RecorderHandle::default(),
            metrics: mcs_metrics::MetricsHandle::default(),
            budget: None,
            probe_seed_plans: false,
        }
    }

    /// Enables Chapter 6 sub-bus sharing.
    pub fn with_sharing(mut self) -> Self {
        self.allow_split = true;
        self
    }

    /// Sets the number of expansion threads (and, unless
    /// [`with_portfolio`](Self::with_portfolio) pins it, the portfolio
    /// size).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Pins the portfolio size independently of the thread count, so the
    /// result stays identical while `workers` varies.
    pub fn with_portfolio(mut self, portfolio: usize) -> Self {
        self.portfolio = Some(portfolio.max(1));
        self
    }

    /// Routes per-epoch `SearchNode` events to `recorder`.
    pub fn with_recorder(mut self, recorder: mcs_obs::RecorderHandle) -> Self {
        self.recorder = recorder;
        self
    }

    /// Connects the `connect.*` metrics to `metrics`.
    pub fn with_metrics(mut self, metrics: mcs_metrics::MetricsHandle) -> Self {
        self.metrics = metrics;
        self
    }

    /// Bounds the run with an execution budget (see
    /// [`SearchConfig::budget`]).
    pub fn with_budget(mut self, budget: mcs_ctl::Budget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Seeds the portfolio with a probe-ranked plan (see
    /// [`SearchConfig::probe_seed_plans`]).
    pub fn with_probe_seeding(mut self) -> Self {
        self.probe_seed_plans = true;
        self
    }
}

/// Failure modes of connection synthesis.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConnectError {
    /// The initiation rate must be positive.
    ZeroRate,
    /// No connection structure was found within the explored space; a
    /// higher branching factor or node budget may succeed.
    NoConnectionFound,
    /// The execution budget tripped before any worker found a
    /// connection. The carried [`mcs_ctl::Termination`] says why
    /// (deadline, work ceiling, or cancellation); the search stats of
    /// the run hold the deepest partial structure reached.
    Interrupted(mcs_ctl::Termination),
}

impl std::fmt::Display for ConnectError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConnectError::ZeroRate => write!(f, "initiation rate must be at least 1"),
            ConnectError::NoConnectionFound => {
                write!(f, "heuristic search found no interchip connection")
            }
            ConnectError::Interrupted(t) => {
                write!(f, "connection search interrupted ({t})")
            }
        }
    }
}

impl std::error::Error for ConnectError {}

#[derive(Clone)]
pub(crate) struct State {
    pub(crate) buses: Vec<Bus>,
    /// Values riding each bus and their sub-ranges.
    pub(crate) bus_values: Vec<BTreeMap<ValueId, SubRange>>,
    pub(crate) assignment: BTreeMap<OpId, BusAssignment>,
    pub(crate) pins_left: Vec<i64>,
    pub(crate) demand_left: Vec<i64>,
    /// Static group windows of feedback values (Section 7.1): a bus can
    /// only host value sets whose windows admit distinct step groups.
    pub(crate) windows: BTreeMap<ValueId, std::collections::BTreeSet<u32>>,
}

/// Builds the root search state: empty connection structure, full pin
/// budgets, per-partition bit demand, and feedback group windows.
pub(crate) fn initial_state(cdfg: &Cdfg, rate: u32, ops: &[OpId]) -> State {
    let nparts = cdfg.partition_count();
    let mut pins_left = vec![0i64; nparts];
    let mut demand_left = vec![0i64; nparts];
    for (pi, part) in cdfg.partitions().iter().enumerate() {
        pins_left[pi] = part.total_pins as i64;
    }
    for &op in ops {
        let (_, from, to) = cdfg.op(op).io_endpoints().expect("io op");
        let bits = cdfg.io_bits(op) as i64;
        demand_left[from.index()] += bits;
        demand_left[to.index()] += bits;
    }
    State {
        buses: Vec::new(),
        bus_values: Vec::new(),
        assignment: BTreeMap::new(),
        pins_left,
        demand_left,
        windows: mcs_cdfg::timing::feedback_group_windows(cdfg, rate),
    }
}

/// Can every value get its own step group, respecting feedback windows?
/// A tiny augmenting-path matching of values to groups. Buses carrying a
/// feedback value additionally keep one spare group: the static windows
/// underestimate how far resource contention pushes the real ones, and a
/// fully packed bus leaves the preloaded transfer no room to maneuver.
pub(crate) fn groups_assignable(
    values: &[ValueId],
    windows: &BTreeMap<ValueId, std::collections::BTreeSet<u32>>,
    l: u32,
) -> bool {
    let has_feedback = values.iter().any(|v| windows.contains_key(v));
    let cap = if has_feedback {
        (l as usize).saturating_sub(1)
    } else {
        l as usize
    };
    if values.len() > cap {
        return false;
    }
    let mut owner: Vec<Option<usize>> = vec![None; l as usize];
    fn try_give(
        i: usize,
        values: &[ValueId],
        windows: &BTreeMap<ValueId, std::collections::BTreeSet<u32>>,
        l: u32,
        owner: &mut Vec<Option<usize>>,
        seen: &mut Vec<bool>,
    ) -> bool {
        let all: std::collections::BTreeSet<u32> = (0..l).collect();
        let groups = windows.get(&values[i]).unwrap_or(&all).clone();
        for g in groups {
            let g = g as usize;
            if g >= l as usize || seen[g] {
                continue;
            }
            seen[g] = true;
            let free = match owner[g] {
                None => true,
                Some(j) => try_give(j, values, windows, l, owner, seen),
            };
            if free {
                owner[g] = Some(i);
                return true;
            }
        }
        false
    }
    for i in 0..values.len() {
        let mut seen = vec![false; l as usize];
        if !try_give(i, values, windows, l, &mut owner, &mut seen) {
            return false;
        }
    }
    true
}

#[derive(Clone, Debug)]
pub(crate) struct Move {
    /// Bus index; `== buses.len()` means a fresh bus.
    pub(crate) bus: usize,
    /// Replace the bus's sub-widths before assigning (a Chapter 6 split).
    pub(crate) split_into: Option<Vec<u32>>,
    pub(crate) range: SubRange,
    pub(crate) gain: f64,
}

/// Synthesizes the interchip connection structure for all I/O operations
/// of `cdfg` (Figure 4.3), discarding the telemetry.
///
/// # Errors
///
/// [`ConnectError::ZeroRate`] or [`ConnectError::NoConnectionFound`].
pub fn synthesize(
    cdfg: &Cdfg,
    mode: PortMode,
    cfg: &SearchConfig,
) -> Result<Interconnect, ConnectError> {
    crate::portfolio::synthesize_with_stats(cdfg, mode, cfg).0
}

/// One candidate relocation considered by [`share_pass`]: the transfer to
/// move, the destination bus index, the sub-range it would ride, the split
/// boundaries to impose on the destination (when it must become a sub-bus
/// structure), and the total pin saving.
type ShareMove = (OpId, usize, SubRange, Option<Vec<u32>>, u32);

/// The Chapter 6 improvement pass: move transfers onto other buses —
/// whole-bus slots or sub-bus ranges, splitting an unsplit bus when the
/// mover can pair with its existing values in one cycle — whenever the
/// move strictly reduces the total pin count without breaching any
/// partition's budget. Vacated ports shrink and emptied buses disappear.
/// Every accepted move reduces total pins, so the pass terminates and
/// sub-bus sharing never costs pins relative to the plain structure
/// (the comparison of Table 6.4).
pub fn share_pass(cdfg: &Cdfg, ic: &mut Interconnect, rate: u32) {
    let windows = mcs_cdfg::timing::feedback_group_windows(cdfg, rate);
    loop {
        let total_before = total_pins(cdfg, ic);
        let mut best: Option<ShareMove> = None;
        let ops: Vec<OpId> = ic.assignment.keys().copied().collect();
        for &op in &ops {
            let cur = ic.assignment[&op];
            let (value, _, _) = cdfg.op(op).io_endpoints().expect("io op");
            let bits = cdfg.io_bits(op);
            for (i, bus) in ic.buses.iter().enumerate() {
                if i == cur.bus.index() {
                    continue;
                }
                // Distinct values riding bus i and their ranges.
                let mut vals: std::collections::BTreeMap<mcs_cdfg::ValueId, SubRange> =
                    std::collections::BTreeMap::new();
                for (&o2, a2) in &ic.assignment {
                    if a2.bus.index() == i {
                        let (v2, _, _) = cdfg.op(o2).io_endpoints().expect("io op");
                        vals.insert(v2, a2.range);
                    }
                }
                if vals.contains_key(&value) {
                    continue; // shared-value rides are not pin moves
                }
                // Candidate target ranges.
                let mut targets: Vec<(SubRange, Option<Vec<u32>>)> = Vec::new();
                if bus.sub_count() == 1 {
                    let w = bus.width();
                    if w >= bits {
                        targets.push((SubRange { lo: 0, hi: 0 }, None));
                    }
                    // Split so the mover rides the upper sub-bus while the
                    // bus's narrow values drop to the lower one: they can
                    // then pair within a cycle (Figure 6.1).
                    if w > bits && !vals.is_empty() {
                        targets.push((SubRange { lo: 1, hi: 1 }, Some(vec![w - bits, bits])));
                    }
                } else {
                    for lo in 0..bus.sub_count() {
                        for hi in lo..bus.sub_count() {
                            let rr = SubRange { lo, hi };
                            if bus.range_width(rr) >= bits {
                                targets.push((rr, None));
                            }
                        }
                    }
                }
                for (range, split) in targets {
                    // Conservative capacity: plan one value per bus cycle
                    // even on split buses (in-cycle pairing is a bonus the
                    // scheduler may still exploit, the pruned-search
                    // spirit of Section 6.2), and feedback values must
                    // keep a cycle inside their static group windows.
                    let mut joined: Vec<ValueId> = vals.keys().copied().collect();
                    joined.push(value);
                    if !groups_assignable(&joined, &windows, rate) {
                        continue;
                    }
                    // Simulate the move (growing endpoint ports if needed)
                    // and measure the saving; reject budget breaches.
                    let mut trial = ic.clone();
                    apply_share_move(cdfg, &mut trial, op, i, range, &split);
                    let after = total_pins(cdfg, &trial);
                    let within_budget = (0..cdfg.partition_count()).all(|p| {
                        let pid = PartitionId::new(p as u32);
                        trial.pins_used(pid) <= cdfg.partition(pid).total_pins
                    });
                    if within_budget && after < total_before {
                        let saving = total_before - after;
                        // Equal savings prefer the split form: the bus can
                        // then carry two values in one cycle (Figure 6.1),
                        // which the scheduler exploits opportunistically.
                        let better = match &best {
                            None => true,
                            Some(b) => {
                                saving > b.4 || (saving == b.4 && split.is_some() && b.3.is_none())
                            }
                        };
                        if better {
                            best = Some((op, i, range, split.clone(), saving));
                        }
                    }
                }
            }
        }
        match best {
            Some((op, i, range, split, _)) => {
                apply_share_move(cdfg, ic, op, i, range, &split);
            }
            None => break,
        }
    }
}

pub(crate) fn total_pins(cdfg: &Cdfg, ic: &Interconnect) -> u32 {
    (0..cdfg.partition_count())
        .map(|p| ic.pins_used(PartitionId::new(p as u32)))
        .sum()
}

/// Moves `op` onto bus `i` at `range` (optionally splitting the bus),
/// relocating the bus's previous values (narrow ones to the lower sub-bus,
/// the rest to the whole range), growing the mover's endpoint ports when
/// its lines exceed them, then shrinking the vacated bus.
fn apply_share_move(
    cdfg: &Cdfg,
    ic: &mut Interconnect,
    op: OpId,
    i: usize,
    range: SubRange,
    split: &Option<Vec<u32>>,
) {
    let old_bus = ic.assignment[&op].bus.index();
    if let Some(widths) = split {
        ic.buses[i].sub_widths = widths.clone();
        let moved: Vec<(OpId, u32)> = ic
            .assignment
            .iter()
            .filter(|(_, a)| a.bus.index() == i)
            .map(|(&o, _)| (o, cdfg.io_bits(o)))
            .collect();
        for (o, vbits) in moved {
            let r = if vbits <= widths[0] {
                SubRange { lo: 0, hi: 0 }
            } else {
                SubRange { lo: 0, hi: 1 }
            };
            ic.assignment.get_mut(&o).expect("present").range = r;
        }
    }
    // The mover's endpoint ports must reach its lines.
    let (_, from, to) = cdfg.op(op).io_endpoints().expect("io op");
    let need = ic.buses[i].prefix_start(range) + cdfg.io_bits(op);
    {
        let bus = &mut ic.buses[i];
        let ports: Vec<&mut BTreeMap<PartitionId, u32>> = match ic.mode {
            PortMode::Unidirectional => vec![&mut bus.out_ports, &mut bus.in_ports],
            PortMode::Bidirectional => vec![&mut bus.bi_ports],
        };
        for (side, ports) in ports.into_iter().enumerate() {
            let grow_for = match (ic.mode, side) {
                (PortMode::Unidirectional, 0) => vec![from],
                (PortMode::Unidirectional, _) => vec![to],
                (PortMode::Bidirectional, _) => vec![from, to],
            };
            for p in grow_for {
                let e = ports.entry(p).or_insert(0);
                *e = (*e).max(need);
            }
        }
    }
    ic.assignment.insert(
        op,
        BusAssignment {
            bus: BusId::new(i as u32),
            range,
        },
    );
    shrink_bus(cdfg, ic, old_bus);
    // Drop emptied buses, renumbering.
    if ic.buses[old_bus].width() == 0 {
        ic.buses.remove(old_bus);
        for a in ic.assignment.values_mut() {
            if a.bus.index() > old_bus {
                a.bus = BusId::new(a.bus.0 - 1);
            }
        }
    }
}

/// Recomputes a bus's sub-widths and port widths from its remaining
/// transfers.
fn shrink_bus(cdfg: &Cdfg, ic: &mut Interconnect, j: usize) {
    let riders: Vec<(OpId, SubRange)> = ic
        .assignment
        .iter()
        .filter(|(_, a)| a.bus.index() == j)
        .map(|(&o, a)| (o, a.range))
        .collect();
    let bus = &mut ic.buses[j];
    bus.out_ports.clear();
    bus.in_ports.clear();
    bus.bi_ports.clear();
    if riders.is_empty() {
        bus.sub_widths = vec![0];
        return;
    }
    if bus.sub_count() == 1 {
        let w = riders
            .iter()
            .map(|&(o, _)| cdfg.io_bits(o))
            .max()
            .unwrap_or(0);
        bus.sub_widths = vec![w];
    }
    for (o, r) in riders {
        let (_, from, to) = cdfg.op(o).io_endpoints().expect("io op");
        let prefix = bus.prefix_start(r) + cdfg.io_bits(o);
        match ic.mode {
            mcs_cdfg::PortMode::Unidirectional => {
                let e = bus.out_ports.entry(from).or_insert(0);
                *e = (*e).max(prefix);
                let e = bus.in_ports.entry(to).or_insert(0);
                *e = (*e).max(prefix);
            }
            mcs_cdfg::PortMode::Bidirectional => {
                let e = bus.bi_ports.entry(from).or_insert(0);
                *e = (*e).max(prefix);
                let e = bus.bi_ports.entry(to).or_insert(0);
                *e = (*e).max(prefix);
            }
        }
    }
}

/// Dead-end pruning: every still-unassigned transfer must have at least
/// one geometrically and pin-feasible carrier (existing ports wide enough,
/// or a port extension/fresh bus the remaining pin budgets can pay for).
/// Slot capacity is ignored here — the check is a cheap necessary
/// condition that cuts hopeless subtrees early.
pub(crate) fn future_feasible(cdfg: &Cdfg, mode: PortMode, state: &State, rest: &[OpId]) -> bool {
    'ops: for &op in rest {
        let (_, from, to) = cdfg.op(op).io_endpoints().expect("io op");
        let bits = cdfg.io_bits(op) as i64;
        // Fresh bus.
        if state.pins_left[from.index()] >= bits && state.pins_left[to.index()] >= bits {
            continue;
        }
        for bus in &state.buses {
            let (cur_f, cur_t) = match mode {
                PortMode::Unidirectional => (
                    bus.out_ports.get(&from).copied().unwrap_or(0) as i64,
                    bus.in_ports.get(&to).copied().unwrap_or(0) as i64,
                ),
                PortMode::Bidirectional => (
                    bus.bi_ports.get(&from).copied().unwrap_or(0) as i64,
                    bus.bi_ports.get(&to).copied().unwrap_or(0) as i64,
                ),
            };
            // Riding the low lines needs at most `bits` of port.
            if state.pins_left[from.index()] >= (bits - cur_f).max(0)
                && state.pins_left[to.index()] >= (bits - cur_t).max(0)
            {
                continue 'ops;
            }
        }
        return false;
    }
    true
}

/// Enumerates, scores, deduplicates and truncates the moves for one
/// operation. `branching_factor` and `cand` come from the worker plan so
/// portfolio members can disagree on how wide and in what order to
/// explore.
pub(crate) fn candidate_moves(
    cdfg: &Cdfg,
    mode: PortMode,
    rate: u32,
    branching_factor: usize,
    cand: crate::portfolio::CandidateOrder,
    state: &State,
    op: OpId,
) -> Vec<Move> {
    let (value, from, to) = cdfg.op(op).io_endpoints().expect("io op");
    let bits = cdfg.io_bits(op);
    let l = rate as i64;

    let mut moves: Vec<Move> = Vec::new();
    for (h, bus) in state.buses.iter().enumerate() {
        let values = &state.bus_values[h];
        // Ranges to try on this bus.
        let mut options: Vec<(SubRange, Option<Vec<u32>>)> = Vec::new();
        if let Some(&r) = values.get(&value) {
            // Same value already rides this bus: share its slot and range
            // (no extra capacity).
            options.push((r, None));
        } else {
            if bus.sub_count() == 1 {
                // Whole (possibly widening) assignment. Sub-bus sharing is
                // applied as a pin-saving post-pass (see `share_pass`)
                // rather than inside the branch search.
                options.push((SubRange { lo: 0, hi: 0 }, None));
            } else {
                for lo in 0..bus.sub_count() {
                    for hi in lo..bus.sub_count() {
                        let r = SubRange { lo, hi };
                        // No widening of split buses (Section 6.1.2).
                        if bus.range_width(r) >= bits {
                            options.push((r, None));
                        }
                    }
                }
            }
        }
        for (range, split_into) in options {
            if let Some(gain) = score_move(
                cdfg,
                mode,
                rate,
                state,
                h,
                &split_into,
                range,
                value,
                from,
                to,
                bits,
            ) {
                moves.push(Move {
                    bus: h,
                    split_into,
                    range,
                    gain,
                });
            }
        }
    }

    // Order by gain, dedup same-topology buses (Section 4.1.2), truncate.
    use crate::portfolio::CandidateOrder;
    moves.sort_by(|a, b| {
        let tie = match cand {
            // The classic search prefers lower bus indices among equal
            // gains; the reversed plan breaks ties the other way to
            // diversify which equal-gain carrier gets explored first.
            CandidateOrder::GainDescBusRev => b.bus.cmp(&a.bus),
            _ => a.bus.cmp(&b.bus),
        };
        b.gain
            .partial_cmp(&a.gain)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(tie)
    });
    let mut seen = std::collections::BTreeSet::new();
    moves.retain(|mv| {
        let sig = (
            state.buses[mv.bus].topology(),
            mv.range,
            mv.split_into.clone(),
        );
        seen.insert(sig)
    });
    moves.truncate(branching_factor.max(1));

    // A fresh bus is always a candidate if pins allow: last resort for the
    // gain-ordered plans, first move for the fresh-first plan.
    let fresh = state.buses.len();
    let fresh_feasible =
        state.pins_left[from.index()] >= bits as i64 && state.pins_left[to.index()] >= bits as i64;
    if fresh_feasible {
        let mv = Move {
            bus: fresh,
            split_into: None,
            range: SubRange { lo: 0, hi: 0 },
            gain: l as f64, // g1 = g2 = 0, g3 = L free slots
        };
        if matches!(cand, CandidateOrder::FreshFirst) {
            moves.insert(0, mv);
        } else {
            moves.push(mv);
        }
    }
    moves
}

/// Scores assigning `value` to bus `h` at `range`; `None` when infeasible
/// (pins or slot capacity).
#[allow(clippy::too_many_arguments)]
pub(crate) fn score_move(
    _cdfg: &Cdfg,
    mode: PortMode,
    rate: u32,
    state: &State,
    h: usize,
    split_into: &Option<Vec<u32>>,
    range: SubRange,
    value: ValueId,
    from: PartitionId,
    to: PartitionId,
    bits: u32,
) -> Option<f64> {
    let bus = &state.buses[h];
    let l = rate as i64;
    let shares_value = state.bus_values[h].contains_key(&value);

    // Geometry after the move.
    let new_widths: Vec<u32> = match split_into {
        Some(w) => w.clone(),
        None => {
            if bus.sub_count() == 1 {
                vec![bus.width().max(bits)]
            } else {
                bus.sub_widths.clone()
            }
        }
    };
    // A transfer occupies the low-order lines of its range; ports may be
    // narrower than the bus (Figure 4.2).
    let prefix_need: u32 = new_widths[..range.lo].iter().sum::<u32>() + bits;

    // Pin deltas for the two endpoint ports.
    let port_width =
        |ports: &BTreeMap<PartitionId, u32>, p: PartitionId| ports.get(&p).copied().unwrap_or(0);
    let (delta_from, delta_to, had_from, had_to) = match mode {
        PortMode::Unidirectional => {
            let cur_out = port_width(&bus.out_ports, from);
            let cur_in = port_width(&bus.in_ports, to);
            (
                prefix_need.saturating_sub(cur_out) as i64,
                prefix_need.saturating_sub(cur_in) as i64,
                cur_out > 0,
                cur_in > 0,
            )
        }
        PortMode::Bidirectional => {
            let cur_f = port_width(&bus.bi_ports, from);
            let cur_t = port_width(&bus.bi_ports, to);
            (
                prefix_need.saturating_sub(cur_f) as i64,
                prefix_need.saturating_sub(cur_t) as i64,
                cur_f > 0,
                cur_t > 0,
            )
        }
    };
    if state.pins_left[from.index()] < delta_from || state.pins_left[to.index()] < delta_to {
        return None;
    }
    if from == to {
        return None;
    }

    // Slot capacity (Constraint 4.5): every value gets its own bus cycle
    // (sub-bus pairing is opportunistic, Section 6.2), and feedback
    // values additionally need a cycle inside their static group window
    // (Section 7.1) — the bus must admit a system of distinct groups.
    if !shares_value {
        let mut values: Vec<ValueId> = state.bus_values[h].keys().copied().collect();
        values.push(value);
        if !groups_assignable(&values, &state.windows, rate) {
            return None;
        }
    }

    // Gain per Section 4.1.2 / Section 4.3.
    let wf = |p: PartitionId| -> f64 {
        state.demand_left[p.index()] as f64 / state.pins_left[p.index()].max(1) as f64
    };
    let g1 = match (had_from, had_to) {
        (false, false) => 0.0,
        (true, false) => wf(from),
        (false, true) => wf(to),
        (true, true) => wf(from) + wf(to),
    };
    let g2 = if shares_value { 1.0 } else { 0.0 };
    let used: i64 = {
        let vals = &state.bus_values[h];
        vals.len() as i64
    };
    let g3 = (l - used).max(0) as f64;
    Some(10_000.0 * g1 + 100.0 * g2 + g3)
}

pub(crate) fn apply_move(cdfg: &Cdfg, mode: PortMode, state: &mut State, op: OpId, mv: &Move) {
    let (value, from, to) = cdfg.op(op).io_endpoints().expect("io op");
    let bits = cdfg.io_bits(op);
    if mv.bus == state.buses.len() {
        state.buses.push(Bus::new());
        state.bus_values.push(BTreeMap::new());
    }
    let shares = state.bus_values[mv.bus].contains_key(&value);
    // Split geometry and remap existing values.
    if let Some(widths) = &mv.split_into {
        state.buses[mv.bus].sub_widths = widths.clone();
        let remapped: Vec<(ValueId, SubRange)> = state.bus_values[mv.bus]
            .iter()
            .map(|(&v, _)| {
                let r = if cdfg.value(v).bits <= widths[0] {
                    SubRange { lo: 0, hi: 0 }
                } else {
                    SubRange { lo: 0, hi: 1 }
                };
                (v, r)
            })
            .collect();
        for (v, r) in remapped {
            state.bus_values[mv.bus].insert(v, r);
            // Reassigned earlier transfers keep their bus but move range.
            let ids: Vec<OpId> = state
                .assignment
                .iter()
                .filter(|(_, a)| a.bus.index() == mv.bus)
                .map(|(&o, _)| o)
                .collect();
            for o in ids {
                if cdfg.op(o).io_endpoints().map(|(vv, _, _)| vv) == Some(v) {
                    state.assignment.insert(
                        o,
                        BusAssignment {
                            bus: BusId::new(mv.bus as u32),
                            range: r,
                        },
                    );
                }
            }
        }
    } else if state.buses[mv.bus].sub_count() == 1 {
        let w = state.buses[mv.bus].width().max(bits);
        state.buses[mv.bus].sub_widths = vec![w];
    }
    let range = if shares {
        state.bus_values[mv.bus][&value]
    } else {
        mv.range
    };
    // Port growth and pin accounting: the transfer needs its range's
    // low-order lines only.
    let prefix = state.buses[mv.bus].prefix_start(range) + bits;
    let mut grow = |ports_owner: PortSide, p: PartitionId| {
        let bus = &mut state.buses[mv.bus];
        let ports = match ports_owner {
            PortSide::Out => &mut bus.out_ports,
            PortSide::In => &mut bus.in_ports,
            PortSide::Bi => &mut bus.bi_ports,
        };
        let cur = ports.get(&p).copied().unwrap_or(0);
        if prefix > cur {
            ports.insert(p, prefix);
            state.pins_left[p.index()] -= (prefix - cur) as i64;
        }
    };
    match mode {
        PortMode::Unidirectional => {
            grow(PortSide::Out, from);
            grow(PortSide::In, to);
        }
        PortMode::Bidirectional => {
            grow(PortSide::Bi, from);
            grow(PortSide::Bi, to);
        }
    }
    state.bus_values[mv.bus].insert(value, range);
    state.assignment.insert(
        op,
        BusAssignment {
            bus: BusId::new(mv.bus as u32),
            range,
        },
    );
    state.demand_left[from.index()] -= bits as i64;
    state.demand_left[to.index()] -= bits as i64;
}

#[derive(Clone, Copy)]
enum PortSide {
    Out,
    In,
    Bi,
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_cdfg::designs::{ar_filter, elliptic, synthetic};

    #[test]
    fn quickstart_design_gets_a_connection() {
        let d = synthetic::quickstart();
        let ic = synthesize(d.cdfg(), PortMode::Unidirectional, &SearchConfig::new(1)).unwrap();
        assert!(ic.verify(d.cdfg()).is_empty(), "{:?}", ic.verify(d.cdfg()));
        assert_eq!(ic.assignment.len(), d.cdfg().io_ops().count());
    }

    #[test]
    fn ar_general_unidirectional_rates() {
        for rate in [3u32, 4, 5] {
            let d = ar_filter::general(rate, PortMode::Unidirectional);
            let ic =
                synthesize(d.cdfg(), PortMode::Unidirectional, &SearchConfig::new(rate)).unwrap();
            let problems = ic.verify(d.cdfg());
            assert!(problems.is_empty(), "rate {rate}: {problems:?}");
        }
    }

    #[test]
    fn bidirectional_uses_no_more_pins_than_unidirectional() {
        for rate in [3u32, 4, 5] {
            let du = ar_filter::general(rate, PortMode::Unidirectional);
            let db = ar_filter::general(rate, PortMode::Bidirectional);
            let icu = synthesize(
                du.cdfg(),
                PortMode::Unidirectional,
                &SearchConfig::new(rate),
            )
            .unwrap();
            let icb =
                synthesize(db.cdfg(), PortMode::Bidirectional, &SearchConfig::new(rate)).unwrap();
            let total = |ic: &Interconnect, n: usize| -> u32 {
                (1..n as u32)
                    .map(|p| ic.pins_used(mcs_cdfg::PartitionId::new(p)))
                    .sum()
            };
            let n = du.cdfg().partition_count();
            assert!(
                total(&icb, n) <= total(&icu, n),
                "rate {rate}: bidirectional {} > unidirectional {}",
                total(&icb, n),
                total(&icu, n)
            );
        }
    }

    #[test]
    fn elliptic_filter_connects_at_published_budgets() {
        for rate in [6u32, 7] {
            for mode in [PortMode::Unidirectional, PortMode::Bidirectional] {
                let d = elliptic::partitioned_with(rate, mode);
                let ic = synthesize(d.cdfg(), mode, &SearchConfig::new(rate)).unwrap();
                let problems = ic.verify(d.cdfg());
                assert!(problems.is_empty(), "rate {rate} {mode:?}: {problems:?}");
            }
        }
    }

    #[test]
    fn sharing_reduces_pins_on_the_ar_filter() {
        for rate in [3u32, 4, 5] {
            let d = ar_filter::general(rate, PortMode::Bidirectional);
            let plain =
                synthesize(d.cdfg(), PortMode::Bidirectional, &SearchConfig::new(rate)).unwrap();
            let shared = synthesize(
                d.cdfg(),
                PortMode::Bidirectional,
                &SearchConfig::new(rate).with_sharing(),
            )
            .unwrap();
            let total = |ic: &Interconnect| -> u32 {
                (1..5u32)
                    .map(|p| ic.pins_used(mcs_cdfg::PartitionId::new(p)))
                    .sum()
            };
            assert!(
                total(&shared) <= total(&plain),
                "rate {rate}: sharing {} > plain {}",
                total(&shared),
                total(&plain)
            );
            assert!(shared.verify(d.cdfg()).is_empty());
        }
    }

    #[test]
    fn same_value_transfers_share_a_bus_slot() {
        // The elliptic filter input feeds P1 and P2 (Ia/Ib); g2 should pull
        // both onto one bus where capacity permits.
        let d = elliptic::partitioned();
        let ic = synthesize(d.cdfg(), PortMode::Unidirectional, &SearchConfig::new(6)).unwrap();
        let ia = ic.assignment[&d.op_named("Ia")];
        let ib = ic.assignment[&d.op_named("Ib")];
        assert_eq!(ia.bus, ib.bus, "Ia and Ib should share one bus");
    }

    #[test]
    fn capable_carriers_reports_reassignment_options() {
        let d = ar_filter::general(3, PortMode::Unidirectional);
        let ic = synthesize(d.cdfg(), PortMode::Unidirectional, &SearchConfig::new(3)).unwrap();
        for op in d.cdfg().io_ops() {
            let carriers = ic.capable_carriers(d.cdfg(), op);
            let assigned = ic.assignment[&op];
            assert!(
                carriers.iter().any(|c| c.bus == assigned.bus),
                "assigned bus must be among the capable carriers"
            );
        }
    }

    #[test]
    fn infeasible_budget_is_reported() {
        // Strangle the quickstart design's pins so no structure fits.
        let mut d = synthetic::quickstart();
        for p in 1..=2u32 {
            d.cdfg_mut()
                .partition_mut(mcs_cdfg::PartitionId::new(p))
                .total_pins = 4;
        }
        assert!(matches!(
            synthesize(d.cdfg(), PortMode::Unidirectional, &SearchConfig::new(1)),
            Err(ConnectError::NoConnectionFound)
        ));
    }

    #[test]
    fn zero_rate_is_rejected() {
        let d = synthetic::quickstart();
        assert!(matches!(
            synthesize(d.cdfg(), PortMode::Unidirectional, &SearchConfig::new(0)),
            Err(ConnectError::ZeroRate)
        ));
    }
}
