//! Port-count and bus-count upper bounds (Section 4.1.1).
//!
//! The ILP formulation needs a maximum number of communication buses `R`.
//! A naive bound is the total number of I/O operations; the paper derives
//! a tighter one from the observation that every bus needs at least one
//! input and one output port, and ports of width `B_k` cost `B_k` pins:
//! per partition, compute the minimum pins consumed by mandatory wide
//! ports, then bound how many ports of each width the remaining pins can
//! form.

use std::collections::BTreeMap;

use mcs_cdfg::{Cdfg, PartitionId, PortMode};

/// Direction of the transfers being counted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Side {
    Input,
    Output,
}

/// Number of transfers per bit-width class for one partition and side.
fn width_histogram(cdfg: &Cdfg, p: PartitionId, side: Side) -> BTreeMap<u32, u32> {
    let ops = match side {
        Side::Input => cdfg.input_io_ops(p),
        Side::Output => cdfg.output_io_ops(p),
    };
    let mut h = BTreeMap::new();
    for op in ops {
        *h.entry(cdfg.io_bits(op)).or_insert(0u32) += 1;
    }
    h
}

/// Minimum pins a partition must spend on one side: process widths from
/// the largest down, allocating `ceil((n_k - spare_slots) / L)` ports of
/// each width (the `Ilb`/`IPl` recurrence of Section 4.1.1, with the
/// mathematically required ceiling). Returns `(min_pins, min_ports_by
/// width)`.
fn min_pins(hist: &BTreeMap<u32, u32>, rate: u32) -> (u64, BTreeMap<u32, u32>) {
    let l = rate.max(1) as i64;
    let mut spare_slots = 0i64; // IS_{i,k}
    let mut pins = 0u64;
    let mut ports = BTreeMap::new();
    for (&bits, &n) in hist.iter().rev() {
        let need = (n as i64 - spare_slots).max(0);
        let p = need.div_euclid(l) + if need.rem_euclid(l) != 0 { 1 } else { 0 };
        ports.insert(bits, p as u32);
        spare_slots += p * l - n as i64;
        pins += p as u64 * bits as u64;
    }
    (pins, ports)
}

/// Maximum ports a side can form given `budget` pins after the other
/// side's minimum is reserved (the `Iub` recurrence): widest class first,
/// at most `n_k` ports of width `B_k`, each class then charged its
/// *minimum* port count against the budget.
fn max_ports(hist: &BTreeMap<u32, u32>, min_ports: &BTreeMap<u32, u32>, budget: i64) -> u32 {
    let mut left = budget;
    let mut total = 0u32;
    for (&bits, &n) in hist.iter().rev() {
        if left <= 0 {
            break;
        }
        let cap = (left / bits as i64).max(0) as u32;
        total += cap.min(n);
        left -= min_ports.get(&bits).copied().unwrap_or(0) as i64 * bits as i64;
    }
    total
}

/// Upper bound on the number of communication buses (`R` of
/// Section 4.1.1 / Section 4.3).
pub fn bus_upper_bound(cdfg: &Cdfg, rate: u32, mode: PortMode) -> u32 {
    let mut in_total = 0u64;
    let mut out_total = 0u64;
    let mut port_total = 0u64;
    for (pi, part) in cdfg.partitions().iter().enumerate() {
        let p = PartitionId::new(pi as u32);
        let hi = width_histogram(cdfg, p, Side::Input);
        let ho = width_histogram(cdfg, p, Side::Output);
        let (in_min_pins, in_min_ports) = min_pins(&hi, rate);
        let (out_min_pins, out_min_ports) = min_pins(&ho, rate);
        let t = part.total_pins as i64;
        match mode {
            PortMode::Unidirectional => {
                let iub = max_ports(&hi, &in_min_ports, t - out_min_pins as i64);
                let oub = max_ports(&ho, &out_min_ports, t - in_min_pins as i64);
                in_total += iub as u64;
                out_total += oub as u64;
            }
            PortMode::Bidirectional => {
                // A bidirectional port serves either direction; bound the
                // port count by what the pins can form over the merged
                // histogram.
                let mut merged = hi.clone();
                for (&b, &n) in &ho {
                    *merged.entry(b).or_insert(0) += n;
                }
                let (_, min_ports) = min_pins(&merged, rate);
                port_total += max_ports(&merged, &min_ports, t) as u64;
            }
        }
    }
    let bound = match mode {
        PortMode::Unidirectional => in_total.min(out_total),
        // Every bus has at least two ports connected (Section 4.3).
        PortMode::Bidirectional => port_total / 2,
    };
    let naive = cdfg.io_ops().count() as u64;
    bound.min(naive).max(1) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_cdfg::designs::{ar_filter, elliptic};

    #[test]
    fn min_pins_recurrence_matches_hand_computation() {
        // 5 transfers of 8 bits, 1 of 16 bits, rate 3:
        // width 16: ceil(1/3)=1 port (16 pins), spare = 2 slots;
        // width 8: ceil((5-2)/3)=1 port (8 pins).
        let mut h = BTreeMap::new();
        h.insert(8, 5);
        h.insert(16, 1);
        let (pins, ports) = min_pins(&h, 3);
        assert_eq!(pins, 24);
        assert_eq!(ports[&16], 1);
        assert_eq!(ports[&8], 1);
    }

    #[test]
    fn spare_slots_absorb_narrow_transfers() {
        // 2 wide transfers force 1 port at rate 3, leaving 1 spare slot
        // that carries the lone narrow transfer: zero narrow ports.
        let mut h = BTreeMap::new();
        h.insert(16, 2);
        h.insert(8, 1);
        let (pins, ports) = min_pins(&h, 3);
        assert_eq!(ports[&16], 1);
        assert_eq!(ports[&8], 0);
        assert_eq!(pins, 16);
    }

    #[test]
    fn tighter_than_naive_on_the_ar_filter() {
        let d = ar_filter::general(3, PortMode::Unidirectional);
        let naive = d.cdfg().io_ops().count() as u32;
        let r = bus_upper_bound(d.cdfg(), 3, PortMode::Unidirectional);
        assert!(r <= naive);
        assert!(r >= 1);
    }

    #[test]
    fn bidirectional_bound_is_no_larger() {
        let d = elliptic::partitioned_with(6, PortMode::Bidirectional);
        let bi = bus_upper_bound(d.cdfg(), 6, PortMode::Bidirectional);
        let duni = elliptic::partitioned_with(6, PortMode::Unidirectional);
        let uni = bus_upper_bound(duni.cdfg(), 6, PortMode::Unidirectional);
        assert!(bi <= uni + 1, "bi {bi} vs uni {uni}");
    }

    #[test]
    fn rate_increase_never_raises_min_pins() {
        let d = elliptic::partitioned();
        for p in 1..=5u32 {
            let h = width_histogram(d.cdfg(), PartitionId::new(p), Side::Input);
            let (p5, _) = min_pins(&h, 5);
            let (p7, _) = min_pins(&h, 7);
            assert!(p7 <= p5);
        }
    }
}
