//! The interchip connection model of Section 4.1 (Figure 4.1), extended
//! with bidirectional ports (Section 4.3) and sub-buses (Chapter 6,
//! Figure 6.1).
//!
//! A communication bus is a wire bundle connecting the *output ports* of
//! one or more partitions to the *input ports* of one or more partitions
//! (or bidirectional ports when the design uses them). A port belongs to
//! exactly one bus; port widths may differ per partition but never exceed
//! the bus width. A bus may be logically divided into a small number of
//! contiguous *sub-buses*; one value occupies one or more contiguous
//! sub-buses of a bus for one cycle (Section 6.1).

use std::collections::BTreeMap;

use mcs_cdfg::{BusId, Cdfg, OpId, PartitionId, PortMode};

/// A contiguous range of sub-bus indices, inclusive.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SubRange {
    /// First sub-bus index.
    pub lo: usize,
    /// Last sub-bus index (inclusive).
    pub hi: usize,
}

impl SubRange {
    /// The whole-bus range for a bus with `n` sub-buses.
    pub fn whole(n: usize) -> SubRange {
        SubRange {
            lo: 0,
            hi: n.saturating_sub(1),
        }
    }

    /// `true` if the two ranges share a sub-bus.
    pub fn overlaps(self, other: SubRange) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }
}

/// One communication bus.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bus {
    /// Output-port widths per partition (`p_{i,h}`); empty entry = not
    /// connected. Unused in bidirectional mode.
    pub out_ports: BTreeMap<PartitionId, u32>,
    /// Input-port widths per partition (`q_{i,h}`). Unused in
    /// bidirectional mode.
    pub in_ports: BTreeMap<PartitionId, u32>,
    /// Bidirectional port widths (`r_{i,h}`); used instead of
    /// `out_ports`/`in_ports` in bidirectional mode.
    pub bi_ports: BTreeMap<PartitionId, u32>,
    /// Sub-bus widths from bit 0 upward; `len() == 1` means unsplit.
    pub sub_widths: Vec<u32>,
}

impl Bus {
    /// A fresh unsplit bus of zero width.
    pub fn new() -> Bus {
        Bus {
            sub_widths: vec![0],
            ..Bus::default()
        }
    }

    /// Total bus width.
    pub fn width(&self) -> u32 {
        self.sub_widths.iter().sum()
    }

    /// Number of sub-buses.
    pub fn sub_count(&self) -> usize {
        self.sub_widths.len()
    }

    /// Bit offset of the end of `range` (prefix width through `range.hi`).
    pub fn prefix_end(&self, range: SubRange) -> u32 {
        self.sub_widths[..=range.hi].iter().sum()
    }

    /// Bit offset where `range` begins (prefix width before `range.lo`).
    pub fn prefix_start(&self, range: SubRange) -> u32 {
        self.sub_widths[..range.lo].iter().sum()
    }

    /// Width of a contiguous sub-bus range.
    pub fn range_width(&self, range: SubRange) -> u32 {
        self.sub_widths[range.lo..=range.hi].iter().sum()
    }

    /// Pins this bus consumes on `partition` (sum of its port widths).
    pub fn pins_of(&self, partition: PartitionId) -> u32 {
        self.out_ports.get(&partition).copied().unwrap_or(0)
            + self.in_ports.get(&partition).copied().unwrap_or(0)
            + self.bi_ports.get(&partition).copied().unwrap_or(0)
    }

    /// Partitions connected to the bus in any role, in id order.
    pub fn connected(&self) -> Vec<PartitionId> {
        let mut v: Vec<PartitionId> = self
            .out_ports
            .keys()
            .chain(self.in_ports.keys())
            .chain(self.bi_ports.keys())
            .copied()
            .collect();
        v.sort();
        v.dedup();
        v
    }

    /// Whether the bus (in `mode`) can carry a `bits`-wide transfer from
    /// `from` to `to` on sub-bus range `range` using its *current* port
    /// widths. Ports connect prefixes of the bus (Section 6.1.1.2) and a
    /// transfer occupies the low-order lines of its range, so both
    /// endpoints need ports covering `prefix_start(range) + bits` lines —
    /// a port may be narrower than the bus (Figure 4.2).
    pub fn can_carry(
        &self,
        mode: PortMode,
        from: PartitionId,
        to: PartitionId,
        bits: u32,
        range: SubRange,
    ) -> bool {
        if range.hi >= self.sub_widths.len() || self.range_width(range) < bits {
            return false;
        }
        let need = self.prefix_start(range) + bits;
        match mode {
            PortMode::Unidirectional => {
                self.out_ports.get(&from).copied().unwrap_or(0) >= need
                    && self.in_ports.get(&to).copied().unwrap_or(0) >= need
            }
            PortMode::Bidirectional => {
                self.bi_ports.get(&from).copied().unwrap_or(0) >= need
                    && self.bi_ports.get(&to).copied().unwrap_or(0) >= need
            }
        }
    }

    /// Topology signature: the partitions on the output and input sides
    /// (Section 4.1.2: buses with the same topology are explored once).
    pub fn topology(&self) -> (Vec<PartitionId>, Vec<PartitionId>) {
        let outs: Vec<_> = self
            .out_ports
            .keys()
            .chain(self.bi_ports.keys())
            .copied()
            .collect();
        let ins: Vec<_> = self
            .in_ports
            .keys()
            .chain(self.bi_ports.keys())
            .copied()
            .collect();
        (outs, ins)
    }
}

/// An I/O-operation-to-bus assignment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BusAssignment {
    /// The carrying bus.
    pub bus: BusId,
    /// The sub-bus range used (whole bus when unsplit).
    pub range: SubRange,
}

/// A complete interchip connection structure: the output of the Chapter 4
/// (and Chapter 6) synthesis step, consumed by scheduling.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Interconnect {
    /// Port directionality the structure was built for.
    pub mode: PortMode,
    /// The communication buses.
    pub buses: Vec<Bus>,
    /// Initial assignment of every I/O operation to a bus (Section 4.1);
    /// scheduling may later reassign (Section 4.2).
    pub assignment: BTreeMap<OpId, BusAssignment>,
}

impl Interconnect {
    /// Pins used on `partition` across all buses (the "#Pins used" columns
    /// of Tables 4.2 and 4.10).
    pub fn pins_used(&self, partition: PartitionId) -> u32 {
        self.buses.iter().map(|b| b.pins_of(partition)).sum()
    }

    /// All `(bus, range)` options able to carry I/O operation `op`,
    /// in bus order — the candidate set for dynamic reassignment.
    pub fn capable_carriers(&self, cdfg: &Cdfg, op: OpId) -> Vec<BusAssignment> {
        let Some((_, from, to)) = cdfg.op(op).io_endpoints() else {
            return Vec::new();
        };
        let bits = cdfg.io_bits(op);
        let mut found = Vec::new();
        for (h, bus) in self.buses.iter().enumerate() {
            let n = bus.sub_count();
            for lo in 0..n {
                for hi in lo..n {
                    let range = SubRange { lo, hi };
                    if bus.can_carry(self.mode, from, to, bits, range) {
                        found.push(BusAssignment {
                            bus: BusId::new(h as u32),
                            range,
                        });
                    }
                }
            }
        }
        found
    }

    /// Verifies that every I/O operation's assigned bus can actually carry
    /// it and that pin budgets hold; returns the violations.
    pub fn verify(&self, cdfg: &Cdfg) -> Vec<String> {
        let mut problems = Vec::new();
        for op in cdfg.io_ops() {
            match self.assignment.get(&op) {
                None => problems.push(format!("{op} ({}) has no bus", cdfg.op(op).name)),
                Some(a) => {
                    let (_, from, to) = cdfg.op(op).io_endpoints().expect("io op");
                    let bus = &self.buses[a.bus.index()];
                    if !bus.can_carry(self.mode, from, to, cdfg.io_bits(op), a.range) {
                        problems.push(format!(
                            "{op} ({}) cannot ride {} range {:?}",
                            cdfg.op(op).name,
                            a.bus,
                            a.range
                        ));
                    }
                }
            }
        }
        for (pi, part) in cdfg.partitions().iter().enumerate() {
            let p = PartitionId::new(pi as u32);
            let used = self.pins_used(p);
            if used > part.total_pins {
                problems.push(format!("{p} uses {used} pins, budget {}", part.total_pins));
            }
        }
        problems
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> PartitionId {
        PartitionId::new(i)
    }

    #[test]
    fn bus_geometry() {
        let mut bus = Bus::new();
        bus.sub_widths = vec![8, 29];
        assert_eq!(bus.width(), 37);
        assert_eq!(bus.sub_count(), 2);
        assert_eq!(bus.prefix_end(SubRange { lo: 0, hi: 0 }), 8);
        assert_eq!(bus.prefix_end(SubRange { lo: 1, hi: 1 }), 37);
        assert_eq!(bus.range_width(SubRange { lo: 1, hi: 1 }), 29);
        assert_eq!(bus.range_width(SubRange::whole(2)), 37);
    }

    #[test]
    fn unidirectional_capability_checks_both_ports() {
        let mut bus = Bus::new();
        bus.sub_widths = vec![16];
        bus.out_ports.insert(p(1), 16);
        bus.in_ports.insert(p(2), 12);
        let whole = SubRange::whole(1);
        // A 12-bit transfer rides the low 12 lines; the narrower input
        // port suffices (Figure 4.2's 12-of-16 connection).
        assert!(bus.can_carry(PortMode::Unidirectional, p(1), p(2), 12, whole));
        // A full-width transfer needs the full input port.
        assert!(!bus.can_carry(PortMode::Unidirectional, p(1), p(2), 16, whole));
        bus.in_ports.insert(p(2), 16);
        assert!(bus.can_carry(PortMode::Unidirectional, p(1), p(2), 16, whole));
        // Direction matters: P2 has no output port here.
        assert!(!bus.can_carry(PortMode::Unidirectional, p(2), p(1), 8, whole));
    }

    #[test]
    fn bidirectional_capability_is_symmetric() {
        let mut bus = Bus::new();
        bus.sub_widths = vec![16];
        bus.bi_ports.insert(p(1), 16);
        bus.bi_ports.insert(p(2), 16);
        let whole = SubRange::whole(1);
        assert!(bus.can_carry(PortMode::Bidirectional, p(1), p(2), 16, whole));
        assert!(bus.can_carry(PortMode::Bidirectional, p(2), p(1), 16, whole));
        assert!(!bus.can_carry(PortMode::Bidirectional, p(1), p(3), 8, whole));
    }

    #[test]
    fn subbus_ranges_respect_prefix_connection() {
        let mut bus = Bus::new();
        bus.sub_widths = vec![8, 8];
        bus.out_ports.insert(p(1), 8); // prefix: only sub-bus 0
        bus.in_ports.insert(p(2), 16);
        assert!(bus.can_carry(
            PortMode::Unidirectional,
            p(1),
            p(2),
            8,
            SubRange { lo: 0, hi: 0 }
        ));
        // Sub-bus 1 needs a 16-wide prefix on both sides.
        assert!(!bus.can_carry(
            PortMode::Unidirectional,
            p(1),
            p(2),
            8,
            SubRange { lo: 1, hi: 1 }
        ));
    }

    #[test]
    fn pins_and_topology() {
        let mut bus = Bus::new();
        bus.sub_widths = vec![8];
        bus.out_ports.insert(p(1), 8);
        bus.in_ports.insert(p(2), 8);
        bus.in_ports.insert(p(3), 8);
        assert_eq!(bus.pins_of(p(1)), 8);
        assert_eq!(bus.pins_of(p(2)), 8);
        assert_eq!(bus.pins_of(p(4)), 0);
        assert_eq!(bus.connected(), vec![p(1), p(2), p(3)]);
        let (outs, ins) = bus.topology();
        assert_eq!(outs, vec![p(1)]);
        assert_eq!(ins, vec![p(2), p(3)]);
    }

    #[test]
    fn subrange_overlap() {
        let a = SubRange { lo: 0, hi: 0 };
        let b = SubRange { lo: 1, hi: 1 };
        let w = SubRange { lo: 0, hi: 1 };
        assert!(!a.overlaps(b));
        assert!(a.overlaps(w));
        assert!(b.overlaps(w));
    }
}
