//! Graphviz export of the interchip connection structure: chips as boxes,
//! buses as stripes, one edge per port labeled with its pin width — the
//! drawing style of the paper's Figures 4.8–4.10 and 6.2–6.4.

use std::fmt::Write as _;

use mcs_cdfg::{Cdfg, PartitionId, PortMode};

use crate::model::Interconnect;

/// Renders the bus topology of `ic` in Graphviz dot syntax.
///
/// ```
/// use mcs_cdfg::{designs, PortMode};
/// use mcs_connect::{dot::to_dot, synthesize, SearchConfig};
///
/// let d = designs::ar_filter::general(3, PortMode::Unidirectional);
/// let ic = synthesize(d.cdfg(), PortMode::Unidirectional, &SearchConfig::new(3)).unwrap();
/// let dot = to_dot(d.cdfg(), &ic);
/// assert!(dot.starts_with("graph interconnect"));
/// assert!(dot.contains("C1"));
/// ```
pub fn to_dot(cdfg: &Cdfg, ic: &Interconnect) -> String {
    let mut out =
        String::from("graph interconnect {\n  rankdir=LR;\n  node [fontname=\"monospace\"];\n");
    for (pi, part) in cdfg.partitions().iter().enumerate() {
        let p = PartitionId::new(pi as u32);
        let used = ic.pins_used(p);
        if pi == 0 && used == 0 {
            continue;
        }
        let _ = writeln!(
            out,
            "  p{pi} [label=\"{}\\n{used} pins\", shape=box];",
            part.name
        );
    }
    for (h, bus) in ic.buses.iter().enumerate() {
        let subs = if bus.sub_count() > 1 {
            format!(
                "\\n({})",
                bus.sub_widths
                    .iter()
                    .map(u32::to_string)
                    .collect::<Vec<_>>()
                    .join("+")
            )
        } else {
            String::new()
        };
        let _ = writeln!(
            out,
            "  c{h} [label=\"C{} [{}]{subs}\", shape=cds, style=filled, fillcolor=gray90];",
            h + 1,
            bus.width()
        );
        let edge = |out: &mut String, p: PartitionId, w: u32, label: &str| {
            let _ = writeln!(out, "  p{} -- c{h} [label=\"{label}{w}\"];", p.index());
        };
        if ic.mode == PortMode::Bidirectional {
            for (&p, &w) in &bus.bi_ports {
                edge(&mut out, p, w, "io ");
            }
        }
        for (&p, &w) in &bus.out_ports {
            edge(&mut out, p, w, "out ");
        }
        for (&p, &w) in &bus.in_ports {
            edge(&mut out, p, w, "in ");
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{synthesize, SearchConfig};
    use mcs_cdfg::designs::{ar_filter, elliptic};

    #[test]
    fn every_bus_and_connected_chip_appears() {
        let d = ar_filter::general(3, PortMode::Unidirectional);
        let ic = synthesize(d.cdfg(), PortMode::Unidirectional, &SearchConfig::new(3)).unwrap();
        let dot = to_dot(d.cdfg(), &ic);
        for h in 0..ic.buses.len() {
            assert!(dot.contains(&format!("C{} [", h + 1)));
        }
        for pi in 1..d.cdfg().partition_count() {
            let p = PartitionId::new(pi as u32);
            if ic.pins_used(p) > 0 {
                assert!(dot.contains(&format!("p{pi} [")));
            }
        }
    }

    #[test]
    fn port_edges_match_port_counts() {
        let d = ar_filter::general(3, PortMode::Unidirectional);
        let ic = synthesize(d.cdfg(), PortMode::Unidirectional, &SearchConfig::new(3)).unwrap();
        let dot = to_dot(d.cdfg(), &ic);
        let edges = dot.matches(" -- ").count();
        let ports: usize = ic
            .buses
            .iter()
            .map(|b| b.out_ports.len() + b.in_ports.len())
            .sum();
        assert_eq!(edges, ports);
    }

    #[test]
    fn bidirectional_ports_render_as_io() {
        let d = ar_filter::general(3, PortMode::Bidirectional);
        let ic = synthesize(d.cdfg(), PortMode::Bidirectional, &SearchConfig::new(3)).unwrap();
        let dot = to_dot(d.cdfg(), &ic);
        assert!(dot.contains("io "), "{dot}");
    }

    #[test]
    fn sub_bus_widths_are_annotated() {
        let d = elliptic::partitioned_with(7, PortMode::Unidirectional);
        let mut ic = synthesize(d.cdfg(), PortMode::Unidirectional, &SearchConfig::new(7)).unwrap();
        crate::share_pass(d.cdfg(), &mut ic, 7);
        let dot = to_dot(d.cdfg(), &ic);
        if ic.buses.iter().any(|b| b.sub_count() > 1) {
            assert!(dot.contains("+"), "split buses show their sub-widths");
        }
    }
}
