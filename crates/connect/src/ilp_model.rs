//! Exact ILP formulations of interchip-connection synthesis: the
//! Chapter 4 model (Constraints 4.1–4.6) and the Chapter 6 sub-bus model
//! (Constraints 6.1–6.10, linearized per Section 6.1.1.4).
//!
//! The paper notes that practical instances are too large for exact
//! solution and uses the heuristic search instead, keeping the ILP "for
//! verification of synthesized results" — these builders serve the same
//! role: small designs are solved exactly in tests and compared against
//! the heuristic's output.

use std::collections::BTreeMap;

use mcs_cdfg::{BusId, Cdfg, OpId, PartitionId, PortMode};
use mcs_ilp::{linearize, Model, Solution, VarId};

use crate::model::{Bus, BusAssignment, Interconnect, SubRange};

/// The Chapter 4 model plus variable handles for solution extraction.
#[derive(Clone, Debug)]
pub struct Ch4Model {
    /// The assembled integer program.
    pub model: Model,
    /// `y_{w,h}`: transfer `w` assigned to bus `h`.
    pub y: BTreeMap<(OpId, usize), VarId>,
    /// Output-port widths `p_{i,h}` (unidirectional) or `r_{i,h}`
    /// (bidirectional).
    pub p: BTreeMap<(PartitionId, usize), VarId>,
    /// Input-port widths `q_{i,h}` (empty in bidirectional mode).
    pub q: BTreeMap<(PartitionId, usize), VarId>,
    mode: PortMode,
    buses: usize,
}

/// Builds the Chapter 4 interchip-connection ILP with at most `r` buses.
pub fn build_ch4(cdfg: &Cdfg, mode: PortMode, rate: u32, r: usize) -> Ch4Model {
    let mut m = Model::new();
    let ops: Vec<OpId> = cdfg.io_ops().collect();
    let groups = cdfg.io_ops_by_value();
    let l = rate as i64;

    let mut y = BTreeMap::new();
    for &w in &ops {
        for h in 0..r {
            y.insert((w, h), m.binary(&format!("y_{w}_{h}")));
        }
    }
    let mut p = BTreeMap::new();
    let mut q = BTreeMap::new();
    for (pi, part) in cdfg.partitions().iter().enumerate() {
        let pid = PartitionId::new(pi as u32);
        let cap = part.total_pins.min(1 << 20) as i64;
        for h in 0..r {
            p.insert((pid, h), m.integer(&format!("p_{pid}_{h}"), Some(cap)));
            if mode == PortMode::Unidirectional {
                q.insert((pid, h), m.integer(&format!("q_{pid}_{h}"), Some(cap)));
            }
        }
    }

    // Assignment (4.1): every transfer on exactly one bus.
    for &w in &ops {
        let terms: Vec<_> = (0..r).map(|h| (y[&(w, h)], 1)).collect();
        m.eq(&terms, 1);
    }
    // Buses are interchangeable a priori; break the permutation symmetry
    // (transfer i may only use buses 0..=i) to keep branch-and-bound sane.
    for (i, &w) in ops.iter().enumerate() {
        for h in (i + 1)..r {
            m.eq(&[(y[&(w, h)], 1)], 0);
        }
    }

    // Data transfer (4.2/4.3 or the Section 4.3 bidirectional form):
    // endpoint port widths cover every assigned transfer.
    for &w in &ops {
        let (_, from, to) = cdfg.op(w).io_endpoints().expect("io op");
        let bits = cdfg.io_bits(w) as i64;
        for h in 0..r {
            let yv = y[&(w, h)];
            match mode {
                PortMode::Unidirectional => {
                    m.ge(&[(p[&(from, h)], 1), (yv, -bits)], 0);
                    m.ge(&[(q[&(to, h)], 1), (yv, -bits)], 0);
                }
                PortMode::Bidirectional => {
                    m.ge(&[(p[&(from, h)], 1), (yv, -bits)], 0);
                    m.ge(&[(p[&(to, h)], 1), (yv, -bits)], 0);
                }
            }
        }
    }

    // Resources (4.4): per partition, total port pins within budget.
    for (pi, part) in cdfg.partitions().iter().enumerate() {
        let pid = PartitionId::new(pi as u32);
        let mut terms: Vec<(VarId, i64)> = (0..r).map(|h| (p[&(pid, h)], 1)).collect();
        if mode == PortMode::Unidirectional {
            terms.extend((0..r).map(|h| (q[&(pid, h)], 1)));
        }
        m.le(&terms, part.total_pins.min(1 << 20) as i64);
    }

    // Capacity (4.5): at most L distinct values per bus; transfers of one
    // value count once via z_{v,h} = max_w y_{w,h}.
    for h in 0..r {
        let mut cap_terms: Vec<(VarId, i64)> = Vec::new();
        for (v, ws) in &groups {
            if ws.len() == 1 {
                cap_terms.push((y[&(ws[0], h)], 1));
            } else {
                let z = m.binary(&format!("z_{v}_{h}"));
                let members: Vec<VarId> = ws.iter().map(|&w| y[&(w, h)]).collect();
                linearize::eq_max_binary(&mut m, z, &members);
                cap_terms.push((z, 1));
            }
        }
        m.le(&cap_terms, l);
    }

    // Objective (4.6): maximize the number of buses actually used.
    let mut obj = Vec::new();
    for h in 0..r {
        let u = m.binary(&format!("used_{h}"));
        let members: Vec<(VarId, i64)> = ops
            .iter()
            .map(|&w| (y[&(w, h)], -1))
            .chain(std::iter::once((u, 1)))
            .collect();
        m.le(&members, 0); // u <= sum_w y_{w,h}
        obj.push((u, 1));
    }
    m.maximize(&obj);

    Ch4Model {
        model: m,
        y,
        p,
        q,
        mode,
        buses: r,
    }
}

impl Ch4Model {
    /// Converts an ILP solution into an [`Interconnect`].
    pub fn extract(&self, cdfg: &Cdfg, s: &Solution) -> Interconnect {
        let mut buses = vec![Bus::new(); self.buses];
        let mut assignment = BTreeMap::new();
        for (&(w, h), &yv) in &self.y {
            if s.int_value(yv) == 1 {
                let (_, from, to) = cdfg.op(w).io_endpoints().expect("io op");
                let bits = cdfg.io_bits(w);
                let bus = &mut buses[h];
                bus.sub_widths[0] = bus.sub_widths[0].max(bits);
                match self.mode {
                    PortMode::Unidirectional => {
                        let e = bus.out_ports.entry(from).or_insert(0);
                        *e = (*e).max(bits);
                        let e = bus.in_ports.entry(to).or_insert(0);
                        *e = (*e).max(bits);
                    }
                    PortMode::Bidirectional => {
                        let e = bus.bi_ports.entry(from).or_insert(0);
                        *e = (*e).max(bits);
                        let e = bus.bi_ports.entry(to).or_insert(0);
                        *e = (*e).max(bits);
                    }
                }
                assignment.insert(
                    w,
                    BusAssignment {
                        bus: BusId::new(h as u32),
                        range: SubRange { lo: 0, hi: 0 },
                    },
                );
            }
        }
        // Drop unused buses, renumbering assignments.
        let mut keep = Vec::new();
        let mut remap = vec![usize::MAX; self.buses];
        for (h, bus) in buses.into_iter().enumerate() {
            if bus.width() > 0 {
                remap[h] = keep.len();
                keep.push(bus);
            }
        }
        for a in assignment.values_mut() {
            a.bus = BusId::new(remap[a.bus.index()] as u32);
        }
        Interconnect {
            mode: self.mode,
            buses: keep,
            assignment,
        }
    }
}

/// The Chapter 6 sub-bus model plus handles.
#[derive(Clone, Debug)]
pub struct Ch6Model {
    /// The assembled integer program.
    pub model: Model,
    /// `x_{w,h,l,s}`: part of transfer `w` on sub-slot `(h,l,s)`.
    pub x: BTreeMap<(OpId, usize, usize, usize), VarId>,
    /// `bw_{h,s}`: width of sub-bus `(h,s)`.
    pub bw: BTreeMap<(usize, usize), VarId>,
    /// `r_{i,h}`: bidirectional port widths.
    pub r: BTreeMap<(PartitionId, usize), VarId>,
}

/// Builds the Chapter 6 sub-bus ILP (bidirectional ports, `r` buses of at
/// most `s` sub-buses, initiation rate `rate`). Exact but only tractable
/// for very small designs; Section 6.1.2's heuristic covers the rest.
pub fn build_ch6(cdfg: &Cdfg, rate: u32, r: usize, s: usize, big_m: i64) -> Ch6Model {
    let mut m = Model::new();
    let ops: Vec<OpId> = cdfg.io_ops().collect();
    let l = rate as usize;

    let mut x = BTreeMap::new();
    let mut z = BTreeMap::new();
    for &w in &ops {
        for h in 0..r {
            for k in 0..l {
                for sb in 0..s {
                    x.insert((w, h, k, sb), m.binary(&format!("x_{w}_{h}_{k}_{sb}")));
                    z.insert(
                        (w, h, k, sb),
                        m.integer(&format!("z_{w}_{h}_{k}_{sb}"), Some(big_m)),
                    );
                }
            }
        }
    }
    let mut bw = BTreeMap::new();
    for h in 0..r {
        for sb in 0..s {
            bw.insert((h, sb), m.integer(&format!("bw_{h}_{sb}"), Some(big_m)));
        }
    }
    let mut rports = BTreeMap::new();
    for (pi, part) in cdfg.partitions().iter().enumerate() {
        let pid = PartitionId::new(pi as u32);
        for h in 0..r {
            rports.insert(
                (pid, h),
                m.integer(
                    &format!("r_{pid}_{h}"),
                    Some(part.total_pins.min(1 << 20) as i64),
                ),
            );
        }
    }

    // (6.1) every transfer occupies sub-slots of exactly one slot: the
    // per-slot indicator is max_s x, linearized with helper binaries.
    for &w in &ops {
        let mut slot_vars = Vec::new();
        for h in 0..r {
            for k in 0..l {
                let u = m.binary(&format!("slot_{w}_{h}_{k}"));
                let members: Vec<VarId> = (0..s).map(|sb| x[&(w, h, k, sb)]).collect();
                linearize::eq_max_binary(&mut m, u, &members);
                slot_vars.push(u);
            }
        }
        let terms: Vec<_> = slot_vars.iter().map(|&u| (u, 1)).collect();
        m.eq(&terms, 1);
    }

    // (6.2) contiguity: at most one run of ones. With s == 2 the only
    // forbidden pattern would need s >= 3, so the constraint is only
    // emitted for larger s, via xor helper variables.
    if s > 2 {
        for &w in &ops {
            for h in 0..r {
                for k in 0..l {
                    let mut terms: Vec<(VarId, i64)> =
                        vec![(x[&(w, h, k, 0)], 1), (x[&(w, h, k, s - 1)], 1)];
                    for sb in 1..s {
                        let t = m.binary(&format!("t_{w}_{h}_{k}_{sb}"));
                        linearize::eq_xor_binary(
                            &mut m,
                            t,
                            x[&(w, h, k, sb - 1)],
                            x[&(w, h, k, sb)],
                        );
                        terms.push((t, 1));
                    }
                    m.le(&terms, 2);
                }
            }
        }
    }

    // (6.4) sub-slot exclusivity: transfers of the same value may share.
    let groups = cdfg.io_ops_by_value();
    for h in 0..r {
        for k in 0..l {
            for sb in 0..s {
                let mut terms: Vec<(VarId, i64)> = Vec::new();
                for (v, ws) in &groups {
                    if ws.len() == 1 {
                        terms.push((x[&(ws[0], h, k, sb)], 1));
                    } else {
                        let u = m.binary(&format!("vmax_{v}_{h}_{k}_{sb}"));
                        let members: Vec<VarId> = ws.iter().map(|&w| x[&(w, h, k, sb)]).collect();
                        linearize::eq_max_binary(&mut m, u, &members);
                        terms.push((u, 1));
                    }
                }
                m.le(&terms, 1);
            }
        }
    }

    // (6.6) z > 0 <=> x = 1; (6.7) sub-bus width covers its load;
    // (6.8) the pieces of a transfer sum to its width.
    for &w in &ops {
        let bits = cdfg.io_bits(w) as i64;
        let mut sum_terms = Vec::new();
        for h in 0..r {
            for k in 0..l {
                for sb in 0..s {
                    let (xv, zv) = (x[&(w, h, k, sb)], z[&(w, h, k, sb)]);
                    linearize::iff_positive(&mut m, &[(zv, 1)], xv, big_m);
                    m.ge(&[(bw[&(h, sb)], 1), (zv, -1)], 0);
                    sum_terms.push((zv, 1));
                }
            }
        }
        m.eq(&sum_terms, bits);
    }

    // (6.9) prefix connection: a partition using sub-bus sb of bus h needs
    // a port covering all earlier sub-buses plus its own load:
    // x_{w,h,k,sb} = 1 => r_{i,h} >= sum_{t<sb} bw_{h,t} + z_{w,h,k,sb}.
    for &w in &ops {
        let (_, from, to) = cdfg.op(w).io_endpoints().expect("io op");
        for h in 0..r {
            for k in 0..l {
                for sb in 0..s {
                    let xv = x[&(w, h, k, sb)];
                    for &pid in &[from, to] {
                        let mut rhs: Vec<(VarId, i64)> =
                            (0..sb).map(|t| (bw[&(h, t)], 1)).collect();
                        rhs.push((z[&(w, h, k, sb)], 1));
                        linearize::implies_ge(&mut m, xv, &[(rports[&(pid, h)], 1)], &rhs, big_m);
                    }
                }
            }
        }
    }

    // (6.10) resources.
    for (pi, part) in cdfg.partitions().iter().enumerate() {
        let pid = PartitionId::new(pi as u32);
        let terms: Vec<_> = (0..r).map(|h| (rports[&(pid, h)], 1)).collect();
        m.le(&terms, part.total_pins.min(1 << 20) as i64);
    }

    // Feasibility problem: keep a pin-minimizing objective so solutions
    // are canonical.
    let obj: Vec<_> = rports.values().map(|&v| (v, 1)).collect();
    m.minimize(&obj);

    Ch6Model {
        model: m,
        x,
        bw,
        r: rports,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_cdfg::designs::synthetic;
    use mcs_cdfg::PortMode;

    #[test]
    fn ch4_model_solves_the_quickstart_design() {
        let d = synthetic::quickstart();
        let built = build_ch4(d.cdfg(), PortMode::Unidirectional, 1, 4);
        let sol = built.model.solve().expect("solvable");
        let ic = built.extract(d.cdfg(), &sol);
        assert!(ic.verify(d.cdfg()).is_empty(), "{:?}", ic.verify(d.cdfg()));
    }

    #[test]
    fn ch4_capacity_limits_values_per_bus() {
        // Three values between two chips at rate 1: one bus (one slot)
        // cannot carry them; three can.
        use mcs_cdfg::{CdfgBuilder, Library, OperatorClass};
        let mut b = CdfgBuilder::new(Library::new(100));
        let p1 = b.partition("P1", 64);
        let p2 = b.partition("P2", 64);
        b.resource(p1, OperatorClass::Add, 3);
        b.resource(p2, OperatorClass::Add, 3);
        for k in 0..3 {
            let (_, v) = b.func(&format!("f{k}"), OperatorClass::Add, p1, &[], 8);
            let (_, moved) = b.io(&format!("X{k}"), v, p2);
            let _ = b.func(&format!("g{k}"), OperatorClass::Add, p2, &[(moved, 0)], 8);
        }
        let d = b.finish().unwrap();
        let built = build_ch4(&d, PortMode::Unidirectional, 1, 1);
        assert!(
            built.model.clone().feasible().is_err(),
            "one bus cannot carry three values at L=1"
        );
        let built = build_ch4(&d, PortMode::Unidirectional, 1, 3);
        let sol = built.model.solve().expect("three buses suffice");
        let ic = built.extract(&d, &sol);
        assert!(ic.verify(&d).is_empty());
    }

    #[test]
    fn ch4_objective_maximizes_used_buses() {
        let d = synthetic::quickstart();
        let built = build_ch4(d.cdfg(), PortMode::Unidirectional, 2, 4);
        let sol = built.model.solve().expect("solvable");
        let ic = built.extract(d.cdfg(), &sol);
        // 4 transfers, ample pins: the objective pushes toward one bus per
        // transfer (higher I/O bandwidth, Section 4.1.1).
        assert_eq!(ic.buses.len(), 4);
    }

    #[test]
    fn ch6_model_splits_a_bus_between_two_values() {
        // Two 4-bit transfers between the same chips at rate 1 with only
        // 8 pins per chip: a single 8-bit bus must carry both in the same
        // cycle using two sub-buses.
        use mcs_cdfg::{CdfgBuilder, Library, OperatorClass};
        let mut b = CdfgBuilder::new(Library::new(100));
        let p1 = b.partition("P1", 8);
        let p2 = b.partition("P2", 8);
        b.resource(p1, OperatorClass::Add, 2);
        b.resource(p2, OperatorClass::Add, 2);
        let (_, va) = b.func("fa", OperatorClass::Add, p1, &[], 4);
        let (_, vb) = b.func("fb", OperatorClass::Add, p1, &[], 4);
        let (_, xa) = b.io("Xa", va, p2);
        let (_, xb) = b.io("Xb", vb, p2);
        let _ = b.func("s", OperatorClass::Add, p2, &[(xa, 0), (xb, 0)], 4);
        let d = b.finish().unwrap();
        let built = build_ch6(&d, 1, 1, 2, 16);
        let sol = built.model.solve().expect("sub-bus model solvable");
        // Both transfers placed, each chip within its 8-pin budget.
        let placed: i64 = built.x.values().map(|&v| sol.int_value(v)).sum();
        assert!(placed >= 2);
        for (&(_, _h), &v) in &built.r {
            assert!(sol.int_value(v) <= 8);
        }
    }

    #[test]
    fn ch4_bidirectional_model_verifies() {
        let d = synthetic::quickstart();
        let built = build_ch4(d.cdfg(), PortMode::Bidirectional, 1, 4);
        let sol = built.model.solve().expect("solvable");
        let ic = built.extract(d.cdfg(), &sol);
        assert_eq!(ic.mode, PortMode::Bidirectional);
        assert!(ic.verify(d.cdfg()).is_empty(), "{:?}", ic.verify(d.cdfg()));
    }

    #[test]
    fn ch4_model_agrees_with_the_heuristic_on_feasibility() {
        // Cross-validation: where the exact model proves a bus count
        // infeasible, the heuristic must not claim a structure with that
        // many buses either (on a deliberately tiny instance).
        use crate::{synthesize, SearchConfig};
        use mcs_cdfg::{CdfgBuilder, Library, OperatorClass};
        let mut b = CdfgBuilder::new(Library::new(100));
        let p1 = b.partition("P1", 64);
        let p2 = b.partition("P2", 64);
        b.resource(p1, OperatorClass::Add, 2);
        b.resource(p2, OperatorClass::Add, 2);
        for k in 0..2 {
            let (_, v) = b.func(&format!("f{k}"), OperatorClass::Add, p1, &[], 8);
            let (_, moved) = b.io(&format!("X{k}"), v, p2);
            let _ = b.func(&format!("g{k}"), OperatorClass::Add, p2, &[(moved, 0)], 8);
        }
        let d = b.finish().unwrap();
        // Exact: 1 bus at rate 1 infeasible, 2 feasible.
        assert!(build_ch4(&d, PortMode::Unidirectional, 1, 1)
            .model
            .feasible()
            .is_err());
        assert!(build_ch4(&d, PortMode::Unidirectional, 1, 2)
            .model
            .feasible()
            .is_ok());
        // Heuristic: finds a structure, and it needs at least 2 buses.
        let ic = synthesize(&d, PortMode::Unidirectional, &SearchConfig::new(1)).unwrap();
        assert!(ic.buses.len() >= 2);
    }
}
