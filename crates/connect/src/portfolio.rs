//! Deterministic parallel portfolio driver for the Figure 4.3 connection
//! search.
//!
//! Instead of one branching search, a *portfolio* of diversified
//! configurations — different branching factors, operation orders,
//! candidate orders and node-budget slices — races toward the first
//! connection. Workers run in **epoch lockstep**: each live worker
//! expands exactly [`SearchConfig::epoch_nodes`] nodes per epoch, then
//! all workers synchronize at a barrier. The race is decided by node
//! counts, never by wall-clock timing, which makes the outcome a pure
//! function of the portfolio:
//!
//! * the run stops at the end of the first epoch in which any worker
//!   finds a connection (losers are cancelled *at the barrier*, not
//!   asynchronously);
//! * among same-epoch winners the result is chosen by fewest buses, then
//!   fewest total pins, then lowest portfolio index;
//! * the shared pruning cache is written only at barriers, merged in
//!   portfolio-index order, so every cache read during an epoch sees the
//!   same frozen snapshot no matter how threads are scheduled.
//!
//! The cache stores *exhaustively failed* search states: a worker that
//! pops a node after trying every candidate publishes the state's
//! signature (depth plus the exact bus/value structure). Another worker
//! may prune a node on a signature hit only when the proving worker
//! explored a superset of its own candidate set — same operation order,
//! same candidate order, and a branching factor at least as large
//! (truncated top-`k` candidate lists are prefixes of top-`k'` lists for
//! `k <= k'`). A portfolio of one disables the cache entirely, so the
//! default configuration reproduces the sequential search bit for bit.
//!
//! Failure proofs survive a run as [`RefutationCert`]s:
//! [`synthesize_seeded`] returns the proofs learned during the run (in
//! barrier order, so the list is deterministic) and accepts proofs from
//! an earlier run to pre-populate the cache. The caller owns the
//! soundness argument for reuse: a cert transfers only to a search of
//! the same design, rate and port mode whose pin budgets are no looser
//! than the proving run's (a connection valid under the tighter budgets
//! would have been valid under the looser ones, contradicting the
//! exhaustive failure).

use std::collections::{BTreeMap, HashMap};
use std::sync::RwLock;
use std::time::{Duration, Instant};

use mcs_cdfg::{Cdfg, OpId, PartitionId, PortMode};
use mcs_ctl::Termination;
use mcs_metrics::{Histogram, MetricsHandle};
use mcs_pinalloc::PinChecker;

use crate::model::Interconnect;
use crate::search::{
    apply_move, candidate_moves, future_feasible, initial_state, share_pass, total_pins,
    ConnectError, Move, SearchConfig, State,
};

/// The order in which I/O operations are fed to the branching search.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpOrder {
    /// Descending bit width, pin-scarce partitions first on ties (the
    /// classic Figure 4.3 order).
    WidthDesc,
    /// Ascending bit width: small transfers seed the structure, wide ones
    /// arrive when pressure is visible.
    WidthAsc,
    /// Grouped by (source, sink) partition pair, heaviest pair first:
    /// each pair's transfers are assigned back to back, so their bus
    /// fills before the next pair can be tempted to merge onto it.
    PairGrouped,
    /// Grouped by communicated value, widest value first: same-value
    /// transfers meet immediately and share a slot.
    ValueGrouped,
    /// Ranked by pin-feasibility pressure: one batched probe pass of the
    /// Chapter 3 checker over every (operation, step group) pair, most
    /// constrained operation (fewest feasible groups) first, width and
    /// scarcity breaking ties. Deterministic for a fixed design and
    /// rate; falls back to [`OpOrder::WidthDesc`] keys when the design
    /// has no admissible pin budget at all. Only offered when
    /// [`SearchConfig::probe_seed_plans`] opts in.
    ProbeSeeded,
}

impl OpOrder {
    fn describe(self) -> &'static str {
        match self {
            OpOrder::WidthDesc => "width-desc",
            OpOrder::WidthAsc => "width-asc",
            OpOrder::PairGrouped => "pair-grouped",
            OpOrder::ValueGrouped => "value-grouped",
            OpOrder::ProbeSeeded => "probe-seeded",
        }
    }
}

/// The order in which a node's candidate moves are explored.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CandidateOrder {
    /// Best gain first, fresh bus last (the classic order).
    GainDesc,
    /// A fresh bus first, then best gain first: distrust the gain
    /// function's merging appetite.
    FreshFirst,
    /// Best gain first with equal-gain ties broken toward *newer* buses.
    GainDescBusRev,
}

impl CandidateOrder {
    fn describe(self) -> &'static str {
        match self {
            CandidateOrder::GainDesc => "gain-desc",
            CandidateOrder::FreshFirst => "fresh-first",
            CandidateOrder::GainDescBusRev => "gain-desc-busrev",
        }
    }
}

/// One diversified configuration in the portfolio.
#[derive(Clone, Debug)]
pub struct WorkerPlan {
    /// Portfolio index (the final tie-breaker).
    pub index: usize,
    /// Candidates explored per node.
    pub branching_factor: usize,
    /// Operation order.
    pub order: OpOrder,
    /// Candidate order within a node.
    pub candidates: CandidateOrder,
    /// Node budget for this worker.
    pub node_budget: usize,
}

impl WorkerPlan {
    fn describe(&self) -> String {
        format!(
            "bf={} ops={} cand={} budget={}",
            self.branching_factor,
            self.order.describe(),
            self.candidates.describe(),
            self.node_budget
        )
    }
}

/// Derives the diversified portfolio from a base configuration. Plan 0 is
/// always the classic search (base branching factor, width-descending
/// order, gain-descending candidates, full node budget); the others cycle
/// through a menu of disagreements and run on budget slices so a large
/// portfolio does not multiply the worst-case work.
pub fn portfolio_plans(cfg: &SearchConfig) -> Vec<WorkerPlan> {
    let p = cfg.portfolio.unwrap_or(cfg.workers).max(1);
    let bf = cfg.branching_factor.max(1);
    let slice = (cfg.node_budget / 2).clamp(1, cfg.node_budget.max(1));
    let menu: [(usize, OpOrder, CandidateOrder); 8] = [
        (bf, OpOrder::WidthDesc, CandidateOrder::GainDesc),
        (1, OpOrder::PairGrouped, CandidateOrder::GainDesc),
        (bf, OpOrder::PairGrouped, CandidateOrder::GainDesc),
        (1, OpOrder::WidthDesc, CandidateOrder::FreshFirst),
        (bf, OpOrder::ValueGrouped, CandidateOrder::GainDesc),
        (bf + 1, OpOrder::WidthDesc, CandidateOrder::GainDescBusRev),
        (1, OpOrder::WidthAsc, CandidateOrder::GainDesc),
        (bf.max(2), OpOrder::PairGrouped, CandidateOrder::FreshFirst),
    ];
    (0..p)
        .map(|i| {
            let (b, mut order, candidates) = menu[i % menu.len()];
            // Probe seeding swaps the first diversified slot for the
            // checker-ranked order; plan 0 stays the classic search.
            if cfg.probe_seed_plans && i % menu.len() == 1 {
                order = OpOrder::ProbeSeeded;
            }
            WorkerPlan {
                index: i,
                // Past one menu cycle, widen the branching factor so
                // bigger portfolios keep gaining coverage.
                branching_factor: b + i / menu.len(),
                order,
                candidates,
                node_budget: if i == 0 { cfg.node_budget } else { slice },
            }
        })
        .collect()
}

/// Sorts the I/O operations of `cdfg` according to `order`. Every key
/// ends in the operation id, so each order is a total order and identical
/// across runs. `rate` matters only to [`OpOrder::ProbeSeeded`], whose
/// pressure ranking probes one candidate per step group.
pub(crate) fn ordered_ops(cdfg: &Cdfg, order: OpOrder, rate: u32) -> Vec<OpId> {
    let mut ops: Vec<OpId> = cdfg.io_ops().collect();
    let scarcity = |op: OpId| {
        let (_, from, to) = cdfg.op(op).io_endpoints().expect("io op");
        cdfg.partition(from)
            .total_pins
            .min(cdfg.partition(to).total_pins)
    };
    match order {
        OpOrder::WidthDesc => {
            ops.sort_by_key(|&op| (std::cmp::Reverse(cdfg.io_bits(op)), scarcity(op), op));
        }
        OpOrder::ProbeSeeded => {
            // One shared-checkpoint batch over every (op, group) pair
            // against the empty commitment state. An operation with few
            // feasible groups is the scarcest resource: assign it first,
            // while the structure is still unconstrained.
            let mut feasible_groups: BTreeMap<OpId, u32> = BTreeMap::new();
            if let Ok(mut checker) = PinChecker::new(cdfg, rate) {
                let slate: Vec<(OpId, i64)> = ops
                    .iter()
                    .flat_map(|&op| (0..rate as i64).map(move |g| (op, g)))
                    .collect();
                for (&(op, _), ok) in slate.iter().zip(checker.probe_candidates(&slate)) {
                    *feasible_groups.entry(op).or_insert(0) += u32::from(ok);
                }
            }
            // No admissible budget (or rate 0): every count is absent and
            // the order degrades to the classic width-descending keys.
            ops.sort_by_key(|&op| {
                (
                    feasible_groups.get(&op).copied().unwrap_or(0),
                    std::cmp::Reverse(cdfg.io_bits(op)),
                    scarcity(op),
                    op,
                )
            });
        }
        OpOrder::WidthAsc => {
            ops.sort_by_key(|&op| (cdfg.io_bits(op), scarcity(op), op));
        }
        OpOrder::PairGrouped => {
            let mut pair_bits: BTreeMap<(PartitionId, PartitionId), u64> = BTreeMap::new();
            for &op in &ops {
                let (_, from, to) = cdfg.op(op).io_endpoints().expect("io op");
                *pair_bits.entry((from, to)).or_insert(0) += cdfg.io_bits(op) as u64;
            }
            ops.sort_by_key(|&op| {
                let (_, from, to) = cdfg.op(op).io_endpoints().expect("io op");
                let pair = (from, to);
                (
                    std::cmp::Reverse(pair_bits[&pair]),
                    pair,
                    std::cmp::Reverse(cdfg.io_bits(op)),
                    op,
                )
            });
        }
        OpOrder::ValueGrouped => {
            ops.sort_by_key(|&op| {
                let (value, _, _) = cdfg.op(op).io_endpoints().expect("io op");
                (
                    std::cmp::Reverse(cdfg.value(value).bits),
                    value,
                    std::cmp::Reverse(cdfg.io_bits(op)),
                    op,
                )
            });
        }
    }
    ops
}

/// Candidate-*set* family of a [`CandidateOrder`]. [`GainDesc`] and
/// [`FreshFirst`] produce the identical move set at every state — same
/// gain sort, same dedup, same truncation; only the fresh bus's position
/// differs — so exhaustive-failure proofs transfer between them.
/// [`GainDescBusRev`] breaks equal-gain ties the other way, which can
/// change *which* same-topology representative survives deduplication,
/// so it proves a different set.
///
/// [`GainDesc`]: CandidateOrder::GainDesc
/// [`FreshFirst`]: CandidateOrder::FreshFirst
/// [`GainDescBusRev`]: CandidateOrder::GainDescBusRev
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum CandidateFamily {
    GainTieLow,
    GainTieHigh,
}

impl CandidateFamily {
    fn of(cand: CandidateOrder) -> Self {
        match cand {
            CandidateOrder::GainDesc | CandidateOrder::FreshFirst => CandidateFamily::GainTieLow,
            CandidateOrder::GainDescBusRev => CandidateFamily::GainTieHigh,
        }
    }
}

/// How strong a failure proof is: a cached entry prunes a reader only
/// when the prover explored a superset of the reader's candidate sets —
/// same operation order, same candidate-set family, and a branching
/// factor at least as large (top-`k` truncated sets are prefixes of
/// top-`k'` sets for `k <= k'`; exhaustive failure is order-independent
/// within a set).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Strength {
    order: OpOrder,
    family: CandidateFamily,
    branching_factor: usize,
}

impl Strength {
    fn dominates(&self, reader: &Strength) -> bool {
        self.order == reader.order
            && self.family == reader.family
            && self.branching_factor >= reader.branching_factor
    }
}

/// A portable exhaustive-failure proof: a state signature plus the
/// strength of the plan that proved the subtree empty. Harvested from
/// [`synthesize_seeded`] and fed back into a later run on a problem
/// where the proof still holds (see the module docs for the transfer
/// rule the caller must uphold).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RefutationCert {
    /// State signature: depth plus the exact bus/value structure.
    pub key: Vec<u8>,
    /// Operation order of the proving plan.
    pub order: OpOrder,
    /// `true` when the proving plan broke equal-gain ties toward newer
    /// buses ([`CandidateOrder::GainDescBusRev`]).
    pub tie_high: bool,
    /// Branching factor of the proving plan.
    pub branching_factor: usize,
}

impl RefutationCert {
    fn from_parts(key: Vec<u8>, strength: Strength) -> Self {
        RefutationCert {
            key,
            order: strength.order,
            tie_high: strength.family == CandidateFamily::GainTieHigh,
            branching_factor: strength.branching_factor,
        }
    }

    fn strength(&self) -> Strength {
        Strength {
            order: self.order,
            family: if self.tie_high {
                CandidateFamily::GainTieHigh
            } else {
                CandidateFamily::GainTieLow
            },
            branching_factor: self.branching_factor,
        }
    }
}

/// Upper bound on cached failure states; beyond it new proofs are
/// dropped (the cache is an optimization, never a correctness need).
const CACHE_CAP: usize = 1 << 16;

/// One resident failure proof: its strength plus whether it arrived as
/// a [`RefutationCert`] seed rather than from this run's own workers
/// (for seed-hit accounting).
#[derive(Clone, Copy, Debug)]
struct CacheEntry {
    strength: Strength,
    seeded: bool,
}

/// Sharded map of exhaustively-failed state signatures. During an epoch
/// the cache is read-only; staged entries are merged at the barrier in
/// portfolio-index order, so its contents are deterministic.
pub(crate) struct SharedCache {
    shards: Vec<RwLock<HashMap<Vec<u8>, Vec<CacheEntry>>>>,
    enabled: bool,
    len: std::sync::atomic::AtomicUsize,
}

impl SharedCache {
    fn new(enabled: bool) -> Self {
        SharedCache {
            shards: (0..16).map(|_| RwLock::new(HashMap::new())).collect(),
            enabled,
            len: std::sync::atomic::AtomicUsize::new(0),
        }
    }

    fn shard_of(&self, key: &[u8]) -> usize {
        // FNV-1a over the key bytes; only shard selection depends on it.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in key {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (h % self.shards.len() as u64) as usize
    }

    /// `Some(from_seed)` when a dominating proof is resident: the flag
    /// says whether the (deterministically) first dominating entry was
    /// seeded from a prior run.
    fn proven(&self, key: &[u8], reader: &Strength) -> Option<bool> {
        if !self.enabled {
            return None;
        }
        let shard = self.shards[self.shard_of(key)].read().expect("cache lock");
        shard
            .get(key)?
            .iter()
            .find(|e| e.strength.dominates(reader))
            .map(|e| e.seeded)
    }

    /// Barrier-time merge; called from the orchestrator only. Returns
    /// the non-seeded entries actually adopted (not dominated by a
    /// resident proof, within the cap), in input order — the run's
    /// harvest of newly learned proofs.
    fn publish(&self, staged: Vec<(Vec<u8>, Strength)>, seeded: bool) -> Vec<(Vec<u8>, Strength)> {
        use std::sync::atomic::Ordering;
        let mut accepted = Vec::new();
        if !self.enabled {
            return accepted;
        }
        for (key, strength) in staged {
            if self.len.load(Ordering::Relaxed) >= CACHE_CAP {
                return accepted;
            }
            let mut shard = self.shards[self.shard_of(&key)]
                .write()
                .expect("cache lock");
            let entries = shard.entry(key.clone()).or_default();
            if entries.iter().any(|e| e.strength.dominates(&strength)) {
                continue;
            }
            entries.retain(|e| !strength.dominates(&e.strength));
            entries.push(CacheEntry { strength, seeded });
            self.len.fetch_add(1, Ordering::Relaxed);
            if !seeded {
                accepted.push((key, strength));
            }
        }
        accepted
    }

    fn entries(&self) -> usize {
        self.len.load(std::sync::atomic::Ordering::Relaxed)
    }
}

/// A search state's identity for pruning: the depth (which, for a fixed
/// operation order, pins down the set of assigned operations) plus the
/// exact bus structure — widths, per-partition port widths, and the
/// values riding each bus with their sub-ranges. Everything the future
/// search can observe is derived from these, so two states with equal
/// signatures have identical subtrees under the same plan.
fn state_sig(state: &State, depth: usize) -> Vec<u8> {
    let mut sig = Vec::with_capacity(32 + state.buses.len() * 48);
    sig.extend_from_slice(&(depth as u32).to_le_bytes());
    for (bus, values) in state.buses.iter().zip(&state.bus_values) {
        sig.push(0xB5);
        sig.push(bus.sub_widths.len() as u8);
        for &w in &bus.sub_widths {
            sig.extend_from_slice(&w.to_le_bytes());
        }
        for ports in [&bus.out_ports, &bus.in_ports, &bus.bi_ports] {
            sig.push(ports.len() as u8);
            for (&p, &w) in ports {
                sig.extend_from_slice(&p.0.to_le_bytes());
                sig.extend_from_slice(&w.to_le_bytes());
            }
        }
        sig.push(values.len() as u8);
        for (&v, r) in values {
            sig.extend_from_slice(&v.0.to_le_bytes());
            sig.push(r.lo as u8);
            sig.push(r.hi as u8);
        }
    }
    sig
}

/// Where a worker ended up.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkerOutcome {
    /// Found a connection (possibly outvoted by a cheaper one).
    Succeeded,
    /// Ran out of node budget.
    Exhausted,
    /// Proved its (truncated) subspace empty.
    Failed,
    /// Still running when the portfolio stopped at a barrier.
    Cancelled,
    /// Panicked during an epoch and was quarantined; the rest of the
    /// portfolio kept racing without it.
    Panicked,
}

impl std::fmt::Display for WorkerOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            WorkerOutcome::Succeeded => "succeeded",
            WorkerOutcome::Exhausted => "exhausted",
            WorkerOutcome::Failed => "failed",
            WorkerOutcome::Cancelled => "cancelled",
            WorkerOutcome::Panicked => "panicked",
        };
        write!(f, "{s}")
    }
}

/// Telemetry for one portfolio worker.
#[derive(Clone, Debug)]
pub struct WorkerReport {
    /// Portfolio index.
    pub index: usize,
    /// Human-readable plan description.
    pub config: String,
    /// Final status.
    pub outcome: WorkerOutcome,
    /// Nodes expanded.
    pub nodes: u64,
    /// Nodes pruned via the shared failure cache.
    pub cache_hits: u64,
    /// Cache hits answered by proofs seeded from an earlier run via
    /// [`synthesize_seeded`] (a subset of `cache_hits`).
    pub seed_hits: u64,
    /// Candidates cut by the dead-end test before expansion.
    pub prunes: u64,
    /// Nodes popped after exhausting their candidates.
    pub backtracks: u64,
    /// Failure proofs this worker staged for the shared cache.
    pub cache_published: u64,
    /// Time this worker spent expanding, summed over epochs.
    pub wall: Duration,
    /// `(buses, total pins)` of the worker's connection, when it found
    /// one.
    pub cost: Option<(u32, u32)>,
    /// Deepest search depth reached: how many I/O operations the
    /// worker's best partial connection had assigned. Equal to the
    /// design's I/O count when the worker succeeded.
    pub deepest: u64,
    /// Bus count of that deepest partial structure — the "best so far"
    /// an interrupted run can report.
    pub deepest_buses: u32,
}

/// Telemetry for a whole portfolio run.
#[derive(Clone, Debug, Default)]
pub struct SearchStats {
    /// Per-worker reports, in portfolio order.
    pub workers: Vec<WorkerReport>,
    /// Portfolio index of the worker whose connection was returned.
    pub winner: Option<usize>,
    /// Synchronization epochs executed.
    pub epochs: usize,
    /// Threads used to expand the portfolio.
    pub threads: usize,
    /// Total nodes expanded across workers.
    pub nodes: u64,
    /// Total shared-cache prunes.
    pub cache_hits: u64,
    /// Cache prunes answered by seeded proofs (subset of `cache_hits`).
    pub seed_hits: u64,
    /// Failure proofs resident in the shared cache at the end.
    pub cache_entries: u64,
    /// Total dead-end prunes.
    pub prunes: u64,
    /// Total backtracks.
    pub backtracks: u64,
    /// Wall time of the whole run.
    pub wall: Duration,
    /// How the run ended. [`Termination::Complete`] for a natural end
    /// (success or exhaustion), [`Termination::WorkerPanicked`] when a
    /// quarantined panic degraded the portfolio, and an interruption
    /// verdict when the configured budget tripped at a barrier.
    pub termination: Termination,
    /// Deepest search depth any worker reached (I/O operations assigned
    /// on its best partial path) — the anytime progress measure of an
    /// interrupted run.
    pub deepest: u64,
    /// Bus count of that deepest partial connection structure.
    pub deepest_buses: u32,
}

impl SearchStats {
    /// Aggregate expansion rate over the run's wall time.
    pub fn nodes_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.nodes as f64 / secs
        } else {
            0.0
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum WorkerStatus {
    Running,
    Succeeded,
    Exhausted,
    Failed,
    Panicked,
}

/// One suspended node of the iterative backtracking search.
struct Frame {
    /// State at node entry; candidate application and backtracking
    /// restore from it.
    saved: State,
    /// Signature to publish if the whole subtree fails (cache runs only).
    key: Option<Vec<u8>>,
    moves: Vec<Move>,
    next: usize,
}

/// A resumable worker: the recursive search of Figure 4.3 unrolled onto
/// an explicit stack so it can pause at epoch boundaries. With the cache
/// disabled it expands, prunes and backtracks in exactly the order of the
/// sequential implementation — including the "give up once the budget
/// hits zero mid-backtrack" rule — so a portfolio of one is bit-for-bit
/// the classic search.
struct Worker<'a> {
    cdfg: &'a Cdfg,
    mode: PortMode,
    rate: u32,
    allow_split: bool,
    plan: WorkerPlan,
    strength: Strength,
    cache_enabled: bool,
    ops: Vec<OpId>,
    state: State,
    stack: Vec<Frame>,
    budget_left: usize,
    /// Next step enters a fresh node at depth `stack.len()`.
    entering: bool,
    /// A child just failed; the classic search aborts here when the
    /// budget is spent instead of trying further siblings.
    resuming: bool,
    status: WorkerStatus,
    nodes: u64,
    cache_hits: u64,
    seed_hits: u64,
    prunes: u64,
    backtracks: u64,
    published: u64,
    staged: Vec<(Vec<u8>, Strength)>,
    result: Option<(Interconnect, (u32, u32))>,
    wall: Duration,
    /// Deepest depth entered and the bus count of the state there — the
    /// worker's best partial connection, reported when a budget stops
    /// the run before anyone finishes.
    deepest: usize,
    deepest_buses: u32,
    /// Metrics clock for epoch timing (reads 0 when disconnected, so a
    /// manual-clock registry keeps the histogram deterministic).
    metrics: MetricsHandle,
    /// `connect.epoch_us`: one observation per live epoch this worker
    /// expanded, on the registry clock.
    m_epoch_us: Histogram,
}

impl<'a> Worker<'a> {
    fn new(
        cdfg: &'a Cdfg,
        mode: PortMode,
        cfg: &SearchConfig,
        plan: WorkerPlan,
        cache_enabled: bool,
    ) -> Self {
        let ops = ordered_ops(cdfg, plan.order, cfg.rate);
        let state = initial_state(cdfg, cfg.rate, &ops);
        Worker {
            cdfg,
            mode,
            rate: cfg.rate,
            allow_split: cfg.allow_split,
            strength: Strength {
                order: plan.order,
                family: CandidateFamily::of(plan.candidates),
                branching_factor: plan.branching_factor,
            },
            budget_left: plan.node_budget,
            plan,
            cache_enabled,
            ops,
            state,
            stack: Vec::new(),
            entering: true,
            resuming: false,
            status: WorkerStatus::Running,
            nodes: 0,
            cache_hits: 0,
            seed_hits: 0,
            prunes: 0,
            backtracks: 0,
            published: 0,
            staged: Vec::new(),
            result: None,
            wall: Duration::ZERO,
            deepest: 0,
            deepest_buses: 0,
            metrics: cfg.metrics.clone(),
            m_epoch_us: cfg.metrics.histogram("connect.epoch_us"),
        }
    }

    fn running(&self) -> bool {
        self.status == WorkerStatus::Running
    }

    /// Expands up to `max_nodes` nodes, then pauses. Reads `cache` but
    /// never writes it; proofs accumulate in `staged` for the barrier.
    fn run_epoch(&mut self, max_nodes: usize, cache: &SharedCache) {
        if !self.running() {
            return;
        }
        // Fault-injection site (debug builds only): the test suite arms
        // a single worker's site to prove a panicking worker degrades to
        // `WorkerOutcome::Panicked` instead of aborting the run.
        mcs_ctl::faultpoint!(&format!("portfolio::worker::{}", self.plan.index));
        let t0 = Instant::now();
        let m_t0 = self.metrics.now_us();
        let mut expanded = 0usize;
        while expanded < max_nodes && self.running() {
            if self.entering {
                self.enter_node(&mut expanded, cache);
            } else {
                self.advance();
            }
        }
        self.wall += t0.elapsed();
        self.m_epoch_us
            .observe(self.metrics.now_us().saturating_sub(m_t0));
    }

    fn enter_node(&mut self, expanded: &mut usize, cache: &SharedCache) {
        let depth = self.stack.len();
        if depth > self.deepest {
            self.deepest = depth;
            self.deepest_buses = self.state.buses.len() as u32;
        }
        if depth == self.ops.len() {
            let mut ic = Interconnect {
                mode: self.mode,
                buses: self.state.buses.clone(),
                assignment: self.state.assignment.clone(),
            };
            if self.allow_split {
                share_pass(self.cdfg, &mut ic, self.rate);
            }
            let cost = (ic.buses.len() as u32, total_pins(self.cdfg, &ic));
            self.result = Some((ic, cost));
            self.status = WorkerStatus::Succeeded;
            return;
        }
        if self.budget_left == 0 {
            self.status = WorkerStatus::Exhausted;
            return;
        }
        self.budget_left -= 1;
        *expanded += 1;
        self.nodes += 1;
        let key = if self.cache_enabled {
            Some(state_sig(&self.state, depth))
        } else {
            None
        };
        if let Some(k) = &key {
            if let Some(from_seed) = cache.proven(k, &self.strength) {
                // Another plan with at least our candidate sets proved
                // this exact structure a dead end.
                self.cache_hits += 1;
                if from_seed {
                    self.seed_hits += 1;
                }
                self.child_failed();
                return;
            }
        }
        let moves = candidate_moves(
            self.cdfg,
            self.mode,
            self.rate,
            self.plan.branching_factor,
            self.plan.candidates,
            &self.state,
            self.ops[depth],
        );
        self.stack.push(Frame {
            saved: self.state.clone(),
            key,
            moves,
            next: 0,
        });
        self.entering = false;
    }

    /// Resumes the top frame: try its next candidate, or pop it as an
    /// exhaustive failure. Every popped frame IS exhaustive — running out
    /// of budget terminates the whole worker rather than unwinding — so
    /// popping may always publish a failure proof.
    fn advance(&mut self) {
        let depth = self.stack.len();
        if depth == 0 {
            self.status = WorkerStatus::Failed;
            return;
        }
        if self.resuming {
            self.resuming = false;
            if self.budget_left == 0 {
                self.status = WorkerStatus::Exhausted;
                return;
            }
        }
        let op = self.ops[depth - 1];
        loop {
            let frame = self.stack.last_mut().expect("non-empty stack");
            if frame.next >= frame.moves.len() {
                break;
            }
            let mv = frame.moves[frame.next].clone();
            frame.next += 1;
            self.state = frame.saved.clone();
            apply_move(self.cdfg, self.mode, &mut self.state, op, &mv);
            if future_feasible(self.cdfg, self.mode, &self.state, &self.ops[depth..]) {
                self.entering = true;
                return;
            }
            self.prunes += 1;
            if self.budget_left == 0 {
                self.status = WorkerStatus::Exhausted;
                return;
            }
        }
        let frame = self.stack.pop().expect("non-empty stack");
        self.backtracks += 1;
        if let Some(key) = frame.key {
            self.staged.push((key, self.strength));
            self.published += 1;
        }
        self.state = frame.saved;
        self.child_failed();
    }

    fn child_failed(&mut self) {
        if self.stack.is_empty() {
            self.status = WorkerStatus::Failed;
        } else {
            self.entering = false;
            self.resuming = true;
        }
    }

    /// Quarantines a worker whose epoch panicked: it never runs again,
    /// and the proofs it staged this epoch are dropped — a panic may
    /// have interrupted the search mid-node, so nothing staged since the
    /// last barrier can be trusted as a complete exhaustive failure.
    fn quarantine(&mut self) {
        self.status = WorkerStatus::Panicked;
        self.published -= self.staged.len() as u64;
        self.staged.clear();
    }

    fn report(&self, cancelled: bool) -> WorkerReport {
        let outcome = match self.status {
            WorkerStatus::Running => {
                debug_assert!(cancelled);
                WorkerOutcome::Cancelled
            }
            WorkerStatus::Succeeded => WorkerOutcome::Succeeded,
            WorkerStatus::Exhausted => WorkerOutcome::Exhausted,
            WorkerStatus::Failed => WorkerOutcome::Failed,
            WorkerStatus::Panicked => WorkerOutcome::Panicked,
        };
        WorkerReport {
            index: self.plan.index,
            config: self.plan.describe(),
            outcome,
            nodes: self.nodes,
            cache_hits: self.cache_hits,
            seed_hits: self.seed_hits,
            prunes: self.prunes,
            backtracks: self.backtracks,
            cache_published: self.published,
            wall: self.wall,
            cost: self.result.as_ref().map(|(_, c)| *c),
            deepest: self.deepest as u64,
            deepest_buses: self.deepest_buses,
        }
    }
}

/// Runs the portfolio search and returns both the connection (or the
/// error) and the full telemetry. [`crate::synthesize`] is this with the
/// stats discarded.
pub fn synthesize_with_stats(
    cdfg: &Cdfg,
    mode: PortMode,
    cfg: &SearchConfig,
) -> (Result<Interconnect, ConnectError>, SearchStats) {
    let (result, stats, _) = synthesize_seeded(cdfg, mode, cfg, &[]);
    (result, stats)
}

/// Runs one worker's epoch with panic isolation: a panic anywhere in
/// the expansion (including an injected fault) quarantines the worker
/// instead of unwinding across the thread scope and aborting the whole
/// portfolio. The worker's in-progress state is untrusted after a
/// panic, so quarantine also drops its un-published proofs.
fn run_epoch_isolated(w: &mut Worker<'_>, epoch_nodes: usize, cache: &SharedCache) {
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        w.run_epoch(epoch_nodes, cache);
    }));
    if outcome.is_err() {
        w.quarantine();
    }
}

/// [`synthesize_with_stats`] with cross-run proof transfer: the cache is
/// pre-populated from `seed` (which also enables it for a portfolio of
/// one), and the proofs learned during this run come back as the third
/// tuple element, in deterministic barrier order.
///
/// The caller asserts that every seed's proof holds for *this* problem
/// instance — same design, rate and port mode, with pin budgets no
/// looser than the proving run's. Seeds never change feasibility of the
/// points they legitimately apply to (they only skip provably empty
/// subtrees), but they may steer which connection is found first, so
/// reuse trades bit-stability for speed.
pub fn synthesize_seeded(
    cdfg: &Cdfg,
    mode: PortMode,
    cfg: &SearchConfig,
    seed: &[RefutationCert],
) -> (
    Result<Interconnect, ConnectError>,
    SearchStats,
    Vec<RefutationCert>,
) {
    let t0 = Instant::now();
    if cfg.rate == 0 {
        return (
            Err(ConnectError::ZeroRate),
            SearchStats::default(),
            Vec::new(),
        );
    }
    let plans = portfolio_plans(cfg);
    let cache = SharedCache::new(plans.len() > 1 || !seed.is_empty());
    cache.publish(
        seed.iter().map(|c| (c.key.clone(), c.strength())).collect(),
        true,
    );
    let threads = cfg.workers.clamp(1, plans.len());
    let epoch_nodes = cfg.epoch_nodes.max(1);
    let mut workers: Vec<Worker<'_>> = plans
        .into_iter()
        .map(|plan| Worker::new(cdfg, mode, cfg, plan, cache.enabled))
        .collect();

    // Counter snapshots for per-epoch `SearchNode` deltas; events are
    // recorded only at barriers, in portfolio order, from this thread —
    // the stream is a pure function of the portfolio, like the result.
    let rec_on = cfg.recorder.enabled();
    let mut recorded: Vec<(u64, u64, u64, u64)> = vec![(0, 0, 0, 0); workers.len()];

    let mut epochs = 0usize;
    let mut learned: Vec<RefutationCert> = Vec::new();
    // Nodes already charged to the budget, and which workers' panics
    // have been surfaced (each panic is reported exactly once, at the
    // barrier of the epoch it happened in).
    let mut nodes_charged = 0u64;
    let mut panic_reported = vec![false; workers.len()];
    let mut interruption: Option<Termination> = None;
    loop {
        epochs += 1;
        if threads == 1 {
            for w in &mut workers {
                run_epoch_isolated(w, epoch_nodes, &cache);
            }
        } else {
            let chunk = workers.len().div_ceil(threads);
            std::thread::scope(|scope| {
                for group in workers.chunks_mut(chunk) {
                    scope.spawn(|| {
                        for w in group {
                            run_epoch_isolated(w, epoch_nodes, &cache);
                        }
                    });
                }
            });
        }
        // Barrier: merge staged failure proofs in portfolio order so the
        // next epoch's snapshot is deterministic; whatever the cache
        // adopts is also this run's harvest.
        for w in &mut workers {
            learned.extend(
                cache
                    .publish(std::mem::take(&mut w.staged), false)
                    .into_iter()
                    .map(|(key, strength)| RefutationCert::from_parts(key, strength)),
            );
        }
        if rec_on {
            for (i, w) in workers.iter().enumerate() {
                let cur = (w.nodes, w.prunes, w.backtracks, w.cache_hits);
                let prev = recorded[i];
                if cur != prev {
                    cfg.recorder.record(mcs_obs::Event::SearchNode {
                        worker: w.plan.index as u32,
                        epoch: epochs as u32,
                        nodes: cur.0 - prev.0,
                        prunes: cur.1 - prev.1,
                        backtracks: cur.2 - prev.2,
                        cache_hits: cur.3 - prev.3,
                    });
                    recorded[i] = cur;
                }
            }
        }
        // Surface freshly quarantined panics, in portfolio order.
        for (i, w) in workers.iter().enumerate() {
            if w.status == WorkerStatus::Panicked && !panic_reported[i] {
                panic_reported[i] = true;
                cfg.recorder.record(mcs_obs::Event::WorkerPanic {
                    pool: "portfolio",
                    worker: w.plan.index as u32,
                    epoch: epochs as u32,
                });
            }
        }
        let any_success = workers.iter().any(|w| w.status == WorkerStatus::Succeeded);
        let all_terminal = workers.iter().all(|w| !w.running());
        // The budget is charged and polled only here, at the barrier, so
        // count-ceiling interruption points are a function of the
        // portfolio alone, never of the thread count. A run that ends
        // naturally in the same epoch its budget trips reports the
        // natural verdict: finishing exactly at the ceiling is a finish.
        if any_success || all_terminal {
            break;
        }
        if let Some(budget) = &cfg.budget {
            let total: u64 = workers.iter().map(|w| w.nodes).sum();
            budget.charge_nodes(total - nodes_charged);
            nodes_charged = total;
            if budget.check().is_some() {
                interruption = Some(budget.termination());
                break;
            }
        }
    }

    // Deterministic winner: fewest buses, then fewest pins, then lowest
    // portfolio index.
    let winner = workers
        .iter()
        .filter_map(|w| w.result.as_ref().map(|(_, cost)| (*cost, w.plan.index)))
        .min()
        .map(|(_, index)| index);
    let termination = match interruption {
        Some(t) => t,
        None if workers.iter().any(|w| w.status == WorkerStatus::Panicked) => {
            Termination::WorkerPanicked
        }
        None => Termination::Complete,
    };
    // Anytime progress: the deepest partial any worker reached; ties
    // break to the cheaper structure.
    let (std::cmp::Reverse(deepest), deepest_buses) = workers
        .iter()
        .map(|w| (std::cmp::Reverse(w.deepest as u64), w.deepest_buses))
        .min()
        .unwrap_or((std::cmp::Reverse(0), 0));
    let stats = SearchStats {
        workers: workers.iter().map(|w| w.report(w.running())).collect(),
        winner,
        epochs,
        threads,
        nodes: workers.iter().map(|w| w.nodes).sum(),
        cache_hits: workers.iter().map(|w| w.cache_hits).sum(),
        seed_hits: workers.iter().map(|w| w.seed_hits).sum(),
        cache_entries: cache.entries() as u64,
        prunes: workers.iter().map(|w| w.prunes).sum(),
        backtracks: workers.iter().map(|w| w.backtracks).sum(),
        wall: t0.elapsed(),
        termination,
        deepest,
        deepest_buses,
    };
    if cfg.metrics.enabled() {
        cfg.metrics.add("connect.nodes", stats.nodes);
        cfg.metrics.add("connect.cache_hits", stats.cache_hits);
        cfg.metrics.add("connect.seed_hits", stats.seed_hits);
        // Peak, not last-write: under a parallel sweep the last point to
        // finish is scheduling-dependent, and exports must stay
        // byte-identical across `--jobs`.
        cfg.metrics
            .gauge_max("connect.cache_entries", stats.cache_entries as i64);
    }
    let result = match winner {
        Some(index) => {
            let w = workers
                .into_iter()
                .find(|w| w.plan.index == index)
                .expect("winner present");
            Ok(w.result.expect("winner has result").0)
        }
        None => match interruption {
            Some(t) => Err(ConnectError::Interrupted(t)),
            None => Err(ConnectError::NoConnectionFound),
        },
    };
    (result, stats, learned)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_cdfg::designs::{ar_filter, elliptic};

    #[test]
    fn single_worker_matches_portfolio_of_one() {
        let d = ar_filter::general(3, PortMode::Unidirectional);
        let cfg = SearchConfig::new(3);
        let (a, stats) = synthesize_with_stats(d.cdfg(), PortMode::Unidirectional, &cfg);
        assert_eq!(stats.workers.len(), 1);
        assert_eq!(stats.winner, Some(0));
        assert!(stats.nodes > 0);
        let b = crate::synthesize(d.cdfg(), PortMode::Unidirectional, &cfg).unwrap();
        assert_eq!(a.unwrap(), b);
    }

    #[test]
    fn portfolio_result_is_independent_of_thread_count() {
        let d = elliptic::partitioned();
        let base = SearchConfig::new(6).with_portfolio(4);
        let reference = synthesize_with_stats(d.cdfg(), PortMode::Unidirectional, &base)
            .0
            .unwrap();
        for workers in [1usize, 2, 3, 8] {
            let cfg = base.clone().with_workers(workers);
            let (got, stats) = synthesize_with_stats(d.cdfg(), PortMode::Unidirectional, &cfg);
            assert_eq!(got.unwrap(), reference, "workers={workers}");
            assert_eq!(stats.threads, workers.min(4), "workers={workers}");
        }
    }

    #[test]
    fn winner_ties_break_to_lowest_index() {
        // All plans on a tiny design find the same cheap structure in
        // epoch 1; the tie must resolve to the lowest portfolio index
        // among the cheapest results.
        let d = mcs_cdfg::designs::synthetic::quickstart();
        let cfg = SearchConfig::new(1).with_portfolio(8);
        let (ic, stats) = synthesize_with_stats(d.cdfg(), PortMode::Unidirectional, &cfg);
        let ic = ic.unwrap();
        assert!(ic.verify(d.cdfg()).is_empty());
        let winner = stats.winner.expect("a winner");
        let min_cost = stats
            .workers
            .iter()
            .filter_map(|w| w.cost)
            .min()
            .expect("successes");
        let expected = stats
            .workers
            .iter()
            .filter(|w| w.cost == Some(min_cost))
            .map(|w| w.index)
            .min()
            .unwrap();
        assert_eq!(winner, expected);
    }

    #[test]
    fn search_events_are_deterministic_across_threads() {
        use mcs_obs::{BufferingRecorder, RecorderHandle};
        use std::sync::Arc;
        let d = ar_filter::general(3, PortMode::Unidirectional);
        let run = |workers: usize| {
            let buf = Arc::new(BufferingRecorder::new());
            let cfg = SearchConfig::new(3)
                .with_portfolio(4)
                .with_workers(workers)
                .with_recorder(RecorderHandle::new(buf.clone()));
            let _ = synthesize_with_stats(d.cdfg(), PortMode::Unidirectional, &cfg);
            buf.events()
        };
        let reference = run(1);
        assert!(
            !reference.is_empty(),
            "the search must emit SearchNode events"
        );
        for workers in [2usize, 8] {
            assert_eq!(run(workers), reference, "workers={workers}");
        }
    }

    #[test]
    fn ordered_ops_are_permutations_of_io_ops() {
        let d = elliptic::partitioned();
        let mut reference: Vec<OpId> = d.cdfg().io_ops().collect();
        reference.sort();
        for order in [
            OpOrder::WidthDesc,
            OpOrder::WidthAsc,
            OpOrder::PairGrouped,
            OpOrder::ValueGrouped,
            OpOrder::ProbeSeeded,
        ] {
            let mut ops = ordered_ops(d.cdfg(), order, 6);
            ops.sort();
            assert_eq!(ops, reference, "{order:?}");
        }
    }

    #[test]
    fn probe_seeding_is_opt_in_and_preserves_feasibility() {
        let d = mcs_cdfg::designs::synthetic::portfolio_adversarial(6);
        // Off by default: no plan carries the probe-seeded order.
        let base = SearchConfig::new(2).with_portfolio(4);
        assert!(portfolio_plans(&base)
            .iter()
            .all(|p| p.order != OpOrder::ProbeSeeded));
        let (reference, _) = synthesize_with_stats(d.cdfg(), PortMode::Unidirectional, &base);
        // Opted in: exactly one diversified slot per menu cycle swaps to
        // the checker-ranked order, plan 0 stays classic, and the search
        // still connects.
        let cfg = base.clone().with_probe_seeding();
        let plans = portfolio_plans(&cfg);
        assert_eq!(plans[0].order, OpOrder::WidthDesc);
        assert_eq!(plans[1].order, OpOrder::ProbeSeeded);
        let (got, stats) = synthesize_with_stats(d.cdfg(), PortMode::Unidirectional, &cfg);
        let ic = got.unwrap();
        assert!(ic.verify(d.cdfg()).is_empty());
        assert!(stats
            .workers
            .iter()
            .any(|w| w.config.contains("probe-seeded")));
        // The classic plan still ran, so feasibility can never regress.
        assert_eq!(
            reference.unwrap().buses.len(),
            ic.buses.len(),
            "probe seeding may steer the winner but not the bus count here"
        );
    }

    #[test]
    fn probe_seeded_order_puts_pressured_ops_first() {
        let d = mcs_cdfg::designs::ar_filter::simple();
        let ops = ordered_ops(d.cdfg(), OpOrder::ProbeSeeded, 2);
        let mut checker = PinChecker::new(d.cdfg(), 2).unwrap();
        let slate: Vec<(OpId, i64)> = ops
            .iter()
            .flat_map(|&op| (0..2i64).map(move |g| (op, g)))
            .collect();
        let verdicts = checker.probe_candidates(&slate);
        let pressure: Vec<u32> = ops
            .iter()
            .enumerate()
            .map(|(i, _)| (0..2).map(|g| u32::from(verdicts[i * 2 + g])).sum())
            .collect();
        assert!(
            pressure.windows(2).all(|w| w[0] <= w[1]),
            "feasible-group counts must be non-decreasing: {pressure:?}"
        );
    }

    #[test]
    fn seeded_certs_prune_a_rerun_without_losing_feasibility() {
        let d = mcs_cdfg::designs::synthetic::portfolio_adversarial(6);
        let cfg = SearchConfig::new(2).with_portfolio(4);
        let (base, base_stats, learned) =
            synthesize_seeded(d.cdfg(), PortMode::Unidirectional, &cfg, &[]);
        assert!(base.is_ok());
        assert_eq!(base_stats.seed_hits, 0, "nothing was seeded");
        assert!(
            !learned.is_empty(),
            "the adversarial design must backtrack and stage proofs"
        );
        let (seeded, stats, _) =
            synthesize_seeded(d.cdfg(), PortMode::Unidirectional, &cfg, &learned);
        // Seeds only skip provably empty subtrees: feasibility holds.
        assert!(seeded.is_ok());
        assert!(stats.seed_hits > 0, "seeded proofs must answer probes");
        assert!(stats.seed_hits <= stats.cache_hits);
    }

    #[test]
    fn tripped_budget_interrupts_at_a_barrier_with_partial_progress() {
        use mcs_ctl::{Budget, BudgetSpec};
        let d = mcs_cdfg::designs::synthetic::portfolio_adversarial(6);
        let mut cfg = SearchConfig::new(2)
            .with_portfolio(4)
            .with_budget(Budget::new(BudgetSpec::default().max_nodes(1)));
        // Barriers must arrive before any worker can finish (a success
        // at the barrier would rightly outrank the ceiling).
        cfg.epoch_nodes = 16;
        let (result, stats, _) = synthesize_seeded(d.cdfg(), PortMode::Unidirectional, &cfg, &[]);
        assert_eq!(
            result.unwrap_err(),
            ConnectError::Interrupted(Termination::BudgetExhausted)
        );
        assert_eq!(stats.termination, Termination::BudgetExhausted);
        // The anytime partial: some operations were assigned before the
        // first barrier, onto at least one bus.
        assert!(stats.deepest > 0);
        assert!(stats.deepest <= d.cdfg().io_ops().count() as u64);
        assert!(stats.deepest_buses > 0);
    }

    #[test]
    fn cancellation_is_observed_at_the_next_barrier() {
        use mcs_ctl::Budget;
        let d = mcs_cdfg::designs::synthetic::portfolio_adversarial(6);
        let budget = Budget::unlimited();
        budget.cancel_token().cancel();
        let mut cfg = SearchConfig::new(2).with_portfolio(4).with_budget(budget);
        // No worker can finish 30+ operations in an 8-node epoch, so the
        // first barrier observes the cancellation.
        cfg.epoch_nodes = 8;
        let (result, stats, _) = synthesize_seeded(d.cdfg(), PortMode::Unidirectional, &cfg, &[]);
        assert_eq!(
            result.unwrap_err(),
            ConnectError::Interrupted(Termination::Cancelled)
        );
        assert_eq!(stats.epochs, 1, "cancellation lands at the first barrier");
    }

    #[test]
    fn budget_interruption_point_is_independent_of_thread_count() {
        use mcs_ctl::{Budget, BudgetSpec};
        let d = mcs_cdfg::designs::synthetic::portfolio_adversarial(6);
        let run = |workers: usize| {
            let mut cfg = SearchConfig::new(2)
                .with_portfolio(4)
                .with_workers(workers)
                .with_budget(Budget::new(BudgetSpec::default().max_nodes(300)));
            cfg.epoch_nodes = 32;
            let (result, stats, learned) =
                synthesize_seeded(d.cdfg(), PortMode::Unidirectional, &cfg, &[]);
            (result, stats.epochs, stats.nodes, stats.deepest, learned)
        };
        let reference = run(1);
        for workers in [2usize, 4] {
            assert_eq!(run(workers), reference, "workers={workers}");
        }
    }

    #[test]
    fn natural_finish_in_the_tripping_epoch_still_completes() {
        use mcs_ctl::{Budget, BudgetSpec};
        // The whole search finishes inside epoch 1; a node ceiling of 1
        // would trip at the barrier, but success is checked first, so
        // the run reports its natural verdict.
        let d = mcs_cdfg::designs::synthetic::quickstart();
        let cfg = SearchConfig::new(1)
            .with_portfolio(2)
            .with_budget(Budget::new(BudgetSpec::default().max_nodes(1)));
        let (result, stats, _) = synthesize_seeded(d.cdfg(), PortMode::Unidirectional, &cfg, &[]);
        assert!(result.is_ok());
        assert_eq!(stats.termination, Termination::Complete);
    }

    #[test]
    fn metrics_record_epochs_and_seed_hits() {
        use mcs_metrics::Registry;
        use std::sync::Arc;
        let d = mcs_cdfg::designs::synthetic::portfolio_adversarial(6);
        let cfg = SearchConfig::new(2).with_portfolio(4);
        let (_, _, learned) = synthesize_seeded(d.cdfg(), PortMode::Unidirectional, &cfg, &[]);
        let reg = Arc::new(Registry::new());
        let cfg = cfg.with_metrics(MetricsHandle::new(reg.clone()));
        let (result, stats, _) =
            synthesize_seeded(d.cdfg(), PortMode::Unidirectional, &cfg, &learned);
        assert!(result.is_ok());
        let snap = reg.snapshot();
        assert_eq!(snap.counters["connect.nodes"], stats.nodes);
        assert_eq!(snap.counters["connect.seed_hits"], stats.seed_hits);
        assert!(stats.seed_hits > 0, "seeded proofs must answer probes");
        // One epoch-timing observation per live (worker, epoch) pair:
        // at least one per epoch, at most workers-per-epoch.
        let h = &snap.histograms["connect.epoch_us"];
        assert!(h.count >= stats.epochs as u64);
        assert!(h.count <= (stats.epochs * stats.workers.len()) as u64);
        assert_eq!(
            snap.gauges["connect.cache_entries"],
            stats.cache_entries as i64
        );
    }

    #[test]
    fn refutation_certs_round_trip_their_strength() {
        for (order, tie_high, bf) in [
            (OpOrder::WidthDesc, false, 3),
            (OpOrder::PairGrouped, true, 1),
        ] {
            let cert = RefutationCert {
                key: vec![1, 2, 3],
                order,
                tie_high,
                branching_factor: bf,
            };
            let back = RefutationCert::from_parts(cert.key.clone(), cert.strength());
            assert_eq!(back, cert);
        }
    }

    #[test]
    fn cache_strength_domination_is_prefix_safe() {
        let a = Strength {
            order: OpOrder::WidthDesc,
            family: CandidateFamily::of(CandidateOrder::GainDesc),
            branching_factor: 4,
        };
        let b = Strength {
            branching_factor: 2,
            ..a
        };
        assert!(a.dominates(&b));
        assert!(!b.dominates(&a));
        // FreshFirst proves the same candidate sets as GainDesc...
        let c = Strength {
            family: CandidateFamily::of(CandidateOrder::FreshFirst),
            ..a
        };
        assert!(a.dominates(&c));
        // ...but the reversed tie-break deduplicates differently.
        let d = Strength {
            family: CandidateFamily::of(CandidateOrder::GainDescBusRev),
            ..a
        };
        assert!(!a.dominates(&d));
        let e = Strength {
            order: OpOrder::PairGrouped,
            ..a
        };
        assert!(!a.dominates(&e));
    }
}
