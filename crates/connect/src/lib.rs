//! # mcs-connect
//!
//! Interchip connection synthesis *before* scheduling: Chapter 4 of the
//! paper (unidirectional and bidirectional I/O ports) and Chapter 6
//! (sub-bus sharing — several values on one bus in a single cycle).
//!
//! * [`model`] — buses, ports, sub-buses, assignments ([`Interconnect`]).
//! * [`bounds`] — the port/bus upper-bound estimation of Section 4.1.1.
//! * [`search`] — the branching heuristic of Figure 4.3 with the gain
//!   function `10000*g1 + 100*g2 + g3`, extended per Sections 4.3 and
//!   6.1.2.
//! * [`ilp_model`] — the exact ILP formulations (Constraints 4.1–4.6 and
//!   6.1–6.10) used to verify the heuristic on small designs.
//!
//! ```
//! use mcs_cdfg::{designs::ar_filter, PortMode};
//! use mcs_connect::{synthesize, SearchConfig};
//!
//! # fn main() -> Result<(), mcs_connect::ConnectError> {
//! let design = ar_filter::general(3, PortMode::Unidirectional);
//! let ic = synthesize(design.cdfg(), PortMode::Unidirectional, &SearchConfig::new(3))?;
//! assert!(ic.verify(design.cdfg()).is_empty());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod dot;
pub mod ilp_model;
pub mod model;
pub mod portfolio;
pub mod search;

pub use bounds::bus_upper_bound;
pub use model::{Bus, BusAssignment, Interconnect, SubRange};
pub use portfolio::{
    portfolio_plans, synthesize_seeded, synthesize_with_stats, CandidateOrder, OpOrder,
    RefutationCert, SearchStats, WorkerOutcome, WorkerPlan, WorkerReport,
};
pub use search::{share_pass, synthesize, ConnectError, SearchConfig};
