//! # mcs-conditional
//!
//! Conditional I/O resource sharing (Section 7.2 of the paper).
//!
//! When a conditional block spans chips, the I/O operations of mutually
//! exclusive branches never execute in the same instance and may share
//! pins and a communication slot. Before interchip-connection synthesis,
//! the combining heuristic of Figure 7.7 groups such transfers:
//!
//! * a compatibility-graph node is a set of mutually exclusive transfers
//!   with a common *time frame* (they must be schedulable in the same
//!   control step to share a slot) and a *bus connection structure* (the
//!   minimum port widths a shared bus needs);
//! * the basic edge weight is `gain - pf * penalty`: pins shared minus the
//!   scheduling freedom lost by intersecting frames;
//! * the modified weight subtracts the best combinations a merge would
//!   exclude (first-order exclusion, weighted by the user factor `f`);
//! * nodes combine greedily by the highest modified weight until no edges
//!   remain.
//!
//! The resulting sharing sets are handed to connection synthesis, which
//! treats each set like transfers of one value (they may ride one bus
//! slot).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;

use mcs_cdfg::{timing, Cdfg, OpId, PartitionId};

/// Tuning of the combining heuristic.
#[derive(Clone, Debug)]
pub struct CondShareConfig {
    /// Global time constraint used for the ASAP/ALAP time frames.
    pub deadline_steps: i64,
    /// Weight of the freedom-loss penalty (`pf` in Section 7.2).
    pub penalty_factor: f64,
    /// Partial weight of possibly-excluded combinations (`f` in
    /// Section 7.2, between 0 and 1).
    pub exclusion_factor: f64,
}

impl CondShareConfig {
    /// Defaults: `pf = 1`, `f = 1/2`.
    pub fn new(deadline_steps: i64) -> Self {
        CondShareConfig {
            deadline_steps,
            penalty_factor: 1.0,
            exclusion_factor: 0.5,
        }
    }
}

/// A set of mutually exclusive I/O operations chosen to share one
/// communication slot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SharingSet {
    /// The member transfers.
    pub ops: Vec<OpId>,
    /// The common time frame (inclusive step range).
    pub frame: (i64, i64),
    /// Pins saved relative to giving each member its own ports.
    pub saved_pins: u32,
}

#[derive(Clone, Debug)]
struct Node {
    ops: Vec<OpId>,
    frame: (i64, i64),
    /// `(out, in)` width the shared bus needs per partition.
    need: BTreeMap<PartitionId, (u32, u32)>,
}

impl Node {
    fn compatible(&self, other: &Node, cdfg: &Cdfg) -> bool {
        let frame_ok = self.frame.0.max(other.frame.0) <= self.frame.1.min(other.frame.1);
        frame_ok
            && self.ops.iter().all(|&a| {
                other.ops.iter().all(|&b| {
                    cdfg.op(a)
                        .condition
                        .mutually_exclusive(&cdfg.op(b).condition)
                })
            })
    }

    /// Pins shared when merging (`gain(e)` of Section 7.2).
    fn gain(&self, other: &Node) -> i64 {
        let mut g = 0i64;
        for (p, &(o1, i1)) in &self.need {
            if let Some(&(o2, i2)) = other.need.get(p) {
                g += o1.min(o2) as i64 + i1.min(i2) as i64;
            }
        }
        g
    }

    /// Fraction of scheduling freedom lost (`penalty(e)`).
    fn penalty(&self, other: &Node) -> f64 {
        let union = (self.frame.1.max(other.frame.1) - self.frame.0.min(other.frame.0) + 1) as f64;
        let inter = (self.frame.1.min(other.frame.1) - self.frame.0.max(other.frame.0) + 1) as f64;
        union / inter - 1.0
    }
}

/// Runs the Figure 7.7 combining heuristic over the conditional I/O
/// operations of `cdfg`. Unconditional transfers never join a set; sets
/// with a single member are omitted.
pub fn conditional_sharing_sets(cdfg: &Cdfg, cfg: &CondShareConfig) -> Vec<SharingSet> {
    let frames = match timing::step_frames(cdfg, cfg.deadline_steps) {
        Ok(f) => f,
        Err(_) => return Vec::new(),
    };
    let mut nodes: Vec<Node> = cdfg
        .io_ops()
        .filter(|&op| !cdfg.op(op).condition.is_always())
        .map(|op| {
            let (_, from, to) = cdfg.op(op).io_endpoints().expect("io op");
            let bits = cdfg.io_bits(op);
            let mut need = BTreeMap::new();
            need.insert(from, (bits, 0));
            let e: &mut (u32, u32) = need.entry(to).or_insert((0, 0));
            e.1 = e.1.max(bits);
            Node {
                ops: vec![op],
                frame: (
                    frames[op.index()].0,
                    frames[op.index()].1.max(frames[op.index()].0),
                ),
                need,
            }
        })
        .collect();

    loop {
        let n = nodes.len();
        // Basic weights for every compatible pair.
        let mut basic: BTreeMap<(usize, usize), f64> = BTreeMap::new();
        for i in 0..n {
            for j in (i + 1)..n {
                if nodes[i].compatible(&nodes[j], cdfg) {
                    let w = nodes[i].gain(&nodes[j]) as f64
                        - cfg.penalty_factor * nodes[i].penalty(&nodes[j]);
                    basic.insert((i, j), w);
                }
            }
        }
        if basic.is_empty() {
            break;
        }
        // Modified weights: subtract the best combinations this merge
        // would exclude (edges from i or j to nodes not adjacent to the
        // other endpoint).
        let adjacent = |a: usize, b: usize| -> bool { basic.contains_key(&(a.min(b), a.max(b))) };
        let mut best: Option<(f64, usize, usize)> = None;
        for (&(i, j), &w) in &basic {
            let excluded = |from: usize, other: usize| -> f64 {
                (0..n)
                    .filter(|&v| v != i && v != j && adjacent(from, v) && !adjacent(other, v))
                    .map(|v| basic[&(from.min(v), from.max(v))])
                    .fold(f64::MIN, f64::max)
            };
            let e1 = excluded(i, j);
            let e2 = excluded(j, i);
            let correction = match (e1 > f64::MIN, e2 > f64::MIN) {
                (false, false) => 0.0,
                (true, false) => e1,
                (false, true) => e2,
                (true, true) => e1.max(e2) + cfg.exclusion_factor * e1.min(e2),
            };
            let w2 = w - correction;
            let better = match &best {
                None => true,
                Some((bw, bi, bj)) => {
                    w2 > *bw + 1e-9 || ((w2 - *bw).abs() <= 1e-9 && (i, j) < (*bi, *bj))
                }
            };
            if better {
                best = Some((w2, i, j));
            }
        }
        let (_, i, j) = best.expect("nonempty edge set");
        // Combine j into i.
        let other = nodes.remove(j);
        let node = &mut nodes[i];
        node.ops.extend(other.ops);
        node.frame = (
            node.frame.0.max(other.frame.0),
            node.frame.1.min(other.frame.1),
        );
        for (p, (o, iw)) in other.need {
            let e = node.need.entry(p).or_insert((0, 0));
            e.0 = e.0.max(o);
            e.1 = e.1.max(iw);
        }
    }

    nodes
        .into_iter()
        .filter(|nd| nd.ops.len() > 1)
        .map(|nd| {
            // Pins saved = separate ports minus shared ports.
            let mut separate = 0u32;
            for &op in &nd.ops {
                separate += 2 * cdfg.io_bits(op);
            }
            let shared: u32 = nd.need.values().map(|&(o, i)| o + i).sum();
            let mut ops = nd.ops;
            ops.sort();
            SharingSet {
                ops,
                frame: nd.frame,
                saved_pins: separate.saturating_sub(shared),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcs_cdfg::designs::synthetic;

    #[test]
    fn then_and_else_transfers_combine() {
        let (d, _) = synthetic::conditional_example();
        let sets = conditional_sharing_sets(d.cdfg(), &CondShareConfig::new(8));
        assert_eq!(sets.len(), 1);
        let names: Vec<&str> = sets[0]
            .ops
            .iter()
            .map(|&op| d.cdfg().op(op).name.as_str())
            .collect();
        assert_eq!(names, vec!["Vt", "Vf"]);
        // Two 16-bit transfers between the same chips share both ports.
        assert_eq!(sets[0].saved_pins, 32);
    }

    #[test]
    fn unconditional_transfers_never_join() {
        let (d, _) = synthetic::conditional_example();
        let sets = conditional_sharing_sets(d.cdfg(), &CondShareConfig::new(8));
        let vu = d.op_named("Vu");
        assert!(sets.iter().all(|s| !s.ops.contains(&vu)));
    }

    #[test]
    fn sharing_sets_keep_valid_frames() {
        let (d, _) = synthetic::conditional_example();
        let sets = conditional_sharing_sets(d.cdfg(), &CondShareConfig::new(4));
        for s in &sets {
            assert!(s.frame.0 <= s.frame.1, "sharing sets keep a valid frame");
        }
    }

    #[test]
    fn penalty_discourages_freedom_loss() {
        let (d, _) = synthetic::conditional_example();
        let none = conditional_sharing_sets(
            d.cdfg(),
            &CondShareConfig {
                deadline_steps: 8,
                penalty_factor: 0.0,
                exclusion_factor: 0.5,
            },
        );
        let heavy = conditional_sharing_sets(
            d.cdfg(),
            &CondShareConfig {
                deadline_steps: 8,
                penalty_factor: 1000.0,
                exclusion_factor: 0.5,
            },
        );
        // The gain (32 pins) dominates at pf=0; a huge penalty can only
        // shrink or keep the sharing sets.
        assert!(heavy.len() <= none.len());
    }

    #[test]
    fn plain_designs_yield_no_sets() {
        let d = synthetic::quickstart();
        assert!(conditional_sharing_sets(d.cdfg(), &CondShareConfig::new(8)).is_empty());
    }

    #[test]
    fn sharing_sets_contain_only_pairwise_exclusive_ops() {
        let (d, _) = synthetic::conditional_example();
        let sets = conditional_sharing_sets(d.cdfg(), &CondShareConfig::new(8));
        assert!(!sets.is_empty());
        for set in &sets {
            for (i, &a) in set.ops.iter().enumerate() {
                for &b in &set.ops[i + 1..] {
                    assert!(
                        d.cdfg()
                            .op(a)
                            .condition
                            .mutually_exclusive(&d.cdfg().op(b).condition),
                        "{a} and {b} can execute together yet share a slot"
                    );
                }
            }
            assert!(set.frame.0 <= set.frame.1, "frames stay non-empty");
            assert!(set.saved_pins > 0, "sets exist only when pins are saved");
            assert!(set.ops.len() >= 2, "singletons are omitted");
        }
    }

    #[test]
    fn tighter_deadlines_cannot_grow_the_sets() {
        // Shrinking every time frame only removes merge opportunities.
        let (d, _) = synthetic::conditional_example();
        let saved = |deadline: i64| -> u32 {
            conditional_sharing_sets(d.cdfg(), &CondShareConfig::new(deadline))
                .iter()
                .map(|s| s.saved_pins)
                .sum()
        };
        let loose = saved(12);
        let tight = saved(4);
        assert!(tight <= loose, "tight {tight} > loose {loose}");
    }
}
