//! Measures the pins the connection search needs on the elliptic filter
//! across rates and port modes — the tool used to derive the pin budgets
//! in `mcs_cdfg::designs::elliptic` (see DESIGN.md, "Substitutions").
fn main() {
    use mcs_cdfg::{designs::elliptic, PartitionId, PortMode};
    use mcs_connect::{synthesize, SearchConfig};
    for mode in [PortMode::Unidirectional, PortMode::Bidirectional] {
        for rate in [5u32, 6, 7] {
            let d = elliptic::partitioned_with(rate, mode);
            match synthesize(d.cdfg(), mode, &SearchConfig::new(rate)) {
                Ok(ic) => {
                    let pins: Vec<u32> =
                        (0..6).map(|p| ic.pins_used(PartitionId::new(p))).collect();
                    println!("{mode:?} L={rate}: pins {pins:?} buses {}", ic.buses.len());
                }
                Err(e) => println!("{mode:?} L={rate}: FAILED {e}"),
            }
        }
    }
}
