//! Macrobenchmark of the design-space exploration driver: the elliptic
//! sweep of the `bench_explore` binary, pruned vs exhaustive and at one
//! vs two workers, so driver overhead and pruning savings are visible
//! separately.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcs_cdfg::designs::elliptic;
use mcs_explore::{FlowVariant, SweepOptions, SweepSpec};
use mcs_obs::RecorderHandle;
use multichip_hls::explore::run_sweep;

fn spec() -> SweepSpec {
    SweepSpec {
        design: "elliptic".into(),
        flow: FlowVariant::ConnectFirst,
        rates: (4..=8).collect(),
        budgets: vec![
            vec![48, 48, 64, 48, 48],
            vec![32, 48, 64, 48, 48],
            vec![24, 32, 48, 32, 32],
            vec![16, 16, 16, 16, 16],
        ],
    }
}

fn bench(c: &mut Criterion) {
    let design = elliptic::partitioned();
    let spec = spec();
    let mut g = c.benchmark_group("sweep");
    g.sample_size(10);
    for (label, jobs, prune) in [
        ("pruned-1", 1, true),
        ("pruned-2", 2, true),
        ("exhaustive-1", 1, false),
    ] {
        let opts = SweepOptions {
            jobs,
            prune,
            ..SweepOptions::default()
        };
        g.bench_function(BenchmarkId::new("elliptic", label), |b| {
            b.iter(|| {
                run_sweep(design.cdfg(), &spec, &opts, &RecorderHandle::default())
                    .expect("well-formed spec")
                    .stats
                    .run
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
