//! Benchmarks the Chapter 3 flow (E3.1): simple-partition AR filter at
//! initiation rate 2 under the Gomory-backed pin feasibility checker.

use criterion::{criterion_group, criterion_main, Criterion};
use mcs_cdfg::designs::ar_filter;
use mcs_pinalloc::PinChecker;
use multichip_hls::flows::simple_flow;

fn bench(c: &mut Criterion) {
    let design = ar_filter::simple();
    let mut g = c.benchmark_group("ch3");
    g.sample_size(20);
    g.bench_function("e3_1_simple_flow_L2", |b| {
        b.iter(|| simple_flow(design.cdfg(), 2).expect("chapter 3 flow"))
    });
    g.bench_function("pin_checker_build_L2", |b| {
        b.iter(|| PinChecker::new(design.cdfg(), 2).expect("feasible"))
    });
    g.bench_function("pin_checker_probe", |b| {
        let mut checker = PinChecker::new(design.cdfg(), 2).expect("feasible");
        let op = design.op_named("I1");
        b.iter(|| checker.can_commit(op, 0))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
