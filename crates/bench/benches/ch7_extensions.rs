//! Benchmarks the Chapter 7 extensions (E7.1-E7.4): conditional sharing,
//! allocation wheels and the recursive-edge/TDM demonstrations.

use criterion::{criterion_group, criterion_main, Criterion};
use mcs_bench::{e7_conditional, e7_recursive, e7_tdm, e7_wheel};
use mcs_cdfg::designs::synthetic;
use mcs_conditional::{conditional_sharing_sets, CondShareConfig};
use mcs_sched::AllocationWheel;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ch7");
    g.sample_size(20);
    let (design, _) = synthetic::conditional_example();
    g.bench_function("e7_conditional_sharing_heuristic", |b| {
        b.iter(|| conditional_sharing_sets(design.cdfg(), &CondShareConfig::new(8)))
    });
    g.bench_function("e7_allocation_wheel_safety", |b| {
        b.iter(|| {
            let mut w = AllocationWheel::new(2, 7, 2).expect("positive rate and cycles");
            for s in [0i64, 2, 4, 1, 3] {
                let _ = w.is_safe(s, 3);
                let _ = w.place(s);
            }
            w.remaining_capacity()
        })
    });
    g.bench_function("e7_reports", |b| {
        b.iter(|| {
            (
                e7_recursive().len(),
                e7_conditional().len(),
                e7_wheel().len(),
                e7_tdm().len(),
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
