//! Benchmarks the parallel portfolio connection search against the
//! classic single-configuration search on the adversarial fan-in design:
//! the classic width-descending plan burns through >100k nodes of
//! backtracking before it untangles its greedy cross-sender bus merges,
//! while the portfolio's pair-grouped plan finds the structure greedily
//! in the first epoch.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcs_cdfg::{designs::synthetic, PortMode};
use mcs_connect::{synthesize_with_stats, SearchConfig};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("portfolio");
    g.sample_size(10);
    let d = synthetic::portfolio_adversarial(6);
    for workers in [1usize, 8] {
        g.bench_with_input(
            BenchmarkId::new("adversarial_search", workers),
            &workers,
            |b, &workers| {
                let cfg = SearchConfig::new(2).with_workers(workers);
                b.iter(|| {
                    let (ic, stats) =
                        synthesize_with_stats(d.cdfg(), PortMode::Unidirectional, &cfg);
                    ic.expect("both configurations eventually connect");
                    stats.nodes
                })
            },
        );
    }
    // The portfolio's overhead on an easy design: the elliptic filter
    // connects in a handful of nodes under every plan.
    let e = mcs_cdfg::designs::elliptic::partitioned();
    for workers in [1usize, 8] {
        g.bench_with_input(
            BenchmarkId::new("elliptic_search", workers),
            &workers,
            |b, &workers| {
                let cfg = SearchConfig::new(6).with_workers(workers);
                b.iter(|| {
                    synthesize_with_stats(e.cdfg(), PortMode::Unidirectional, &cfg)
                        .0
                        .expect("connects")
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
