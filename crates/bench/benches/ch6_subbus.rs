//! Benchmarks the Chapter 6 experiments (E6.1/E6.2): sub-bus sharing on
//! the bidirectional AR filter.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcs_cdfg::{designs, PortMode};
use mcs_connect::{share_pass, synthesize, SearchConfig};
use multichip_hls::flows::{connect_first_flow, ConnectFirstOptions};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ch6");
    g.sample_size(10);
    for rate in [3u32, 4, 5] {
        let d = designs::ar_filter::general(rate, PortMode::Bidirectional);
        g.bench_with_input(
            BenchmarkId::new("e6_share_pass", rate),
            &rate,
            |b, &rate| {
                let ic = synthesize(d.cdfg(), PortMode::Bidirectional, &SearchConfig::new(rate))
                    .expect("connects");
                b.iter(|| {
                    let mut shared = ic.clone();
                    share_pass(d.cdfg(), &mut shared, rate);
                    shared
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("e6_sharing_flow", rate),
            &rate,
            |b, &rate| {
                let mut opts = ConnectFirstOptions::new(rate);
                opts.mode = PortMode::Bidirectional;
                opts.sharing = true;
                b.iter(|| connect_first_flow(d.cdfg(), &opts).expect("flow"))
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
