//! Benchmarks the Chapter 4 experiments (E4.1-E4.6): connection-first
//! synthesis of the AR and elliptic filters across rates and port modes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcs_cdfg::{designs, PortMode};
use mcs_connect::{synthesize, SearchConfig};
use multichip_hls::flows::{connect_first_flow, ConnectFirstOptions};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ch4");
    g.sample_size(10);
    for rate in [3u32, 4, 5] {
        let d = designs::ar_filter::general(rate, PortMode::Unidirectional);
        g.bench_with_input(
            BenchmarkId::new("e4_ar_connect_search", rate),
            &rate,
            |b, &rate| {
                b.iter(|| {
                    synthesize(d.cdfg(), PortMode::Unidirectional, &SearchConfig::new(rate))
                        .expect("connects")
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("e4_ar_full_flow", rate),
            &rate,
            |b, &rate| {
                b.iter(|| {
                    connect_first_flow(d.cdfg(), &ConnectFirstOptions::new(rate)).expect("flow")
                })
            },
        );
    }
    for rate in [6u32, 7] {
        let d = designs::elliptic::partitioned_with(rate, PortMode::Bidirectional);
        g.bench_with_input(
            BenchmarkId::new("e4_ewf_full_flow_bidir", rate),
            &rate,
            |b, &rate| {
                let mut opts = ConnectFirstOptions::new(rate);
                opts.mode = PortMode::Bidirectional;
                b.iter(|| connect_first_flow(d.cdfg(), &opts).expect("flow"))
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
