//! Ablation benchmarks for the engineered design choices DESIGN.md calls
//! out: the connection search's branching factor, the Chapter 6 sharing
//! pass, dynamic bus reassignment versus static allocation, and the
//! cycle-accurate simulator's throughput. Quality-vs-knob numbers (pins,
//! pipe length) come from `cargo run -p mcs-bench --bin ablations`; these
//! measure cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcs_cdfg::{designs, PortMode};
use mcs_connect::{synthesize, SearchConfig};
use mcs_sched::{list_schedule, BusPolicy, ListConfig};
use mcs_sim::{simulate, Semantics, Stimulus};
use multichip_hls::flows::{connect_first_flow, ConnectFirstOptions};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);

    // Branching factor: wider exploration per node costs time.
    let d6 = designs::elliptic::partitioned_with(6, PortMode::Unidirectional);
    for bf in [1usize, 3, 6] {
        g.bench_with_input(BenchmarkId::new("branching_factor", bf), &bf, |b, &bf| {
            let mut cfg = SearchConfig::new(6);
            cfg.branching_factor = bf;
            b.iter(|| synthesize(d6.cdfg(), PortMode::Unidirectional, &cfg).expect("connects"))
        });
    }

    // Sub-bus sharing on/off (Chapter 6).
    for sharing in [false, true] {
        g.bench_with_input(
            BenchmarkId::new("sharing_pass", sharing),
            &sharing,
            |b, &sharing| {
                let mut cfg = SearchConfig::new(6);
                cfg.allow_split = sharing;
                b.iter(|| synthesize(d6.cdfg(), PortMode::Unidirectional, &cfg).expect("connects"))
            },
        );
    }

    // Dynamic reassignment vs static allocation during scheduling.
    let ar = designs::ar_filter::general(3, PortMode::Unidirectional);
    let ic =
        synthesize(ar.cdfg(), PortMode::Unidirectional, &SearchConfig::new(3)).expect("connects");
    for reassign in [false, true] {
        g.bench_with_input(
            BenchmarkId::new("bus_reassignment", reassign),
            &reassign,
            |b, &reassign| {
                b.iter(|| {
                    let mut policy = BusPolicy::new(ic.clone(), 3, reassign);
                    list_schedule(ar.cdfg(), &ListConfig::new(3), &mut policy).expect("schedules")
                })
            },
        );
    }

    // Simulator throughput: firings per second across instance counts.
    let r = connect_first_flow(d6.cdfg(), &ConnectFirstOptions::new(6)).expect("flow");
    let ic6 = r.final_interconnect();
    let sem = Semantics::new();
    for instances in [8u32, 64, 256] {
        let stim = Stimulus::random(d6.cdfg(), instances, 1);
        g.bench_with_input(
            BenchmarkId::new("simulate_instances", instances),
            &instances,
            |b, _| {
                b.iter(|| {
                    let rep = simulate(d6.cdfg(), &r.schedule, Some(&ic6), &sem, &stim);
                    assert!(rep.clean());
                    rep.fired
                })
            },
        );
    }

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
