//! Measures what the observability layer costs the pipeline: the
//! connect-first flow on the AR filter with (a) no recorder (the default
//! inactive handle — one dead branch per instrumentation site), (b) a
//! buffering recorder capturing the full event stream, and (c) the raw
//! baseline through the untraced entry point. The design target is that
//! (a) is indistinguishable from (c) and (b) stays within a few percent.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcs_cdfg::{designs::ar_filter, PortMode};
use multichip_hls::flows::{connect_first_flow, connect_first_flow_traced, ConnectFirstOptions};
use multichip_hls::obs::{BufferingRecorder, RecorderHandle};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs_overhead");
    g.sample_size(20);
    let rate = 3;
    let d = ar_filter::general(rate, PortMode::Unidirectional);
    let opts = ConnectFirstOptions::new(rate);

    g.bench_function(BenchmarkId::new("connect_first", "untraced"), |b| {
        b.iter(|| connect_first_flow(d.cdfg(), &opts).expect("flow succeeds"))
    });
    g.bench_function(BenchmarkId::new("connect_first", "null_recorder"), |b| {
        let rec = RecorderHandle::default();
        b.iter(|| connect_first_flow_traced(d.cdfg(), &opts, &rec).expect("flow succeeds"))
    });
    g.bench_function(BenchmarkId::new("connect_first", "buffering"), |b| {
        b.iter(|| {
            let buf = Arc::new(BufferingRecorder::new());
            let rec = RecorderHandle::new(buf.clone());
            let r = connect_first_flow_traced(d.cdfg(), &opts, &rec).expect("flow succeeds");
            assert!(!buf.events().is_empty());
            r
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
