//! Measures what the metrics registry costs the pipeline: the
//! connect-first flow on the AR filter with (a) the default disconnected
//! handle — one dead `Option` branch per instrumentation site, (b) a
//! live registry aggregating counters, histograms and the span profile,
//! and (c) the raw baseline through options that never carried a handle.
//! The design target is that (a) is indistinguishable from (c) — the
//! cached-off fast path — and (b) stays within a few percent. Same
//! methodology as `obs_overhead`.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcs_cdfg::{designs::ar_filter, PortMode};
use multichip_hls::flows::{connect_first_flow, ConnectFirstOptions};
use multichip_hls::metrics::{MetricsHandle, Registry};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("metrics_overhead");
    g.sample_size(20);
    let rate = 3;
    let d = ar_filter::general(rate, PortMode::Unidirectional);
    let opts = ConnectFirstOptions::new(rate);

    g.bench_function(BenchmarkId::new("connect_first", "baseline"), |b| {
        b.iter(|| connect_first_flow(d.cdfg(), &opts).expect("flow succeeds"))
    });
    g.bench_function(BenchmarkId::new("connect_first", "disconnected"), |b| {
        let mut opts = ConnectFirstOptions::new(rate);
        opts.metrics = MetricsHandle::default();
        b.iter(|| connect_first_flow(d.cdfg(), &opts).expect("flow succeeds"))
    });
    g.bench_function(BenchmarkId::new("connect_first", "connected"), |b| {
        b.iter(|| {
            let reg = Arc::new(Registry::new());
            let mut opts = ConnectFirstOptions::new(rate);
            opts.metrics = MetricsHandle::new(reg.clone());
            let r = connect_first_flow(d.cdfg(), &opts).expect("flow succeeds");
            let snap = reg.snapshot();
            assert!(!snap.counters.is_empty());
            assert!(!snap.profile.is_empty());
            r
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
