//! Benchmarks the Chapter 5 experiments (E5.1-E5.4): force-directed
//! scheduling plus clique-partitioning connection synthesis.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcs_cdfg::{designs, PortMode};
use mcs_postsyn::{connect_after_scheduling, PostsynConfig};
use mcs_sched::{fds_schedule, FdsConfig};
use multichip_hls::flows::schedule_first_flow;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ch5");
    g.sample_size(10);
    for rate in [3u32, 4, 5] {
        let d = designs::ar_filter::general(rate, PortMode::Unidirectional);
        g.bench_with_input(BenchmarkId::new("e5_ar_fds", rate), &rate, |b, &rate| {
            b.iter(|| {
                fds_schedule(
                    d.cdfg(),
                    &FdsConfig {
                        rate,
                        pipe_length: 12,
                    },
                )
                .expect("fds")
            })
        });
        g.bench_with_input(
            BenchmarkId::new("e5_ar_full_flow", rate),
            &rate,
            |b, &rate| {
                b.iter(|| {
                    schedule_first_flow(d.cdfg(), rate, 12, PortMode::Unidirectional).expect("flow")
                })
            },
        );
    }
    {
        let rate = 6u32;
        let d = designs::elliptic::partitioned_with(rate, PortMode::Unidirectional);
        let s = fds_schedule(
            d.cdfg(),
            &FdsConfig {
                rate,
                pipe_length: 26,
            },
        )
        .expect("fds");
        g.bench_function("e5_ewf_clique_partitioning", |b| {
            b.iter(|| {
                connect_after_scheduling(
                    d.cdfg(),
                    &s,
                    PortMode::Unidirectional,
                    &PostsynConfig::new(rate),
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
