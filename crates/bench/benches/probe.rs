//! Microbenchmarks of the pin-feasibility probe engines: the trail-based
//! checkpoint/rollback path against the legacy clone-per-probe path, on
//! the Chapter 3 AR filter and the pin-tight portfolio-adversarial
//! fan-in design. The `bench_probe` binary measures the same sweeps with
//! allocation counting and a differential verdict gate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mcs_cdfg::designs::{ar_filter, synthetic, Design};
use mcs_cdfg::OpId;
use mcs_pinalloc::PinChecker;

fn bench_design(c: &mut Criterion, name: &str, design: &Design, rate: u32) {
    let cdfg = design.cdfg();
    let Ok(mut checker) = PinChecker::new(cdfg, rate) else {
        eprintln!("probe/{name}: infeasible at rate {rate}, skipped");
        return;
    };
    let ops: Vec<OpId> = cdfg.io_ops().collect();
    let mut g = c.benchmark_group("probe");
    g.sample_size(10);
    for (engine, via_clone) in [("trail", false), ("clone", true)] {
        g.bench_function(BenchmarkId::new(engine, name), |b| {
            b.iter(|| {
                let mut feasible = 0u32;
                for &op in &ops {
                    for k in 0..rate as i64 {
                        feasible += checker.probe_uncached(op, k, via_clone) as u32;
                    }
                }
                feasible
            })
        });
    }
    g.finish();
}

fn bench(c: &mut Criterion) {
    bench_design(c, "ch3_simple", &ar_filter::simple(), 2);
    bench_design(
        c,
        "portfolio_adversarial",
        &synthetic::portfolio_adversarial(6),
        2,
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
