//! # mcs-bench
//!
//! The experiment harness: one function per table/figure family of the
//! paper's evaluation (see `DESIGN.md`'s experiment index). The `tables`
//! binary prints them; the Criterion benches measure the synthesis run
//! time of the same experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compare;

use std::fmt::Write as _;

use mcs_cdfg::{designs, timing, PartitionId, PortMode};
use mcs_conditional::{conditional_sharing_sets, CondShareConfig};
use mcs_connect::{Bus, BusAssignment, Interconnect, SubRange};
use mcs_sched::{list_schedule, AllocationWheel, BusPolicy, ListConfig};
use multichip_hls::flows::{
    connect_first_flow, schedule_first_flow, simple_flow, ConnectFirstOptions, SynthesisResult,
};
use multichip_hls::report::{
    render_bus_allocation, render_bus_assignment, render_interconnect, render_schedule, Table,
};

/// All experiment ids, in presentation order.
pub const EXPERIMENTS: &[&str] = &[
    "e3_1",
    "e4_uni",
    "e4_uni_detail",
    "e4_bi",
    "e4_bi_detail",
    "e4_ewf_uni",
    "e4_ewf_bi",
    "e5_ar",
    "e5_ar_ch4",
    "e5_ewf",
    "e5_ewf_ch4",
    "e6_detail",
    "e6_compare",
    "e7_recursive",
    "e7_conditional",
    "e7_wheel",
    "e7_tdm",
];

/// Runs one experiment by id and returns its report.
///
/// # Panics
///
/// Panics on an unknown experiment id.
pub fn run_experiment(id: &str) -> String {
    match id {
        "e3_1" => e3_1(),
        "e4_uni" => e4_summary(PortMode::Unidirectional),
        "e4_uni_detail" => e4_detail(PortMode::Unidirectional),
        "e4_bi" => e4_summary(PortMode::Bidirectional),
        "e4_bi_detail" => e4_detail(PortMode::Bidirectional),
        "e4_ewf_uni" => e4_ewf(PortMode::Unidirectional),
        "e4_ewf_bi" => e4_ewf(PortMode::Bidirectional),
        "e5_ar" => e5_ar(),
        "e5_ar_ch4" => e5_ar_ch4(),
        "e5_ewf" => e5_ewf(),
        "e5_ewf_ch4" => e5_ewf_ch4(),
        "e6_detail" => e6_detail(),
        "e6_compare" => e6_compare(),
        "e7_recursive" => e7_recursive(),
        "e7_conditional" => e7_conditional(),
        "e7_wheel" => e7_wheel(),
        "e7_tdm" => e7_tdm(),
        other => panic!("unknown experiment id {other}; see EXPERIMENTS"),
    }
}

fn real_pins(r: &SynthesisResult) -> u32 {
    r.pins_used[1..].iter().sum()
}

/// E3.1 — Figures 3.6/3.7: the simple-partition AR filter at L = 2.
pub fn e3_1() -> String {
    let d = designs::ar_filter::simple();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "E3.1 (Figures 3.6/3.7): simple-partition AR filter, L = 2"
    );
    match simple_flow(d.cdfg(), 2) {
        Ok(r) => {
            let _ = writeln!(
                out,
                "pins used per partition: {:?}  pipe length: {}\n",
                &r.pins_used[1..],
                r.pipe_length
            );
            let _ = writeln!(out, "schedule (Figure 3.6 analogue):");
            let _ = writeln!(out, "{}", render_schedule(d.cdfg(), &r.schedule));
            let _ = writeln!(out, "interchip connection (Figure 3.7 analogue):");
            let _ = writeln!(out, "{}", render_interconnect(d.cdfg(), &r.interconnect));
        }
        Err(e) => {
            let _ = writeln!(out, "FAILED: {e}");
        }
    }
    out
}

fn ar_flow(rate: u32, mode: PortMode, reassign: bool, sharing: bool) -> Option<SynthesisResult> {
    let d = designs::ar_filter::general(rate, mode);
    let mut opts = ConnectFirstOptions::new(rate);
    opts.mode = mode;
    opts.reassign = reassign;
    opts.sharing = sharing;
    connect_first_flow(d.cdfg(), &opts).ok()
}

/// E4.1/E4.3 — Tables 4.2 and 4.10: AR filter pins and control steps with
/// and without bus reassignment.
pub fn e4_summary(mode: PortMode) -> String {
    let mut t = Table::new([
        "L",
        "P0",
        "P1",
        "P2",
        "P3",
        "steps w/ reassign",
        "steps w/o reassign",
    ]);
    for rate in [3u32, 4, 5] {
        let dynamic = ar_flow(rate, mode, true, false);
        let fixed = ar_flow(rate, mode, false, false);
        let cell = |r: &Option<SynthesisResult>, f: &dyn Fn(&SynthesisResult) -> String| {
            r.as_ref().map(f).unwrap_or_else(|| "-".into())
        };
        t.row([
            rate.to_string(),
            cell(&dynamic, &|r| r.pins_used[1].to_string()),
            cell(&dynamic, &|r| r.pins_used[2].to_string()),
            cell(&dynamic, &|r| r.pins_used[3].to_string()),
            cell(&dynamic, &|r| r.pins_used[4].to_string()),
            cell(&dynamic, &|r| r.pipe_length.to_string()),
            cell(&fixed, &|r| r.pipe_length.to_string()),
        ]);
    }
    format!("E4 summary ({mode:?}; Tables 4.2/4.10 analogue): AR filter\n{t}")
}

/// E4.2/E4.4 — Tables 4.3-4.8 and 4.11-4.13: bus assignments (initial vs
/// final) and per-step bus allocation.
pub fn e4_detail(mode: PortMode) -> String {
    let mut out = String::new();
    for rate in [3u32, 4, 5] {
        let d = designs::ar_filter::general(rate, mode);
        let Some(r) = ar_flow(rate, mode, true, false) else {
            let _ = writeln!(out, "L={rate}: flow failed");
            continue;
        };
        let _ = writeln!(
            out,
            "== {mode:?} L = {rate}: bus assignment (initial vs final) =="
        );
        let _ = writeln!(
            out,
            "{}",
            render_bus_assignment(d.cdfg(), &r.interconnect, &r.placements)
        );
        let _ = writeln!(
            out,
            "== {mode:?} L = {rate}: bus allocation by step group =="
        );
        let _ = writeln!(
            out,
            "{}",
            render_bus_allocation(d.cdfg(), &r.schedule, &r.placements)
        );
    }
    out
}

/// E4.5/E4.6 — Tables 4.14-4.19: the elliptic filter, including the
/// expected list-scheduling failure at the minimum rate 5.
pub fn e4_ewf(mode: PortMode) -> String {
    let mut t = Table::new(["L", "P1", "P2", "P3", "P4", "P5", "steps", "outcome"]);
    for rate in [5u32, 6, 7] {
        let d = designs::elliptic::partitioned_with(rate, mode);
        let mut opts = ConnectFirstOptions::new(rate);
        opts.mode = mode;
        match connect_first_flow(d.cdfg(), &opts) {
            Ok(r) => {
                t.row([
                    rate.to_string(),
                    r.pins_used[1].to_string(),
                    r.pins_used[2].to_string(),
                    r.pins_used[3].to_string(),
                    r.pins_used[4].to_string(),
                    r.pins_used[5].to_string(),
                    r.pipe_length.to_string(),
                    "ok".into(),
                ]);
            }
            Err(e) => {
                t.row([
                    rate.to_string(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    format!("failed: {e}"),
                ]);
            }
        }
    }
    format!("E4 elliptic filter ({mode:?}; Tables 4.14-4.19 analogue)\n{t}")
}

/// E5.1 — Table 5.1: AR filter resources required over (L, pipe length).
pub fn e5_ar() -> String {
    let mut t = Table::new(["L", "pipe", "pins P0..P3", "adders", "multipliers"]);
    for rate in [3u32, 4, 5] {
        for pipe in [8i64, 9, 10, 11, 12] {
            let d = designs::ar_filter::general(rate, PortMode::Unidirectional);
            match schedule_first_flow(d.cdfg(), rate, pipe, PortMode::Unidirectional) {
                Ok(r) => {
                    let res = r.resources(d.cdfg());
                    let sum = |class: &mcs_cdfg::OperatorClass| -> u32 {
                        res.iter()
                            .filter(|((_, c), _)| c == class)
                            .map(|(_, &n)| n)
                            .sum()
                    };
                    t.row([
                        rate.to_string(),
                        pipe.to_string(),
                        format!("{:?}", &r.pins_used[1..]),
                        sum(&mcs_cdfg::OperatorClass::Add).to_string(),
                        sum(&mcs_cdfg::OperatorClass::Mul).to_string(),
                    ]);
                }
                Err(e) => {
                    t.row([
                        rate.to_string(),
                        pipe.to_string(),
                        format!("failed: {e}"),
                        "-".into(),
                        "-".into(),
                    ]);
                }
            }
        }
    }
    format!("E5.1 (Table 5.1 analogue): AR filter, schedule-first flow\n{t}")
}

/// E5.2 — Table 5.2: the Chapter 4 technique on the same AR filter.
pub fn e5_ar_ch4() -> String {
    let mut t = Table::new(["L", "pins P0..P3", "pipe length"]);
    for rate in [3u32, 4, 5] {
        match ar_flow(rate, PortMode::Unidirectional, true, false) {
            Some(r) => {
                t.row([
                    rate.to_string(),
                    format!("{:?}", &r.pins_used[1..]),
                    r.pipe_length.to_string(),
                ]);
            }
            None => {
                t.row([rate.to_string(), "failed".into(), "-".into()]);
            }
        }
    }
    format!("E5.2 (Table 5.2 analogue): AR filter, connect-first flow\n{t}")
}

/// E5.3 — Table 5.3: elliptic filter resources and in-out delay over
/// (L, pipe length).
pub fn e5_ewf() -> String {
    let mut t = Table::new([
        "L",
        "pipe",
        "pins P1..P5",
        "adders",
        "multipliers",
        "in-out delay",
    ]);
    // Our reconstructed netlist's critical path is 26 steps (the paper's
    // sweep starts at 22 for its own netlist).
    for rate in [5u32, 6, 7] {
        for pipe in [26i64, 28, 30] {
            let d = designs::elliptic::partitioned_with(rate, PortMode::Unidirectional);
            match schedule_first_flow(d.cdfg(), rate, pipe, PortMode::Unidirectional) {
                Ok(r) => {
                    let res = r.resources(d.cdfg());
                    let sum = |class: &mcs_cdfg::OperatorClass| -> u32 {
                        res.iter()
                            .filter(|((_, c), _)| c == class)
                            .map(|(_, &n)| n)
                            .sum()
                    };
                    let delay =
                        r.schedule.of(d.op_named("Op")).step - r.schedule.of(d.op_named("Ia")).step;
                    t.row([
                        rate.to_string(),
                        pipe.to_string(),
                        format!("{:?}", &r.pins_used[1..]),
                        sum(&mcs_cdfg::OperatorClass::Add).to_string(),
                        sum(&mcs_cdfg::OperatorClass::Mul).to_string(),
                        delay.to_string(),
                    ]);
                }
                Err(e) => {
                    t.row([
                        rate.to_string(),
                        pipe.to_string(),
                        format!("failed: {e}"),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                    ]);
                }
            }
        }
    }
    format!("E5.3 (Table 5.3 analogue): elliptic filter, schedule-first flow\n{t}")
}

/// E5.4 — Table 5.4: the Chapter 4 technique on the elliptic filter,
/// including the failure rows.
pub fn e5_ewf_ch4() -> String {
    let mut t = Table::new(["L", "pins P1..P5", "pipe length", "outcome"]);
    for rate in [5u32, 6, 7] {
        let d = designs::elliptic::partitioned_with(rate, PortMode::Unidirectional);
        match connect_first_flow(d.cdfg(), &ConnectFirstOptions::new(rate)) {
            Ok(r) => {
                t.row([
                    rate.to_string(),
                    format!("{:?}", &r.pins_used[1..]),
                    r.pipe_length.to_string(),
                    "ok".into(),
                ]);
            }
            Err(e) => {
                t.row([
                    rate.to_string(),
                    "-".into(),
                    "-".into(),
                    format!("failed: {e}"),
                ]);
            }
        }
    }
    format!("E5.4 (Table 5.4 analogue): elliptic filter, connect-first flow\n{t}")
}

/// E6.1 — Tables 6.1-6.3 / Figures 6.2-6.7: shared interconnects.
pub fn e6_detail() -> String {
    let mut out = String::new();
    for rate in [3u32, 4, 5] {
        let d = designs::ar_filter::general(rate, PortMode::Bidirectional);
        match ar_flow(rate, PortMode::Bidirectional, true, true) {
            Some(r) => {
                let split = r
                    .interconnect
                    .buses
                    .iter()
                    .filter(|b| b.sub_count() > 1)
                    .count();
                let _ = writeln!(
                    out,
                    "== L = {rate}: shared interconnect ({split} split buses) =="
                );
                let _ = writeln!(out, "{}", render_interconnect(d.cdfg(), &r.interconnect));
                let _ = writeln!(out, "bus allocation:");
                let _ = writeln!(
                    out,
                    "{}",
                    render_bus_allocation(d.cdfg(), &r.schedule, &r.placements)
                );
            }
            None => {
                let _ = writeln!(out, "L={rate}: sharing flow failed");
            }
        }
    }
    out
}

/// E6.2 — Table 6.4: pins and pipe length, sharing vs no sharing.
pub fn e6_compare() -> String {
    let mut t = Table::new([
        "L",
        "pins (no sharing)",
        "pipe (no sharing)",
        "pins (sharing)",
        "pipe (sharing)",
    ]);
    for rate in [3u32, 4, 5] {
        let plain = ar_flow(rate, PortMode::Bidirectional, true, false);
        let shared = ar_flow(rate, PortMode::Bidirectional, true, true);
        let cell = |r: &Option<SynthesisResult>, f: &dyn Fn(&SynthesisResult) -> String| {
            r.as_ref().map(f).unwrap_or_else(|| "-".into())
        };
        t.row([
            rate.to_string(),
            cell(&plain, &|r| real_pins(r).to_string()),
            cell(&plain, &|r| r.pipe_length.to_string()),
            cell(&shared, &|r| real_pins(r).to_string()),
            cell(&shared, &|r| r.pipe_length.to_string()),
        ]);
    }
    format!("E6.2 (Table 6.4 analogue): AR filter, bidirectional ports\n{t}")
}

/// E7.1 — Figure 7.4: forcing the forward and feedback transfers of a
/// recursive loop onto one shared bus destroys schedulability.
pub fn e7_recursive() -> String {
    // chain_len = 1 makes the feasible X-to-Y gap exactly one value (3
    // steps) at the minimum rate 3 — a multiple of L, so X and Y are
    // forced into the same step group and cannot share a bus.
    let d = designs::synthetic::fig_7_4(1, 2, 2);
    let cdfg = d.cdfg();
    let rate = timing::min_initiation_rate(cdfg);
    let x = d.op_named("X");
    let y = d.op_named("Y");
    let p1 = PartitionId::new(1);
    let p2 = PartitionId::new(2);

    let mk_bus = |pairs: &[(PartitionId, PartitionId)]| -> Bus {
        let mut bus = Bus::new();
        bus.sub_widths = vec![2];
        for &(f, t) in pairs {
            let e = bus.out_ports.entry(f).or_insert(0);
            *e = (*e).max(2);
            let e = bus.in_ports.entry(t).or_insert(0);
            *e = (*e).max(2);
        }
        bus
    };
    let whole = SubRange { lo: 0, hi: 0 };
    // Shared structure: X and Y on one bus.
    let shared = Interconnect {
        mode: PortMode::Unidirectional,
        buses: vec![mk_bus(&[(p1, p2), (p2, p1)])],
        assignment: [
            (
                x,
                BusAssignment {
                    bus: mcs_cdfg::BusId::new(0),
                    range: whole,
                },
            ),
            (
                y,
                BusAssignment {
                    bus: mcs_cdfg::BusId::new(0),
                    range: whole,
                },
            ),
        ]
        .into_iter()
        .collect(),
    };
    // Separate structure: one bus each.
    let separate = Interconnect {
        mode: PortMode::Unidirectional,
        buses: vec![mk_bus(&[(p1, p2)]), mk_bus(&[(p2, p1)])],
        assignment: [
            (
                x,
                BusAssignment {
                    bus: mcs_cdfg::BusId::new(0),
                    range: whole,
                },
            ),
            (
                y,
                BusAssignment {
                    bus: mcs_cdfg::BusId::new(1),
                    range: whole,
                },
            ),
        ]
        .into_iter()
        .collect(),
    };
    let run = |ic: Interconnect| -> String {
        let mut policy = BusPolicy::new(ic, rate, false);
        match list_schedule(cdfg, &ListConfig::new(rate), &mut policy) {
            Ok(s) => format!("schedulable, pipe length {}", s.pipe_length(cdfg)),
            Err(e) => format!("unschedulable ({e})"),
        }
    };
    format!(
        "E7.1 (Figure 7.4): recursive loop at minimum rate {rate}\n\
         X and Y on one shared bus:  {}\n\
         X and Y on separate buses:  {}\n",
        run(shared),
        run(separate)
    )
}

/// E7.2 — Section 7.2: conditional I/O sharing.
pub fn e7_conditional() -> String {
    let (d, _) = designs::synthetic::conditional_example();
    let sets = conditional_sharing_sets(d.cdfg(), &CondShareConfig::new(8));
    let mut out = String::from("E7.2 (Section 7.2): conditional I/O sharing\n");
    for set in &sets {
        let names: Vec<&str> = set
            .ops
            .iter()
            .map(|&op| d.cdfg().op(op).name.as_str())
            .collect();
        let _ = writeln!(
            out,
            "sharing set {{{}}} in frame {}..={}: saves {} pins",
            names.join(", "),
            set.frame.0,
            set.frame.1,
            set.saved_pins
        );
    }
    let total: u32 = sets.iter().map(|s| s.saved_pins).sum();
    let _ = writeln!(out, "total pins saved: {total}");
    out
}

/// E7.3 — Figure 7.10: allocation-wheel fragmentation and the safety
/// check.
pub fn e7_wheel() -> String {
    let mut naive = AllocationWheel::new(1, 6, 2).expect("positive rate and cycles");
    naive.place(0);
    let fragmented = naive.place(3).is_some() && !naive.can_place(2) && !naive.can_place(4);
    let mut safe = AllocationWheel::new(1, 6, 2).expect("positive rate and cycles");
    safe.place(0);
    let checked = safe.is_safe(3, 1);
    let d = designs::synthetic::multicycle_example();
    let scheduled =
        list_schedule(d.cdfg(), &ListConfig::new(6), &mut mcs_sched::NullPolicy).is_ok();
    format!(
        "E7.3 (Figure 7.10): three 2-cycle ops, one unit, L = 6\n\
         Eq. 7.5 lower bound: {:?} unit(s)\n\
         naive placement at steps 0 and 3 strands op3: {fragmented}\n\
         safety check rejects the fragmenting placement: {}\n\
         list scheduling with the safety check finds a schedule: {scheduled}\n",
        AllocationWheel::lower_bound(3, 6, 2),
        !checked,
    )
}

/// E7.4 — Section 7.3: time-division I/O multiplexing trade-off.
pub fn e7_tdm() -> String {
    let mut t = Table::new(["variant", "widest transfer", "cross pins", "pipe length"]);
    for split in [false, true] {
        let d = designs::synthetic::tdm_example(split);
        let r = connect_first_flow(d.cdfg(), &ConnectFirstOptions::new(2));
        match r {
            Ok(r) => {
                let widest = d
                    .cdfg()
                    .io_ops()
                    .filter(|&op| {
                        let (_, f, to) = d.cdfg().op(op).io_endpoints().unwrap();
                        !f.is_environment() && !to.is_environment()
                    })
                    .map(|op| d.cdfg().io_bits(op))
                    .max()
                    .unwrap_or(0);
                t.row([
                    if split {
                        "split (2 x 16)"
                    } else {
                        "whole (32)"
                    }
                    .to_string(),
                    widest.to_string(),
                    real_pins(&r).to_string(),
                    r.pipe_length.to_string(),
                ]);
            }
            Err(e) => {
                t.row([
                    if split { "split" } else { "whole" }.to_string(),
                    "-".into(),
                    format!("failed: {e}"),
                    "-".into(),
                ]);
            }
        }
    }
    format!("E7.4 (Section 7.3): TDM trade-off\n{t}")
}

/// One measured connection-search run, as consumed by
/// [`search_stats_line`].
#[derive(Clone, Debug)]
pub struct MeasuredSearch {
    /// Whether the search produced a connection.
    pub ok: bool,
    /// The run's telemetry.
    pub stats: mcs_connect::SearchStats,
    /// Wall time of the run, milliseconds.
    pub wall_ms: f64,
}

fn emit_measured(out: &mut String, label: &str, m: &MeasuredSearch) {
    let _ = write!(
        out,
        "\"{label}\":{{\"ok\":{},\"nodes\":{},\"nodes_per_sec\":{:.0},\
         \"epochs\":{},\"threads\":{},\"cache_hits\":{},\"prunes\":{},\
         \"backtracks\":{},\"wall_ms\":{:.3},\"winner\":{}}}",
        m.ok,
        m.stats.nodes,
        m.stats.nodes_per_sec(),
        m.stats.epochs,
        m.stats.threads,
        m.stats.cache_hits,
        m.stats.prunes,
        m.stats.backtracks,
        m.wall_ms,
        match m.stats.winner {
            Some(w) => w.to_string(),
            None => String::from("null"),
        },
    );
}

/// One measured probe sweep — every I/O operation of a design probed
/// into every control-step group through one probe engine — as consumed
/// by [`probe_bench_line`].
#[derive(Clone, Debug)]
pub struct MeasuredProbe {
    /// Number of feasibility probes issued.
    pub probes: u64,
    /// How many of them answered "feasible".
    pub feasible: u64,
    /// Heap allocations during the sweep (0 when the harness does not
    /// count them, e.g. under the criterion benches).
    pub allocations: u64,
    /// Bytes requested by those allocations.
    pub alloc_bytes: u64,
    /// Wall time of the sweep, milliseconds.
    pub wall_ms: f64,
    /// FNV-1a digest over the verdict sequence; two engines agree iff
    /// their digests are equal.
    pub verdict_digest: u64,
}

/// FNV-1a over a probe-verdict sequence, for [`MeasuredProbe`].
pub fn verdict_digest(verdicts: &[bool]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &v in verdicts {
        h ^= v as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn emit_probe(out: &mut String, label: &str, m: &MeasuredProbe) {
    let _ = write!(
        out,
        "\"{label}\":{{\"probes\":{},\"feasible\":{},\"allocations\":{},\
         \"alloc_bytes\":{},\"wall_ms\":{:.3},\"verdict_digest\":{}}}",
        m.probes, m.feasible, m.allocations, m.alloc_bytes, m.wall_ms, m.verdict_digest,
    );
}

/// Renders one `bench_probe` BENCH line: a JSON object comparing three
/// probe engines on one design — the adaptive-i64 trail engine, the same
/// trail machinery forced onto the i128 representation from the first
/// pivot, and the legacy clone-per-probe path. `agree` is the
/// differential gate — all three verdict digests and probe counts must
/// match, and the `bench_probe` binary exits nonzero when they do not.
/// Golden-tested, like [`search_stats_line`], so machine-diffing stays
/// stable.
pub fn probe_bench_line(
    design: &str,
    rate: u32,
    trail: &MeasuredProbe,
    wide: &MeasuredProbe,
    clone: &MeasuredProbe,
) -> String {
    let mut out = format!("{{\"bench\":\"probe\",\"design\":\"{design}\",\"rate\":{rate},");
    emit_probe(&mut out, "trail", trail);
    out.push(',');
    emit_probe(&mut out, "wide", wide);
    out.push(',');
    emit_probe(&mut out, "clone", clone);
    let agree = trail.verdict_digest == wide.verdict_digest
        && trail.verdict_digest == clone.verdict_digest
        && trail.probes == wide.probes
        && trail.probes == clone.probes;
    let alloc_ratio = clone.allocations as f64 / (trail.allocations.max(1)) as f64;
    let speedup = if trail.wall_ms > 0.0 {
        clone.wall_ms / trail.wall_ms
    } else {
        0.0
    };
    let wide_ratio = if trail.wall_ms > 0.0 {
        wide.wall_ms / trail.wall_ms
    } else {
        0.0
    };
    let _ = write!(
        out,
        ",\"agree\":{agree},\"alloc_ratio\":{alloc_ratio:.2},\
         \"speedup\":{speedup:.2},\"wide_ratio\":{wide_ratio:.2}}}"
    );
    out
}

/// One measured design-space sweep — the whole rate × budget lattice
/// through [`multichip_hls::explore::run_sweep`] — as consumed by
/// [`explore_bench_line`].
#[derive(Clone, Debug)]
pub struct MeasuredSweep {
    /// Lattice points in the spec.
    pub points: u64,
    /// Points actually synthesized.
    pub run: u64,
    /// Points skipped by dominance pruning.
    pub pruned: u64,
    /// Feasible points.
    pub feasible: u64,
    /// Pareto-frontier size.
    pub frontier: u64,
    /// Warm-start probe-memo hits summed over points.
    pub probe_seed_hits: u64,
    /// Warm-start refutation-certificate hits summed over points.
    pub cert_seed_hits: u64,
    /// FNV-1a digest over the frontier (see [`frontier_digest`]); two
    /// sweeps agree on the frontier iff their digests are equal.
    pub frontier_digest: u64,
    /// Wall time of the sweep, milliseconds.
    pub wall_ms: f64,
}

/// FNV-1a over a Pareto frontier's `(rate, budget_ix, latency, pins,
/// buses)` tuples, for [`MeasuredSweep`].
pub fn frontier_digest(frontier: &[mcs_explore::FrontierPoint]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    };
    for p in frontier {
        mix(p.coord.rate as u64);
        mix(p.coord.budget_ix as u64);
        mix(p.latency as u64);
        mix(p.total_pins as u64);
        mix(p.buses as u64);
    }
    h
}

/// A [`MeasuredSweep`] from a sweep report plus its measured wall time.
pub fn measure_sweep(report: &mcs_explore::SweepReport, wall_ms: f64) -> MeasuredSweep {
    let st = &report.stats;
    MeasuredSweep {
        points: st.points,
        run: st.run,
        pruned: st.pruned,
        feasible: st.feasible,
        frontier: report.frontier.len() as u64,
        probe_seed_hits: st.probe_seed_hits,
        cert_seed_hits: st.cert_seed_hits,
        frontier_digest: frontier_digest(&report.frontier),
        wall_ms,
    }
}

fn emit_sweep(out: &mut String, label: &str, m: &MeasuredSweep) {
    let _ = write!(
        out,
        "\"{label}\":{{\"points\":{},\"run\":{},\"pruned\":{},\
         \"feasible\":{},\"frontier\":{},\"probe_seed_hits\":{},\
         \"cert_seed_hits\":{},\"frontier_digest\":{},\"wall_ms\":{:.3}}}",
        m.points,
        m.run,
        m.pruned,
        m.feasible,
        m.frontier,
        m.probe_seed_hits,
        m.cert_seed_hits,
        m.frontier_digest,
        m.wall_ms,
    );
}

/// Renders one `bench_explore` BENCH line: a JSON object comparing a
/// dominance-pruned sweep against the exhaustive sweep of the same
/// lattice. `frontier_agree` is the differential gate — the
/// `bench_explore` binary exits nonzero when it is false — and
/// `warm_start_hit_rate` is warm-start hits per synthesized point of
/// the pruned sweep. Golden-tested, like [`search_stats_line`].
pub fn explore_bench_line(
    design: &str,
    flow: &str,
    pruned: &MeasuredSweep,
    exhaustive: &MeasuredSweep,
) -> String {
    let mut out = format!("{{\"bench\":\"explore\",\"design\":\"{design}\",\"flow\":\"{flow}\",");
    emit_sweep(&mut out, "pruned", pruned);
    out.push(',');
    emit_sweep(&mut out, "exhaustive", exhaustive);
    let agree = pruned.frontier_digest == exhaustive.frontier_digest
        && pruned.frontier == exhaustive.frontier;
    let hit_rate =
        (pruned.probe_seed_hits + pruned.cert_seed_hits) as f64 / pruned.run.max(1) as f64;
    let speedup = if pruned.wall_ms > 0.0 {
        exhaustive.wall_ms / pruned.wall_ms
    } else {
        0.0
    };
    let _ = write!(
        out,
        ",\"frontier_agree\":{agree},\"warm_start_hit_rate\":{hit_rate:.3},\
         \"speedup\":{speedup:.2}}}"
    );
    out
}

/// One measured fuzzing sweep — seeded random designs through the
/// three-way flow differential and the engine-vs-reference simulation
/// oracle, plus one shrink-on-failure demonstration — as consumed by
/// [`fuzz_bench_line`].
#[derive(Clone, Debug)]
pub struct MeasuredFuzz {
    /// Seeded designs generated and run through the flow differential.
    pub seeds: u64,
    /// Designs on which the three flows agreed (proof strength).
    pub agreed: u64,
    /// Designs with at least one divergence — always a bug.
    pub disagreed: u64,
    /// Designs where at least one flow produced a verified result.
    pub any_feasible: u64,
    /// Designs additionally driven through the simulation oracle.
    pub sim_checked: u64,
    /// Simulation-oracle divergences — always a bug.
    pub sim_mismatched: u64,
    /// Shrink steps taken minimizing the demonstration failure.
    pub shrink_steps: u64,
    /// Op-gene count of the demonstration genome before shrinking.
    pub shrink_from_ops: u64,
    /// Op-gene count after shrinking.
    pub shrink_to_ops: u64,
    /// Wall time of the whole sweep, milliseconds.
    pub wall_ms: f64,
}

/// Renders the `bench_fuzz` BENCH line: one JSON object summarizing a
/// seeded fuzzing sweep. `agree` is the differential gate — the
/// `bench_fuzz` binary exits nonzero when it is false. Golden-tested,
/// like [`search_stats_line`], so machine-diffing stays stable.
pub fn fuzz_bench_line(config: &str, m: &MeasuredFuzz) -> String {
    let per_sec = if m.wall_ms > 0.0 {
        m.seeds as f64 / (m.wall_ms / 1e3)
    } else {
        0.0
    };
    let agree = m.disagreed == 0 && m.sim_mismatched == 0;
    format!(
        "{{\"bench\":\"fuzz\",\"config\":\"{config}\",\"seeds\":{},\
         \"agreed\":{},\"disagreed\":{},\"any_feasible\":{},\
         \"sim_checked\":{},\"sim_mismatched\":{},\
         \"shrink\":{{\"steps\":{},\"from_ops\":{},\"to_ops\":{}}},\
         \"wall_ms\":{:.3},\"designs_per_sec\":{per_sec:.1},\"agree\":{agree}}}",
        m.seeds,
        m.agreed,
        m.disagreed,
        m.any_feasible,
        m.sim_checked,
        m.sim_mismatched,
        m.shrink_steps,
        m.shrink_from_ops,
        m.shrink_to_ops,
        m.wall_ms,
    )
}

/// Renders the `search_stats` BENCH line: one JSON object comparing a
/// single-worker run against the portfolio on the same design, plus a
/// `probe` sub-object from a probe sweep over the same design: the
/// exact-fallback count (the Gomory overflow counter — fallbacks to the
/// exact solver when the all-integer tableau overflows), how many solver
/// probes went through the batched path, and how many shared checkpoints
/// those batches opened. This is the exact format the `search_stats`
/// binary prints (golden-tested), so downstream machine-diffing of runs
/// keeps working across refactors.
pub fn search_stats_line(
    bench: &str,
    senders: u32,
    probe: &mcs_pinalloc::ProbeCacheStats,
    before: &MeasuredSearch,
    after: &MeasuredSearch,
) -> String {
    let mut out = format!("{{\"bench\":\"{bench}\",\"senders\":{senders},");
    emit_measured(&mut out, "before", before);
    out.push(',');
    emit_measured(&mut out, "after", after);
    let speedup = if after.wall_ms > 0.0 {
        before.wall_ms / after.wall_ms
    } else {
        0.0
    };
    let _ = write!(
        out,
        ",\"probe\":{{\"exact_fallbacks\":{},\"batched\":{},\
         \"batch_checkpoints\":{}}},\"speedup\":{speedup:.2}}}",
        probe.exact_fallbacks, probe.batched_probes, probe.batch_shared_checkpoints,
    );
    out
}

/// Repeat-design (warm-tier) p50 latency must be at least this many
/// times below cold-path p50 — the `bench_serve` acceptance gate.
pub const SERVE_SPEEDUP_FLOOR: f64 = 10.0;

/// One `bench_serve` load scenario, rendered by [`serve_bench_line`].
#[derive(Clone, Debug)]
pub struct MeasuredServe {
    /// Concurrent clients in the storm phase.
    pub clients: u64,
    /// Daemon worker-pool threads.
    pub workers: u64,
    /// Distinct designs in the mix.
    pub designs: u64,
    /// Sequential cold-populate requests (phase one).
    pub cold_requests: u64,
    /// Concurrent storm requests (phase two).
    pub storm_requests: u64,
    /// Storm responses answered by exact cache replay (`"cache":"hit"`).
    pub hits: u64,
    /// Storm responses seeded by a dominating donor (`"cache":"warm"`).
    pub warm: u64,
    /// Storm responses that ran fully cold.
    pub storm_cold: u64,
    /// FNV-1a digest over every response core (the body with the
    /// volatile `cache` member stripped) in deterministic client/request
    /// order — byte-stable across runs, machines and worker counts.
    pub response_digest: u64,
    /// Whether a sequential replay of the same scenario produced
    /// byte-identical response streams under 1, 2 and 8 daemon workers.
    pub workers_identical: bool,
    /// Cold-path p50 latency, microseconds (client-observed).
    pub cold_p50_us: f64,
    /// Cold-path p99 latency, microseconds.
    pub cold_p99_us: f64,
    /// Exact-hit p50 latency, microseconds.
    pub hit_p50_us: f64,
    /// Exact-hit p99 latency, microseconds.
    pub hit_p99_us: f64,
    /// Storm-phase wall time, milliseconds.
    pub wall_ms: f64,
}

/// FNV-1a digest of newline-joined response lines — the deterministic
/// fingerprint [`MeasuredServe::response_digest`] carries.
pub fn response_digest(lines: &[String]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for line in lines {
        for &b in line.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h ^= u64::from(b'\n');
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Renders one `bench_serve` BENCH line. `pass` is the load gate — the
/// binary exits nonzero when any scenario fails it: nonzero exact-hit
/// rate, byte-identical responses across worker counts, and warm-tier
/// p50 at least [`SERVE_SPEEDUP_FLOOR`]x below cold p50. Hit/warm/cold
/// storm counts are scheduling-dependent under concurrency and are
/// reported for observability, not compared by the regression gate;
/// `response_digest` is the deterministic field. Golden-tested like
/// [`fuzz_bench_line`].
pub fn serve_bench_line(config: &str, m: &MeasuredServe) -> String {
    let per_sec = if m.wall_ms > 0.0 {
        m.storm_requests as f64 / (m.wall_ms / 1e3)
    } else {
        0.0
    };
    let hit_speedup = m.cold_p50_us / m.hit_p50_us.max(1.0);
    let hits_nonzero = m.hits > 0;
    let pass = hits_nonzero && m.workers_identical && hit_speedup >= SERVE_SPEEDUP_FLOOR;
    format!(
        "{{\"bench\":\"serve\",\"config\":\"{config}\",\"clients\":{},\
         \"workers\":{},\"designs\":{},\"cold_requests\":{},\
         \"storm_requests\":{},\"hits\":{},\"warm\":{},\"storm_cold\":{},\
         \"response_digest\":{},\"workers_identical\":{},\
         \"hits_nonzero\":{hits_nonzero},\
         \"cold_p50_us\":{:.1},\"cold_p99_us\":{:.1},\
         \"hit_p50_us\":{:.1},\"hit_p99_us\":{:.1},\
         \"wall_ms\":{:.3},\"requests_per_sec\":{per_sec:.1},\
         \"hit_speedup\":{hit_speedup:.2},\"pass\":{pass}}}",
        m.clients,
        m.workers,
        m.designs,
        m.cold_requests,
        m.storm_requests,
        m.hits,
        m.warm,
        m.storm_cold,
        m.response_digest,
        m.workers_identical,
        m.cold_p50_us,
        m.cold_p99_us,
        m.hit_p50_us,
        m.hit_p99_us,
        m.wall_ms,
    )
}

/// Incremental resynthesis must beat cold resynthesis by at least this
/// factor on untouched-majority edits — the `bench_resynth` acceptance
/// gate.
pub const RESYNTH_SPEEDUP_FLOOR: f64 = 5.0;

/// One measured incremental-vs-cold resynthesis scenario, rendered by
/// [`resynth_bench_line`].
#[derive(Clone, Debug)]
pub struct MeasuredResynth {
    /// Design name.
    pub design: String,
    /// The design-delta spec applied.
    pub edit: String,
    /// Ladder path the incremental run took (`identical`/`patched`/`cold`).
    pub path: String,
    /// Dirty operations the classifier reported.
    pub dirty_ops: u64,
    /// Dirty interchip transfers.
    pub dirty_transfers: u64,
    /// Bus assignments carried over from the previous connection.
    pub reused: u64,
    /// Bus assignments re-derived.
    pub fresh: u64,
    /// Pipe length of the incremental result.
    pub incr_latency: i64,
    /// Pipe length of the cold run on the same edited design.
    pub cold_latency: i64,
    /// The differential oracle's verdict: the incremental result is
    /// verifier-clean and no worse than cold.
    pub verifier_ok: bool,
    /// Best incremental wall time over the reps, milliseconds.
    pub incr_wall_ms: f64,
    /// Best cold wall time over the reps, milliseconds.
    pub cold_wall_ms: f64,
}

/// Renders one `bench_resynth` BENCH line. `warm` is whether the
/// incremental run avoided the cold rung; `pass` is the gate — the
/// `bench_resynth` binary exits nonzero when any scenario fails it:
/// verifier agreement, a warm path, and a cold-over-incremental speedup
/// of at least [`RESYNTH_SPEEDUP_FLOOR`]. Golden-tested, like
/// [`search_stats_line`], so machine-diffing stays stable.
pub fn resynth_bench_line(config: &str, m: &MeasuredResynth) -> String {
    resynth_bench_line_with_floor(config, m, RESYNTH_SPEEDUP_FLOOR)
}

/// [`resynth_bench_line`] with an explicit speedup floor for the `pass`
/// verdict. The headline [`RESYNTH_SPEEDUP_FLOOR`] is calibrated for
/// untouched-majority *local* edits, where incremental revalidation
/// skips synthesis entirely; edits that dirty transfers still re-run
/// bus-slot list scheduling, so their honest win over cold is smaller
/// and they gate at a scenario-chosen floor instead.
pub fn resynth_bench_line_with_floor(config: &str, m: &MeasuredResynth, floor: f64) -> String {
    let speedup = if m.incr_wall_ms > 0.0 {
        m.cold_wall_ms / m.incr_wall_ms
    } else {
        0.0
    };
    let warm = m.path != "cold";
    let pass = m.verifier_ok && warm && speedup >= floor;
    format!(
        "{{\"bench\":\"resynth\",\"config\":\"{config}\",\"design\":\"{}\",\
         \"edit\":\"{}\",\"path\":\"{}\",\"dirty_ops\":{},\
         \"dirty_transfers\":{},\"reused\":{},\"fresh\":{},\
         \"incr_latency\":{},\"cold_latency\":{},\"verifier_ok\":{},\
         \"incr_wall_ms\":{:.3},\"cold_wall_ms\":{:.3},\
         \"speedup\":{speedup:.2},\"warm\":{warm},\"pass\":{pass}}}",
        m.design,
        m.edit,
        m.path,
        m.dirty_ops,
        m.dirty_transfers,
        m.reused,
        m.fresh,
        m.incr_latency,
        m.cold_latency,
        m.verifier_ok,
        m.incr_wall_ms,
        m.cold_wall_ms,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn search_stats_line_matches_golden_output() {
        use mcs_connect::SearchStats;
        use std::time::Duration;
        let stats = |nodes: u64, winner| SearchStats {
            workers: Vec::new(),
            winner,
            epochs: 12,
            threads: 4,
            nodes,
            cache_hits: 7,
            seed_hits: 0,
            cache_entries: 3,
            prunes: 5,
            backtracks: 2,
            wall: Duration::from_millis(250),
            termination: mcs_ctl::Termination::Complete,
            deepest: 0,
            deepest_buses: 0,
        };
        let before = MeasuredSearch {
            ok: true,
            stats: stats(1000, Some(0)),
            wall_ms: 250.0,
        };
        let after = MeasuredSearch {
            ok: true,
            stats: stats(4000, None),
            wall_ms: 125.0,
        };
        let probe = mcs_pinalloc::ProbeCacheStats {
            exact_fallbacks: 3,
            batched_probes: 40,
            batch_shared_checkpoints: 2,
            ..Default::default()
        };
        let line = search_stats_line("portfolio_adversarial", 6, &probe, &before, &after);
        assert_eq!(
            line,
            "{\"bench\":\"portfolio_adversarial\",\"senders\":6,\
             \"before\":{\"ok\":true,\"nodes\":1000,\"nodes_per_sec\":4000,\
             \"epochs\":12,\"threads\":4,\"cache_hits\":7,\"prunes\":5,\
             \"backtracks\":2,\"wall_ms\":250.000,\"winner\":0},\
             \"after\":{\"ok\":true,\"nodes\":4000,\"nodes_per_sec\":16000,\
             \"epochs\":12,\"threads\":4,\"cache_hits\":7,\"prunes\":5,\
             \"backtracks\":2,\"wall_ms\":125.000,\"winner\":null},\
             \"probe\":{\"exact_fallbacks\":3,\"batched\":40,\
             \"batch_checkpoints\":2},\"speedup\":2.00}"
        );
        mcs_obs::export::validate_json(&line).expect("BENCH line is strict JSON");
    }

    #[test]
    fn explore_bench_line_matches_golden_output() {
        let pruned = MeasuredSweep {
            points: 10,
            run: 7,
            pruned: 3,
            feasible: 5,
            frontier: 2,
            probe_seed_hits: 4,
            cert_seed_hits: 10,
            frontier_digest: 99,
            wall_ms: 80.0,
        };
        let exhaustive = MeasuredSweep {
            points: 10,
            run: 10,
            pruned: 0,
            feasible: 5,
            frontier: 2,
            probe_seed_hits: 4,
            cert_seed_hits: 10,
            frontier_digest: 99,
            wall_ms: 120.0,
        };
        let line = explore_bench_line("elliptic", "connect-first", &pruned, &exhaustive);
        assert_eq!(
            line,
            "{\"bench\":\"explore\",\"design\":\"elliptic\",\"flow\":\"connect-first\",\
             \"pruned\":{\"points\":10,\"run\":7,\"pruned\":3,\"feasible\":5,\
             \"frontier\":2,\"probe_seed_hits\":4,\"cert_seed_hits\":10,\
             \"frontier_digest\":99,\"wall_ms\":80.000},\
             \"exhaustive\":{\"points\":10,\"run\":10,\"pruned\":0,\"feasible\":5,\
             \"frontier\":2,\"probe_seed_hits\":4,\"cert_seed_hits\":10,\
             \"frontier_digest\":99,\"wall_ms\":120.000},\
             \"frontier_agree\":true,\"warm_start_hit_rate\":2.000,\
             \"speedup\":1.50}"
        );
        mcs_obs::export::validate_json(&line).expect("BENCH line is strict JSON");
    }

    #[test]
    fn frontier_digest_separates_different_frontiers() {
        use mcs_explore::{FrontierPoint, PointCoord};
        let p = |rate, latency| FrontierPoint {
            coord: PointCoord { rate, budget_ix: 0 },
            latency,
            total_pins: 100,
            buses: 3,
        };
        assert_eq!(frontier_digest(&[p(4, 10)]), frontier_digest(&[p(4, 10)]));
        assert_ne!(frontier_digest(&[p(4, 10)]), frontier_digest(&[p(5, 10)]));
        assert_ne!(frontier_digest(&[]), frontier_digest(&[p(4, 10)]));
    }

    #[test]
    fn probe_bench_line_matches_golden_output() {
        let trail = MeasuredProbe {
            probes: 64,
            feasible: 48,
            allocations: 10,
            alloc_bytes: 2048,
            wall_ms: 5.0,
            verdict_digest: 42,
        };
        let wide = MeasuredProbe {
            probes: 64,
            feasible: 48,
            allocations: 10,
            alloc_bytes: 2048,
            wall_ms: 10.0,
            verdict_digest: 42,
        };
        let clone = MeasuredProbe {
            probes: 64,
            feasible: 48,
            allocations: 600,
            alloc_bytes: 819200,
            wall_ms: 40.0,
            verdict_digest: 42,
        };
        let line = probe_bench_line("ch3_simple", 2, &trail, &wide, &clone);
        assert_eq!(
            line,
            "{\"bench\":\"probe\",\"design\":\"ch3_simple\",\"rate\":2,\
             \"trail\":{\"probes\":64,\"feasible\":48,\"allocations\":10,\
             \"alloc_bytes\":2048,\"wall_ms\":5.000,\"verdict_digest\":42},\
             \"wide\":{\"probes\":64,\"feasible\":48,\"allocations\":10,\
             \"alloc_bytes\":2048,\"wall_ms\":10.000,\"verdict_digest\":42},\
             \"clone\":{\"probes\":64,\"feasible\":48,\"allocations\":600,\
             \"alloc_bytes\":819200,\"wall_ms\":40.000,\"verdict_digest\":42},\
             \"agree\":true,\"alloc_ratio\":60.00,\"speedup\":8.00,\
             \"wide_ratio\":2.00}"
        );
        mcs_obs::export::validate_json(&line).expect("BENCH line is strict JSON");
    }

    #[test]
    fn probe_bench_line_flags_verdict_disagreement() {
        let m = |digest: u64| MeasuredProbe {
            probes: 8,
            feasible: 4,
            allocations: 0,
            alloc_bytes: 0,
            wall_ms: 1.0,
            verdict_digest: digest,
        };
        // Any one engine diverging from the other two must flip the gate.
        let line = probe_bench_line("fig_2_5", 2, &m(1), &m(1), &m(2));
        assert!(line.contains("\"agree\":false"), "{line}");
        let line = probe_bench_line("fig_2_5", 2, &m(1), &m(2), &m(1));
        assert!(line.contains("\"agree\":false"), "{line}");
    }

    #[test]
    fn fuzz_bench_line_matches_golden_output() {
        let m = MeasuredFuzz {
            seeds: 200,
            agreed: 200,
            disagreed: 0,
            any_feasible: 30,
            sim_checked: 50,
            sim_mismatched: 0,
            shrink_steps: 104,
            shrink_from_ops: 8,
            shrink_to_ops: 4,
            wall_ms: 4000.0,
        };
        let line = fuzz_bench_line("default", &m);
        assert_eq!(
            line,
            "{\"bench\":\"fuzz\",\"config\":\"default\",\"seeds\":200,\
             \"agreed\":200,\"disagreed\":0,\"any_feasible\":30,\
             \"sim_checked\":50,\"sim_mismatched\":0,\
             \"shrink\":{\"steps\":104,\"from_ops\":8,\"to_ops\":4},\
             \"wall_ms\":4000.000,\"designs_per_sec\":50.0,\"agree\":true}"
        );
        mcs_obs::export::validate_json(&line).expect("BENCH line is strict JSON");
    }

    #[test]
    fn fuzz_bench_line_flags_any_divergence() {
        let m = |disagreed: u64, sim_mismatched: u64| MeasuredFuzz {
            seeds: 10,
            agreed: 10 - disagreed,
            disagreed,
            any_feasible: 2,
            sim_checked: 5,
            sim_mismatched,
            shrink_steps: 0,
            shrink_from_ops: 0,
            shrink_to_ops: 0,
            wall_ms: 1.0,
        };
        assert!(fuzz_bench_line("default", &m(1, 0)).contains("\"agree\":false"));
        assert!(fuzz_bench_line("default", &m(0, 1)).contains("\"agree\":false"));
        assert!(fuzz_bench_line("default", &m(0, 0)).contains("\"agree\":true"));
    }

    fn measured_serve() -> MeasuredServe {
        MeasuredServe {
            clients: 8,
            workers: 2,
            designs: 6,
            cold_requests: 6,
            storm_requests: 64,
            hits: 40,
            warm: 18,
            storm_cold: 6,
            response_digest: 1234567890123456789,
            workers_identical: true,
            cold_p50_us: 5000.0,
            cold_p99_us: 9000.0,
            hit_p50_us: 80.0,
            hit_p99_us: 400.0,
            wall_ms: 250.0,
        }
    }

    #[test]
    fn serve_bench_line_matches_golden_output() {
        let line = serve_bench_line("clients_8", &measured_serve());
        assert_eq!(
            line,
            "{\"bench\":\"serve\",\"config\":\"clients_8\",\"clients\":8,\
             \"workers\":2,\"designs\":6,\"cold_requests\":6,\
             \"storm_requests\":64,\"hits\":40,\"warm\":18,\"storm_cold\":6,\
             \"response_digest\":1234567890123456789,\"workers_identical\":true,\
             \"hits_nonzero\":true,\
             \"cold_p50_us\":5000.0,\"cold_p99_us\":9000.0,\
             \"hit_p50_us\":80.0,\"hit_p99_us\":400.0,\
             \"wall_ms\":250.000,\"requests_per_sec\":256.0,\
             \"hit_speedup\":62.50,\"pass\":true}"
        );
        mcs_obs::export::validate_json(&line).expect("BENCH line is strict JSON");
    }

    #[test]
    fn serve_bench_line_gates_on_hits_identity_and_speedup() {
        let mut no_hits = measured_serve();
        no_hits.hits = 0;
        assert!(serve_bench_line("c", &no_hits).contains("\"pass\":false"));
        let mut diverged = measured_serve();
        diverged.workers_identical = false;
        assert!(serve_bench_line("c", &diverged).contains("\"pass\":false"));
        let mut slow = measured_serve();
        slow.hit_p50_us = 4000.0;
        assert!(serve_bench_line("c", &slow).contains("\"pass\":false"));
        assert!(serve_bench_line("c", &measured_serve()).contains("\"pass\":true"));
    }

    #[test]
    fn response_digest_is_order_sensitive_and_stable() {
        let a = vec!["x".to_string(), "y".to_string()];
        let b = vec!["y".to_string(), "x".to_string()];
        assert_eq!(response_digest(&a), response_digest(&a));
        assert_ne!(response_digest(&a), response_digest(&b));
        // Joining must not be ambiguous: ["xy"] != ["x","y"].
        assert_ne!(response_digest(&["xy".to_string()]), response_digest(&a));
    }

    #[test]
    fn verdict_digest_separates_sequences() {
        assert_eq!(
            verdict_digest(&[true, false]),
            verdict_digest(&[true, false])
        );
        assert_ne!(
            verdict_digest(&[true, false]),
            verdict_digest(&[false, true])
        );
        assert_ne!(verdict_digest(&[]), verdict_digest(&[false]));
    }

    fn measured_resynth() -> MeasuredResynth {
        MeasuredResynth {
            design: "elliptic".into(),
            edit: "width:a1=8".into(),
            path: "identical".into(),
            dirty_ops: 1,
            dirty_transfers: 0,
            reused: 0,
            fresh: 0,
            incr_latency: 30,
            cold_latency: 30,
            verifier_ok: true,
            incr_wall_ms: 2.0,
            cold_wall_ms: 40.0,
        }
    }

    #[test]
    fn resynth_bench_line_matches_golden_output() {
        let line = resynth_bench_line("elliptic_local_width", &measured_resynth());
        assert_eq!(
            line,
            "{\"bench\":\"resynth\",\"config\":\"elliptic_local_width\",\
             \"design\":\"elliptic\",\"edit\":\"width:a1=8\",\
             \"path\":\"identical\",\"dirty_ops\":1,\"dirty_transfers\":0,\
             \"reused\":0,\"fresh\":0,\"incr_latency\":30,\"cold_latency\":30,\
             \"verifier_ok\":true,\"incr_wall_ms\":2.000,\
             \"cold_wall_ms\":40.000,\"speedup\":20.00,\"warm\":true,\
             \"pass\":true}"
        );
        mcs_obs::export::validate_json(&line).expect("BENCH line is strict JSON");
    }

    #[test]
    fn resynth_bench_line_gates_on_verifier_path_and_speedup() {
        let mut oracle = measured_resynth();
        oracle.verifier_ok = false;
        assert!(resynth_bench_line("c", &oracle).contains("\"pass\":false"));
        let mut cold = measured_resynth();
        cold.path = "cold".into();
        assert!(resynth_bench_line("c", &cold).contains("\"pass\":false"));
        let mut slow = measured_resynth();
        slow.incr_wall_ms = 20.0;
        assert!(resynth_bench_line("c", &slow).contains("\"pass\":false"));
        // The same 2x win passes under a scenario-chosen floor.
        assert!(resynth_bench_line_with_floor("c", &slow, 1.5).contains("\"pass\":true"));
        assert!(resynth_bench_line("c", &measured_resynth()).contains("\"pass\":true"));
    }

    #[test]
    fn every_experiment_runs() {
        for &id in EXPERIMENTS {
            let out = run_experiment(id);
            assert!(!out.is_empty(), "{id} produced no output");
        }
    }
}
