//! Incremental-resynthesis benchmark: times the `resynth_flow` ladder
//! against a from-scratch resynthesis of the same edited design and
//! gates on the [`mcs_bench::RESYNTH_SPEEDUP_FLOOR`] within-run ratio.
//!
//! Four single-operation edits cover the ladder's warm rungs:
//!
//! - `elliptic_local_width` — widen an operation whose value never
//!   leaves its chip. The dirty region is empty and the previous result
//!   revalidates unchanged (the `identical` rung). Gates at the
//!   headline [`mcs_bench::RESYNTH_SPEEDUP_FLOOR`].
//! - `elliptic_transfer_width` — narrow a producer whose value crosses
//!   chips. The carrying transfer is dirtied but the bus structure
//!   survives (the `patched` rung over the connect-first flow).
//! - `ar_filter_transfer_width` — the same edit shape over a simple
//!   (Chapter 3) previous result, where the patched rung replays the
//!   previous run's clean pin-checker commits and trial-places only the
//!   dirty transfers over a commit-level savepoint. On a 34-op design
//!   the ladder's fixed overhead exceeds a cold run, so this row gates
//!   correctness and telemetry, not speed ([`REPLAY_SPEEDUP_FLOOR`]).
//! - `large_mesh_width` — narrow one shipped value on the 8-chip ring
//!   at rate 4 (a connect-first result; the mesh partitioning is not
//!   simple, so the Chapter 3 flow refuses it). Cold resynthesis must
//!   repeat the heuristic connection search, which takes seconds; the
//!   patched rung reuses the bus structure and beats it by orders of
//!   magnitude — the scale row behind the headline floor.
//!
//! Transfer-dirtying rungs on small designs still re-run bus-slot list
//! scheduling, so their honest win over cold is bounded; they gate at
//! [`PATCHED_SPEEDUP_FLOOR`] rather than the local-edit headline.
//!
//! Every scenario also runs [`multichip_hls::resynth::differential`],
//! so a line only passes when the incremental result is verifier-clean
//! against the cold oracle. Output is one JSON line per scenario in the
//! committed-baseline format checked by `bench_compare resynth`.

use std::time::Instant;

use mcs_bench::{resynth_bench_line_with_floor, MeasuredResynth, RESYNTH_SPEEDUP_FLOOR};
use mcs_cdfg::delta::DesignDelta;
use mcs_cdfg::designs::{ar_filter, elliptic, synthetic, Design};
use mcs_cdfg::Cdfg;
use multichip_hls::flows::{connect_first_flow, simple_flow, ConnectFirstOptions, SynthesisResult};
use multichip_hls::resynth::{self, resynth_flow};

/// Repetitions per timed side; the minimum is reported, which is the
/// stable statistic for a deterministic computation. Three keeps the
/// mesh row's multi-second cold side inside a CI-friendly budget.
const REPS: usize = 3;

/// Gate for rungs that dirty transfers and so re-run list scheduling:
/// incremental must still beat cold, but the headline
/// [`RESYNTH_SPEEDUP_FLOOR`] belongs to untouched-majority edits.
const PATCHED_SPEEDUP_FLOOR: f64 = 1.2;

/// Gate for the pin-checker replay row on the 34-op AR filter, where a
/// cold run is itself sub-millisecond and the retry ladder's fixed
/// overhead dominates. The floor only guards against a collapse of the
/// replay machinery (an order-of-magnitude slowdown), not for a win.
const REPLAY_SPEEDUP_FLOOR: f64 = 0.1;

/// Name of a functional operation whose result is carried off-chip by
/// at least one transfer, plus the transfer's width — the producer the
/// `*_transfer_width` scenarios narrow.
fn transfer_producer(cdfg: &Cdfg) -> Option<(String, u32)> {
    cdfg.io_ops().find_map(|xfer| {
        cdfg.preds(xfer)
            .iter()
            .map(|&e| cdfg.edge(e).from)
            .find(|&op| cdfg.op(op).io_endpoints().is_none())
            .map(|p| (cdfg.op(p).name.clone(), cdfg.io_bits(xfer)))
    })
}

/// Minimum wall time of `REPS` runs of `f`, in milliseconds.
fn time_min<T>(mut f: impl FnMut() -> T) -> (T, f64) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..REPS {
        let t = Instant::now();
        let r = f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
        out = Some(r);
    }
    (out.expect("REPS >= 1"), best)
}

fn run(config: &str, design: &Design, prev: &SynthesisResult, edit: &str, floor: f64) -> bool {
    let cdfg = design.cdfg();
    let delta = match DesignDelta::parse(edit) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("{config}: bad edit `{edit}`: {e}");
            return false;
        }
    };

    let (incr, incr_wall_ms) = time_min(|| resynth_flow(cdfg, prev, &delta));
    let incr = match incr {
        Ok(out) => out,
        Err(e) => {
            eprintln!("{config}: incremental resynthesis failed: {e}");
            return false;
        }
    };

    // The cold side repeats what a user without the previous result
    // would do: apply the edit, then run the matching full flow.
    let rate = incr.result.schedule.rate;
    let connect = prev.search_stats.is_some() || !prev.placements.is_empty();
    let mode = prev.interconnect.mode;
    let (cold, cold_wall_ms) = time_min(|| {
        let applied = delta.apply(cdfg).expect("delta applied incrementally");
        if connect {
            let mut opts = ConnectFirstOptions::new(rate);
            opts.mode = mode;
            connect_first_flow(&applied.cdfg, &opts)
        } else {
            simple_flow(&applied.cdfg, rate)
        }
    });
    let cold = match cold {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{config}: cold resynthesis failed: {e}");
            return false;
        }
    };

    let verifier_ok = match resynth::differential(cdfg, prev, &delta) {
        Ok(_) => true,
        Err(e) => {
            eprintln!("{config}: differential oracle: {e}");
            false
        }
    };

    let m = MeasuredResynth {
        design: design.name().to_string(),
        edit: edit.to_string(),
        path: incr.path.to_string(),
        dirty_ops: incr.dirty.ops.len() as u64,
        dirty_transfers: incr.dirty.transfers.len() as u64,
        reused: incr.stats.reused_assignments,
        fresh: incr.stats.fresh_assignments,
        incr_latency: incr.result.pipe_length,
        cold_latency: cold.pipe_length,
        verifier_ok,
        incr_wall_ms,
        cold_wall_ms,
    };
    let line = resynth_bench_line_with_floor(config, &m, floor);
    println!("{line}");
    if line.contains("\"pass\":false") {
        eprintln!("{config}: gate failed (see line above)");
        return false;
    }
    true
}

fn main() -> std::process::ExitCode {
    let mut ok = true;

    let ell = elliptic::partitioned();
    let ell_prev = connect_first_flow(ell.cdfg(), &ConnectFirstOptions::new(6))
        .expect("elliptic synthesizes at rate 6");
    // `a1`'s sum stays on P1; widening it leaves every transfer clean.
    ok &= run(
        "elliptic_local_width",
        &ell,
        &ell_prev,
        "width:a1=8",
        RESYNTH_SPEEDUP_FLOOR,
    );
    if let Some((producer, bits)) = transfer_producer(ell.cdfg()) {
        let edit = format!("width:{producer}={}", bits.max(2) - 1);
        ok &= run(
            "elliptic_transfer_width",
            &ell,
            &ell_prev,
            &edit,
            PATCHED_SPEEDUP_FLOOR,
        );
    } else {
        eprintln!("elliptic_transfer_width: no transfer with a functional producer");
        ok = false;
    }

    let ar = ar_filter::simple();
    let ar_prev = simple_flow(ar.cdfg(), 2).expect("ar filter synthesizes at rate 2");
    if let Some((producer, bits)) = transfer_producer(ar.cdfg()) {
        let edit = format!("width:{producer}={}", bits.max(2) - 1);
        ok &= run(
            "ar_filter_transfer_width",
            &ar,
            &ar_prev,
            &edit,
            REPLAY_SPEEDUP_FLOOR,
        );
    } else {
        eprintln!("ar_filter_transfer_width: no transfer with a functional producer");
        ok = false;
    }

    // The mesh partitioning is not simple (shared drivers across the
    // ring), so its previous result comes from the connect-first flow;
    // rate 4 is the lowest rate where bus construction closes over the
    // (28, 24) pin split.
    let mesh = synthetic::large_mesh(8);
    let mesh_prev = connect_first_flow(mesh.cdfg(), &ConnectFirstOptions::new(4))
        .expect("large mesh synthesizes at rate 4");
    // Narrowing one shipped value dirties exactly its transfer; the
    // other 79 keep their assignments while cold repeats the
    // multi-second heuristic connection search.
    ok &= run(
        "large_mesh_width",
        &mesh,
        &mesh_prev,
        "width:v3_2=7",
        RESYNTH_SPEEDUP_FLOOR,
    );

    if ok {
        std::process::ExitCode::SUCCESS
    } else {
        std::process::ExitCode::FAILURE
    }
}
