//! `bench_serve` — load generator for the `mcs-serve` daemon.
//!
//! For each client-count scenario (1 / 8 / 64 concurrent clients; a
//! reduced ladder under `--smoke`) the harness:
//!
//! 1. boots a fresh in-process daemon on `127.0.0.1:0`,
//! 2. **cold phase** — one client submits every design in the mix once
//!    (connect flow, the design's native per-chip pin budgets), timing
//!    each response,
//! 3. **storm phase** — N concurrent clients each fire a mixed stream
//!    of exact repeats (cache hits) and near-repeats under a perturbed
//!    budget vector — one pin removed from the roomiest chip, so the
//!    base result's budgets dominate the request's and the warm-start
//!    tier seeds its run — timing each response and tallying the
//!    daemon's `"cache"` provenance tag,
//! 4. **determinism replay** — the full canonical request list is
//!    replayed *sequentially* against fresh daemons at `--workers`
//!    1, 2 and 8; the three transcripts must be byte-identical, and
//!    the workers=1 transcript is folded into `response_digest`, the
//!    run-over-run comparable field.
//!
//! Hit/warm/cold tallies from the concurrent storm are observability
//! only (scheduling decides which racing near-repeat publishes first);
//! the digest and the identity bit are the deterministic surface.
//! One BENCH line per scenario goes to stdout; the process exits
//! nonzero if any scenario fails its gates (nonzero hits, identical
//! transcripts, hit p50 at least [`mcs_bench::SERVE_SPEEDUP_FLOOR`]×
//! below cold p50).

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use mcs_bench::{response_digest, serve_bench_line, MeasuredServe};
use mcs_cdfg::format;
use mcs_cdfg::fuzz::{design_from_seed, FuzzConfig};
use mcs_cdfg::PartitionId;
use mcs_serve::json::escape;
use mcs_serve::{ServeConfig, Server};

/// Initiation rate used for every request in the mix.
const RATE: u32 = 4;
/// Screening ceiling: a design joins the mix only if its cold connect
/// search completes (to a feasible answer) within this many search
/// nodes, under both the base and the near-repeat budget vectors —
/// so no request in the mix can run away. The ceiling counts
/// deterministic search nodes, never wall time, so the screen — and
/// hence `response_digest` — is machine-independent. "Expensive
/// enough" is not screened structurally: the fuzz family's wall cost
/// is dominated by per-node exact-rational work, not node count, so
/// seeds are pre-scanned offline for cold cost and the hit-speedup
/// gate itself fails loudly if a pinned seed ever becomes cheap.
const SCREEN_MAX_NODES: u64 = 50_000;

struct Mix {
    /// Request lines for the cold phase, one per design.
    cold: Vec<String>,
    /// Exact-repeat and near-repeat request lines, one pair per design.
    repeat: Vec<String>,
    near: Vec<String>,
}

/// The design's native per-chip pin budgets (partition 0 is the
/// environment and carries none). The fuzzer assigns budgets that
/// track each chip's I/O demand, which keeps the exact feasibility
/// gate in its fast regime — uniform "generous" overrides push the
/// gate's ILP into pathological exact-search territory.
fn native_budgets(cdfg: &mcs_cdfg::Cdfg) -> Vec<u32> {
    (1..cdfg.partition_count())
        .map(|i| cdfg.partition(PartitionId::new(i as u32)).total_pins)
        .collect()
}

/// The near-repeat vector: one pin removed from the roomiest chip
/// (ties to the lowest index). The base vector then componentwise
/// dominates it, which is exactly the donor rule the warm-start tier
/// seeds across; the pinned seeds are pre-scanned so the tightened
/// vector stays feasible.
fn near_budgets(base: &[u32]) -> Vec<u32> {
    let mut near = base.to_vec();
    let roomiest = (0..near.len())
        .max_by_key(|&i| (near[i], std::cmp::Reverse(i)))
        .expect("at least one chip");
    near[roomiest] = near[roomiest].saturating_sub(1);
    near
}

fn synth_request(text: &str, budgets: &[u32], max_nodes: Option<u64>) -> String {
    let budgets = budgets
        .iter()
        .map(|b| b.to_string())
        .collect::<Vec<_>>()
        .join(",");
    let budget_member = match max_nodes {
        // The pivot/probe ceilings stop runaways in the pin-allocation
        // phase, which the node budget does not cover.
        Some(n) => format!(
            ",\"budget\":{{\"max_nodes\":{n},\"max_pivots\":5000000,\"max_probes\":500000}}"
        ),
        None => String::new(),
    };
    format!(
        "{{\"cmd\":\"synth\",\"design\":\"{}\",\"rate\":{RATE},\"flow\":\"connect\",\"pin_budget\":[{budgets}]{budget_member}}}",
        escape(text)
    )
}

/// Screens one candidate: its cold connect search must complete, to a
/// feasible answer, within [`SCREEN_MAX_NODES`] (an instant
/// infeasibility verdict tells the hit-speedup gate nothing).
fn screen(scratch: &Server, text: &str, base: &[u32]) -> bool {
    let wide = scratch.handle_line(&synth_request(text, base, Some(SCREEN_MAX_NODES)));
    if !wide.contains("\"termination\":\"complete\"") || !wide.contains("\"status\":\"feasible\"") {
        return false;
    }
    // The near-repeat budget drives its own search in the storm; prove
    // it bounded and still feasible too. It runs donor-seeded here
    // (the wide result above is resident), exactly as it will in the
    // bench proper.
    let near = scratch.handle_line(&synth_request(
        text,
        &near_budgets(base),
        Some(SCREEN_MAX_NODES),
    ));
    near.contains("\"termination\":\"complete\"") && near.contains("\"status\":\"feasible\"")
}

/// Fuzz seeds (default [`FuzzConfig`]) pre-scanned offline so that
/// every cold connect search completes, feasibly, within
/// [`SCREEN_MAX_NODES`] under both the base (native) and near-repeat
/// budget vectors, while still costing a cache-hit-dwarfing amount of
/// cold wall time (hundreds of ms of exact-rational work). Node
/// counts are deterministic, so the screen — and hence the mix and
/// `response_digest` — is machine-independent. The list is pinned
/// rather than discovered at startup because an open-ended scan can
/// wander into designs whose searches blow any reasonable deadline;
/// [`screen`] re-asserts the ceiling on every run, so an algorithm
/// change that moves a seed out of it fails loudly instead of
/// silently rescaling the benchmark.
const SEEDS: &[u64] = &[1, 4, 14, 15, 16, 18, 27, 29, 30, 39];

/// Builds the request mix from the first `designs` pinned seeds.
fn build_mix(designs: usize) -> Mix {
    let config = FuzzConfig::default();
    let mut mix = Mix {
        cold: Vec::new(),
        repeat: Vec::new(),
        near: Vec::new(),
    };
    assert!(designs <= SEEDS.len(), "not enough pinned seeds");
    for &seed in SEEDS.iter().take(designs) {
        let design = design_from_seed(&config, seed);
        let base = native_budgets(design.cdfg());
        assert!(base.len() >= 2, "seed {seed}: needs at least two chips");
        let text = format::write(design.cdfg());
        let scratch = Server::new(ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        });
        assert!(
            screen(&scratch, &text, &base),
            "seed {seed} fell out of the {SCREEN_MAX_NODES}-node feasible-completion \
             screen; re-scan and repin the SEEDS list"
        );
        // The real requests carry the same node ceiling the screen
        // proved sufficient, so no storm request can run away even
        // under racing near-repeats.
        mix.cold
            .push(synth_request(&text, &base, Some(SCREEN_MAX_NODES)));
        mix.repeat
            .push(synth_request(&text, &base, Some(SCREEN_MAX_NODES)));
        mix.near.push(synth_request(
            &text,
            &near_budgets(&base),
            Some(SCREEN_MAX_NODES),
        ));
    }
    mix
}

/// The canonical request order: cold phase, then every client's storm
/// stream in `(client, request)` order. The storm stream for client `c`
/// alternates exact repeats (even steps) and near-repeats (odd steps)
/// over the design ring starting at `c`.
fn canonical_requests(mix: &Mix, clients: usize, per_client: usize) -> Vec<String> {
    let mut all = mix.cold.clone();
    for c in 0..clients {
        for r in 0..per_client {
            all.push(storm_request(mix, c, r).to_string());
        }
    }
    all
}

fn storm_request(mix: &Mix, client: usize, step: usize) -> &str {
    let d = (client + step) % mix.cold.len();
    if step.is_multiple_of(2) {
        &mix.repeat[d]
    } else {
        &mix.near[d]
    }
}

/// Boots a daemon on an ephemeral port; returns its address and the
/// accept-loop thread (joins once a `shutdown` request lands).
fn spawn_daemon(workers: usize) -> (SocketAddr, std::thread::JoinHandle<()>) {
    let server = Arc::new(Server::new(ServeConfig {
        workers,
        queue_cap: 4096,
        cache_entries: 1024,
        ..ServeConfig::default()
    }));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().expect("bound address");
    let handle = std::thread::spawn(move || {
        server.serve_tcp(listener).expect("accept loop");
    });
    (addr, handle)
}

struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to daemon");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        Client { stream, reader }
    }

    /// Sends one request line, returns `(response line, latency in µs)`.
    fn roundtrip(&mut self, request: &str) -> (String, f64) {
        let started = Instant::now();
        writeln!(self.stream, "{request}").expect("send request");
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read response");
        let us = started.elapsed().as_secs_f64() * 1e6;
        (line.trim_end().to_string(), us)
    }
}

fn provenance(line: &str) -> &'static str {
    for tag in ["hit", "warm", "cold"] {
        if line.ends_with(&format!(",\"cache\":\"{tag}\"}}")) {
            return tag;
        }
    }
    "none"
}

fn percentile(sorted_us: &[f64], pct: usize) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = (sorted_us.len() * pct / 100).min(sorted_us.len() - 1);
    sorted_us[idx]
}

/// Sequentially replays `requests` against a fresh in-process daemon
/// with `workers` pool threads and returns the response transcript.
fn replay(requests: &[String], workers: usize) -> Vec<String> {
    let server = Server::new(ServeConfig {
        workers,
        queue_cap: 4096,
        cache_entries: 1024,
        ..ServeConfig::default()
    });
    requests.iter().map(|r| server.handle_line(r)).collect()
}

fn run_scenario(mix: &Mix, clients: usize, per_client: usize) -> MeasuredServe {
    let (addr, accept_loop) = spawn_daemon(4);

    // Cold phase: every design once, sequentially, timed.
    let mut cold_us = Vec::new();
    {
        let mut client = Client::connect(addr);
        for request in &mix.cold {
            let (line, us) = client.roundtrip(request);
            assert_eq!(provenance(&line), "cold", "cold phase response: {line}");
            cold_us.push(us);
        }
    }

    // Storm phase: N concurrent clients over the repeat/near-repeat mix.
    let storm_started = Instant::now();
    let outcomes: Vec<(String, f64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr);
                    (0..per_client)
                        .map(|r| {
                            let (line, us) = client.roundtrip(storm_request(mix, c, r));
                            (provenance(&line).to_string(), us)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("storm client"))
            .collect()
    });
    let wall_ms = storm_started.elapsed().as_secs_f64() * 1e3;

    let mut hits = 0u64;
    let mut warm = 0u64;
    let mut storm_cold = 0u64;
    let mut hit_us = Vec::new();
    for (prov, us) in &outcomes {
        match prov.as_str() {
            "hit" => {
                hits += 1;
                hit_us.push(*us);
            }
            "warm" => warm += 1,
            _ => storm_cold += 1,
        }
    }

    {
        let mut client = Client::connect(addr);
        let (line, _) = client.roundtrip("{\"cmd\":\"shutdown\"}");
        assert!(line.contains("\"ok\":true"), "shutdown response: {line}");
    }
    accept_loop.join().expect("accept loop joins");

    // Determinism replay: the canonical sequential transcript must be
    // byte-identical regardless of the daemon's worker count.
    let requests = canonical_requests(mix, clients, per_client);
    let transcript = replay(&requests, 1);
    let workers_identical =
        replay(&requests, 2) == transcript && replay(&requests, 8) == transcript;

    cold_us.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    hit_us.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    MeasuredServe {
        clients: clients as u64,
        workers: 4,
        designs: mix.cold.len() as u64,
        cold_requests: mix.cold.len() as u64,
        storm_requests: (clients * per_client) as u64,
        hits,
        warm,
        storm_cold,
        response_digest: response_digest(&transcript),
        workers_identical,
        cold_p50_us: percentile(&cold_us, 50),
        cold_p99_us: percentile(&cold_us, 99),
        hit_p50_us: percentile(&hit_us, 50),
        hit_p99_us: percentile(&hit_us, 99),
        wall_ms,
    }
}

fn main() -> ExitCode {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (designs, per_client, ladder): (usize, usize, &[usize]) = if smoke {
        (3, 4, &[1, 8])
    } else {
        (5, 8, &[1, 8, 64])
    };
    let mix = build_mix(designs);
    let mut all_pass = true;
    for &clients in ladder {
        let measured = run_scenario(&mix, clients, per_client);
        let line = serve_bench_line(&format!("clients_{clients}"), &measured);
        all_pass &= line.contains("\"pass\":true");
        println!("{line}");
    }
    if all_pass {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
