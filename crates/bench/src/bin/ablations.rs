//! Quality ablations for the engineered design choices (DESIGN.md §6):
//! how the connection search's branching factor, the Chapter 6 sharing
//! pass, and dynamic bus reassignment affect the *results* (pins, buses,
//! pipe length) rather than the runtime.
//!
//! ```sh
//! cargo run --release -p mcs-bench --bin ablations
//! ```

use mcs_cdfg::{designs, PartitionId, PortMode};
use mcs_connect::{share_pass, synthesize, SearchConfig};
use mcs_sched::{list_schedule, BusPolicy, ListConfig};
use multichip_hls::partition::{refine, spread, Capacities, FlatGraph};

fn pins(cdfg: &mcs_cdfg::Cdfg, ic: &mcs_connect::Interconnect) -> Vec<u32> {
    (0..cdfg.partition_count())
        .map(|p| ic.pins_used(PartitionId::new(p as u32)))
        .collect()
}

fn main() {
    let mode = PortMode::Unidirectional;

    println!("## Branching factor (elliptic, L=6, unidirectional)");
    println!(
        "{:>3} {:>22} {:>6} {:>6}",
        "bf", "pins per chip", "total", "buses"
    );
    let d = designs::elliptic::partitioned_with(6, mode);
    for bf in [1usize, 2, 3, 6] {
        let mut cfg = SearchConfig::new(6);
        cfg.branching_factor = bf;
        match synthesize(d.cdfg(), mode, &cfg) {
            Ok(ic) => {
                let p = pins(d.cdfg(), &ic);
                println!(
                    "{bf:>3} {:>22} {:>6} {:>6}",
                    format!("{:?}", &p[..]),
                    p.iter().sum::<u32>(),
                    ic.buses.len()
                );
            }
            Err(e) => println!("{bf:>3} failed: {e}"),
        }
    }

    println!("\n## Sharing pass (elliptic, unidirectional)");
    println!(
        "{:>3} {:>12} {:>12} {:>8}",
        "L", "plain pins", "shared pins", "saved"
    );
    for rate in [5u32, 6, 7] {
        let d = designs::elliptic::partitioned_with(rate, mode);
        let cfg = SearchConfig::new(rate);
        let Ok(plain) = synthesize(d.cdfg(), mode, &cfg) else {
            println!("{rate:>3} no structure");
            continue;
        };
        let before: u32 = pins(d.cdfg(), &plain).iter().sum();
        let mut shared = plain.clone();
        share_pass(d.cdfg(), &mut shared, rate);
        let after: u32 = pins(d.cdfg(), &shared).iter().sum();
        println!("{rate:>3} {before:>12} {after:>12} {:>8}", before - after);
    }

    println!("\n## Dynamic bus reassignment (AR filter, general partitioning)");
    println!("{:>3} {:>14} {:>14}", "L", "static steps", "dynamic steps");
    for rate in [3u32, 4, 5] {
        let d = designs::ar_filter::general(rate, mode);
        let Ok(ic) = synthesize(d.cdfg(), mode, &SearchConfig::new(rate)) else {
            println!("{rate:>3} no structure");
            continue;
        };
        let row: Vec<String> = [false, true]
            .iter()
            .map(|&re| {
                let mut policy = BusPolicy::new(ic.clone(), rate, re);
                match list_schedule(d.cdfg(), &ListConfig::new(rate), &mut policy) {
                    Ok(s) => format!("{}", s.pipe_length(d.cdfg())),
                    Err(_) => "fail".to_string(),
                }
            })
            .collect();
        println!("{rate:>3} {:>14} {:>14}", row[0], row[1]);
    }

    println!("\n## Automatic partitioning vs the hand partitioning (AR filter)");
    println!(
        "{:>6} {:>10} {:>12} {:>12}",
        "chips", "cold cut", "refined cut", "hand cut"
    );
    let d = designs::ar_filter::simple();
    let flat = FlatGraph::from_cdfg(d.cdfg()).expect("AR flattens");
    let hand = flat.cut_bits(&flat.original_assignment());
    for n in [2usize, 3, 4] {
        let chips: Vec<PartitionId> = (1..=n as u32).map(PartitionId::new).collect();
        let cap = flat.ops.len().div_ceil(n) + 1;
        let init = spread(&flat, &chips);
        let cold = flat.cut_bits(&init);
        let r = refine(&flat, &chips, &init, &Capacities::balanced(cap));
        let hand_col = if n == 4 {
            hand.to_string()
        } else {
            "-".to_string()
        };
        println!("{n:>6} {cold:>10} {:>12} {hand_col:>12}", r.final_cut);
    }
}
