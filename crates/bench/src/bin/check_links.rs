//! Relative-link checker for the in-tree documentation, run by the CI
//! docs job. Scans `README.md`, `DESIGN.md`, `ROADMAP.md` and every
//! `docs/*.md` for markdown links, and fails when a relative target
//! (optionally with a `#fragment`) does not exist on disk. External
//! `http(s):`/`mailto:` links and bare anchors are out of scope — this
//! gate is about the cross-file index staying truthful as files move,
//! offline and with zero dependencies.
//!
//! ```text
//! check_links [repo-root]    # default: current directory
//! ```

use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Extracts `](target)` markdown link targets from one line. Good
/// enough for this tree's docs: no reference-style links, no titles
/// inside the parentheses, no nested parentheses in paths.
fn link_targets(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let bytes = line.as_bytes();
    let mut i = 0;
    while i + 1 < bytes.len() {
        if bytes[i] == b']' && bytes[i + 1] == b'(' {
            if let Some(close) = line[i + 2..].find(')') {
                out.push(line[i + 2..i + 2 + close].to_string());
                i += 2 + close;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// `true` when the target is out of scope for a filesystem check.
fn external(target: &str) -> bool {
    target.starts_with("http://")
        || target.starts_with("https://")
        || target.starts_with("mailto:")
        || target.starts_with('#')
        || target.is_empty()
}

fn check_file(root: &Path, file: &Path, problems: &mut Vec<String>) {
    let Ok(text) = std::fs::read_to_string(file) else {
        problems.push(format!("{}: unreadable", file.display()));
        return;
    };
    let dir = file.parent().unwrap_or(root);
    let mut in_fence = false;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
        }
        if in_fence {
            continue;
        }
        for target in link_targets(line) {
            if external(&target) {
                continue;
            }
            let path_part = target.split('#').next().unwrap_or("");
            if path_part.is_empty() {
                continue;
            }
            let resolved = dir.join(path_part);
            if !resolved.exists() {
                problems.push(format!(
                    "{}:{}: broken link `{target}` (no `{}`)",
                    file.display(),
                    lineno + 1,
                    resolved.display()
                ));
            }
        }
    }
}

fn doc_files(root: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = ["README.md", "DESIGN.md", "ROADMAP.md", "CHANGES.md"]
        .iter()
        .map(|f| root.join(f))
        .filter(|p| p.exists())
        .collect();
    if let Ok(entries) = std::fs::read_dir(root.join("docs")) {
        let mut docs: Vec<PathBuf> = entries
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == "md"))
            .collect();
        docs.sort();
        files.extend(docs);
    }
    files
}

fn main() -> ExitCode {
    let root = std::env::args()
        .nth(1)
        .map_or_else(|| PathBuf::from("."), PathBuf::from);
    let files = doc_files(&root);
    if files.is_empty() {
        eprintln!("check_links: no markdown files under {}", root.display());
        return ExitCode::FAILURE;
    }
    let mut problems = Vec::new();
    for file in &files {
        check_file(&root, file, &mut problems);
    }
    for p in &problems {
        eprintln!("check_links: {p}");
    }
    println!(
        "check_links: {} files scanned, {} broken links",
        files.len(),
        problems.len()
    );
    if problems.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
