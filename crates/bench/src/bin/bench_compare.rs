//! Diffs a fresh BENCH json file against a committed baseline and exits
//! nonzero on any regression — the CI perf gate.
//!
//! ```text
//! bench_compare probe <baseline.json> <fresh.json>
//! bench_compare fuzz  <baseline.json> <fresh.json>
//! bench_compare serve <baseline.json> <fresh.json>
//! bench_compare resynth <baseline.json> <fresh.json>
//! bench_compare --self-test
//! ```
//!
//! Deterministic fields (probe counts, verdict digests, differential
//! agreement, fuzz outcomes, shrink results) hard-fail on any change.
//! Within-run performance ratios (trail-vs-clone speedup, trail
//! allocations) fail past a tolerance. Absolute wall times are never
//! compared — they belong to the machine, not the code. The field
//! policy lives in [`mcs_bench::compare`], where it is unit-tested;
//! `--self-test` additionally proves, in-process, that an injected 2x
//! wall-time slowdown trips the gate and that a byte-identical run
//! passes.

use std::process::ExitCode;

use mcs_bench::compare::{
    compare_fuzz, compare_probe, compare_resynth, compare_serve, render_findings, Finding,
};

fn usage() -> ExitCode {
    eprintln!(
        "usage: bench_compare <probe|fuzz|serve|resynth> <baseline.json> <fresh.json> | --self-test"
    );
    ExitCode::from(2)
}

fn read(path: &str) -> Result<String, ExitCode> {
    std::fs::read_to_string(path).map_err(|e| {
        eprintln!("bench_compare: {path}: {e}");
        ExitCode::FAILURE
    })
}

fn gate(findings: Vec<Finding>) -> ExitCode {
    println!("{}", render_findings(&findings));
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Proves the gate trips: a synthetic 2x slowdown of the trail engine
/// (doubled wall time, halved within-run speedup) must produce at least
/// one finding, and the unmodified line must produce none.
fn self_test() -> ExitCode {
    let baseline = "{\"bench\":\"probe\",\"design\":\"selftest\",\"rate\":2,\
        \"trail\":{\"probes\":64,\"feasible\":48,\"allocations\":0,\
        \"alloc_bytes\":0,\"wall_ms\":5.000,\"verdict_digest\":42},\
        \"wide\":{\"probes\":64,\"feasible\":48,\"allocations\":0,\
        \"alloc_bytes\":0,\"wall_ms\":9.000,\"verdict_digest\":42},\
        \"clone\":{\"probes\":64,\"feasible\":48,\"allocations\":600,\
        \"alloc_bytes\":819200,\"wall_ms\":40.000,\"verdict_digest\":42},\
        \"agree\":true,\"alloc_ratio\":600.00,\"speedup\":8.00,\
        \"wide_ratio\":1.80}";
    // The injected regression: trail wall time 5ms -> 10ms, so the
    // within-run speedup drops from 8.00 to 4.00.
    let slowed = baseline
        .replace("\"wall_ms\":5.000", "\"wall_ms\":10.000")
        .replace("\"speedup\":8.00", "\"speedup\":4.00");

    let clean = compare_probe(baseline, baseline).expect("baseline parses");
    if !clean.is_empty() {
        eprintln!("bench_compare: self-test FAILED: identical runs produced findings");
        return ExitCode::FAILURE;
    }
    let tripped = compare_probe(baseline, &slowed).expect("slowed line parses");
    if tripped.is_empty() {
        eprintln!("bench_compare: self-test FAILED: 2x slowdown did not trip the gate");
        return ExitCode::FAILURE;
    }
    println!(
        "bench_compare: self-test OK (identical run passes; 2x slowdown trips: {})",
        tripped
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("; ")
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--self-test") => self_test(),
        Some(mode @ ("probe" | "fuzz" | "serve" | "resynth")) => {
            let (Some(baseline), Some(fresh)) = (args.get(1), args.get(2)) else {
                return usage();
            };
            let (baseline, fresh) = match (read(baseline), read(fresh)) {
                (Ok(b), Ok(f)) => (b, f),
                (Err(c), _) | (_, Err(c)) => return c,
            };
            let result = match mode {
                "probe" => compare_probe(&baseline, &fresh),
                "fuzz" => compare_fuzz(&baseline, &fresh),
                "resynth" => compare_resynth(&baseline, &fresh),
                _ => compare_serve(&baseline, &fresh),
            };
            match result {
                Ok(findings) => gate(findings),
                Err(e) => {
                    eprintln!("bench_compare: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}
