//! Emits BENCH json lines (one per design) comparing three probe
//! engines on the same pin-allocation tableau: the adaptive-i64 trail
//! engine, the trail engine forced onto the i128 representation from
//! the first pivot, and the legacy clone-per-probe path — wall time,
//! heap allocations and a verdict digest each. All three engines must
//! agree on every verdict — the process exits nonzero when they do
//! not, which is the differential gate CI runs. The rendering lives in
//! [`mcs_bench::probe_bench_line`], where it is golden-tested.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use mcs_bench::{probe_bench_line, verdict_digest, MeasuredProbe};
use mcs_cdfg::designs::{ar_filter, synthetic, Design};
use mcs_cdfg::OpId;
use mcs_pinalloc::PinChecker;

/// [`System`] with allocation counters, so the sweep can report how many
/// heap allocations each probe engine performs.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Probes each of the design's transfers into every control-step group,
/// `rounds` times, through one engine. The checker is warm (one unmeasured
/// round) so one-time arena growth does not count against either engine.
fn sweep(
    checker: &mut PinChecker,
    ops: &[OpId],
    rate: u32,
    rounds: usize,
    via_clone: bool,
) -> MeasuredProbe {
    let mut verdicts: Vec<bool> = Vec::with_capacity(rounds * ops.len() * rate as usize);
    for &op in ops {
        for k in 0..rate as i64 {
            let _ = checker.probe_uncached(op, k, via_clone);
        }
    }
    let allocs0 = ALLOCS.load(Ordering::Relaxed);
    let bytes0 = BYTES.load(Ordering::Relaxed);
    let t0 = Instant::now();
    for _ in 0..rounds {
        for &op in ops {
            for k in 0..rate as i64 {
                verdicts.push(checker.probe_uncached(op, k, via_clone));
            }
        }
    }
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    MeasuredProbe {
        probes: verdicts.len() as u64,
        feasible: verdicts.iter().filter(|&&v| v).count() as u64,
        allocations: ALLOCS.load(Ordering::Relaxed) - allocs0,
        alloc_bytes: BYTES.load(Ordering::Relaxed) - bytes0,
        wall_ms,
        verdict_digest: verdict_digest(&verdicts),
    }
}

fn run(name: &str, design: &Design, rate: u32, rounds: usize) -> bool {
    let cdfg = design.cdfg();
    let mut checker = match PinChecker::new(cdfg, rate) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{name}: pin checker infeasible at rate {rate}: {e}");
            return false;
        }
    };
    let ops: Vec<OpId> = cdfg.io_ops().collect();
    let trail = sweep(&mut checker, &ops, rate, rounds, false);
    let clone = sweep(&mut checker, &ops, rate, rounds, true);
    // Third engine: the same trail machinery pinned to the i128
    // representation from the first pivot. Its digest certifies that
    // the adaptive-i64 fast path changes nothing but speed.
    let mut wide_checker = match PinChecker::new(cdfg, rate) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{name}: wide pin checker infeasible at rate {rate}: {e}");
            return false;
        }
    };
    wide_checker.force_wide_words();
    let wide = sweep(&mut wide_checker, &ops, rate, rounds, false);
    let agree =
        trail.verdict_digest == wide.verdict_digest && trail.verdict_digest == clone.verdict_digest;
    println!("{}", probe_bench_line(name, rate, &trail, &wide, &clone));
    if !agree {
        eprintln!("{name}: trail, wide and clone probe engines disagree");
    }
    agree
}

fn main() -> std::process::ExitCode {
    // 40 rounds puts each measured sweep in the tens-of-milliseconds
    // range: long enough that the speedup ratio is stable run to run,
    // which the bench_compare regression gate depends on.
    let mut ok = true;
    ok &= run("ch3_simple", &ar_filter::simple(), 2, 40);
    ok &= run(
        "portfolio_adversarial",
        &synthetic::portfolio_adversarial(6),
        2,
        40,
    );
    // The 8-chip mesh is the scale row: 64+ ops over 6+ chips with a
    // pin-tight ring that makes roughly half the naive placements
    // infeasible, so the solver does real cutting-plane work per probe.
    ok &= run("large_mesh", &synthetic::large_mesh(8), 2, 10);
    if ok {
        std::process::ExitCode::SUCCESS
    } else {
        std::process::ExitCode::FAILURE
    }
}
