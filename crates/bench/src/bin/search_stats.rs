//! Emits a BENCH json line comparing the classic single-worker
//! connection search with the 8-plan portfolio on the adversarial fan-in
//! design: wall time, nodes expanded, nodes/second and the measured
//! speedup, plus the exact-fallback count of a probe sweep over the same
//! design (how often the incremental Gomory tableau overflowed and fell
//! back to the exact solver, and the batched-probing counters of the
//! same sweep). The output is one JSON object on stdout,
//! suitable for machine-diffing runs before and after search changes.
//! The rendering lives in [`mcs_bench::search_stats_line`], where it is
//! golden-tested.

use std::time::Instant;

use mcs_bench::{search_stats_line, MeasuredSearch};
use mcs_cdfg::{designs::synthetic, PortMode};
use mcs_connect::{synthesize_with_stats, SearchConfig};
use mcs_pinalloc::PinChecker;

fn run(workers: usize) -> MeasuredSearch {
    let d = synthetic::portfolio_adversarial(6);
    let cfg = SearchConfig::new(2).with_workers(workers);
    let t0 = Instant::now();
    let (ic, stats) = synthesize_with_stats(d.cdfg(), PortMode::Unidirectional, &cfg);
    MeasuredSearch {
        ok: ic.is_ok(),
        stats,
        wall_ms: t0.elapsed().as_secs_f64() * 1e3,
    }
}

/// Probes every transfer of the same design into every control-step
/// group through one batched call and reports the sweep's cache stats:
/// how many probes overflowed the incremental tableau and fell back to
/// the exact solver, plus the batched-path counters.
fn probe_sweep_stats() -> mcs_pinalloc::ProbeCacheStats {
    let d = synthetic::portfolio_adversarial(6);
    let Ok(mut checker) = PinChecker::new(d.cdfg(), 2) else {
        return mcs_pinalloc::ProbeCacheStats::default();
    };
    let slate: Vec<_> = d
        .cdfg()
        .io_ops()
        .flat_map(|op| (0..2i64).map(move |k| (op, k)))
        .collect();
    let _ = checker.probe_candidates(&slate);
    checker.probe_stats()
}

fn main() {
    let before = run(1);
    let after = run(8);
    println!(
        "{}",
        search_stats_line(
            "portfolio_adversarial",
            6,
            &probe_sweep_stats(),
            &before,
            &after
        )
    );
}
