//! Emits a BENCH json line comparing the classic single-worker
//! connection search with the 8-plan portfolio on the adversarial fan-in
//! design: wall time, nodes expanded, nodes/second and the measured
//! speedup. The output is one JSON object on stdout, suitable for
//! machine-diffing runs before and after search changes.

use std::fmt::Write as _;
use std::time::Instant;

use mcs_cdfg::{designs::synthetic, PortMode};
use mcs_connect::{synthesize_with_stats, SearchConfig, SearchStats};

struct Measured {
    ok: bool,
    stats: SearchStats,
    wall_ms: f64,
}

fn run(workers: usize) -> Measured {
    let d = synthetic::portfolio_adversarial(6);
    let cfg = SearchConfig::new(2).with_workers(workers);
    let t0 = Instant::now();
    let (ic, stats) = synthesize_with_stats(d.cdfg(), PortMode::Unidirectional, &cfg);
    Measured {
        ok: ic.is_ok(),
        stats,
        wall_ms: t0.elapsed().as_secs_f64() * 1e3,
    }
}

fn emit(out: &mut String, label: &str, m: &Measured) {
    let _ = write!(
        out,
        "\"{label}\":{{\"ok\":{},\"nodes\":{},\"nodes_per_sec\":{:.0},\
         \"epochs\":{},\"threads\":{},\"cache_hits\":{},\"prunes\":{},\
         \"backtracks\":{},\"wall_ms\":{:.3},\"winner\":{}}}",
        m.ok,
        m.stats.nodes,
        m.stats.nodes_per_sec(),
        m.stats.epochs,
        m.stats.threads,
        m.stats.cache_hits,
        m.stats.prunes,
        m.stats.backtracks,
        m.wall_ms,
        match m.stats.winner {
            Some(w) => w.to_string(),
            None => String::from("null"),
        },
    );
}

fn main() {
    let before = run(1);
    let after = run(8);
    let mut out = String::from("{\"bench\":\"portfolio_adversarial\",\"senders\":6,");
    emit(&mut out, "before", &before);
    out.push(',');
    emit(&mut out, "after", &after);
    let speedup = if after.wall_ms > 0.0 {
        before.wall_ms / after.wall_ms
    } else {
        0.0
    };
    let _ = write!(out, ",\"speedup\":{speedup:.2}}}");
    println!("{out}");
}
