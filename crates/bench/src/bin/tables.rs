//! Regenerates every evaluation table and figure of the paper.
//!
//! ```sh
//! cargo run --release -p mcs-bench --bin tables            # everything
//! cargo run --release -p mcs-bench --bin tables -- --exp e4_uni
//! ```

use mcs_bench::{run_experiment, EXPERIMENTS};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let selected: Vec<&str> = match args.iter().position(|a| a == "--exp") {
        Some(i) => match args.get(i + 1) {
            Some(id) => vec![id.as_str()],
            None => {
                eprintln!("--exp requires an experiment id; available: {EXPERIMENTS:?}");
                std::process::exit(2);
            }
        },
        None => EXPERIMENTS.to_vec(),
    };
    for id in selected {
        println!("################ {id} ################");
        println!("{}", run_experiment(id));
    }
}
