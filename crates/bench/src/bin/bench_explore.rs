//! Emits the `BENCH_explore` json line: one design-space sweep of the
//! elliptic filter run twice — with dominance pruning and exhaustively —
//! comparing wall time, warm-start hit counts and the Pareto frontier.
//! The two frontiers must be identical (pruning only skips points whose
//! infeasibility is already proven) and the pruned sweep must show
//! warm-start reuse; the process exits nonzero when either gate fails,
//! which is what CI runs. The rendering lives in
//! [`mcs_bench::explore_bench_line`], where it is golden-tested.

use std::time::Instant;

use mcs_bench::{explore_bench_line, measure_sweep, MeasuredSweep};
use mcs_cdfg::designs::elliptic;
use mcs_explore::{FlowVariant, SweepOptions, SweepSpec};
use mcs_obs::RecorderHandle;
use multichip_hls::explore::run_sweep;

/// The sweep CI measures: the paper's headline benchmark across the
/// feasibility boundary. The budget ladder descends from Table 4.14's
/// rate-6 budgets to a uniformly starved vector, so certificate
/// transfer between waves has somewhere to land and the tightest wave
/// is provably pin-infeasible — which is what dominance pruning skips.
fn spec() -> SweepSpec {
    SweepSpec {
        design: "elliptic".into(),
        flow: FlowVariant::ConnectFirst,
        rates: (4..=8).collect(),
        budgets: vec![
            vec![48, 48, 64, 48, 48],
            vec![32, 48, 64, 48, 48],
            vec![24, 32, 48, 32, 32],
            vec![16, 16, 16, 16, 16],
        ],
    }
}

fn run(prune: bool) -> (MeasuredSweep, mcs_explore::SweepReport) {
    let design = elliptic::partitioned();
    let opts = SweepOptions {
        jobs: 2,
        prune,
        ..SweepOptions::default()
    };
    let t0 = Instant::now();
    let report = run_sweep(design.cdfg(), &spec(), &opts, &RecorderHandle::default())
        .expect("elliptic sweep spec is well-formed");
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    (measure_sweep(&report, wall_ms), report)
}

fn main() -> std::process::ExitCode {
    let (pruned, _) = run(true);
    let (exhaustive, _) = run(false);
    println!(
        "{}",
        explore_bench_line(
            "elliptic",
            FlowVariant::ConnectFirst.as_str(),
            &pruned,
            &exhaustive
        )
    );
    let mut ok = true;
    if pruned.frontier_digest != exhaustive.frontier_digest {
        eprintln!("elliptic: pruned and exhaustive sweeps disagree on the Pareto frontier");
        ok = false;
    }
    if pruned.probe_seed_hits + pruned.cert_seed_hits == 0 {
        eprintln!("elliptic: pruned sweep shows no warm-start reuse");
        ok = false;
    }
    if ok {
        std::process::ExitCode::SUCCESS
    } else {
        std::process::ExitCode::FAILURE
    }
}
