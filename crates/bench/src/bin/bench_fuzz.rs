//! Emits the `BENCH_fuzz` json line: a seeded fuzzing sweep of the
//! synthesis pipeline — random CDFGs through the three-way flow
//! differential, a subset additionally through the engine-vs-reference
//! simulation oracle, plus one shrink-on-failure demonstration against
//! the corpus's known finding. Every divergence is a bug; the process
//! exits nonzero when any appears, which is what CI runs. The rendering
//! lives in [`mcs_bench::fuzz_bench_line`], where it is golden-tested.

use std::time::Instant;

use mcs_bench::{fuzz_bench_line, MeasuredFuzz};
use mcs_cdfg::fuzz::{build_design, design_from_seed, genome_from_seed, genomes, FuzzConfig};
use mcs_cdfg::timing;
use multichip_hls::differential::{flow_differential, sim_differential};
use multichip_hls::flows::{simple_flow, FlowError};

const FLOW_SEEDS: u64 = 200;
const SIM_CHECKS: u64 = 50;

fn main() -> std::process::ExitCode {
    let config = FuzzConfig::default();
    let t0 = Instant::now();

    let mut m = MeasuredFuzz {
        seeds: FLOW_SEEDS,
        agreed: 0,
        disagreed: 0,
        any_feasible: 0,
        sim_checked: 0,
        sim_mismatched: 0,
        shrink_steps: 0,
        shrink_from_ops: 0,
        shrink_to_ops: 0,
        wall_ms: 0.0,
    };
    let mut first_failures = Vec::new();
    for seed in 0..FLOW_SEEDS {
        let design = design_from_seed(&config, seed);
        let d = flow_differential(design.cdfg());
        if d.agreed() {
            m.agreed += 1;
        } else {
            m.disagreed += 1;
            first_failures.push(format!("seed {seed}: {:?}", d.disagreements));
        }
        if d.any_feasible() {
            m.any_feasible += 1;
        }
        if m.sim_checked < SIM_CHECKS {
            if let Some(sd) = sim_differential(design.cdfg(), 3, seed ^ 0x5eed) {
                m.sim_checked += 1;
                if !sd.mismatches.is_empty() {
                    m.sim_mismatched += 1;
                    first_failures.push(format!("seed {seed} sim: {:?}", sd.mismatches));
                }
            }
        }
    }

    // Shrink demonstration: the corpus's finding 2 (postsyn gives up on a
    // budget the pin checker admitted) minimizes from seed 170.
    let gives_up = |g: &mcs_cdfg::fuzz::Genome| {
        let design = build_design(g, &config);
        let rate = timing::min_initiation_rate(design.cdfg()).max(1);
        matches!(simple_flow(design.cdfg(), rate), Err(FlowError::Connect(_)))
    };
    let genome = genome_from_seed(&config, 170);
    m.shrink_from_ops = genome.ops.len() as u64;
    if gives_up(&genome) {
        let (min, steps) = proptest::minimize(&genomes(&config), genome, gives_up);
        m.shrink_steps = steps as u64;
        m.shrink_to_ops = min.ops.len() as u64;
    } else {
        first_failures.push("seed 170 no longer reproduces the shrink demonstration".into());
    }

    m.wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!("{}", fuzz_bench_line("default", &m));
    for f in &first_failures {
        eprintln!("bench_fuzz: {f}");
    }
    if first_failures.is_empty() {
        std::process::ExitCode::SUCCESS
    } else {
        std::process::ExitCode::FAILURE
    }
}
